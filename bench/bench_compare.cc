// Perf-gate comparator: diff two perf-baseline files and exit nonzero on
// regression (docs/observability.md, "Latency attribution & perf gating").
//
//   ./bench_compare old.json new.json
//
// `old.json` is the committed snapshot (bench/baselines/), `new.json` a
// fresh emission (run a bench with HH_BASELINE_OUT=<path>). Both sides are
// parsed with obs/perf_baseline.hpp and compared with the default tolerance
// bands; the human-readable verdict goes to stdout, and when HH_DIFF_OUT is
// set the PerfDiff JSON is written there too (CI uploads it as an artifact).
//
// Exit codes: 0 = within bands, 1 = regression detected, 2 = usage or
// parse/IO error. The simulator is deterministic, so identical code diffs
// clean at any tolerance — a nonzero exit is a real behaviour change.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perf_baseline.hpp"
#include "util/status.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <baseline.json> <fresh.json>\n",
                 argc > 0 ? argv[0] : "bench_compare");
    return 2;
  }

  std::string old_text, new_text;
  if (!read_file(argv[1], &old_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", argv[1]);
    return 2;
  }
  if (!read_file(argv[2], &new_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", argv[2]);
    return 2;
  }

  hh::PerfDiff diff;
  try {
    const std::vector<hh::PerfBaseline> old_set =
        hh::parse_perf_baselines(old_text);
    const std::vector<hh::PerfBaseline> new_set =
        hh::parse_perf_baselines(new_text);
    diff = hh::compare_perf_baselines(old_set, new_set);
  } catch (const hh::ParseError& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  std::printf("%s vs %s\n%s", argv[1], argv[2], diff.to_string().c_str());

  const char* diff_env = std::getenv("HH_DIFF_OUT");
  if (diff_env != nullptr && diff_env[0] != '\0') {
    if (std::FILE* f = std::fopen(diff_env, "w")) {
      std::fprintf(f, "%s\n", diff.to_json().c_str());
      std::fclose(f);
      std::printf("diff record -> %s\n", diff_env);
    } else {
      std::fprintf(stderr, "bench_compare: cannot write %s\n", diff_env);
      return 2;
    }
  }
  return diff.regressed ? 1 : 0;
}
