// Table I: the 12-matrix dataset suite — rows, nnz, and the power-law
// exponent α of the row sizes (fitted with the library's Alstott-equivalent
// estimator). Paper values are printed alongside the generated analogues.
#include <cstdio>

#include "bench_common.hpp"
#include "powerlaw/fit.hpp"
#include "sparse/row_stats.hpp"

int main() {
  using namespace hh;
  bench::print_header("Table I: dataset suite (paper vs generated analogue)");

  const double scale = bench::bench_scale();
  std::printf("%-16s %10s %12s %8s | %10s %12s %10s %8s\n", "matrix",
              "rows", "nnz", "alpha", "gen rows", "gen nnz", "gen a-fit",
              "max row");
  for (const DatasetSpec& spec : table1_datasets()) {
    const CsrMatrix m = make_dataset(spec, scale);
    const PowerLawFit fit = fit_power_law(row_nnz_vector(m));
    const RowStats rs = row_stats(m);
    // Very steep fits are reported as ">6.5" — like the paper's own α column
    // these just mean "not scale-free".
    char alpha_buf[32];
    if (fit.alpha > 6.5) {
      std::snprintf(alpha_buf, sizeof(alpha_buf), ">6.5");
    } else {
      std::snprintf(alpha_buf, sizeof(alpha_buf), "%.2f", fit.alpha);
    }
    std::printf("%-16s %10d %12lld %8.2f | %10d %12lld %10s %8lld\n",
                spec.name, spec.rows, static_cast<long long>(spec.nnz),
                spec.alpha, m.rows, static_cast<long long>(m.nnz()),
                alpha_buf, static_cast<long long>(rs.max));
  }
  std::printf("\n(analogues are scaled by %.2f; α is fitted on generated row"
              " sizes — scale-free specs should fit low α, the α>6.5 specs"
              " are intentionally not power-law)\n", scale);
  return 0;
}
