// Pipelined service runtime vs. back-to-back run_hh_cpu calls.
//
// Part 1 — fault-free: submits a batch of Table-I analogue self-products
// (with repeats, so the plan cache and operand residency get exercised) to
// SpgemmService, then runs the identical batch serially through run_hh_cpu.
// Verifies every output is bit-identical to the serial path.
//
// Part 2 — under fault injection: a larger batch (HH_FAULT_REQUESTS,
// default 102) drains against a FaultPlan with transient GPU aborts and
// PCIe failures/corruption. Every request must survive — retried or
// degraded to the CPU-only path — with output bit-identical to the
// fault-free serial reference; the report shows throughput under faults
// next to the healthy throughput.
//
// Part 3 — online autotuning (src/tune/, docs/tuning.md): a fixed-seed
// 256-request batch (HH_TUNE_REQUESTS) over 8 distinct hot signature pairs
// (the three Table-I analogues plus five generated power-law matrices)
// drains twice on identical submissions — tuning off, then tuning on. The
// tuned run must not lose: makespan and p95 latency <= the untuned
// baseline, at least one signature promoted to a measured-better threshold,
// every output bit-identical to run_hh_cpu at the thresholds the service
// chose, and a same-seed replay bit-identical in outputs with a
// byte-identical TuneReport JSON.
//
// Part 4 — batched wave executor (docs/runtime.md): a repeated-operand
// batch (HH_WAVE_REQUESTS, default 256) over the three Table-I analogues
// drains wave-disabled then wave-enabled (both without sticky residency).
// The wave run must strictly beat the disabled run on makespan and H2D
// payload bytes, report at least one deduped upload, stay bit-identical to
// the serial reference per request, and replay byte-identically —
// BatchReport wave counters included.
//
//   ./bench_runtime_throughput            # scale via HH_SCALE (default 0.1)
//   HH_FAULT_GPU_RATE=0.3 HH_FAULT_PCIE_RATE=0.2 HH_FAULT_SEED=7
//   HH_FAULT_REQUESTS=200 ./bench_runtime_throughput   (env knobs)
//
// Prints one JSON object per part with the batch percentiles, makespans,
// and fault/recovery counters, and writes the combined machine-readable
// record — part1/part2/part3 plus tuned-vs-untuned deltas — to
// HH_BENCH_OUT (default BENCH_runtime.json).
// The faulted drain records a structured trace (unless HH_TRACE_OUT is set
// to an empty string) and exports it as Chrome trace-event / Perfetto JSON
// to HH_TRACE_OUT (default bench_runtime_trace.json) — load it at
// https://ui.perfetto.dev to see the four resource tracks, per-request flow
// arrows and fault/retry/degrade instants.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "gen/powerlaw_gen.hpp"
#include "obs/perf_baseline.hpp"
#include "runtime/service.hpp"
#include "trace/perfetto_export.hpp"

namespace {

bool bit_identical(const hh::CsrMatrix& x, const hh::CsrMatrix& y) {
  return x.rows == y.rows && x.cols == y.cols && x.indptr == y.indptr &&
         x.indices == y.indices && x.values == y.values;
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v >= 0) return v;
  }
  return fallback;
}

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

}  // namespace

int main() {
  using namespace hh;
  bench::print_header("runtime throughput: pipelined service vs serial calls");

  const double scale = bench::bench_scale();
  const HeteroPlatform platform = make_scaled_platform(scale);
  ThreadPool pool(0);

  // Three datasets, three rounds each: nine requests. Rounds 2 and 3 of a
  // dataset hit the plan cache and find their operands resident.
  const char* names[] = {"email-Enron", "wiki-Vote", "ca-CondMat"};
  std::vector<CsrMatrix> mats;
  mats.reserve(std::size(names));
  for (const char* name : names) {
    mats.push_back(load_or_make_dataset(dataset_spec(name), scale));
  }

  SpgemmService service(platform, pool);
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t m = 0; m < mats.size(); ++m) {
      SpgemmRequest req;
      req.a = &mats[m];
      req.label = std::string(names[m]) + "#" + std::to_string(round);
      service.submit(std::move(req));
      order.push_back(static_cast<int>(m));
    }
  }
  const BatchResult batch = service.drain();

  // The honest serial baseline: the same requests, cold, back to back.
  double serial_makespan = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RunResult serial = run_hh_cpu(mats[static_cast<std::size_t>(
                                            order[i])],
                                        mats[static_cast<std::size_t>(
                                            order[i])],
                                        HhCpuOptions{}, platform, pool);
    serial_makespan += serial.report.total_s;
    if (!bit_identical(serial.c, batch.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: request %zu (%s) differs from the serial path\n",
                   i, batch.requests[i].label.c_str());
      return 1;
    }
  }

  std::printf("all %zu outputs bit-identical to the serial path\n\n",
              batch.results.size());
  std::printf("%s\n", batch.batch.to_string().c_str());
  std::printf("serial makespan (measured) %.3f ms, pipelined %.3f ms "
              "(%.2fx)\n\n",
              serial_makespan * 1e3, batch.batch.makespan_s * 1e3,
              serial_makespan / batch.batch.makespan_s);

  // Machine-readable record: batch + measured serial reference + requests.
  std::ostringstream part1;
  part1 << "{\"batch\":" << batch.batch.to_json()
        << ",\"serial_makespan_s\":" << jnum(serial_makespan)
        << ",\"requests\":[";
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    if (i > 0) part1 << ",";
    part1 << batch.requests[i].to_json();
  }
  part1 << "]}";
  std::printf("%s\n", part1.str().c_str());

  // ---- Part 2: the same service under fault injection (docs/robustness.md).
  const double gpu_rate = env_double("HH_FAULT_GPU_RATE", 0.25);
  const double pcie_rate = env_double("HH_FAULT_PCIE_RATE", 0.15);
  const std::size_t fault_requests = static_cast<std::size_t>(
      env_double("HH_FAULT_REQUESTS", 102));

  SpgemmService::Config cfg;
  cfg.fault_plan.seed =
      static_cast<std::uint64_t>(env_double("HH_FAULT_SEED", 42));
  cfg.fault_plan.gpu_kernel.rate = gpu_rate;
  cfg.fault_plan.h2d.rate = pcie_rate;
  cfg.fault_plan.d2h.rate = pcie_rate;
  cfg.fault_plan.cpu_worker.rate = 0.05;
  cfg.keep_inputs_resident = false;  // every request pays a faultable upload

  const char* trace_env = std::getenv("HH_TRACE_OUT");
  const std::string trace_path =
      trace_env != nullptr ? trace_env : "bench_runtime_trace.json";
  TraceRecorder recorder;
  if (!trace_path.empty()) {
    recorder.enable();
    cfg.trace = &recorder;
  }
  SpgemmService faulted(platform, pool, cfg);

  std::printf("\n== under fault injection: gpu rate %.2f, pcie rate %.2f, "
              "seed %llu, %zu requests ==\n",
              gpu_rate, pcie_rate,
              static_cast<unsigned long long>(cfg.fault_plan.seed),
              fault_requests);
  for (std::size_t i = 0; i < fault_requests; ++i) {
    SpgemmRequest req;
    req.a = &mats[i % mats.size()];
    req.label = std::string(names[i % mats.size()]) + "!" +
                std::to_string(i / mats.size());
    faulted.submit(std::move(req));
  }
  const BatchResult under_faults = faulted.drain();

  // Zero lost requests, every output bit-identical to the fault-free serial
  // reference for its matrix.
  std::vector<CsrMatrix> refs;
  refs.reserve(mats.size());
  for (const CsrMatrix& m : mats) {
    refs.push_back(run_hh_cpu(m, m, HhCpuOptions{}, platform, pool).c);
  }
  if (under_faults.results.size() != fault_requests) {
    std::fprintf(stderr, "FATAL: %zu of %zu requests lost under faults\n",
                 fault_requests - under_faults.results.size(),
                 fault_requests);
    return 1;
  }
  for (std::size_t i = 0; i < fault_requests; ++i) {
    if (!under_faults.requests[i].status.ok() ||
        !bit_identical(refs[i % refs.size()], under_faults.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: request %zu (%s) wrong under faults (status %s)\n",
                   i, under_faults.requests[i].label.c_str(),
                   under_faults.requests[i].status.to_string().c_str());
      return 1;
    }
  }
  std::printf("all %zu outputs bit-identical to the fault-free serial "
              "reference\n\n%s",
              under_faults.results.size(),
              under_faults.batch.to_string().c_str());
  std::printf("throughput: %.1f req/s healthy vs %.1f req/s under faults "
              "(simulated)\n\n",
              static_cast<double>(batch.batch.requests) /
                  batch.batch.makespan_s,
              static_cast<double>(under_faults.batch.requests) /
                  under_faults.batch.makespan_s);
  if (recorder.enabled()) {
    if (write_chrome_trace(recorder, trace_path)) {
      std::printf("trace: %zu events -> %s (load in ui.perfetto.dev)\n",
                  recorder.events().size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "WARNING: could not write trace to %s\n",
                   trace_path.c_str());
    }
    std::printf("\nlifetime metrics of the faulted service:\n%s\n",
                faulted.metrics().to_string().c_str());
  }

  std::ostringstream part2;
  part2 << "{\"faulted_batch\":" << under_faults.batch.to_json()
        << ",\"gpu_rate\":" << jnum(gpu_rate)
        << ",\"pcie_rate\":" << jnum(pcie_rate) << ",\"seed\":"
        << static_cast<unsigned long long>(cfg.fault_plan.seed)
        << ",\"trace_events\":" << recorder.events().size() << "}";
  std::printf("%s\n", part2.str().c_str());

  // ---- Part 3: online autotuning — tuned vs untuned, identical traffic.
  const std::size_t tune_requests = static_cast<std::size_t>(
      env_double("HH_TUNE_REQUESTS", 256));

  // Eight distinct hot signature pairs: the three Table-I analogues plus
  // five generated power-law matrices spanning sizes and tail exponents.
  std::vector<CsrMatrix> tmats;
  std::vector<std::string> tnames;
  for (std::size_t m = 0; m < mats.size(); ++m) {
    tmats.push_back(mats[m]);  // copy: mats stay untouched for part 1/2
    tnames.emplace_back(names[m]);
  }
  // The last two are steep-tail, low-density instances where the analytic
  // pick is measurably non-optimal (the Phase III harmonic model overrates
  // the GPU's share on short rows) — the cases the tuner exists to fix.
  const struct { index_t rows; std::int64_t nnz; double alpha;
                 std::uint64_t seed; } gens[] = {
      {2000, 24000, 2.2, 11}, {3000, 30000, 2.6, 12}, {4000, 36000, 3.0, 13},
      {2000, 16000, 3.0, 24}, {2000, 16000, 3.4, 28},
  };
  for (const auto& g : gens) {
    PowerLawGenConfig pcfg;
    pcfg.rows = static_cast<index_t>(g.rows * scale * 10);  // scale-stable
    pcfg.target_nnz = static_cast<std::int64_t>(
        static_cast<double>(g.nnz) * scale * 10);
    pcfg.alpha = g.alpha;
    pcfg.seed = g.seed;
    tmats.push_back(generate_power_law_matrix(pcfg));
    std::ostringstream nm;
    nm << "powerlaw-a" << g.alpha << "-s" << g.seed;
    tnames.push_back(nm.str());
  }

  const auto submit_all = [&](SpgemmService& s) {
    for (std::size_t i = 0; i < tune_requests; ++i) {
      SpgemmRequest req;
      req.a = &tmats[i % tmats.size()];
      req.label = tnames[i % tmats.size()] + "@" +
                  std::to_string(i / tmats.size());
      s.submit(std::move(req));
    }
  };

  std::printf("\n== online autotuning: %zu requests over %zu hot signature "
              "pairs ==\n",
              tune_requests, tmats.size());

  SpgemmService untuned(platform, pool);  // tuning off: today's behaviour
  submit_all(untuned);
  const BatchResult base_run = untuned.drain();

  SpgemmService::Config tcfg;
  tcfg.tune.enabled = true;
  SpgemmService tuned(platform, pool, tcfg);
  submit_all(tuned);
  const BatchResult tuned_run = tuned.drain();
  const TuneReport tune_rep = tuned.tune_report();

  // Every tuned output must be bit-identical to the serial driver run at
  // the thresholds the service actually chose for that request (tuning
  // re-selects among candidates; it must not touch the numerics).
  std::map<std::tuple<std::size_t, offset_t, offset_t>, CsrMatrix> ref_cache;
  for (std::size_t i = 0; i < tuned_run.results.size(); ++i) {
    const RunReport& rep = tuned_run.results[i].report;
    const std::size_t m = i % tmats.size();
    const auto key = std::make_tuple(m, rep.threshold_a, rep.threshold_b);
    auto it = ref_cache.find(key);
    if (it == ref_cache.end()) {
      HhCpuOptions opt;
      opt.threshold_a = rep.threshold_a;
      opt.threshold_b = rep.threshold_b;
      it = ref_cache
               .emplace(key,
                        run_hh_cpu(tmats[m], tmats[m], opt, platform, pool).c)
               .first;
    }
    if (!bit_identical(it->second, tuned_run.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: tuned request %zu (%s) differs from the serial "
                   "path at its own thresholds (%lld, %lld)\n",
                   i, tuned_run.requests[i].label.c_str(),
                   static_cast<long long>(rep.threshold_a),
                   static_cast<long long>(rep.threshold_b));
      return 1;
    }
  }
  std::printf("all %zu tuned outputs bit-identical to the serial path at "
              "the service-chosen thresholds (%zu distinct plans)\n",
              tuned_run.results.size(), ref_cache.size());

  // Same-seed replay: bit-identical outputs, byte-identical TuneReport.
  SpgemmService replay(platform, pool, tcfg);
  submit_all(replay);
  const BatchResult replay_run = replay.drain();
  bool replay_ok = replay_run.results.size() == tuned_run.results.size();
  for (std::size_t i = 0; replay_ok && i < tuned_run.results.size(); ++i) {
    replay_ok = bit_identical(tuned_run.results[i].c, replay_run.results[i].c);
  }
  const std::string tune_json = tune_rep.to_json();
  replay_ok = replay_ok && tune_json == replay.tune_report().to_json();
  if (!replay_ok) {
    std::fprintf(stderr, "FATAL: same-seed tuned replay diverged\n");
    return 1;
  }
  std::printf("same-seed replay: outputs bit-identical, TuneReport "
              "byte-identical\n\n");

  std::printf("%s\n", tune_rep.to_string().c_str());
  std::printf("untuned: makespan %.3f ms, p95 %.3f ms\n",
              base_run.batch.makespan_s * 1e3,
              base_run.batch.p95_latency_s * 1e3);
  std::printf("tuned:   makespan %.3f ms, p95 %.3f ms, %lld promotions\n",
              tuned_run.batch.makespan_s * 1e3,
              tuned_run.batch.p95_latency_s * 1e3,
              static_cast<long long>(tune_rep.promotions));

  // The tuned run must not lose to the baseline it claims to improve.
  if (tuned_run.batch.makespan_s > base_run.batch.makespan_s ||
      tuned_run.batch.p95_latency_s > base_run.batch.p95_latency_s) {
    std::fprintf(stderr, "FATAL: tuned run lost to the untuned baseline\n");
    return 1;
  }
  if (tune_rep.promotions < 1) {
    std::fprintf(stderr, "FATAL: no signature was promoted\n");
    return 1;
  }

  std::ostringstream part3;
  part3 << "{\"requests\":" << tune_requests
        << ",\"signatures\":" << tmats.size()
        << ",\"untuned\":" << base_run.batch.to_json()
        << ",\"tuned\":" << tuned_run.batch.to_json() << ",\"deltas\":{"
        << "\"makespan_s\":"
        << jnum(base_run.batch.makespan_s - tuned_run.batch.makespan_s)
        << ",\"p50_latency_s\":"
        << jnum(base_run.batch.p50_latency_s - tuned_run.batch.p50_latency_s)
        << ",\"p95_latency_s\":"
        << jnum(base_run.batch.p95_latency_s - tuned_run.batch.p95_latency_s)
        << ",\"p99_latency_s\":"
        << jnum(base_run.batch.p99_latency_s - tuned_run.batch.p99_latency_s)
        << ",\"makespan_speedup\":"
        << jnum(base_run.batch.makespan_s /
                std::max(tuned_run.batch.makespan_s, 1e-300))
        << "},\"replay_identical\":true,\"tune_report\":" << tune_json << "}";
  std::printf("%s\n", part3.str().c_str());

  // ---- Part 4: batched wave executor — wave-on vs wave-off ablation on a
  // repeated-operand batch (the traffic shape waves exist for). Both runs
  // drop sticky residency so every request pays its upload in the off run;
  // the workspace pool is off so report JSON is byte-comparable on replay
  // (pool reuse counts depend on host thread timing, not the schedule).
  const std::size_t wave_requests = static_cast<std::size_t>(
      env_double("HH_WAVE_REQUESTS", 256));
  std::printf("\n== wave executor: %zu repeated-operand requests over %zu "
              "matrices ==\n",
              wave_requests, mats.size());

  // A PCIe-constrained variant of the platform: on the default machine this
  // workload is CPU-bound and upload dedup can't touch the critical path.
  // Narrowing the link (think a contended ×4 slot) puts H2D where waves
  // earn their keep; the serial reference runs on the same variant so the
  // planner picks identical thresholds.
  CostModel wcm;
  wcm.pcie.bw_gbps = 0.1;
  wcm.pcie.latency_s = 200e-6;
  const HeteroPlatform wplatform = make_scaled_platform(scale, wcm);
  std::vector<CsrMatrix> wrefs;
  wrefs.reserve(mats.size());
  for (const CsrMatrix& m : mats) {
    wrefs.push_back(run_hh_cpu(m, m, HhCpuOptions{}, wplatform, pool).c);
  }

  const auto submit_wave_traffic = [&](SpgemmService& s) {
    for (std::size_t i = 0; i < wave_requests; ++i) {
      SpgemmRequest req;
      req.a = &mats[i % mats.size()];
      req.label = std::string(names[i % mats.size()]) + "~" +
                  std::to_string(i / mats.size());
      s.submit(std::move(req));
    }
  };

  SpgemmService::Config woff;
  woff.keep_inputs_resident = false;
  woff.use_workspace_pool = false;
  SpgemmService::Config won = woff;
  won.wave.enabled = true;

  SpgemmService wave_off(wplatform, pool, woff);
  submit_wave_traffic(wave_off);
  const BatchResult off_run = wave_off.drain();

  SpgemmService wave_on(wplatform, pool, won);
  submit_wave_traffic(wave_on);
  const BatchResult on_run = wave_on.drain();

  // Every wave-executed output bit-identical to the serial reference.
  if (on_run.results.size() != wave_requests) {
    std::fprintf(stderr, "FATAL: wave run lost requests\n");
    return 1;
  }
  for (std::size_t i = 0; i < wave_requests; ++i) {
    if (!bit_identical(wrefs[i % wrefs.size()], on_run.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: wave request %zu (%s) differs from the serial "
                   "reference\n",
                   i, on_run.requests[i].label.c_str());
      return 1;
    }
  }
  std::printf("all %zu wave outputs bit-identical to the serial reference\n",
              wave_requests);

  // H2D payload of the off run: with residency off, every request uploads
  // its operand once (exact, since part 4 traffic is fault-free).
  std::int64_t off_h2d_bytes = 0;
  for (std::size_t i = 0; i < wave_requests; ++i) {
    off_h2d_bytes +=
        static_cast<std::int64_t>(mats[i % mats.size()].byte_size());
  }
  std::printf("%s\n", on_run.batch.to_string().c_str());
  std::printf("wave off: makespan %.3f ms, h2d payload %lld bytes\n",
              off_run.batch.makespan_s * 1e3,
              static_cast<long long>(off_h2d_bytes));
  std::printf("wave on:  makespan %.3f ms, h2d payload %lld bytes, "
              "%lld deduped uploads\n",
              on_run.batch.makespan_s * 1e3,
              static_cast<long long>(on_run.batch.wave.h2d_bytes),
              static_cast<long long>(on_run.batch.wave.deduped_uploads));

  if (on_run.batch.makespan_s >= off_run.batch.makespan_s) {
    std::fprintf(stderr, "FATAL: wave-enabled makespan did not improve\n");
    return 1;
  }
  if (on_run.batch.wave.h2d_bytes >= off_h2d_bytes) {
    std::fprintf(stderr, "FATAL: wave-enabled H2D bytes did not shrink\n");
    return 1;
  }
  if (on_run.batch.wave.deduped_uploads < 1) {
    std::fprintf(stderr, "FATAL: no upload was deduped\n");
    return 1;
  }

  // Same-seed replay: byte-identical BatchReport (wave counters included).
  SpgemmService wave_replay(wplatform, pool, won);
  submit_wave_traffic(wave_replay);
  const BatchResult wave_replay_run = wave_replay.drain();
  if (on_run.batch.to_json() != wave_replay_run.batch.to_json()) {
    std::fprintf(stderr,
                 "FATAL: same-seed wave replay report diverged\n  first:  "
                 "%s\n  replay: %s\n",
                 on_run.batch.to_json().c_str(),
                 wave_replay_run.batch.to_json().c_str());
    return 1;
  }
  std::printf("same-seed replay: BatchReport byte-identical (wave counters "
              "included)\n");

  std::ostringstream part4;
  part4 << "{\"requests\":" << wave_requests
        << ",\"wave_off\":" << off_run.batch.to_json()
        << ",\"wave_on\":" << on_run.batch.to_json()
        << ",\"off_h2d_bytes\":" << off_h2d_bytes << ",\"deltas\":{"
        << "\"makespan_s\":"
        << jnum(off_run.batch.makespan_s - on_run.batch.makespan_s)
        << ",\"makespan_speedup\":"
        << jnum(off_run.batch.makespan_s /
                std::max(on_run.batch.makespan_s, 1e-300))
        << ",\"h2d_bytes_saved\":"
        << (off_h2d_bytes - on_run.batch.wave.h2d_bytes)
        << "},\"replay_identical\":true}";
  std::printf("%s\n", part4.str().c_str());

  // Combined machine-readable record for the CI artifact.
  const char* bench_env = std::getenv("HH_BENCH_OUT");
  const std::string bench_path =
      bench_env != nullptr ? bench_env : "BENCH_runtime.json";
  if (!bench_path.empty()) {
    if (std::FILE* f = std::fopen(bench_path.c_str(), "w")) {
      std::fprintf(f,
                   "{\"bench\":\"runtime_throughput\",\"scale\":%s,"
                   "\"part1\":%s,\"part2\":%s,\"part3\":%s,\"part4\":%s}\n",
                   jnum(scale).c_str(), part1.str().c_str(),
                   part2.str().c_str(), part3.str().c_str(),
                   part4.str().c_str());
      std::fclose(f);
      std::printf("\nbench record -> %s\n", bench_path.c_str());
    } else {
      std::fprintf(stderr, "WARNING: could not write %s\n",
                   bench_path.c_str());
    }
  }

  // Perf-gate baselines (obs/perf_baseline.hpp): one record per scenario,
  // written only when HH_BASELINE_OUT names a path. CI diffs a fresh
  // emission against the committed bench/baselines/ snapshot with
  // bench_compare; regenerate intentionally via the refresh-baselines
  // CMake target (docs/observability.md).
  const char* baseline_env = std::getenv("HH_BASELINE_OUT");
  if (baseline_env != nullptr && baseline_env[0] != '\0') {
    std::vector<PerfBaseline> baselines;
    baselines.push_back(baseline_from_batch("runtime_throughput.part1_pipelined",
                                            scale, batch.batch));
    baselines.push_back(baseline_from_batch("runtime_throughput.part2_faulted",
                                            scale, under_faults.batch));
    baselines.push_back(baseline_from_batch("runtime_throughput.part3_tuned",
                                            scale, tuned_run.batch));
    baselines.push_back(baseline_from_batch("runtime_throughput.part4_wave",
                                            scale, on_run.batch));
    if (std::FILE* f = std::fopen(baseline_env, "w")) {
      const std::string text = render_perf_baselines(baselines);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("perf baselines -> %s\n", baseline_env);
    } else {
      std::fprintf(stderr, "FATAL: could not write baselines to %s\n",
                   baseline_env);
      return 1;
    }
  }
  return 0;
}
