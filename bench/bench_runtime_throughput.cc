// Pipelined service runtime vs. back-to-back run_hh_cpu calls.
//
// Submits a batch of Table-I analogue self-products (with repeats, so the
// plan cache and operand residency get exercised) to SpgemmService, then runs
// the identical batch serially through run_hh_cpu. Verifies every output is
// bit-identical to the serial path and prints one JSON object with the batch
// percentiles, the pipelined makespan, and the measured serial makespan.
//
//   ./bench_runtime_throughput            # scale via HH_SCALE (default 0.1)
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runtime/service.hpp"

namespace {

bool bit_identical(const hh::CsrMatrix& x, const hh::CsrMatrix& y) {
  return x.rows == y.rows && x.cols == y.cols && x.indptr == y.indptr &&
         x.indices == y.indices && x.values == y.values;
}

}  // namespace

int main() {
  using namespace hh;
  bench::print_header("runtime throughput: pipelined service vs serial calls");

  const double scale = bench::bench_scale();
  const HeteroPlatform platform = make_scaled_platform(scale);
  ThreadPool pool(0);

  // Three datasets, three rounds each: nine requests. Rounds 2 and 3 of a
  // dataset hit the plan cache and find their operands resident.
  const char* names[] = {"email-Enron", "wiki-Vote", "ca-CondMat"};
  std::vector<CsrMatrix> mats;
  mats.reserve(std::size(names));
  for (const char* name : names) {
    mats.push_back(load_or_make_dataset(dataset_spec(name), scale));
  }

  SpgemmService service(platform, pool);
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t m = 0; m < mats.size(); ++m) {
      SpgemmRequest req;
      req.a = &mats[m];
      req.label = std::string(names[m]) + "#" + std::to_string(round);
      service.submit(std::move(req));
      order.push_back(static_cast<int>(m));
    }
  }
  const BatchResult batch = service.drain();

  // The honest serial baseline: the same requests, cold, back to back.
  double serial_makespan = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RunResult serial = run_hh_cpu(mats[static_cast<std::size_t>(
                                            order[i])],
                                        mats[static_cast<std::size_t>(
                                            order[i])],
                                        HhCpuOptions{}, platform, pool);
    serial_makespan += serial.report.total_s;
    if (!bit_identical(serial.c, batch.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: request %zu (%s) differs from the serial path\n",
                   i, batch.requests[i].label.c_str());
      return 1;
    }
  }

  std::printf("all %zu outputs bit-identical to the serial path\n\n",
              batch.results.size());
  std::printf("%s\n", batch.batch.to_string().c_str());
  std::printf("serial makespan (measured) %.3f ms, pipelined %.3f ms "
              "(%.2fx)\n\n",
              serial_makespan * 1e3, batch.batch.makespan_s * 1e3,
              serial_makespan / batch.batch.makespan_s);

  // Machine-readable record: batch + measured serial reference + requests.
  std::printf("{\"batch\":%s,\"serial_makespan_s\":%.9g,\"requests\":[",
              batch.batch.to_json().c_str(), serial_makespan);
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    std::printf("%s%s", i ? "," : "", batch.requests[i].to_json().c_str());
  }
  std::printf("]}\n");
  return 0;
}
