// Pipelined service runtime vs. back-to-back run_hh_cpu calls.
//
// Part 1 — fault-free: submits a batch of Table-I analogue self-products
// (with repeats, so the plan cache and operand residency get exercised) to
// SpgemmService, then runs the identical batch serially through run_hh_cpu.
// Verifies every output is bit-identical to the serial path.
//
// Part 2 — under fault injection: a larger batch (HH_FAULT_REQUESTS,
// default 102) drains against a FaultPlan with transient GPU aborts and
// PCIe failures/corruption. Every request must survive — retried or
// degraded to the CPU-only path — with output bit-identical to the
// fault-free serial reference; the report shows throughput under faults
// next to the healthy throughput.
//
//   ./bench_runtime_throughput            # scale via HH_SCALE (default 0.1)
//   HH_FAULT_GPU_RATE=0.3 HH_FAULT_PCIE_RATE=0.2 HH_FAULT_SEED=7
//   HH_FAULT_REQUESTS=200 ./bench_runtime_throughput   (env knobs)
//
// Prints one JSON object per part (last two lines) with the batch
// percentiles, makespans, and fault/recovery counters.
// The faulted drain records a structured trace (unless HH_TRACE_OUT is set
// to an empty string) and exports it as Chrome trace-event / Perfetto JSON
// to HH_TRACE_OUT (default bench_runtime_trace.json) — load it at
// https://ui.perfetto.dev to see the four resource tracks, per-request flow
// arrows and fault/retry/degrade instants.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/service.hpp"
#include "trace/perfetto_export.hpp"

namespace {

bool bit_identical(const hh::CsrMatrix& x, const hh::CsrMatrix& y) {
  return x.rows == y.rows && x.cols == y.cols && x.indptr == y.indptr &&
         x.indices == y.indices && x.values == y.values;
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v >= 0) return v;
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace hh;
  bench::print_header("runtime throughput: pipelined service vs serial calls");

  const double scale = bench::bench_scale();
  const HeteroPlatform platform = make_scaled_platform(scale);
  ThreadPool pool(0);

  // Three datasets, three rounds each: nine requests. Rounds 2 and 3 of a
  // dataset hit the plan cache and find their operands resident.
  const char* names[] = {"email-Enron", "wiki-Vote", "ca-CondMat"};
  std::vector<CsrMatrix> mats;
  mats.reserve(std::size(names));
  for (const char* name : names) {
    mats.push_back(load_or_make_dataset(dataset_spec(name), scale));
  }

  SpgemmService service(platform, pool);
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t m = 0; m < mats.size(); ++m) {
      SpgemmRequest req;
      req.a = &mats[m];
      req.label = std::string(names[m]) + "#" + std::to_string(round);
      service.submit(std::move(req));
      order.push_back(static_cast<int>(m));
    }
  }
  const BatchResult batch = service.drain();

  // The honest serial baseline: the same requests, cold, back to back.
  double serial_makespan = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RunResult serial = run_hh_cpu(mats[static_cast<std::size_t>(
                                            order[i])],
                                        mats[static_cast<std::size_t>(
                                            order[i])],
                                        HhCpuOptions{}, platform, pool);
    serial_makespan += serial.report.total_s;
    if (!bit_identical(serial.c, batch.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: request %zu (%s) differs from the serial path\n",
                   i, batch.requests[i].label.c_str());
      return 1;
    }
  }

  std::printf("all %zu outputs bit-identical to the serial path\n\n",
              batch.results.size());
  std::printf("%s\n", batch.batch.to_string().c_str());
  std::printf("serial makespan (measured) %.3f ms, pipelined %.3f ms "
              "(%.2fx)\n\n",
              serial_makespan * 1e3, batch.batch.makespan_s * 1e3,
              serial_makespan / batch.batch.makespan_s);

  // Machine-readable record: batch + measured serial reference + requests.
  std::printf("{\"batch\":%s,\"serial_makespan_s\":%.9g,\"requests\":[",
              batch.batch.to_json().c_str(), serial_makespan);
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    std::printf("%s%s", i ? "," : "", batch.requests[i].to_json().c_str());
  }
  std::printf("]}\n");

  // ---- Part 2: the same service under fault injection (docs/robustness.md).
  const double gpu_rate = env_double("HH_FAULT_GPU_RATE", 0.25);
  const double pcie_rate = env_double("HH_FAULT_PCIE_RATE", 0.15);
  const std::size_t fault_requests = static_cast<std::size_t>(
      env_double("HH_FAULT_REQUESTS", 102));

  SpgemmService::Config cfg;
  cfg.fault_plan.seed =
      static_cast<std::uint64_t>(env_double("HH_FAULT_SEED", 42));
  cfg.fault_plan.gpu_kernel.rate = gpu_rate;
  cfg.fault_plan.h2d.rate = pcie_rate;
  cfg.fault_plan.d2h.rate = pcie_rate;
  cfg.fault_plan.cpu_worker.rate = 0.05;
  cfg.keep_inputs_resident = false;  // every request pays a faultable upload

  const char* trace_env = std::getenv("HH_TRACE_OUT");
  const std::string trace_path =
      trace_env != nullptr ? trace_env : "bench_runtime_trace.json";
  TraceRecorder recorder;
  if (!trace_path.empty()) {
    recorder.enable();
    cfg.trace = &recorder;
  }
  SpgemmService faulted(platform, pool, cfg);

  std::printf("\n== under fault injection: gpu rate %.2f, pcie rate %.2f, "
              "seed %llu, %zu requests ==\n",
              gpu_rate, pcie_rate,
              static_cast<unsigned long long>(cfg.fault_plan.seed),
              fault_requests);
  for (std::size_t i = 0; i < fault_requests; ++i) {
    SpgemmRequest req;
    req.a = &mats[i % mats.size()];
    req.label = std::string(names[i % mats.size()]) + "!" +
                std::to_string(i / mats.size());
    faulted.submit(std::move(req));
  }
  const BatchResult under_faults = faulted.drain();

  // Zero lost requests, every output bit-identical to the fault-free serial
  // reference for its matrix.
  std::vector<CsrMatrix> refs;
  refs.reserve(mats.size());
  for (const CsrMatrix& m : mats) {
    refs.push_back(run_hh_cpu(m, m, HhCpuOptions{}, platform, pool).c);
  }
  if (under_faults.results.size() != fault_requests) {
    std::fprintf(stderr, "FATAL: %zu of %zu requests lost under faults\n",
                 fault_requests - under_faults.results.size(),
                 fault_requests);
    return 1;
  }
  for (std::size_t i = 0; i < fault_requests; ++i) {
    if (!under_faults.requests[i].status.ok() ||
        !bit_identical(refs[i % refs.size()], under_faults.results[i].c)) {
      std::fprintf(stderr,
                   "FATAL: request %zu (%s) wrong under faults (status %s)\n",
                   i, under_faults.requests[i].label.c_str(),
                   under_faults.requests[i].status.to_string().c_str());
      return 1;
    }
  }
  std::printf("all %zu outputs bit-identical to the fault-free serial "
              "reference\n\n%s",
              under_faults.results.size(),
              under_faults.batch.to_string().c_str());
  std::printf("throughput: %.1f req/s healthy vs %.1f req/s under faults "
              "(simulated)\n\n",
              static_cast<double>(batch.batch.requests) /
                  batch.batch.makespan_s,
              static_cast<double>(under_faults.batch.requests) /
                  under_faults.batch.makespan_s);
  if (recorder.enabled()) {
    if (write_chrome_trace(recorder, trace_path)) {
      std::printf("trace: %zu events -> %s (load in ui.perfetto.dev)\n",
                  recorder.events().size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "WARNING: could not write trace to %s\n",
                   trace_path.c_str());
    }
    std::printf("\nlifetime metrics of the faulted service:\n%s\n",
                faulted.metrics().to_string().c_str());
  }

  std::printf("{\"faulted_batch\":%s,\"gpu_rate\":%.9g,\"pcie_rate\":%.9g,"
              "\"seed\":%llu,\"trace_events\":%zu}\n",
              under_faults.batch.to_json().c_str(), gpu_rate, pcie_rate,
              static_cast<unsigned long long>(cfg.fault_plan.seed),
              recorder.events().size());
  return 0;
}
