// §IV-A calibration check: shipping a ~5 M-nnz matrix over the modeled
// PCIe 2.0 link costs ~25–30 ms, and transfer time scales with matrix bytes.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hh;
  bench::print_header("PCIe transfer model (paper §IV-A)");

  const HeteroPlatform plat;
  std::printf("%12s %12s %14s\n", "nnz (M)", "bytes (MB)", "transfer (ms)");
  for (const std::int64_t nnz_m : {1, 2, 5, 10, 16}) {
    CsrMatrix m(1000000, 1000000);
    m.indices.resize(static_cast<std::size_t>(nnz_m) * 1000000);
    m.values.resize(m.indices.size());
    m.indptr.back() = static_cast<offset_t>(m.indices.size());
    std::printf("%12lld %12.1f %14.2f\n", static_cast<long long>(nnz_m),
                m.byte_size() / 1e6,
                plat.link().matrix_transfer_time(m) * 1e3);
  }
  std::printf("\npaper: ~25-30 ms for a ~5 M-nnz matrix\n");
  return 0;
}
