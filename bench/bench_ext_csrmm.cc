// The paper's §VI extension: heterogeneous csrmm (sparse scale-free A times
// dense B) with the same H/L work division. Compares HH-CSRMM against
// CPU-only and GPU-only execution of the same kernels across dense widths.
#include <cstdio>

#include "bench_common.hpp"
#include "core/csrmm.hpp"
#include "sparse/dense.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Extension (paper SVI): heterogeneous csrmm");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);
  const CsrMatrix a = make_dataset(dataset_spec("web-Google"), scale * 0.5);

  std::printf("A: web-Google analogue (%s)\n\n", a.summary().c_str());
  for (const bool resident : {false, true}) {
    std::printf("--- operands %s ---\n",
                resident ? "resident on the GPU (iterative workload)"
                         : "cold (one-shot: PCIe charged)");
    std::printf("%8s %12s %12s %12s %10s %10s\n", "width", "HH ms", "CPU ms",
                "GPU ms", "x CPU", "x GPU");
    for (const index_t width : {4, 16, 64}) {
      const DenseMatrix b = random_dense(a.cols, width, 99 + width);
      CsrmmOptions auto_opt;
      auto_opt.matrices_already_on_gpu = resident;
      const CsrmmResult hh = run_hh_csrmm(a, b, auto_opt, plat, pool);
      const DenseMatrix want = csrmm_reference(a, b);
      if (max_abs_diff(want, hh.c) > 1e-9) {
        std::fprintf(stderr, "csrmm mismatch!\n");
        return 1;
      }
      // Single-device references: all rows on one side.
      CsrmmOptions cpu_only = auto_opt;
      cpu_only.threshold = 1;  // everything high -> CPU
      CsrmmOptions gpu_only = auto_opt;
      gpu_only.threshold = a.nnz() + 1;  // everything low -> GPU
      const CsrmmResult cpu = run_hh_csrmm(a, b, cpu_only, plat, pool);
      const CsrmmResult gpu = run_hh_csrmm(a, b, gpu_only, plat, pool);
      std::printf("%8d %12.3f %12.3f %12.3f %10.2f %10.2f\n", width,
                  hh.report.total_s * 1e3, cpu.report.total_s * 1e3,
                  gpu.report.total_s * 1e3,
                  cpu.report.total_s / hh.report.total_s,
                  gpu.report.total_s / hh.report.total_s);
    }
    std::printf("\n");
  }
  std::printf("cold operands at these densities are PCIe-bound (all-CPU is\n"
              "optimal and the picker selects it); with resident operands the\n"
              "paper's SVI division beats both single-device runs\n");
  return 0;
}
