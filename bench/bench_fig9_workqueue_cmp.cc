// Fig. 9: HH-CPU vs the Unsorted-Workqueue and Sorted-Workqueue alternatives
// (paper §V-C: HH-CPU ≈ 15 % faster on average — load balancing alone is not
// enough, the assignment must be architecture-aware).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Fig. 9: HH-CPU vs Unsorted-/Sorted-Workqueue");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);

  std::printf("%-16s %10s | %12s %12s\n", "matrix", "HH-CPU ms",
              "x Unsorted", "x Sorted");
  double sum_uns = 0, sum_srt = 0;
  int n = 0;
  for (const DatasetSpec& spec : table1_datasets()) {
    const CsrMatrix a = make_dataset(spec, scale);
    const RunResult hh = run_hh_best(a, plat, pool);
    const RunResult uns = run_unsorted_workqueue(a, a, {}, plat, pool);
    const RunResult srt = run_sorted_workqueue(a, a, {}, plat, pool);
    check_same(hh.c, uns);
    check_same(hh.c, srt);
    const double s_uns = uns.report.total_s / hh.report.total_s;
    const double s_srt = srt.report.total_s / hh.report.total_s;
    sum_uns += s_uns;
    sum_srt += s_srt;
    ++n;
    std::printf("%-16s %10.3f | %12.2f %12.2f\n", spec.name,
                hh.report.total_s * 1e3, s_uns, s_srt);
  }
  std::printf("%-16s %10s | %12.2f %12.2f\n", "Average", "", sum_uns / n,
              sum_srt / n);
  std::printf("\npaper: ~1.15x over both workqueue variants on scale-free"
              " matrices\n");
  return 0;
}
