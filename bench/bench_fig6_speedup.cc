// Fig. 6: HH-CPU speedup over the HiPC2012 heterogeneous algorithm on every
// Table I matrix (paper: avg ≈ 25 %), plus the library baselines
// (paper: ≈ 4× over cuSPARSE, ≈ 3.6× over MKL).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Fig. 6: HH-CPU speedup over HiPC2012 (plus library baselines)");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);

  std::printf("%-16s %10s %10s | %8s %8s %8s\n", "matrix", "HH-CPU ms",
              "HiPC ms", "x HiPC", "x MKL", "x cuSP");
  double sum_hipc = 0, sum_mkl = 0, sum_cusp = 0;
  int n = 0;
  for (const DatasetSpec& spec : table1_datasets()) {
    const CsrMatrix a = make_dataset(spec, scale);
    const RunResult hh = run_hh_best(a, plat, pool);
    const RunResult hipc = run_hipc2012(a, a, plat, pool);
    const RunResult mkl = run_cpu_only_mkl(a, a, plat, pool);
    const RunResult cusp = run_gpu_only_cusparse(a, a, plat, pool);
    check_same(hh.c, hipc);
    check_same(hh.c, mkl);
    check_same(hh.c, cusp);

    const double s_hipc = hipc.report.total_s / hh.report.total_s;
    const double s_mkl = mkl.report.total_s / hh.report.total_s;
    const double s_cusp = cusp.report.total_s / hh.report.total_s;
    sum_hipc += s_hipc;
    sum_mkl += s_mkl;
    sum_cusp += s_cusp;
    ++n;
    std::printf("%-16s %10.3f %10.3f | %8.2f %8.2f %8.2f\n", spec.name,
                hh.report.total_s * 1e3, hipc.report.total_s * 1e3, s_hipc,
                s_mkl, s_cusp);
  }
  std::printf("%-16s %10s %10s | %8.2f %8.2f %8.2f\n", "Average", "", "",
              sum_hipc / n, sum_mkl / n, sum_cusp / n);
  std::printf("\npaper: Average x HiPC ~= 1.25, x MKL ~= 3.6, x cuSPARSE ~= 4\n");
  return 0;
}
