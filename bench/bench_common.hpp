// Shared plumbing for the figure-reproduction benches.
//
// Every bench runs on the simulated i7-980 + K20c platform (DESIGN.md §1)
// against Table I analogues shrunk by HH_SCALE (default 0.1); capacities of
// the simulated machine shrink with the instance (make_scaled_platform).
// All reported times are simulated milliseconds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/baselines.hpp"
#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/datasets.hpp"
#include "sparse/equality.hpp"
#include "util/thread_pool.hpp"

namespace hh::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("HH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0 && s <= 1.0) return s;
  }
  return 0.1;
}

/// HH-CPU at the per-matrix empirically best threshold (the paper's §III-A
/// method: sweep candidates offline, keep the best).
inline RunResult run_hh_best(const CsrMatrix& a, const HeteroPlatform& plat,
                             ThreadPool& pool) {
  const ThresholdChoice c = pick_threshold_empirical(a, a, plat, pool);
  HhCpuOptions opt;
  opt.threshold_a = c.t;
  opt.threshold_b = c.t;
  return run_hh_cpu(a, a, opt, plat, pool);
}

inline void check_same(const CsrMatrix& want, const RunResult& res) {
  std::string why;
  if (!approx_equal(want, res.c, 1e-9, &why)) {
    std::fprintf(stderr, "RESULT MISMATCH (%s): %s\n",
                 res.report.algorithm.c_str(), why.c_str());
    std::exit(1);
  }
}

inline void print_header(const char* what) {
  std::printf("== %s ==\n", what);
  std::printf("simulated platform: Intel i7-980 + Tesla K20c (see DESIGN.md);"
              " instance scale %.2f\n\n", bench_scale());
}

}  // namespace hh::bench
