// Fig. 10: speedup of HH-CPU over HiPC2012 on synthetic GTgraph-style
// matrices as a function of the power-law exponent α, for three matrix
// sizes. Paper: speedup decreases as α grows (less scale-free), and the
// smallest size sits highest (Phase IV tuple volume grows with size, §V-D).
// Unlike the Table I runs, A and B are two *different* matrices with the
// same α (paper §V-D).
#include <cstdio>

#include "bench_common.hpp"
#include "gen/powerlaw_gen.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Fig. 10: speedup vs alpha on synthetic matrices");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);

  // Paper sizes 100K / 500K / 1M rows, avg degree ~6, scaled like the rest.
  const index_t paper_sizes[3] = {100000, 500000, 1000000};
  std::printf("%8s", "alpha");
  for (const index_t rows : paper_sizes) std::printf(" %9dK", rows / 1000);
  std::printf("\n");

  for (double alpha = 3.0; alpha <= 6.51; alpha += 0.5) {
    std::printf("%8.1f", alpha);
    for (const index_t paper_rows : paper_sizes) {
      PowerLawGenConfig cfg;
      cfg.rows = static_cast<index_t>(paper_rows * scale * 0.6);
      cfg.alpha = alpha;
      cfg.target_nnz = static_cast<std::int64_t>(cfg.rows) * 6;
      cfg.kmin = alpha > 2.2 ? std::max<std::int64_t>(
                                   1, static_cast<std::int64_t>(
                                          6.0 * (alpha - 2.0) / (alpha - 1.0)))
                             : 1;
      cfg.seed = 1000 + static_cast<std::uint64_t>(alpha * 10) + paper_rows;
      const CsrMatrix a = generate_power_law_matrix(cfg);
      cfg.seed += 7;
      const CsrMatrix b = generate_power_law_matrix(cfg);

      // Small empirical sweep for the per-instance best threshold.
      double best_hh = -1;
      for (const offset_t t : threshold_candidates(a, 6)) {
        HhCpuOptions opt;
        opt.threshold_a = t;
        opt.threshold_b = t;
        const RunResult hh = run_hh_cpu(a, b, opt, plat, pool);
        if (best_hh < 0 || hh.report.total_s < best_hh) {
          best_hh = hh.report.total_s;
        }
      }
      const RunResult hipc = run_hipc2012(a, b, plat, pool);
      std::printf(" %10.2f", hipc.report.total_s / best_hh);
    }
    std::printf("\n");
  }
  std::printf("\npaper: speedup decreases with alpha; the smallest size is"
              " highest\n");
  return 0;
}
