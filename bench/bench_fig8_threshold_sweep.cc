// Fig. 8: effect of the threshold t on the total time and on Phases II/III,
// per matrix. Paper: the total is convex in t; the t→0 end approaches the
// MKL (CPU-only) time, and the largest-threshold end approaches the GPU-side
// behaviour of [13].
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Fig. 8: threshold sweep (total / Phase II / Phase III)");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);

  for (const DatasetSpec& spec : table1_datasets()) {
    const CsrMatrix a = make_dataset(spec, scale);
    const RunResult mkl = run_cpu_only_mkl(a, a, plat, pool);
    std::printf("--- %s (MKL reference %.3f ms) ---\n", spec.name,
                mkl.report.total_s * 1e3);
    std::printf("%10s %12s %12s %12s\n", "t", "total ms", "phase II ms",
                "phase III ms");
    double best = -1;
    for (const offset_t t : threshold_candidates(a)) {
      HhCpuOptions opt;
      opt.threshold_a = t;
      opt.threshold_b = t;
      const RunResult hh = run_hh_cpu(a, a, opt, plat, pool);
      if (best < 0 || hh.report.total_s < best) best = hh.report.total_s;
      std::printf("%10lld %12.3f %12.3f %12.3f\n", static_cast<long long>(t),
                  hh.report.total_s * 1e3, hh.report.phase2_s * 1e3,
                  hh.report.phase3_s * 1e3);
    }
    std::printf("%10s %12.3f\n\n", "best", best * 1e3);
  }
  return 0;
}
