// Fig. 1: row histogram of webbase-1M. Very few rows have >= 60 nonzeros
// (the gray "high density" bars); the bulk sit far below. Log-scale counts.
#include <cstdio>

#include "bench_common.hpp"
#include "powerlaw/histogram.hpp"
#include "sparse/row_stats.hpp"

int main() {
  using namespace hh;
  bench::print_header("Fig. 1: row histogram of webbase-1M");

  const CsrMatrix m =
      make_dataset(dataset_spec("webbase-1M"), bench::bench_scale());
  const std::vector<offset_t> sizes = row_nnz_vector(m);
  const std::vector<std::int64_t> data(sizes.begin(), sizes.end());

  // The paper's threshold for webbase-1M is 60 nonzeros per row.
  const std::int64_t threshold = 60;
  std::printf("%s\n", render_histogram(log2_histogram(data), threshold).c_str());
  std::printf("rows with >= %lld nonzeros (HD): %d of %d\n",
              static_cast<long long>(threshold),
              count_rows_at_least(m, threshold), m.rows);
  return 0;
}
