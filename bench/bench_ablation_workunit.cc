// Ablation: the work-unit sizes of the Phase III queue. The paper fixes
// cpuRows = 1000 and gpuRows = 10000 empirically (§IV-B); this sweep shows
// the sensitivity — too-small units pay dequeue/launch overhead, too-large
// units destroy the load balance.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Ablation: Phase III work-unit sizes (paper fixes 1000/10000)");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);
  const CsrMatrix a = make_dataset(dataset_spec("web-Google"), scale);
  const ThresholdChoice choice = pick_threshold_empirical(a, a, plat, pool);

  std::printf("matrix: web-Google analogue, t = %lld\n\n",
              static_cast<long long>(choice.t));
  std::printf("%10s %10s %12s %10s %10s\n", "cpuRows", "gpuRows", "total ms",
              "cpu units", "gpu units");
  for (const index_t cpu_rows : {8, 32, 128, 512, 2048, 8192}) {
    HhCpuOptions opt;
    opt.threshold_a = choice.t;
    opt.threshold_b = choice.t;
    opt.queue.cpu_rows = cpu_rows;
    opt.queue.gpu_rows = cpu_rows * 10;
    const RunResult hh = run_hh_cpu(a, a, opt, plat, pool);
    std::printf("%10d %10d %12.3f %10d %10d\n", cpu_rows, cpu_rows * 10,
                hh.report.total_s * 1e3, hh.report.queue_cpu_units,
                hh.report.queue_gpu_units);
  }
  return 0;
}
