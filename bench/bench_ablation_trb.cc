// Ablation: the GPU shared-memory accumulator capacity (the TR_b column-
// group size of the [13] kernel, §II-A(b)). Rows whose output fits the
// shared accumulator avoid the global-memory PartialOutput scatter; a small
// capacity pushes more flops onto the slow global path.
#include <cstdio>

#include "bench_common.hpp"
#include "spgemm/spgemm.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Ablation: GPU shared-accumulator capacity (TR_b)");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);
  const std::int64_t scaled_default = shared_accum_cap();
  const CsrMatrix a = make_dataset(dataset_spec("webbase-1M"), scale);

  std::printf("matrix: webbase-1M analogue (scaled default cap = %lld)\n\n",
              static_cast<long long>(scaled_default));
  std::printf("%10s %16s %16s %14s\n", "cap", "flops shared",
              "flops global", "GPU-only ms");
  for (const std::int64_t cap : {std::int64_t{4}, std::int64_t{16},
                                 std::int64_t{64}, scaled_default,
                                 std::int64_t{4096}}) {
    set_shared_accum_cap(cap);
    const RunResult gpu = run_gpu_only_hipc_kernel(a, a, plat, pool);
    // Recompute aggregate stats at this cap for the report line.
    std::vector<index_t> rows(static_cast<std::size_t>(a.rows));
    for (index_t r = 0; r < a.rows; ++r) rows[r] = r;
    ProductStats stats;
    partial_product_tuples(a, a, rows, {}, true, pool, &stats);
    std::printf("%10lld %16lld %16lld %14.3f\n", static_cast<long long>(cap),
                static_cast<long long>(stats.flops_shared),
                static_cast<long long>(stats.flops_global),
                gpu.report.total_s * 1e3);
  }
  set_shared_accum_cap(scaled_default);
  std::printf("\nlarger capacity -> more flops on the fast shared path ->"
              " faster GPU kernel\n");
  return 0;
}
