// Flight-recorder → replay drill (src/obs/, docs/observability.md): a
// multi-wave power-law workload drains through an instrumented
// SpgemmService (flight recorder + SLO monitor + trace recorder attached),
// the recorded JSONL log round-trips through disk with its checksum chain
// verified, and the replay harness re-drives the log open-loop,
// closed-loop, across a 2-shard group, and with the batched wave executor
// enabled (asserting bit-identity against the wave-disabled pass).
//
// Hard pass/fail (exit 1 on any violation):
//  - the written log parses back and re-serialises byte-identically, and a
//    tampered copy is rejected with ParseError;
//  - zero lost requests in every replay, zero identity mismatches against
//    the serial run_hh_cpu reference, and zero deadline-outcome divergence
//    in the untuned open-loop replay (the fidelity pass);
//  - every pass's SLO accounting reconciles with its batch reports;
//  - a same-options re-replay produces a byte-identical ReplayReport.
//
//   HH_REPLAY_REQUESTS=96 HH_REPLAY_WAVES=4 HH_REPLAY_SEED=1833
//   HH_SCALE=0.05 ./bench_trace_replay        (defaults shown)
//
// Artifacts: the recorded log to HH_OBS_LOG (default replay_workload.jsonl),
// the Perfetto trace to HH_TRACE_OUT (default replay_trace.json, skipped
// when tracing is compiled out), and the machine-readable record to
// HH_BENCH_OUT (default BENCH_trace_replay.json).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/recorder.hpp"
#include "obs/replay.hpp"
#include "obs/slo.hpp"
#include "trace/perfetto_export.hpp"
#include "util/prng.hpp"
#include "util/status.hpp"

namespace {

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v >= 0) return v;
  }
  return fallback;
}

std::string env_str(const char* name, const char* fallback) {
  if (const char* env = std::getenv(name)) return env;
  return fallback;
}

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "REPLAY VIOLATION: %s\n", what);
    ++violations;
  }
}

void check_pass(const hh::ReplayRunReport& r, const char* pass) {
  if (r.lost != 0) {
    std::fprintf(stderr, "REPLAY VIOLATION: %s lost %zu request(s)\n", pass,
                 r.lost);
    ++violations;
  }
  if (r.identity_mismatches != 0) {
    std::fprintf(stderr,
                 "REPLAY VIOLATION: %s produced %zu output(s) that differ "
                 "from the serial reference\n",
                 pass, r.identity_mismatches);
    ++violations;
  }
  if (!r.slo_reconciled) {
    std::fprintf(stderr,
                 "REPLAY VIOLATION: %s SLO accounting does not reconcile "
                 "with the batch reports\n",
                 pass);
    ++violations;
  }
}

}  // namespace

int main() {
  using namespace hh;
  bench::print_header("flight recorder -> trace replay");

  const double scale = bench::bench_scale();
  const HeteroPlatform platform = make_scaled_platform(scale);
  ThreadPool pool(0);

  const std::size_t n =
      static_cast<std::size_t>(env_double("HH_REPLAY_REQUESTS", 96));
  const std::size_t waves =
      static_cast<std::size_t>(env_double("HH_REPLAY_WAVES", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_double("HH_REPLAY_SEED", 1833));
  const std::string log_path =
      env_str("HH_OBS_LOG", "replay_workload.jsonl");
  const std::string trace_path = env_str("HH_TRACE_OUT", "replay_trace.json");
  const std::string bench_out =
      env_str("HH_BENCH_OUT", "BENCH_trace_replay.json");

  const char* names[] = {"wiki-Vote", "email-Enron", "ca-CondMat",
                         "p2p-Gnutella31"};
  std::vector<CsrMatrix> mats;
  mats.reserve(std::size(names));
  for (const char* name : names) {
    mats.push_back(load_or_make_dataset(dataset_spec(name), scale));
  }

  // ---- Record: drain `waves` PRNG-shaped waves through an instrumented
  // service. Every 7th request carries a tight deadline so the log (and the
  // replay's fidelity check) covers cancelled requests too.
  WorkloadRecorder recorder;
  SloMonitor record_slo({{"deadline-hit", 0.9, 128, 0, 1.0}});
  TraceRecorder trace;
  trace.enable();
  SpgemmService::Config cfg;
  cfg.recorder = &recorder;
  cfg.slo = &record_slo;
  cfg.trace = &trace;
  SpgemmService service(platform, pool, cfg);
  record_slo.bind_metrics(&service.metrics());
  record_slo.bind_trace(&trace);

  Xoshiro256 rng(seed);
  std::size_t submitted = 0;
  std::size_t recorded_misses = 0;
  for (std::size_t w = 0; w < waves; ++w) {
    // Wave sizes wobble around n/waves so the inter-arrival structure the
    // open-loop replay re-creates is not uniform.
    std::size_t quota = std::max<std::size_t>(1, n / waves);
    if (w + 1 == waves) quota = n - submitted;  // exact total
    for (std::size_t i = 0; i < quota && submitted < n; ++i, ++submitted) {
      SpgemmRequest req;
      req.a = &mats[rng.below(mats.size())];
      req.label = "r" + std::to_string(submitted);
      if (submitted % 7 == 3) req.deadline_s = 2e-4;
      service.submit(std::move(req));
    }
    const BatchResult b = service.drain();
    recorded_misses += b.batch.deadline_missed;
  }
  check(recorder.total_appended() == n, "the recorder missed requests");
  check(record_slo.observations() == static_cast<std::int64_t>(n),
        "the SLO monitor missed requests");

  // ---- Log round-trip through disk: write, re-read, verify the chain,
  // re-serialise byte-identically.
  check(recorder.write(log_path), "could not write the workload log");
  std::string log_text;
  {
    std::ifstream in(log_path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    log_text = ss.str();
  }
  WorkloadLog log;
  try {
    log = parse_workload_log(log_text);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "REPLAY VIOLATION: recorded log failed to parse: %s\n",
                 e.what());
    return 1;
  }
  check(log.to_jsonl() == log_text, "parse -> serialise is not the identity");
  check(log.records.size() == n, "the parsed log lost records");

  // A tampered copy must be rejected: flip one digit of a payload field.
  {
    std::string tampered = log_text;
    const std::size_t pos = tampered.find("\"latency_s\":");
    bool detected = false;
    if (pos != std::string::npos) {
      const std::size_t digit = tampered.find_first_of("123456789", pos);
      if (digit != std::string::npos) {
        tampered[digit] = tampered[digit] == '9' ? '8' : '9';
        try {
          parse_workload_log(tampered);
        } catch (const ParseError&) {
          detected = true;
        }
      }
    }
    check(detected, "a tampered record was not rejected");
  }

  // ---- Replay: open loop (fidelity pass), closed loop (throughput
  // ceiling), and a 2-shard group.
  ReplayHarness harness(platform, pool);
  for (const CsrMatrix& m : mats) harness.register_operand(&m);

  ReplayOptions opts;
  opts.seed = seed;
  opts.metrics_interval_s = 1e-5;
  opts.slo = {{"deadline-hit", 0.9, 128, 0, 1.0},
              {"latency-p95", 0.95, 128, 5e-3, 1.0}};

  const ReplayReport open = harness.replay(log, opts);
  check_pass(open.untuned, "open-loop untuned");
  check_pass(open.tuned, "open-loop tuned");
  // The untuned pass mirrors the recorded run's configuration, so every
  // deadline outcome must replay exactly as logged.
  if (open.untuned.outcome_divergence != 0) {
    std::fprintf(stderr,
                 "REPLAY VIOLATION: %zu deadline outcome(s) diverged from "
                 "the log in the untuned open-loop replay\n",
                 open.untuned.outcome_divergence);
    ++violations;
  }
  check(open.untuned.deadline_missed == recorded_misses,
        "untuned replay misses != recorded misses");

  const ReplayReport open2 = harness.replay(log, opts);
  check(open.to_json() == open2.to_json(),
        "re-replay is not byte-identical (determinism broken)");
  check(open.untuned.output_digest == open2.untuned.output_digest &&
            open.tuned.output_digest == open2.tuned.output_digest,
        "re-replay outputs are not bit-identical");

  ReplayOptions closed = opts;
  closed.open_loop = false;
  const ReplayReport closed_rep = harness.replay(log, closed);
  check_pass(closed_rep.untuned, "closed-loop untuned");
  check_pass(closed_rep.tuned, "closed-loop tuned");
  check(closed_rep.untuned.makespan_s <= open.untuned.makespan_s + 1e-12,
        "closed loop slower than open loop");

  ReplayOptions sharded = opts;
  sharded.shards = 2;
  const ReplayReport shard_rep = harness.replay(log, sharded);
  check_pass(shard_rep.untuned, "sharded untuned");
  check_pass(shard_rep.tuned, "sharded tuned");

  // ---- Wave executor pass (docs/runtime.md): the same log re-driven with
  // the batched wave executor on. Zero lost requests, and the outputs must
  // be bit-identical to the wave-disabled open-loop pass — waves may only
  // move the schedule, never the bits.
  ReplayOptions waved = opts;
  waved.service.wave.enabled = true;
  const ReplayReport wave_rep = harness.replay(log, waved);
  check_pass(wave_rep.untuned, "wave-enabled untuned");
  check_pass(wave_rep.tuned, "wave-enabled tuned");
  check(wave_rep.untuned.output_digest == open.untuned.output_digest,
        "wave-enabled outputs differ from the wave-disabled replay");

  // ---- Artifacts + summary.
  if (TraceRecorder::compiled_in()) {
    std::ofstream out(trace_path, std::ios::binary);
    out << chrome_trace_json(trace);
    check(static_cast<bool>(out), "could not write the Perfetto trace");
  }
  {
    std::ofstream out(bench_out, std::ios::binary);
    out << "{\"bench\":\"trace_replay\",\"scale\":" << scale
        << ",\"requests\":" << n << ",\"waves\":" << waves
        << ",\"seed\":" << seed << ",\"recorded_misses\":" << recorded_misses
        << ",\"log_bytes\":" << log_text.size()
        << ",\"open\":" << open.to_json()
        << ",\"closed\":" << closed_rep.to_json()
        << ",\"sharded\":" << shard_rep.to_json()
        << ",\"wave\":" << wave_rep.to_json()
        << ",\"violations\":" << violations << "}\n";
    check(static_cast<bool>(out), "could not write the bench record");
  }

  std::printf("%s", open.to_string().c_str());
  std::printf("closed loop: makespan %.3f ms (open %.3f ms)\n",
              closed_rep.untuned.makespan_s * 1e3,
              open.untuned.makespan_s * 1e3);
  std::printf("sharded (2): makespan %.3f ms, %zu lost\n",
              shard_rep.untuned.makespan_s * 1e3, shard_rep.untuned.lost);
  std::printf("wave-enabled: makespan %.3f ms, %zu lost, outputs identical "
              "to the wave-disabled replay\n",
              wave_rep.untuned.makespan_s * 1e3, wave_rep.untuned.lost);
  std::printf("recorded %zu requests over %zu waves (%zu deadline misses), "
              "log %zu bytes -> %s\n",
              n, waves, recorded_misses, log_text.size(), log_path.c_str());

  if (violations > 0) {
    std::fprintf(stderr, "\n%d REPLAY VIOLATION(S)\n", violations);
    return 1;
  }
  std::printf("\nall replay invariants held\n");
  return 0;
}
