// Real wall-clock microbenchmarks of the host kernels (google-benchmark):
// the SpGEMM accumulator variants, the Phase IV primitives, and the
// generator. These measure the actual C++ implementations on the build
// machine — unlike the figure benches, nothing here is simulated.
#include <benchmark/benchmark.h>

#include "gen/powerlaw_gen.hpp"
#include "primitives/radix_sort.hpp"
#include "primitives/scan.hpp"
#include "primitives/tuple_merge.hpp"
#include "spgemm/gustavson.hpp"
#include "spgemm/hash_spgemm.hpp"
#include "spgemm/heap_spgemm.hpp"
#include "spgemm/row_column.hpp"
#include "spgemm/spgemm.hpp"
#include "spgemm/symbolic.hpp"
#include "util/prng.hpp"

namespace {

hh::CsrMatrix bench_matrix(hh::index_t rows) {
  hh::PowerLawGenConfig cfg;
  cfg.rows = rows;
  cfg.alpha = 2.5;
  cfg.target_nnz = static_cast<std::int64_t>(rows) * 5;
  cfg.seed = 12345;
  return hh::generate_power_law_matrix(cfg);
}

void BM_GustavsonSpgemm(benchmark::State& state) {
  const hh::CsrMatrix a = bench_matrix(static_cast<hh::index_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hh::gustavson_spgemm(a, a));
  }
  state.SetItemsProcessed(state.iterations() * hh::total_flops(a, a));
}
BENCHMARK(BM_GustavsonSpgemm)->Arg(2000)->Arg(8000);

void BM_HashSpgemm(benchmark::State& state) {
  const hh::CsrMatrix a = bench_matrix(static_cast<hh::index_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hh::hash_spgemm(a, a));
  }
  state.SetItemsProcessed(state.iterations() * hh::total_flops(a, a));
}
BENCHMARK(BM_HashSpgemm)->Arg(2000)->Arg(8000);

void BM_HeapSpgemm(benchmark::State& state) {
  const hh::CsrMatrix a = bench_matrix(static_cast<hh::index_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hh::heap_spgemm(a, a));
  }
  state.SetItemsProcessed(state.iterations() * hh::total_flops(a, a));
}
BENCHMARK(BM_HeapSpgemm)->Arg(2000)->Arg(8000);

void BM_RowColumnSpgemm(benchmark::State& state) {
  const hh::CsrMatrix a = bench_matrix(static_cast<hh::index_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hh::row_column_spgemm(a, a));
  }
  state.SetItemsProcessed(state.iterations() * hh::total_flops(a, a));
}
BENCHMARK(BM_RowColumnSpgemm)->Arg(2000);

void BM_RadixSortTuples(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hh::Xoshiro256 rng(7);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  std::vector<std::uint32_t> payload(n);
  for (auto _ : state) {
    auto k = keys;
    auto p = payload;
    hh::radix_sort_kv(k, p);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortTuples)->Arg(100000)->Arg(1000000);

void BM_TupleMerge(benchmark::State& state) {
  const hh::CsrMatrix a = bench_matrix(4000);
  hh::ThreadPool pool(0);
  std::vector<hh::index_t> rows(static_cast<std::size_t>(a.rows));
  for (hh::index_t r = 0; r < a.rows; ++r) rows[r] = r;
  const hh::CooMatrix coo =
      hh::partial_product_tuples(a, a, rows, {}, true, pool, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hh::merged_coo_to_csr(coo, pool, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(coo.nnz()));
}
BENCHMARK(BM_TupleMerge);

void BM_ParallelScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> in(n, 3), out(n);
  hh::ThreadPool pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hh::parallel_exclusive_scan(in, out, pool));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelScan)->Arg(1000000);

void BM_PowerLawGenerator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_matrix(static_cast<hh::index_t>(state.range(0))));
  }
}
BENCHMARK(BM_PowerLawGenerator)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
