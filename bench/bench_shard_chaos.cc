// Chaos drill for the fault-tolerant shard group (src/shard/,
// docs/robustness.md): a large tuned batch drains across a
// ShardedSpgemmService while device faults fire, one shard is killed
// mid-batch by the deterministic kShard schedule, its in-flight requests
// fail over to the ring successor, and the shard later restarts and
// rehydrates from its checksummed snapshot.
//
// Hard pass/fail (exit 1 on any violation):
//  - zero lost requests: every submitted request completes;
//  - every output bit-identical to the fault-free serial run_hh_cpu
//    reference (tuning re-picks thresholds but never changes bits);
//  - the kill, failover, restart and rehydration actually happened;
//  - a same-seed replay reproduces byte-identical group reports,
//    per-request reports and merged TuneReport JSON, and bit-identical
//    outputs.
//
//   HH_SHARD_REQUESTS=256 HH_SHARD_COUNT=4 HH_SHARD_SEED=24397
//   HH_SCALE=0.05 ./bench_shard_chaos          (defaults shown)
//
// Writes the machine-readable record to HH_BENCH_OUT (default
// BENCH_shard_chaos.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "shard/sharded_service.hpp"

namespace {

bool bit_identical(const hh::CsrMatrix& x, const hh::CsrMatrix& y) {
  return x.rows == y.rows && x.cols == y.cols && x.indptr == y.indptr &&
         x.indices == y.indices && x.values == y.values;
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v >= 0) return v;
  }
  return fallback;
}

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHAOS VIOLATION: %s\n", what);
    ++violations;
  }
}

}  // namespace

int main() {
  using namespace hh;
  bench::print_header("shard chaos: kill, failover, restart, rehydrate");

  const double scale = bench::bench_scale();
  const HeteroPlatform platform = make_scaled_platform(scale);
  ThreadPool pool(0);

  const std::size_t n =
      static_cast<std::size_t>(env_double("HH_SHARD_REQUESTS", 256));
  const std::size_t shard_count =
      static_cast<std::size_t>(env_double("HH_SHARD_COUNT", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_double("HH_SHARD_SEED", 24397));

  const char* names[] = {"wiki-Vote", "email-Enron", "ca-CondMat",
                         "p2p-Gnutella31"};
  std::vector<CsrMatrix> mats;
  mats.reserve(std::size(names));
  for (const char* name : names) {
    mats.push_back(load_or_make_dataset(dataset_spec(name), scale));
  }

  ShardedSpgemmService::Config cfg;
  cfg.shards = shard_count;
  cfg.seed = seed;
  // Size rounds so the batch spans well past the kill (round 3) and the
  // restart (round 6) whatever HH_SHARD_REQUESTS says.
  cfg.round_quantum =
      std::max<std::size_t>(1, n / (std::max<std::size_t>(shard_count, 1) * 8));
  cfg.restart_after_rounds = 3;
  cfg.shard.tune.enabled = true;
  cfg.shard.fault_plan.gpu_kernel.rate = 0.15;
  cfg.shard.fault_plan.h2d.rate = 0.08;
  cfg.shard.recovery.decorrelated_jitter = true;
  // Kill the shard that owns the first dataset's keys, in round 3 — after
  // that round's submissions, so its in-flight requests must fail over.
  {
    const HashRing ring(cfg.shards, cfg.virtual_nodes, cfg.seed);
    const MatrixSignature sig = matrix_signature(mats[0]);
    std::uint64_t st =
        static_cast<std::uint64_t>(PlanKeyHash{}(PlanKey{sig, sig}));
    cfg.shard_faults.trigger_ops = {2 * cfg.shards +
                                    ring.owner(splitmix64(st))};
  }

  const auto run = [&](std::string& reports_json,
                       std::vector<CsrMatrix>& outputs,
                       std::vector<std::pair<offset_t, offset_t>>& thresholds)
      -> GroupBatchReport {
    ShardedSpgemmService group(platform, pool, cfg);
    for (std::size_t i = 0; i < n; ++i) {
      SpgemmRequest req;
      req.a = &mats[i % mats.size()];
      req.label = std::string(names[i % mats.size()]) + "#" +
                  std::to_string(i / mats.size());
      group.submit(std::move(req));
    }
    const GroupResult out = group.drain();
    reports_json = out.group.to_json() + "\n" + group.tune_report().to_json();
    outputs.reserve(n);
    thresholds.reserve(n);
    for (const RunResult& r : out.results) {
      outputs.push_back(r.c);
      thresholds.emplace_back(r.report.threshold_a, r.report.threshold_b);
    }
    for (const RequestReport& rr : out.requests) {
      reports_json += "\n" + rr.to_json();
    }
    check(group.metrics().counter("shard.kills").value() >= 1,
          "no shard was killed (kill schedule never fired)");
    check(group.metrics().counter("shard.failovers").value() >= 1,
          "the killed shard had nothing in flight (no failover exercised)");
    check(group.metrics().counter("shard.restarts").value() >= 1,
          "the killed shard never restarted");
    check(group.metrics().counter("shard.rehydrations").value() >= 1,
          "the restarted shard did not rehydrate its snapshot");
    for (std::size_t s = 0; s < group.shards(); ++s) {
      check(group.alive(s), "a shard is still dead after the drain");
    }
    return out.group;
  };

  std::string json1;
  std::string json2;
  std::vector<CsrMatrix> out1;
  std::vector<CsrMatrix> out2;
  std::vector<std::pair<offset_t, offset_t>> th1;
  std::vector<std::pair<offset_t, offset_t>> th2;
  const GroupBatchReport g = run(json1, out1, th1);
  run(json2, out2, th2);

  // Zero loss, bit-identity against the fault-free serial driver at the
  // thresholds the service actually chose (tuning re-picks thresholds; the
  // bits are a function of the H/L partition, so the reference must use the
  // same one).
  check(g.requests == n && g.completed == n && g.deadline_missed == 0,
        "lost or cancelled requests (completed != submitted)");
  std::map<std::tuple<std::size_t, offset_t, offset_t>, CsrMatrix> refs;
  for (std::size_t i = 0; i < out1.size(); ++i) {
    const std::size_t m = i % mats.size();
    const auto key = std::make_tuple(m, th1[i].first, th1[i].second);
    auto it = refs.find(key);
    if (it == refs.end()) {
      HhCpuOptions opt;
      opt.threshold_a = th1[i].first;
      opt.threshold_b = th1[i].second;
      it = refs.emplace(key, run_hh_cpu(mats[m], mats[m], opt, platform, pool)
                                 .c)
               .first;
    }
    if (!bit_identical(it->second, out1[i])) {
      std::fprintf(stderr, "CHAOS VIOLATION: request %zu differs from the "
                           "serial reference\n", i);
      ++violations;
      break;
    }
  }

  // Same-seed replay: byte-identical reports, bit-identical outputs.
  check(json1 == json2,
        "replay reports differ (group/request/tune JSON not byte-identical)");
  check(out1.size() == out2.size(), "replay produced a different batch size");
  for (std::size_t i = 0; i < out1.size() && i < out2.size(); ++i) {
    if (!bit_identical(out1[i], out2[i])) {
      std::fprintf(stderr, "CHAOS VIOLATION: replay output %zu differs\n", i);
      ++violations;
      break;
    }
  }

  std::printf("%s\n", g.to_string().c_str());
  std::printf("%zu requests over %zu shards: %zu failovers, %zu kills, "
              "%zu restarts, %zu rounds, makespan %.3f ms\n",
              g.requests, g.shards, g.failovers, g.kills, g.restarts,
              g.rounds, g.makespan_s * 1e3);

  std::ostringstream record;
  record << "{\"scale\":" << jnum(scale) << ",\"requests\":" << n
         << ",\"shards\":" << shard_count << ",\"seed\":" << seed
         << ",\"violations\":" << violations << ",\"group\":" << g.to_json()
         << "}";
  const char* bench_env = std::getenv("HH_BENCH_OUT");
  const std::string bench_path =
      bench_env != nullptr ? bench_env : "BENCH_shard_chaos.json";
  if (!bench_path.empty()) {
    if (std::FILE* f = std::fopen(bench_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", record.str().c_str());
      std::fclose(f);
      std::printf("wrote %s\n", bench_path.c_str());
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "%d chaos violation(s)\n", violations);
    return 1;
  }
  std::printf("chaos drill clean: zero loss, bit-identical outputs, "
              "byte-identical replay\n");
  return 0;
}
