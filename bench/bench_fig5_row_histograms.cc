// Fig. 5: row-density histograms of all 12 matrices, with the per-matrix
// high-density threshold used in the experiments and the resulting HD row
// count (the paper's legend values).
#include <cstdio>

#include "bench_common.hpp"
#include "powerlaw/histogram.hpp"
#include "sparse/row_stats.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Fig. 5: row-density histograms, all 12 matrices");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);
  for (const DatasetSpec& spec : table1_datasets()) {
    const CsrMatrix m = make_dataset(spec, scale);
    const ThresholdChoice choice = pick_threshold_analytic(m, m, plat);
    const std::vector<offset_t> sizes = row_nnz_vector(m);
    const std::vector<std::int64_t> data(sizes.begin(), sizes.end());
    std::printf("--- %s (%s) | Threshold=%lld HD=%d ---\n", spec.name,
                m.summary().c_str(), static_cast<long long>(choice.t),
                count_rows_at_least(m, choice.t));
    std::printf("%s\n", render_histogram(log2_histogram(data), choice.t).c_str());
  }
  return 0;
}
