// Fig. 7: per-phase time breakdown of Algorithm HH-CPU on every matrix.
// Paper: Phases II + III are > 96 % of the total; per-phase CPU/GPU gap is
// small (< 2 % of the runtime on average) thanks to the workqueue.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hh;
  using namespace hh::bench;
  print_header("Fig. 7: phase breakdown of HH-CPU");

  ThreadPool pool(0);
  const double scale = bench_scale();
  const HeteroPlatform plat = make_scaled_platform(scale);

  std::printf("%-16s %8s %9s %9s %8s %9s | %7s %9s\n", "matrix", "I ms",
              "II ms", "III ms", "IV ms", "xfer ms", "II+III%", "dev gap%");
  double sum_share = 0, sum_gap = 0;
  int n = 0;
  for (const DatasetSpec& spec : table1_datasets()) {
    const CsrMatrix a = make_dataset(spec, scale);
    const RunResult hh = run_hh_best(a, plat, pool);
    const RunReport& r = hh.report;
    const double phases = r.phase1_s + r.phase2_s + r.phase3_s + r.phase4_s;
    const double share = phases > 0 ? (r.phase2_s + r.phase3_s) / phases : 0;
    // Average per-phase CPU/GPU imbalance relative to the total runtime.
    const double gap = (std::abs(r.phase2_cpu_s - r.phase2_gpu_s) +
                        std::abs(r.phase3_cpu_s - r.phase3_gpu_s)) /
                       2.0 / r.total_s;
    sum_share += share;
    sum_gap += gap;
    ++n;
    std::printf("%-16s %8.3f %9.3f %9.3f %8.3f %9.3f | %7.1f %9.1f\n",
                spec.name, r.phase1_s * 1e3, r.phase2_s * 1e3,
                r.phase3_s * 1e3, r.phase4_s * 1e3,
                (r.transfer_in_s + r.transfer_out_s) * 1e3, share * 100,
                gap * 100);
  }
  std::printf("%-16s %55s %7.1f %9.1f\n", "Average", "", sum_share / n * 100,
              sum_gap / n * 100);
  std::printf("\npaper: Phases II+III >= 96%% of phase time; device gap ~2%%\n");
  return 0;
}
