
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/hhspmm.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/csrmm.cc" "src/CMakeFiles/hhspmm.dir/core/csrmm.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/core/csrmm.cc.o.d"
  "/root/repo/src/core/hh_cpu.cc" "src/CMakeFiles/hhspmm.dir/core/hh_cpu.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/core/hh_cpu.cc.o.d"
  "/root/repo/src/core/partition_plan.cc" "src/CMakeFiles/hhspmm.dir/core/partition_plan.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/core/partition_plan.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/hhspmm.dir/core/report.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/core/report.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/CMakeFiles/hhspmm.dir/core/threshold.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/core/threshold.cc.o.d"
  "/root/repo/src/device/cost_model.cc" "src/CMakeFiles/hhspmm.dir/device/cost_model.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/device/cost_model.cc.o.d"
  "/root/repo/src/device/cpu_sim.cc" "src/CMakeFiles/hhspmm.dir/device/cpu_sim.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/device/cpu_sim.cc.o.d"
  "/root/repo/src/device/gpu_sim.cc" "src/CMakeFiles/hhspmm.dir/device/gpu_sim.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/device/gpu_sim.cc.o.d"
  "/root/repo/src/device/pcie.cc" "src/CMakeFiles/hhspmm.dir/device/pcie.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/device/pcie.cc.o.d"
  "/root/repo/src/device/platform.cc" "src/CMakeFiles/hhspmm.dir/device/platform.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/device/platform.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/hhspmm.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/powerlaw_gen.cc" "src/CMakeFiles/hhspmm.dir/gen/powerlaw_gen.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/gen/powerlaw_gen.cc.o.d"
  "/root/repo/src/gen/rmat.cc" "src/CMakeFiles/hhspmm.dir/gen/rmat.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/gen/rmat.cc.o.d"
  "/root/repo/src/powerlaw/fit.cc" "src/CMakeFiles/hhspmm.dir/powerlaw/fit.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/powerlaw/fit.cc.o.d"
  "/root/repo/src/powerlaw/histogram.cc" "src/CMakeFiles/hhspmm.dir/powerlaw/histogram.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/powerlaw/histogram.cc.o.d"
  "/root/repo/src/primitives/radix_sort.cc" "src/CMakeFiles/hhspmm.dir/primitives/radix_sort.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/primitives/radix_sort.cc.o.d"
  "/root/repo/src/primitives/scan.cc" "src/CMakeFiles/hhspmm.dir/primitives/scan.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/primitives/scan.cc.o.d"
  "/root/repo/src/primitives/segmented_reduce.cc" "src/CMakeFiles/hhspmm.dir/primitives/segmented_reduce.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/primitives/segmented_reduce.cc.o.d"
  "/root/repo/src/primitives/tuple_merge.cc" "src/CMakeFiles/hhspmm.dir/primitives/tuple_merge.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/primitives/tuple_merge.cc.o.d"
  "/root/repo/src/sched/chunk.cc" "src/CMakeFiles/hhspmm.dir/sched/chunk.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sched/chunk.cc.o.d"
  "/root/repo/src/sched/static_partition.cc" "src/CMakeFiles/hhspmm.dir/sched/static_partition.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sched/static_partition.cc.o.d"
  "/root/repo/src/sched/workqueue.cc" "src/CMakeFiles/hhspmm.dir/sched/workqueue.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sched/workqueue.cc.o.d"
  "/root/repo/src/sparse/convert.cc" "src/CMakeFiles/hhspmm.dir/sparse/convert.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/convert.cc.o.d"
  "/root/repo/src/sparse/coo.cc" "src/CMakeFiles/hhspmm.dir/sparse/coo.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/coo.cc.o.d"
  "/root/repo/src/sparse/csr.cc" "src/CMakeFiles/hhspmm.dir/sparse/csr.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/csr.cc.o.d"
  "/root/repo/src/sparse/dense.cc" "src/CMakeFiles/hhspmm.dir/sparse/dense.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/dense.cc.o.d"
  "/root/repo/src/sparse/equality.cc" "src/CMakeFiles/hhspmm.dir/sparse/equality.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/equality.cc.o.d"
  "/root/repo/src/sparse/mm_io.cc" "src/CMakeFiles/hhspmm.dir/sparse/mm_io.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/mm_io.cc.o.d"
  "/root/repo/src/sparse/partition.cc" "src/CMakeFiles/hhspmm.dir/sparse/partition.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/partition.cc.o.d"
  "/root/repo/src/sparse/row_stats.cc" "src/CMakeFiles/hhspmm.dir/sparse/row_stats.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/sparse/row_stats.cc.o.d"
  "/root/repo/src/spgemm/esc_spgemm.cc" "src/CMakeFiles/hhspmm.dir/spgemm/esc_spgemm.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/esc_spgemm.cc.o.d"
  "/root/repo/src/spgemm/gustavson.cc" "src/CMakeFiles/hhspmm.dir/spgemm/gustavson.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/gustavson.cc.o.d"
  "/root/repo/src/spgemm/hash_spgemm.cc" "src/CMakeFiles/hhspmm.dir/spgemm/hash_spgemm.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/hash_spgemm.cc.o.d"
  "/root/repo/src/spgemm/heap_spgemm.cc" "src/CMakeFiles/hhspmm.dir/spgemm/heap_spgemm.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/heap_spgemm.cc.o.d"
  "/root/repo/src/spgemm/reference.cc" "src/CMakeFiles/hhspmm.dir/spgemm/reference.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/reference.cc.o.d"
  "/root/repo/src/spgemm/row_column.cc" "src/CMakeFiles/hhspmm.dir/spgemm/row_column.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/row_column.cc.o.d"
  "/root/repo/src/spgemm/spgemm.cc" "src/CMakeFiles/hhspmm.dir/spgemm/spgemm.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/spgemm.cc.o.d"
  "/root/repo/src/spgemm/symbolic.cc" "src/CMakeFiles/hhspmm.dir/spgemm/symbolic.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/spgemm/symbolic.cc.o.d"
  "/root/repo/src/util/log.cc" "src/CMakeFiles/hhspmm.dir/util/log.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/util/log.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/hhspmm.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/util/stats.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/hhspmm.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/hhspmm.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
