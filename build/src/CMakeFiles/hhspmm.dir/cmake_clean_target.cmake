file(REMOVE_RECURSE
  "libhhspmm.a"
)
