# Empty dependencies file for hhspmm.
# This may be replaced when dependencies are built.
