file(REMOVE_RECURSE
  "CMakeFiles/test_coo_convert.dir/test_coo_convert.cc.o"
  "CMakeFiles/test_coo_convert.dir/test_coo_convert.cc.o.d"
  "test_coo_convert"
  "test_coo_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coo_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
