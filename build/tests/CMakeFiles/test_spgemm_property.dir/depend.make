# Empty dependencies file for test_spgemm_property.
# This may be replaced when dependencies are built.
