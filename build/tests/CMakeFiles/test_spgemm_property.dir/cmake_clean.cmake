file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_property.dir/test_spgemm_property.cc.o"
  "CMakeFiles/test_spgemm_property.dir/test_spgemm_property.cc.o.d"
  "test_spgemm_property"
  "test_spgemm_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
