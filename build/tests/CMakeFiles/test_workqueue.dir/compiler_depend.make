# Empty compiler generated dependencies file for test_workqueue.
# This may be replaced when dependencies are built.
