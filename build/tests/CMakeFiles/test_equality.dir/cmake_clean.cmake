file(REMOVE_RECURSE
  "CMakeFiles/test_equality.dir/test_equality.cc.o"
  "CMakeFiles/test_equality.dir/test_equality.cc.o.d"
  "test_equality"
  "test_equality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
