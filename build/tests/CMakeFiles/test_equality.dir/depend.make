# Empty dependencies file for test_equality.
# This may be replaced when dependencies are built.
