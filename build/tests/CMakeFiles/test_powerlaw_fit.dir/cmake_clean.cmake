file(REMOVE_RECURSE
  "CMakeFiles/test_powerlaw_fit.dir/test_powerlaw_fit.cc.o"
  "CMakeFiles/test_powerlaw_fit.dir/test_powerlaw_fit.cc.o.d"
  "test_powerlaw_fit"
  "test_powerlaw_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powerlaw_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
