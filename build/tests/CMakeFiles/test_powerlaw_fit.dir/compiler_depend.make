# Empty compiler generated dependencies file for test_powerlaw_fit.
# This may be replaced when dependencies are built.
