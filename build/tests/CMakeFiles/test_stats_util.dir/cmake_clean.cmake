file(REMOVE_RECURSE
  "CMakeFiles/test_stats_util.dir/test_stats_util.cc.o"
  "CMakeFiles/test_stats_util.dir/test_stats_util.cc.o.d"
  "test_stats_util"
  "test_stats_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
