# Empty compiler generated dependencies file for test_stats_util.
# This may be replaced when dependencies are built.
