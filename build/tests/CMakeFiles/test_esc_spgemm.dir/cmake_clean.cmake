file(REMOVE_RECURSE
  "CMakeFiles/test_esc_spgemm.dir/test_esc_spgemm.cc.o"
  "CMakeFiles/test_esc_spgemm.dir/test_esc_spgemm.cc.o.d"
  "test_esc_spgemm"
  "test_esc_spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esc_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
