# Empty dependencies file for test_esc_spgemm.
# This may be replaced when dependencies are built.
