# Empty dependencies file for test_static_partition.
# This may be replaced when dependencies are built.
