file(REMOVE_RECURSE
  "CMakeFiles/test_static_partition.dir/test_static_partition.cc.o"
  "CMakeFiles/test_static_partition.dir/test_static_partition.cc.o.d"
  "test_static_partition"
  "test_static_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
