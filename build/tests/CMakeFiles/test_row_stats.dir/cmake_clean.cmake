file(REMOVE_RECURSE
  "CMakeFiles/test_row_stats.dir/test_row_stats.cc.o"
  "CMakeFiles/test_row_stats.dir/test_row_stats.cc.o.d"
  "test_row_stats"
  "test_row_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
