# Empty compiler generated dependencies file for test_csrmm.
# This may be replaced when dependencies are built.
