file(REMOVE_RECURSE
  "CMakeFiles/test_csrmm.dir/test_csrmm.cc.o"
  "CMakeFiles/test_csrmm.dir/test_csrmm.cc.o.d"
  "test_csrmm"
  "test_csrmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csrmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
