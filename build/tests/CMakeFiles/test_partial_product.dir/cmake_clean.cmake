file(REMOVE_RECURSE
  "CMakeFiles/test_partial_product.dir/test_partial_product.cc.o"
  "CMakeFiles/test_partial_product.dir/test_partial_product.cc.o.d"
  "test_partial_product"
  "test_partial_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
