file(REMOVE_RECURSE
  "CMakeFiles/test_tuple_merge.dir/test_tuple_merge.cc.o"
  "CMakeFiles/test_tuple_merge.dir/test_tuple_merge.cc.o.d"
  "test_tuple_merge"
  "test_tuple_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuple_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
