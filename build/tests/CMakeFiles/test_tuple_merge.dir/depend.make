# Empty dependencies file for test_tuple_merge.
# This may be replaced when dependencies are built.
