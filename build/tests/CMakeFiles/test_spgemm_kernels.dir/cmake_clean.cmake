file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_kernels.dir/test_spgemm_kernels.cc.o"
  "CMakeFiles/test_spgemm_kernels.dir/test_spgemm_kernels.cc.o.d"
  "test_spgemm_kernels"
  "test_spgemm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
