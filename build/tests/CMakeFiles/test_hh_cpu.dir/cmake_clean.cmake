file(REMOVE_RECURSE
  "CMakeFiles/test_hh_cpu.dir/test_hh_cpu.cc.o"
  "CMakeFiles/test_hh_cpu.dir/test_hh_cpu.cc.o.d"
  "test_hh_cpu"
  "test_hh_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hh_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
