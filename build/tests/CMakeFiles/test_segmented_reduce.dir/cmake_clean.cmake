file(REMOVE_RECURSE
  "CMakeFiles/test_segmented_reduce.dir/test_segmented_reduce.cc.o"
  "CMakeFiles/test_segmented_reduce.dir/test_segmented_reduce.cc.o.d"
  "test_segmented_reduce"
  "test_segmented_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segmented_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
