# Empty dependencies file for test_segmented_reduce.
# This may be replaced when dependencies are built.
