# Empty compiler generated dependencies file for bench_fig10_synthetic_alpha.
# This may be replaced when dependencies are built.
