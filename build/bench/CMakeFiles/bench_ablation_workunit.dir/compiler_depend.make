# Empty compiler generated dependencies file for bench_ablation_workunit.
# This may be replaced when dependencies are built.
