file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_workunit.dir/bench_ablation_workunit.cc.o"
  "CMakeFiles/bench_ablation_workunit.dir/bench_ablation_workunit.cc.o.d"
  "bench_ablation_workunit"
  "bench_ablation_workunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
