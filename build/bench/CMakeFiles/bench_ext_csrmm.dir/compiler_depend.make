# Empty compiler generated dependencies file for bench_ext_csrmm.
# This may be replaced when dependencies are built.
