file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_csrmm.dir/bench_ext_csrmm.cc.o"
  "CMakeFiles/bench_ext_csrmm.dir/bench_ext_csrmm.cc.o.d"
  "bench_ext_csrmm"
  "bench_ext_csrmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_csrmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
