file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_webbase_hist.dir/bench_fig1_webbase_hist.cc.o"
  "CMakeFiles/bench_fig1_webbase_hist.dir/bench_fig1_webbase_hist.cc.o.d"
  "bench_fig1_webbase_hist"
  "bench_fig1_webbase_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_webbase_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
