# Empty compiler generated dependencies file for bench_fig1_webbase_hist.
# This may be replaced when dependencies are built.
