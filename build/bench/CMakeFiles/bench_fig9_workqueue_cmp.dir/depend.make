# Empty dependencies file for bench_fig9_workqueue_cmp.
# This may be replaced when dependencies are built.
