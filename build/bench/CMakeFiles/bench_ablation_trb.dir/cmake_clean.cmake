file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trb.dir/bench_ablation_trb.cc.o"
  "CMakeFiles/bench_ablation_trb.dir/bench_ablation_trb.cc.o.d"
  "bench_ablation_trb"
  "bench_ablation_trb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
