# Empty dependencies file for bench_ablation_trb.
# This may be replaced when dependencies are built.
