# Empty dependencies file for bench_fig5_row_histograms.
# This may be replaced when dependencies are built.
