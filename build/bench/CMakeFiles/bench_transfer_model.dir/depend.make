# Empty dependencies file for bench_transfer_model.
# This may be replaced when dependencies are built.
