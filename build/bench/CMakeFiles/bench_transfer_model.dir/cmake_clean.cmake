file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer_model.dir/bench_transfer_model.cc.o"
  "CMakeFiles/bench_transfer_model.dir/bench_transfer_model.cc.o.d"
  "bench_transfer_model"
  "bench_transfer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
