file(REMOVE_RECURSE
  "CMakeFiles/synthetic_scaling.dir/synthetic_scaling.cpp.o"
  "CMakeFiles/synthetic_scaling.dir/synthetic_scaling.cpp.o.d"
  "synthetic_scaling"
  "synthetic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
