# Empty dependencies file for webgraph_squaring.
# This may be replaced when dependencies are built.
