file(REMOVE_RECURSE
  "CMakeFiles/webgraph_squaring.dir/webgraph_squaring.cpp.o"
  "CMakeFiles/webgraph_squaring.dir/webgraph_squaring.cpp.o.d"
  "webgraph_squaring"
  "webgraph_squaring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgraph_squaring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
