# Empty dependencies file for spmm_tool.
# This may be replaced when dependencies are built.
