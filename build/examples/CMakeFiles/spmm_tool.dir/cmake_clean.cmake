file(REMOVE_RECURSE
  "CMakeFiles/spmm_tool.dir/spmm_tool.cpp.o"
  "CMakeFiles/spmm_tool.dir/spmm_tool.cpp.o.d"
  "spmm_tool"
  "spmm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
