// Threshold tuning: walks the Fig. 8 experiment for one matrix — sweep the
// high-density threshold t, print total / Phase II / Phase III times, and
// compare the empirical optimum with the analytic (model-based) pick that
// the paper lists as future work (§VI).
//
//   ./threshold_tuning [dataset-name]     (default: web-Google)
#include <cstdio>
#include <string>

#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/datasets.hpp"

int main(int argc, char** argv) {
  using namespace hh;
  ThreadPool pool(0);
  const double scale = 0.05;
  const HeteroPlatform platform = make_scaled_platform(scale);

  const std::string name = argc > 1 ? argv[1] : "web-Google";
  const CsrMatrix a = make_dataset(dataset_spec(name), scale);
  std::printf("matrix: %s analogue (%s)\n\n", name.c_str(),
              a.summary().c_str());

  std::printf("%10s %12s %12s %12s %8s %8s\n", "t", "total ms", "II ms",
              "III ms", "|A_H|", "|B_H|");
  offset_t best_t = 0;
  double best_total = -1;
  for (const offset_t t : threshold_candidates(a)) {
    HhCpuOptions opt;
    opt.threshold_a = t;
    opt.threshold_b = t;
    const RunResult run = run_hh_cpu(a, a, opt, platform, pool);
    std::printf("%10lld %12.3f %12.3f %12.3f %8d %8d\n",
                static_cast<long long>(t), run.report.total_s * 1e3,
                run.report.phase2_s * 1e3, run.report.phase3_s * 1e3,
                run.report.high_rows_a, run.report.high_rows_b);
    if (best_total < 0 || run.report.total_s < best_total) {
      best_total = run.report.total_s;
      best_t = t;
    }
  }

  const ThresholdChoice analytic = pick_threshold_analytic(a, a, platform);
  std::printf("\nempirical best: t = %lld (%.3f ms)\n",
              static_cast<long long>(best_t), best_total * 1e3);
  std::printf("analytic pick:  t = %lld (predicted %.3f ms)\n",
              static_cast<long long>(analytic.t), analytic.predicted_s * 1e3);
  std::printf("\nthe curve is convex: small t overloads the CPU, large t"
              " overloads the GPU (paper SV-B(d))\n");
  return 0;
}
