// Autotune loop: watch the online tuner (src/tune/, docs/tuning.md) refine
// a cached plan across repeated drains of the same hot signature.
//
// The matrix is a steep-tail power-law instance where the analytic Phase I
// pick is measurably non-optimal — the harmonic Phase III model overrates
// the GPU's share on short rows. Repeated requests hit the plan cache; the
// tuner occasionally serves a near-tie threshold candidate instead of the
// incumbent, records the measured total of each variant, and promotes the
// best-measured one. After each drain the example prints the TuneReport, so
// you can watch the entry move from "analytic guess" to "converged,
// promoted, version 1".
//
// Every threshold candidate computes the same product, so tuning never
// changes output bits — only the simulated schedule. With TuneConfig left
// disabled, the same service byte-identically reproduces its untuned
// reports.
//
//   ./autotune_loop
#include <cstdio>

#include "gen/powerlaw_gen.hpp"
#include "runtime/service.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace hh;

  ThreadPool pool(0);
  const HeteroPlatform platform = make_scaled_platform(0.1);

  PowerLawGenConfig gen;
  gen.rows = 2000;
  gen.target_nnz = 16000;
  gen.alpha = 3.0;
  gen.seed = 24;
  const CsrMatrix m = generate_power_law_matrix(gen);
  std::printf("matrix: %d x %d, %lld nonzeros, alpha %.1f\n\n", m.rows,
              m.cols, static_cast<long long>(m.nnz()), gen.alpha);

  SpgemmService::Config cfg;
  cfg.tune.enabled = true;
  SpgemmService service(platform, pool, cfg);

  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 16; ++i) {
      SpgemmRequest req;
      req.a = &m;
      req.label = "wave" + std::to_string(wave) + "#" + std::to_string(i);
      service.submit(std::move(req));
    }
    const BatchResult batch = service.drain();
    std::printf("== wave %d: makespan %.3f ms, p95 %.3f ms ==\n%s\n", wave,
                batch.batch.makespan_s * 1e3,
                batch.batch.p95_latency_s * 1e3,
                service.tune_report().to_string().c_str());
  }

  std::printf("lifetime tune metrics:\n");
  for (const char* name :
       {"tune.decisions", "tune.explorations", "tune.measurements",
        "tune.promotions"}) {
    std::printf("  %-18s %lld\n", name,
                static_cast<long long>(service.metrics().counter(name)
                                           .value()));
  }
  return 0;
}
