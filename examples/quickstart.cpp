// Quickstart: build two small sparse matrices, multiply them with Algorithm
// HH-CPU on the simulated CPU+GPU platform, verify against the plain CPU
// kernel, and print the per-phase report.
//
//   ./quickstart
#include <cstdio>

#include "core/hh_cpu.hpp"
#include "sparse/equality.hpp"
#include "spgemm/gustavson.hpp"

int main() {
  using namespace hh;

  // The worked example of the paper's Fig. 2.
  const std::vector<index_t> ar{0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<index_t> ac{1, 2, 2, 3, 0, 2, 0, 3};
  const std::vector<value_t> av{2, 1, 1, 1, 1, 1, 2, 4};
  const CsrMatrix a = csr_from_triplets(4, 4, ar, ac, av);

  const std::vector<index_t> br{0, 0, 0, 1, 2, 3};
  const std::vector<index_t> bc{0, 1, 2, 0, 2, 1};
  const std::vector<value_t> bv{2, 3, 4, 8, 6, 7};
  const CsrMatrix b = csr_from_triplets(4, 3, br, bc, bv);

  ThreadPool pool(0);
  const HeteroPlatform platform;  // i7-980 + K20c cost models

  const RunResult result = run_hh_cpu(a, b, HhCpuOptions{}, platform, pool);

  std::printf("C = A x B (%s):\n", result.c.summary().c_str());
  for (index_t r = 0; r < result.c.rows; ++r) {
    std::printf("  row %d:", r);
    for (offset_t k = result.c.indptr[r]; k < result.c.indptr[r + 1]; ++k) {
      std::printf(" (%d, %.0f)", result.c.indices[k], result.c.values[k]);
    }
    std::printf("\n");
  }

  // Cross-check with the plain Gustavson kernel.
  const CsrMatrix reference = gustavson_spgemm(a, b);
  std::string why;
  std::printf("\nmatches Gustavson reference: %s\n",
              approx_equal(reference, result.c, 1e-12, &why) ? "yes"
                                                             : why.c_str());
  std::printf("\n%s\n", result.report.to_string().c_str());
  return 0;
}
