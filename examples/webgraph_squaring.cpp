// Web-graph squaring: the paper's motivating workload. A²[i][j] counts the
// weighted 2-step paths between pages i and j — the building block of link
// analysis and clustering-coefficient computations.
//
// Generates a webbase-1M-like scale-free matrix (or loads <file.mtx> if
// given), squares it with every algorithm in the library, and prints the
// scoreboard.
//
//   ./webgraph_squaring [matrix.mtx]
#include <cstdio>

#include "core/baselines.hpp"
#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/datasets.hpp"
#include "powerlaw/fit.hpp"
#include "sparse/equality.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/row_stats.hpp"

int main(int argc, char** argv) {
  using namespace hh;
  ThreadPool pool(0);
  const double scale = 0.05;
  const HeteroPlatform platform = make_scaled_platform(scale);

  const CsrMatrix a = argc > 1
                          ? read_matrix_market_file(argv[1])
                          : make_dataset(dataset_spec("webbase-1M"), scale);
  const PowerLawFit fit = fit_power_law(row_nnz_vector(a));
  std::printf("matrix: %s, fitted power-law exponent alpha = %.2f\n",
              a.summary().c_str(), fit.alpha);

  const ThresholdChoice t = pick_threshold_empirical(a, a, platform, pool);
  std::printf("best threshold (empirical sweep, paper SIII-A): %lld\n\n",
              static_cast<long long>(t.t));

  HhCpuOptions opt;
  opt.threshold_a = t.t;
  opt.threshold_b = t.t;
  const RunResult hh = run_hh_cpu(a, a, opt, platform, pool);

  struct Row {
    const char* label;
    RunResult result;
  };
  const Row rows[] = {
      {"HH-CPU (this paper)", hh},
      {"HiPC2012 heterogeneous", run_hipc2012(a, a, platform, pool)},
      {"Unsorted-Workqueue", run_unsorted_workqueue(a, a, {}, platform, pool)},
      {"Sorted-Workqueue", run_sorted_workqueue(a, a, {}, platform, pool)},
      {"MKL (CPU only)", run_cpu_only_mkl(a, a, platform, pool)},
      {"cuSPARSE (GPU only)", run_gpu_only_cusparse(a, a, platform, pool)},
  };

  std::printf("%-26s %14s %10s\n", "algorithm", "simulated ms", "vs HH-CPU");
  for (const Row& row : rows) {
    std::string why;
    if (!approx_equal(hh.c, row.result.c, 1e-9, &why)) {
      std::printf("result mismatch for %s: %s\n", row.label, why.c_str());
      return 1;
    }
    std::printf("%-26s %14.3f %9.2fx\n", row.label,
                row.result.report.total_s * 1e3,
                row.result.report.total_s / hh.report.total_s);
  }
  std::printf("\nA^2 has %lld nonzeros (%.1fx the input)\n",
              static_cast<long long>(hh.c.nnz()),
              static_cast<double>(hh.c.nnz()) / static_cast<double>(a.nnz()));
  return 0;
}
