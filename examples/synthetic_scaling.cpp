// Synthetic scaling study: how does the HH-CPU advantage react to the
// degree of scale-freeness? Generates matrices over a grid of power-law
// exponents (the Fig. 10 experiment at a single size) and prints the
// speedup over the HiPC2012 baseline together with the fitted α.
//
//   ./synthetic_scaling [rows]            (default: 20000)
#include <cstdio>
#include <cstdlib>

#include "core/baselines.hpp"
#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/powerlaw_gen.hpp"
#include "powerlaw/fit.hpp"
#include "sparse/row_stats.hpp"

int main(int argc, char** argv) {
  using namespace hh;
  ThreadPool pool(0);
  const HeteroPlatform platform = make_scaled_platform(0.05);
  const index_t rows = argc > 1 ? std::atoi(argv[1]) : 20000;

  std::printf("%8s %10s %12s %12s %10s\n", "alpha", "fit alpha", "HH-CPU ms",
              "HiPC ms", "speedup");
  for (double alpha = 2.2; alpha <= 6.3; alpha += 0.8) {
    PowerLawGenConfig cfg;
    cfg.rows = rows;
    cfg.alpha = alpha;
    cfg.target_nnz = static_cast<std::int64_t>(rows) * 6;
    cfg.seed = 77 + static_cast<std::uint64_t>(alpha * 100);
    const CsrMatrix a = generate_power_law_matrix(cfg);
    cfg.seed += 3;
    const CsrMatrix b = generate_power_law_matrix(cfg);

    const PowerLawFit fit = fit_power_law(row_nnz_vector(a));

    double best = -1;
    for (const offset_t t : threshold_candidates(a, 6)) {
      HhCpuOptions opt;
      opt.threshold_a = t;
      opt.threshold_b = t;
      const RunResult hh = run_hh_cpu(a, b, opt, platform, pool);
      if (best < 0 || hh.report.total_s < best) best = hh.report.total_s;
    }
    const RunResult hipc = run_hipc2012(a, b, platform, pool);
    std::printf("%8.1f %10.2f %12.3f %12.3f %9.2fx\n", alpha, fit.alpha,
                best * 1e3, hipc.report.total_s * 1e3,
                hipc.report.total_s / best);
  }
  std::printf("\nlower alpha (more scale-free) -> bigger HH-CPU advantage\n");
  return 0;
}
