// spmm_tool: command-line driver for the library. Loads MatrixMarket inputs
// (or generates a named Table I analogue), multiplies with the requested
// algorithm, reports the simulated-platform timing, and optionally writes
// the product.
//
//   ./spmm_tool --a webbase-1M --algo hh
//   ./spmm_tool --a path/to/A.mtx --b path/to/B.mtx --algo hipc --out C.mtx
//   ./spmm_tool --a wiki-Vote --algo all --scale 0.1
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/baselines.hpp"
#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/datasets.hpp"
#include "sparse/equality.hpp"
#include "sparse/mm_io.hpp"

namespace {

using namespace hh;

CsrMatrix load_operand(const std::string& spec, double scale) {
  std::ifstream probe(spec);
  if (probe.good()) {
    probe.close();
    return read_matrix_market_file(spec);
  }
  return make_dataset(dataset_spec(spec), scale);
}

int usage() {
  std::fprintf(stderr,
               "usage: spmm_tool --a <mtx-file|dataset-name> [--b <...>]\n"
               "                 [--algo hh|hipc|unsorted|sorted|mkl|cusparse|"
               "all]\n"
               "                 [--scale S] [--threshold T] [--out C.mtx]\n");
  return 2;
}

void report(const RunResult& r) {
  std::printf("%s\n", r.report.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string a_spec, b_spec, algo = "hh", out_path;
  double scale = 0.05;
  offset_t threshold = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--a" && next) {
      a_spec = next;
      ++i;
    } else if (arg == "--b" && next) {
      b_spec = next;
      ++i;
    } else if (arg == "--algo" && next) {
      algo = next;
      ++i;
    } else if (arg == "--scale" && next) {
      scale = std::atof(next);
      ++i;
    } else if (arg == "--threshold" && next) {
      threshold = std::atoll(next);
      ++i;
    } else if (arg == "--out" && next) {
      out_path = next;
      ++i;
    } else {
      return usage();
    }
  }
  if (a_spec.empty()) return usage();

  ThreadPool pool(0);
  const HeteroPlatform plat = make_scaled_platform(scale);
  const CsrMatrix a = load_operand(a_spec, scale);
  const CsrMatrix b = b_spec.empty() ? a : load_operand(b_spec, scale);
  std::printf("A: %s   B: %s\n\n", a.summary().c_str(), b.summary().c_str());

  HhCpuOptions hh_opt;
  hh_opt.threshold_a = threshold;
  hh_opt.threshold_b = threshold;

  RunResult result;
  if (algo == "hh") {
    result = run_hh_cpu(a, b, hh_opt, plat, pool);
    report(result);
  } else if (algo == "hipc") {
    result = run_hipc2012(a, b, plat, pool);
    report(result);
  } else if (algo == "unsorted") {
    result = run_unsorted_workqueue(a, b, {}, plat, pool);
    report(result);
  } else if (algo == "sorted") {
    result = run_sorted_workqueue(a, b, {}, plat, pool);
    report(result);
  } else if (algo == "mkl") {
    result = run_cpu_only_mkl(a, b, plat, pool);
    report(result);
  } else if (algo == "cusparse") {
    result = run_gpu_only_cusparse(a, b, plat, pool);
    report(result);
  } else if (algo == "all") {
    result = run_hh_cpu(a, b, hh_opt, plat, pool);
    report(result);
    for (const RunResult& r :
         {run_hipc2012(a, b, plat, pool),
          run_unsorted_workqueue(a, b, {}, plat, pool),
          run_sorted_workqueue(a, b, {}, plat, pool),
          run_cpu_only_mkl(a, b, plat, pool),
          run_gpu_only_cusparse(a, b, plat, pool)}) {
      std::string why;
      if (!approx_equal(result.c, r.c, 1e-9, &why)) {
        std::fprintf(stderr, "mismatch (%s): %s\n", r.report.algorithm.c_str(),
                     why.c_str());
        return 1;
      }
      report(r);
    }
  } else {
    return usage();
  }

  if (!out_path.empty()) {
    write_matrix_market_file(out_path, result.c);
    std::printf("wrote %s (%s)\n", out_path.c_str(), result.c.summary().c_str());
  }
  return 0;
}
