// Service loop: drive the pipelined SpGEMM runtime the way a long-lived
// analytics service would — requests trickle in, get batched, and each
// drain() schedules them over the four resource timelines (CPU, GPU, H2D,
// D2H). The second batch repeats a matrix, so its requests hit the
// partition-plan cache and find their operands already resident on the
// device.
//
// Both drains are recorded with a TraceRecorder; the example finishes by
// exporting service_loop_trace.json (Chrome trace-event / Perfetto format)
// and printing the service's lifetime metrics registry.
//
//   ./service_loop
#include <cstdio>

#include "gen/datasets.hpp"
#include "runtime/service.hpp"
#include "trace/perfetto_export.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace hh;

  ThreadPool pool(0);
  const double scale = 0.05;
  const HeteroPlatform platform = make_scaled_platform(scale);

  const CsrMatrix enron = make_dataset(dataset_spec("email-Enron"), scale);
  const CsrMatrix wiki = make_dataset(dataset_spec("wiki-Vote"), scale);

  TraceRecorder recorder;
  recorder.enable();
  SpgemmService::Config cfg;
  cfg.trace = &recorder;
  SpgemmService service(platform, pool, cfg);

  // Batch 1: two cold squarings. Everything is a plan-cache miss and both
  // matrices cross the H2D channel.
  service.submit({&enron, nullptr, {}, "enron^2"});
  service.submit({&wiki, nullptr, {}, "wiki^2"});
  const BatchResult first = service.drain();
  std::printf("---- batch 1 (cold) ----\n%s\n",
              first.batch.to_string().c_str());

  // Batch 2: the same squarings again. The repeats reuse cached plans and
  // resident operands (note h2d busy drops to zero); only the work itself
  // is re-executed, so the results are still exact.
  service.submit({&enron, nullptr, {}, "enron^2 again"});
  service.submit({&wiki, nullptr, {}, "wiki^2 again"});
  const BatchResult second = service.drain();
  std::printf("---- batch 2 (warm) ----\n%s\n",
              second.batch.to_string().c_str());

  for (const RequestReport& r : second.requests) {
    std::printf("%s", r.to_string().c_str());
  }

  // The embedded critical-path profile answers "why was this request
  // slow" per request (docs/observability.md, latency attribution).
  std::printf("\n---- why were the warm requests this fast/slow? ----\n");
  for (const RequestReport& r : second.requests) {
    if (const RequestCostBreakdown* why =
            second.batch.critpath.find_request(r.request_id)) {
      std::printf("%s\n", why->explain().c_str());
    }
  }

  std::printf("\nwarm vs cold makespan: %.3f ms vs %.3f ms\n",
              second.batch.makespan_s * 1e3, first.batch.makespan_s * 1e3);

  const char* trace_path = "service_loop_trace.json";
  if (write_chrome_trace(recorder, trace_path)) {
    std::printf("\ntrace: %zu events -> %s (load in ui.perfetto.dev)\n",
                recorder.events().size(), trace_path);
  }
  std::printf("\nlifetime metrics:\n%s", service.metrics().to_string().c_str());
  return 0;
}
