// Replay loop: the observability stack end to end — record a production-
// shaped workload with the flight recorder, watch the SLO monitor burn
// error budget as deadlines tighten, then hand the log to the replay
// harness and re-drive it untuned vs tuned.
//
// The flow a real operator follows:
//  1. attach a WorkloadRecorder + SloMonitor to the service and serve
//     traffic (three waves here, the last one under a tight deadline);
//  2. persist the checksum-chained JSONL log (replay_loop_workload.jsonl);
//  3. parse it back — verification is built into parsing — and replay it
//     open-loop at recorded pacing, comparing the tuned configuration
//     against the production baseline on the exact same arrival pattern.
//
//   ./replay_loop
#include <cstdio>

#include "gen/datasets.hpp"
#include "obs/recorder.hpp"
#include "obs/replay.hpp"
#include "obs/slo.hpp"
#include "runtime/service.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace hh;

  ThreadPool pool(0);
  const double scale = 0.05;
  const HeteroPlatform platform = make_scaled_platform(scale);

  const CsrMatrix enron = make_dataset(dataset_spec("email-Enron"), scale);
  const CsrMatrix wiki = make_dataset(dataset_spec("wiki-Vote"), scale);

  // ---- 1. Serve traffic with the flight recorder and SLO monitor on.
  WorkloadRecorder recorder;
  SloMonitor slo({{"deadline-hit", 0.9, 16, 0, 1.0}});
  SpgemmService::Config cfg;
  cfg.recorder = &recorder;
  cfg.slo = &slo;
  SpgemmService service(platform, pool, cfg);
  slo.bind_metrics(&service.metrics());

  const CsrMatrix* mats[] = {&enron, &wiki};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 4; ++i) {
      SpgemmRequest req;
      req.a = mats[i % 2];
      req.label = "w" + std::to_string(wave) + "-" + std::to_string(i);
      // The last wave runs under a deadline nothing cold could make; the
      // SLO monitor's burn rate spikes and the misses land in the log.
      if (wave == 2) req.deadline_s = 1e-4;
      service.submit(std::move(req));
    }
    const BatchResult b = service.drain();
    std::printf("wave %d: %zu completed, %zu missed, makespan %.3f ms\n",
                wave, b.batch.completed, b.batch.deadline_missed,
                b.batch.makespan_s * 1e3);
  }
  std::printf("\nSLO after serving:\n%s\n", slo.to_string().c_str());

  // ---- 2. Persist the log; 3. parse (= verify) and replay it.
  const char* log_path = "replay_loop_workload.jsonl";
  recorder.write(log_path);
  std::printf("log: %zu records -> %s\n\n", recorder.size(), log_path);

  const WorkloadLog log = parse_workload_log(recorder.log().to_jsonl());

  ReplayHarness harness(platform, pool);
  harness.register_operand(&enron);
  harness.register_operand(&wiki);
  ReplayOptions opts;
  opts.slo = {{"deadline-hit", 0.9, 16, 0, 1.0}};
  const ReplayReport rep = harness.replay(log, opts);
  std::printf("%s", rep.to_string().c_str());
  return 0;
}
