// Simulated Intel i7-980 running multithreaded row-row SpGEMM.
//
// The locality argument of paper §III-B in model form: a task's per-flop
// cost interpolates between cached and streaming rates by how much of the
// B rows it touches fits in the shared L3. A_H × B_H touches only the few
// dense B rows → cache-resident → near peak; anything that walks all of B
// is memory-bound.
#pragma once

#include "device/cost_model.hpp"
#include "fault/fault.hpp"
#include "spgemm/spgemm.hpp"

namespace hh {

class CpuSim {
 public:
  explicit CpuSim(const CpuCostModel& cm) : cm_(cm) {}

  /// Time for the rows summarized by `s`, with `b_working_set_bytes` the
  /// size of the B sub-matrix the task repeatedly touches (12 bytes per
  /// nonzero of the masked B side; pass the full-B size when no mask is in
  /// effect; <= 0 means the working set is negligible, i.e. fully cached).
  /// `rewritten` charges the §III-B penalty of the HH-CPU kernel vs MKL.
  /// `blockable` marks products against a small B side (B_H): these can be
  /// column-tiled so wide-output rows avoid the SPA scatter penalty.
  double kernel_time(const ProductStats& s, double b_working_set_bytes,
                     bool rewritten, bool blockable = false) const;

  /// The MKL library baseline: generic kernel (no mask, no blocking) with
  /// the exact-CSR two-pass factor.
  double library_time(const ProductStats& s, double b_working_set_bytes) const;

  /// Phase IV: radix sort + segmented reduction over `tuples` tuples.
  double merge_time(std::int64_t tuples) const;

  /// Phase I threshold identification over a row-size histogram.
  double classify_time(std::int64_t rows) const;

  /// Injected worker stall for the next CPU stage: extra simulated
  /// occupancy, 0 when healthy or when `fi` is nullptr. Stalls delay but
  /// never fail — the stage's numeric result is unaffected. stall_attempt
  /// additionally reports the injector op index consumed (always ok; the
  /// stall is elapsed_s), for trace identity.
  DeviceAttempt stall_attempt(FaultInjector* fi) const;
  double stall_s(FaultInjector* fi) const;

  const CpuCostModel& model() const { return cm_; }

 private:
  CpuCostModel cm_;
};

}  // namespace hh
