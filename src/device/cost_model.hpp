// Calibrated cost model for the paper's experimental platform (§II-B):
// an Intel i7-980 (Westmere, 6 cores @ 3.4 GHz, 12 MB shared L3) plus an
// NVIDIA Tesla K20c (Kepler, 13 SMX × 192 cores @ 706 MHz) on PCIe 2.0.
//
// The host this repository runs on has neither device, so every experiment
// charges *simulated* time from these models (see DESIGN.md §1). The models
// are first-order rooflines with exactly the effects the paper argues from:
//  - GPU reads move 128-byte transactions, so short scale-free rows waste
//    most of each line;
//  - rows whose accumulator exceeds shared memory scatter uncoalesced
//    writes into a global-memory PartialOutput (the [13] GPU kernel);
//  - a row is bound to one warp, so one huge row serializes the kernel tail;
//  - the CPU runs near its cached throughput only when the touched part of
//    B fits in LLC — which is what A_H × B_H gives it (paper §III-B);
//  - the HH-CPU "rewritten for CPU" kernel pays 15–20 % over MKL (§III-B).
//
// `derate` rescales both devices identically so effective SpGEMM throughput
// lands in the ~1 GFLOP/s band this hardware class achieved on scale-free
// inputs; it cancels in every ratio the paper reports.
#pragma once

#include <cstdint>

namespace hh {

struct GpuCostModel {
  double clock_ghz = 0.706;       // K20c core clock
  int smx = 13;                   // streaming multiprocessors
  int warp_width = 32;            // threads per warp
  double warp_issue_slots = 52;   // smx × 4 schedulers: warp-instr / cycle
  double alu_cpi = 40.0;          // cycles per warp instruction, folding
                                  // issue stalls and address arithmetic
  double mem_bw_gbps = 15.0;      // *effective* bandwidth under irregular
                                  // 32-byte accesses (~7% of the 208 GB/s
                                  // peak — typical for SpGEMM on Kepler)
  double uncoalesced_write_bytes = 32.0;  // per flop on the global path: one
                                          // extra 32-byte transaction per
                                          // scattered PartialOutput update
                                          // (global memory, §II-A(b))
  double single_warp_cpi = 10.0;  // latency-bound lone warp (serial tail)
  double row_cycles = 80.0;       // per-row scheduling + compaction
  double kernel_launch_s = 8e-6;  // per kernel / work-unit launch
  double classify_cycles = 2.0;   // per row, Phase I boolean array
  double library_two_phase_factor = 1.7;  // cuSPARSE csrgemm's exact-CSR
                                          // symbolic+numeric two-pass
  double esc_bytes_per_flop = 110.0;  // cuSPARSE-like expand-sort-contract
  double derate = 1.0;            // extra uniform derate (calibration knob)
};

struct CpuCostModel {
  double clock_ghz = 3.4;   // i7-980
  int cores = 6;
  double parallel_eff = 0.85;
  double l3_bytes = 12.0 * 1024 * 1024;
  double flop_cycles_cached = 30.0;  // B working set resident in LLC:
                                     // cache-blocked streaming through few
                                     // long hub rows (§III-B)
  double flop_cycles_stream = 115.0; // B streamed from DRAM
  double a_nnz_cycles_cached = 180.0; // per B-row visit even when cached:
                                      // dependent pointer chase, inner-loop
                                      // setup, SPA churn. Short rows are
                                      // visit-bound (cost/flop ≈ this/len),
                                      // long hub rows amortize it — which is
                                      // why only A_H×B_H enjoys the cached
                                      // flop rate in practice (§III-B)
  double a_nnz_cycles_miss = 250.0;   // same, plus the DRAM latency
  double tuple_cycles = 25.0;         // emit + sort, amortized per tuple
  double scatter_cycles = 90.0;  // extra per flop of a wide-output row (SPA
                                 // larger than L2 → a miss per update),
                                 // UNLESS the product is column-blockable:
                                 // A_X×B_H re-tiles over the few B_H rows so
                                 // the accumulator tile stays cached (§III-B
                                 // "good cache blocking techniques can be
                                 // used when multiplying A_H with B_H")
  double row_cycles = 150.0;          // per-row bookkeeping
  double merge_cycles_per_tuple = 4.0;  // Phase IV radix sort + reduce
  double rewritten_penalty = 1.175;   // §III-B: 15–20 % over MKL
  double library_two_phase_factor = 1.7;  // MKL csrmultcsr computes exact
                                          // CSR with a symbolic+numeric
                                          // two-pass; HH/[13] emit tuples in
                                          // one pass and merge in Phase IV
  double derate = 1.0;
};

struct PcieCostModel {
  double bw_gbps = 8.0;      // PCIe 2.0 ×16 nominal (paper §II-B)
  double efficiency = 0.35;  // calibrated: ~5 M-nnz matrix ≈ 25–30 ms (§IV-A)
  double latency_s = 20e-6;
};

struct CostModel {
  GpuCostModel gpu;
  CpuCostModel cpu;
  PcieCostModel pcie;
};

/// Per-device multiplicative correction factors, the hook through which the
/// online autotuner (src/tune/) feeds measured-vs-predicted calibration back
/// into the analytic predictions: a factor of 1.1 means "this device has been
/// observed running 10% slower than the model predicts". Applied by
/// predict_breakdown() / predict_total_time() (core/threshold.hpp); the
/// default-constructed value is the exact identity (multiplying by 1.0 is
/// bit-exact), so uncalibrated callers reproduce the uncorrected predictions.
struct CostCorrection {
  double cpu = 1.0;
  double gpu = 1.0;
  double h2d = 1.0;
  double d2h = 1.0;

  bool is_identity() const {
    return cpu == 1.0 && gpu == 1.0 && h2d == 1.0 && d2h == 1.0;
  }
};

}  // namespace hh
