// The CPU+GPU heterogeneous platform: both simulated devices plus the link.
// Overlapped regions (the paper's "CPU, GPU::" labels) take the max of the
// two device clocks; transfers are charged on the link.
#pragma once

#include <algorithm>

#include "device/cost_model.hpp"
#include "device/cpu_sim.hpp"
#include "device/gpu_sim.hpp"
#include "device/pcie.hpp"

namespace hh {

class HeteroPlatform {
 public:
  explicit HeteroPlatform(const CostModel& cm = CostModel{})
      : cm_(cm), cpu_(cm.cpu), gpu_(cm.gpu), link_(cm.pcie) {}

  const CostModel& cost_model() const { return cm_; }
  const CpuSim& cpu() const { return cpu_; }
  const GpuSim& gpu() const { return gpu_; }
  const PcieLink& link() const { return link_; }

  /// Elapsed time of an overlapped region (paper label "CPU, GPU::").
  static double overlap(double cpu_time, double gpu_time) {
    return std::max(cpu_time, gpu_time);
  }

 private:
  CostModel cm_;
  CpuSim cpu_;
  GpuSim gpu_;
  PcieLink link_;
};

/// Platform for experiments run on instances shrunk by `scale` (the bench
/// default is 0.25 so the suite fits modest CI hardware). The simulated
/// machine's *capacity* parameters — LLC size and the GPU shared-accumulator
/// cap — are shrunk by the same factor so that a scaled instance exercises
/// the same cache-pressure and shared-vs-global-accumulator regimes the
/// full-size instance would on the real machine. Rate parameters (clocks,
/// bandwidths, core counts) are untouched.
///
/// Note: this also sets the process-global shared-accumulator cap used by
/// the kernels' statistics (see spgemm.hpp); call it before running any
/// product whose stats feed the models.
HeteroPlatform make_scaled_platform(double scale, CostModel cm = CostModel{});

}  // namespace hh
