// PCIe 2.0 ×16 link between host and device (paper §II-B: 8 GB/s nominal;
// §IV-A: ~25–30 ms to ship a ~5 M-nnz matrix).
//
// PCIe is full duplex: the host→device (H2D) and device→host (D2H)
// directions are independent lanes that can stream concurrently. The link is
// therefore modelled as two separately-clocked PcieChannel objects; the
// pipelined runtime (src/runtime/) schedules them on two distinct resource
// timelines so one request's input upload can overlap another's result
// download. The sequential driver keeps charging each transfer on the
// channel that direction uses — same per-transfer times as the seed model.
#pragma once

#include <cstdint>

#include "device/cost_model.hpp"
#include "fault/fault.hpp"
#include "sparse/csr.hpp"

namespace hh {

enum class PcieDir { kH2D, kD2H };

/// One direction of the link: latency + bandwidth + efficiency.
class PcieChannel {
 public:
  explicit PcieChannel(const PcieCostModel& cm, PcieDir dir = PcieDir::kH2D)
      : cm_(cm), dir_(dir) {}

  double transfer_time(double bytes) const;

  /// Shipping a CSR matrix (indptr + indices + values).
  double matrix_transfer_time(const CsrMatrix& m) const;

  /// Shipping n tuples of ⟨r, c, v⟩ (4 + 4 + 8 bytes).
  double tuple_transfer_time(std::int64_t n) const;

  /// Fault-aware variants: one transfer attempt under the injector's
  /// schedule (pass nullptr for a guaranteed-healthy attempt). A hard
  /// failure aborts partway through and wastes `elapsed_s`; a corruption
  /// runs to completion but the payload fails checksum verification — the
  /// caller must re-send (and, for uploads, drop device residency).
  DeviceAttempt transfer_attempt(double bytes, FaultInjector* fi) const;
  DeviceAttempt matrix_transfer_attempt(const CsrMatrix& m,
                                        FaultInjector* fi) const;
  DeviceAttempt tuple_transfer_attempt(std::int64_t n, FaultInjector* fi) const;

  /// Batched (wave-coalesced) costing: the lead transfer of a block pays
  /// the link latency that opens the shared reservation; followers stream
  /// back-to-back behind it and pay bytes only. `lead == true` is exactly
  /// transfer_time. A failed attempt still keeps the latency floor on its
  /// elapsed time — the retry re-arbitrates the link.
  double transfer_time_batched(double bytes, bool lead) const;
  double matrix_transfer_time_batched(const CsrMatrix& m, bool lead) const;
  DeviceAttempt transfer_attempt_batched(double bytes, FaultInjector* fi,
                                         bool lead) const;
  DeviceAttempt matrix_transfer_attempt_batched(const CsrMatrix& m,
                                                FaultInjector* fi,
                                                bool lead) const;

  PcieDir direction() const { return dir_; }
  const PcieCostModel& model() const { return cm_; }

 private:
  PcieCostModel cm_;
  PcieDir dir_;
};

/// The full-duplex link: an H2D channel and a D2H channel with independent
/// clocks. Both directions share the PcieCostModel parameters (PCIe lanes
/// are symmetric).
class PcieLink {
 public:
  explicit PcieLink(const PcieCostModel& cm)
      : h2d_(cm, PcieDir::kH2D), d2h_(cm, PcieDir::kD2H) {}

  const PcieChannel& h2d() const { return h2d_; }
  const PcieChannel& d2h() const { return d2h_; }

  /// Direction-agnostic helpers for callers that charge a transfer without
  /// scheduling it on a channel timeline (single-request drivers, benches).
  /// Uploads go H2D; tuple results come back D2H.
  double transfer_time(double bytes) const { return h2d_.transfer_time(bytes); }
  double matrix_transfer_time(const CsrMatrix& m) const {
    return h2d_.matrix_transfer_time(m);
  }
  double tuple_transfer_time(std::int64_t n) const {
    return d2h_.tuple_transfer_time(n);
  }

  const PcieCostModel& model() const { return h2d_.model(); }

 private:
  PcieChannel h2d_;
  PcieChannel d2h_;
};

}  // namespace hh
