// PCIe 2.0 ×16 link between host and device (paper §II-B: 8 GB/s nominal;
// §IV-A: ~25–30 ms to ship a ~5 M-nnz matrix).
#pragma once

#include <cstdint>

#include "device/cost_model.hpp"
#include "sparse/csr.hpp"

namespace hh {

class PcieLink {
 public:
  explicit PcieLink(const PcieCostModel& cm) : cm_(cm) {}

  double transfer_time(double bytes) const;

  /// Shipping a CSR matrix (indptr + indices + values).
  double matrix_transfer_time(const CsrMatrix& m) const;

  /// Shipping n tuples of ⟨r, c, v⟩ (4 + 4 + 8 bytes).
  double tuple_transfer_time(std::int64_t n) const;

  const PcieCostModel& model() const { return cm_; }

 private:
  PcieCostModel cm_;
};

}  // namespace hh
