// cost_model.hpp is all data; this translation unit exists so the module has
// a home for future calibration tables without touching the header.
#include "device/cost_model.hpp"
