#include "device/cpu_sim.hpp"

#include <algorithm>

namespace hh {

double CpuSim::kernel_time(const ProductStats& s, double b_working_set_bytes,
                           bool rewritten, bool blockable) const {
  if (s.rows == 0) return 0.0;
  const double clock = cm_.clock_ghz * 1e9;

  // Fraction of B-row traffic served from LLC.
  double hit = 1.0;
  if (b_working_set_bytes > 0) {
    hit = std::min(1.0, cm_.l3_bytes / b_working_set_bytes);
  }
  const double flop_cyc =
      hit * cm_.flop_cycles_cached + (1.0 - hit) * cm_.flop_cycles_stream;
  const double annz_cyc =
      hit * cm_.a_nnz_cycles_cached + (1.0 - hit) * cm_.a_nnz_cycles_miss;

  double cycles = static_cast<double>(s.flops) * flop_cyc +
                  static_cast<double>(s.a_nnz) * annz_cyc +
                  static_cast<double>(s.tuples) * cm_.tuple_cycles +
                  static_cast<double>(s.rows) * cm_.row_cycles;
  if (!blockable) {
    // Wide-output rows scatter into an accumulator larger than L2: one miss
    // per update. Column-blockable products (small B side) avoid this.
    cycles += static_cast<double>(s.flops_global) * cm_.scatter_cycles;
  }
  if (rewritten) cycles *= cm_.rewritten_penalty;
  return cm_.derate * cycles /
         (static_cast<double>(cm_.cores) * cm_.parallel_eff * clock);
}

double CpuSim::library_time(const ProductStats& s,
                            double b_working_set_bytes) const {
  return cm_.library_two_phase_factor *
         kernel_time(s, b_working_set_bytes, /*rewritten=*/false,
                     /*blockable=*/false);
}

double CpuSim::merge_time(std::int64_t tuples) const {
  // Sort + segmented reduce are regular, bandwidth-friendly passes; the
  // irregularity derate does not apply here.
  const double clock = cm_.clock_ghz * 1e9;
  const double cycles =
      static_cast<double>(tuples) * cm_.merge_cycles_per_tuple;
  return cycles / (static_cast<double>(cm_.cores) * cm_.parallel_eff * clock);
}

DeviceAttempt CpuSim::stall_attempt(FaultInjector* fi) const {
  if (fi == nullptr) return {true, false, 0, kNoDeviceOp};
  const FaultDecision d = fi->next(FaultSite::kCpuWorker);
  // Stalls delay but never fail: the attempt is ok, elapsed_s is the extra
  // occupancy the stage pays.
  return {true, false, d.stall_s, d.op};
}

double CpuSim::stall_s(FaultInjector* fi) const {
  return stall_attempt(fi).elapsed_s;
}

double CpuSim::classify_time(std::int64_t rows) const {
  const double clock = cm_.clock_ghz * 1e9;
  // One pass over row sizes per matrix: a compare and a flag store.
  return static_cast<double>(rows) * 2.0 /
         (static_cast<double>(cm_.cores) * clock);
}

}  // namespace hh
