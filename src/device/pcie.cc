#include "device/pcie.hpp"

namespace hh {

double PcieChannel::transfer_time(double bytes) const {
  if (bytes <= 0) return 0.0;
  return cm_.latency_s + bytes / (cm_.bw_gbps * 1e9 * cm_.efficiency);
}

double PcieChannel::matrix_transfer_time(const CsrMatrix& m) const {
  return transfer_time(static_cast<double>(m.byte_size()));
}

double PcieChannel::tuple_transfer_time(std::int64_t n) const {
  return transfer_time(16.0 * static_cast<double>(n));
}

DeviceAttempt PcieChannel::transfer_attempt(double bytes,
                                            FaultInjector* fi) const {
  const double t = transfer_time(bytes);
  if (t <= 0) return {true, false, 0, kNoDeviceOp};
  if (fi != nullptr) {
    const FaultDecision d =
        fi->next(dir_ == PcieDir::kH2D ? FaultSite::kH2D : FaultSite::kD2H);
    if (d.fault) {
      // Corruption spends the full transfer time (the bytes all crossed,
      // just wrong); a hard failure dies partway through but no earlier
      // than the link latency.
      const double elapsed =
          d.corrupt ? t : std::max(cm_.latency_s, d.fraction * t);
      return {false, d.corrupt, elapsed, d.op};
    }
    return {true, false, t, d.op};
  }
  return {true, false, t, kNoDeviceOp};
}

DeviceAttempt PcieChannel::matrix_transfer_attempt(const CsrMatrix& m,
                                                   FaultInjector* fi) const {
  return transfer_attempt(static_cast<double>(m.byte_size()), fi);
}

DeviceAttempt PcieChannel::tuple_transfer_attempt(std::int64_t n,
                                                  FaultInjector* fi) const {
  return transfer_attempt(16.0 * static_cast<double>(n), fi);
}

}  // namespace hh
