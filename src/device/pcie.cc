#include "device/pcie.hpp"

namespace hh {

double PcieChannel::transfer_time(double bytes) const {
  if (bytes <= 0) return 0.0;
  return cm_.latency_s + bytes / (cm_.bw_gbps * 1e9 * cm_.efficiency);
}

double PcieChannel::matrix_transfer_time(const CsrMatrix& m) const {
  return transfer_time(static_cast<double>(m.byte_size()));
}

double PcieChannel::tuple_transfer_time(std::int64_t n) const {
  return transfer_time(16.0 * static_cast<double>(n));
}

DeviceAttempt PcieChannel::transfer_attempt(double bytes,
                                            FaultInjector* fi) const {
  const double t = transfer_time(bytes);
  if (t <= 0) return {true, false, 0, kNoDeviceOp};
  if (fi != nullptr) {
    const FaultDecision d =
        fi->next(dir_ == PcieDir::kH2D ? FaultSite::kH2D : FaultSite::kD2H);
    if (d.fault) {
      // Corruption spends the full transfer time (the bytes all crossed,
      // just wrong); a hard failure dies partway through but no earlier
      // than the link latency.
      const double elapsed =
          d.corrupt ? t : std::max(cm_.latency_s, d.fraction * t);
      return {false, d.corrupt, elapsed, d.op};
    }
    return {true, false, t, d.op};
  }
  return {true, false, t, kNoDeviceOp};
}

DeviceAttempt PcieChannel::matrix_transfer_attempt(const CsrMatrix& m,
                                                   FaultInjector* fi) const {
  return transfer_attempt(static_cast<double>(m.byte_size()), fi);
}

double PcieChannel::transfer_time_batched(double bytes, bool lead) const {
  if (bytes <= 0) return 0.0;
  const double stream = bytes / (cm_.bw_gbps * 1e9 * cm_.efficiency);
  return lead ? cm_.latency_s + stream : stream;
}

double PcieChannel::matrix_transfer_time_batched(const CsrMatrix& m,
                                                 bool lead) const {
  return transfer_time_batched(static_cast<double>(m.byte_size()), lead);
}

DeviceAttempt PcieChannel::transfer_attempt_batched(double bytes,
                                                    FaultInjector* fi,
                                                    bool lead) const {
  const double t = transfer_time_batched(bytes, lead);
  if (t <= 0) return {true, false, 0, kNoDeviceOp};
  if (fi != nullptr) {
    const FaultDecision d =
        fi->next(dir_ == PcieDir::kH2D ? FaultSite::kH2D : FaultSite::kD2H);
    if (d.fault) {
      const double elapsed =
          d.corrupt ? t : std::max(cm_.latency_s, d.fraction * t);
      return {false, d.corrupt, elapsed, d.op};
    }
    return {true, false, t, d.op};
  }
  return {true, false, t, kNoDeviceOp};
}

DeviceAttempt PcieChannel::matrix_transfer_attempt_batched(const CsrMatrix& m,
                                                           FaultInjector* fi,
                                                           bool lead) const {
  return transfer_attempt_batched(static_cast<double>(m.byte_size()), fi,
                                  lead);
}

DeviceAttempt PcieChannel::tuple_transfer_attempt(std::int64_t n,
                                                  FaultInjector* fi) const {
  return transfer_attempt(16.0 * static_cast<double>(n), fi);
}

}  // namespace hh
