#include "device/pcie.hpp"

namespace hh {

double PcieChannel::transfer_time(double bytes) const {
  if (bytes <= 0) return 0.0;
  return cm_.latency_s + bytes / (cm_.bw_gbps * 1e9 * cm_.efficiency);
}

double PcieChannel::matrix_transfer_time(const CsrMatrix& m) const {
  return transfer_time(static_cast<double>(m.byte_size()));
}

double PcieChannel::tuple_transfer_time(std::int64_t n) const {
  return transfer_time(16.0 * static_cast<double>(n));
}

}  // namespace hh
