#include "device/platform.hpp"

#include "spgemm/spgemm.hpp"
#include "util/check.hpp"

namespace hh {

HeteroPlatform make_scaled_platform(double scale, CostModel cm) {
  HH_CHECK(scale > 0 && scale <= 1.0);
  cm.cpu.l3_bytes *= scale;
  set_shared_accum_cap(std::max<std::int64_t>(
      16, static_cast<std::int64_t>(kSharedAccumCap * scale)));
  return HeteroPlatform(cm);
}

}  // namespace hh
