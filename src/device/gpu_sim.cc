#include "device/gpu_sim.hpp"

#include <algorithm>

namespace hh {

double GpuSim::kernel_time(const ProductStats& s) const {
  if (s.rows == 0) return 0.0;
  const double clock = cm_.clock_ghz * 1e9;

  // ALU roofline: warp instructions issued across all schedulers, plus
  // per-row scheduling/compaction work.
  const double alu_cycles = static_cast<double>(s.warp_alu) * cm_.alu_cpi +
                            static_cast<double>(s.rows) * cm_.row_cycles;
  const double alu_time = alu_cycles / (cm_.warp_issue_slots * clock);

  // Memory roofline: B-row transactions + A row reads + output write-out,
  // plus uncoalesced PartialOutput scatter for rows on the global path.
  const double mem_bytes =
      static_cast<double>(s.b_read_bytes) +
      12.0 * static_cast<double>(s.a_nnz) +
      12.0 * static_cast<double>(s.tuples) +
      cm_.uncoalesced_write_bytes * static_cast<double>(s.flops_global);
  const double mem_time = mem_bytes / (cm_.mem_bw_gbps * 1e9);

  // Serial tail: the heaviest row runs on a single warp.
  const double serial_time =
      static_cast<double>(s.max_row_flops) /
      static_cast<double>(cm_.warp_width) * cm_.single_warp_cpi / clock;

  const double body = std::max({alu_time, mem_time, serial_time});
  return cm_.derate * body + cm_.kernel_launch_s;
}

DeviceAttempt GpuSim::kernel_attempt(const ProductStats& s,
                                     FaultInjector* fi) const {
  const double t = kernel_time(s);
  if (t <= 0) return {true, false, 0, kNoDeviceOp};
  if (fi != nullptr) {
    const FaultDecision d = fi->next(FaultSite::kGpuKernel);
    if (d.fault) {
      return {false, false, std::max(cm_.kernel_launch_s, d.fraction * t),
              d.op};
    }
    return {true, false, t, d.op};
  }
  return {true, false, t, kNoDeviceOp};
}

double GpuSim::kernel_time_batched(const ProductStats& s, bool lead) const {
  const double t = kernel_time(s);
  if (t <= 0 || lead) return t;
  return std::max(0.0, t - cm_.kernel_launch_s);
}

DeviceAttempt GpuSim::kernel_attempt_batched(const ProductStats& s,
                                             FaultInjector* fi,
                                             bool lead) const {
  const double t = kernel_time_batched(s, lead);
  if (t <= 0) return {true, false, 0, kNoDeviceOp};
  if (fi != nullptr) {
    const FaultDecision d = fi->next(FaultSite::kGpuKernel);
    if (d.fault) {
      return {false, false, std::max(cm_.kernel_launch_s, d.fraction * t),
              d.op};
    }
    return {true, false, t, d.op};
  }
  return {true, false, t, kNoDeviceOp};
}

double GpuSim::generic_time(const ProductStats& s) const {
  if (s.rows == 0) return 0.0;
  // Expand-sort-contract: every flop becomes a tuple that is written,
  // radix-sorted (multiple passes), and contracted — all in global memory.
  const double mem_bytes =
      static_cast<double>(s.b_read_bytes) +
      cm_.esc_bytes_per_flop * static_cast<double>(s.flops);
  const double mem_time = mem_bytes / (cm_.mem_bw_gbps * 1e9);
  return cm_.library_two_phase_factor * cm_.derate * mem_time +
         cm_.kernel_launch_s;
}

double GpuSim::classify_time(std::int64_t rows) const {
  const double clock = cm_.clock_ghz * 1e9;
  return static_cast<double>(rows) * cm_.classify_cycles /
             (cm_.warp_issue_slots * clock) +
         cm_.kernel_launch_s;
}

double GpuSim::tuple_sort_time(std::int64_t tuples) const {
  // 16-byte tuples, 4 radix passes, read+write each pass.
  if (tuples == 0) return 0.0;
  // Radix sort is a regular streaming workload: no irregularity derate.
  const double bytes = static_cast<double>(tuples) * 16.0 * 4.0 * 2.0;
  return bytes / (cm_.mem_bw_gbps * 1e9) + cm_.kernel_launch_s;
}

}  // namespace hh
