// Simulated Tesla K20c running the warp-per-row row-row SpGEMM kernel of
// [13] (paper §II-A(b)). Converts ProductStats of an actually-executed
// kernel into simulated seconds. See cost_model.hpp for the model terms.
#pragma once

#include "device/cost_model.hpp"
#include "fault/fault.hpp"
#include "spgemm/spgemm.hpp"

namespace hh {

class GpuSim {
 public:
  explicit GpuSim(const GpuCostModel& cm) : cm_(cm) {}

  /// Time of one launch of the [13] warp-per-row kernel over the rows
  /// summarized by `s`. Roofline of ALU issue, memory traffic, and the
  /// serial heaviest-row tail, plus launch overhead.
  double kernel_time(const ProductStats& s) const;

  /// cuSPARSE-like generic kernel (expand–sort–contract): pays sort traffic
  /// proportional to flops. The GPU-only library baseline of Fig. 6.
  double generic_time(const ProductStats& s) const;

  /// Phase I: build the Boolean high/low row array for `rows` rows.
  double classify_time(std::int64_t rows) const;

  /// Phase IV share when the GPU pre-sorts its own tuples before transfer.
  double tuple_sort_time(std::int64_t tuples) const;

  /// One launch under fault injection (pass nullptr for a guaranteed-healthy
  /// attempt). A transient abort occupies the device for part of the launch
  /// (never less than the launch overhead) and produces no usable result —
  /// the caller re-launches or degrades to the CPU path. Launches with no
  /// work (kernel_time == 0) never consume an injector op, so the fault
  /// schedule is stable across degenerate partitions.
  DeviceAttempt kernel_attempt(const ProductStats& s, FaultInjector* fi) const;

  /// Batched (wave) costing: the first healthy launch of a wave pays the
  /// kernel-launch overhead, followers ride the already-hot dispatch queue
  /// and skip it. `lead == true` is exactly kernel_time. An abort still
  /// occupies the device for at least the launch overhead — a re-launch is
  /// a fresh dispatch.
  double kernel_time_batched(const ProductStats& s, bool lead) const;
  DeviceAttempt kernel_attempt_batched(const ProductStats& s,
                                       FaultInjector* fi, bool lead) const;

  const GpuCostModel& model() const { return cm_; }

 private:
  GpuCostModel cm_;
};

}  // namespace hh
