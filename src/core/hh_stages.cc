#include "core/hh_stages.hpp"

#include <utility>

#include "sched/chunk.hpp"

namespace hh {
namespace {

CooMatrix empty_tuples(index_t rows, index_t cols, WorkspacePool* workspace) {
  return workspace != nullptr ? workspace->acquire_coo(rows, cols)
                              : CooMatrix(rows, cols);
}

}  // namespace

Phase2Result run_phase2(const CsrMatrix& a, const CsrMatrix& b,
                        const PartitionPlan& plan,
                        const HeteroPlatform& platform, ThreadPool& pool,
                        WorkspacePool* workspace) {
  Phase2Result r;
  // A product with an empty side contributes nothing; skip it so degenerate
  // partitions charge no phantom per-row cost.
  if (plan.a.high_count() > 0 && plan.b.high_count() > 0) {
    r.hh_tuples = partial_product_tuples(a, b, plan.a.high_rows, plan.b.is_high,
                                         true, pool, &r.hh_stats, workspace);
  } else {
    r.hh_tuples = empty_tuples(a.rows, b.cols, workspace);
  }
  if (plan.a.low_count() > 0 && plan.b.low_count() > 0) {
    r.ll_tuples = partial_product_tuples(a, b, plan.a.low_rows, plan.b.is_high,
                                         false, pool, &r.ll_stats, workspace);
  } else {
    r.ll_tuples = empty_tuples(a.rows, b.cols, workspace);
  }
  r.cpu_s = platform.cpu().kernel_time(r.hh_stats, plan.ws_bh_bytes, true,
                                       /*blockable=*/true);
  r.gpu_s = platform.gpu().kernel_time(r.ll_stats);
  return r;
}

WorkQueueResult run_phase3(const CsrMatrix& a, const CsrMatrix& b,
                           const PartitionPlan& plan,
                           const WorkQueueConfig& cfg, double cpu_start,
                           double gpu_start, const HeteroPlatform& platform,
                           ThreadPool& pool, WorkspacePool* workspace) {
  // CPU end: A_L×B_H (tag 0). GPU end: A_H×B_L (tag 1). The GPU reaches its
  // side from the back (§IV-B). A cross product whose B side is empty
  // contributes nothing and is skipped outright (degenerate partitions on
  // non-scale-free inputs; §V-B: HH-CPU must not pay for work that is not
  // there).
  std::vector<WorkEntry> entries;
  if (plan.b.high_count() > 0) append_entries(entries, plan.a.low_rows, 0);
  if (plan.b.low_count() > 0) append_entries(entries, plan.a.high_rows, 1);
  const MaskSpec masks[2] = {
      {plan.b.is_high, true, plan.ws_bh_bytes, /*cpu_blockable=*/true},
      {plan.b.is_high, false, plan.ws_bl_bytes, /*cpu_blockable=*/false},
  };
  return run_workqueue(a, b, entries, masks, cfg, cpu_start, gpu_start,
                       platform, pool, workspace);
}

MergeResult run_phase4(Phase2Result&& p2, WorkQueueResult&& queue,
                       const HeteroPlatform& platform, ThreadPool& pool,
                       WorkspacePool* workspace) {
  MergeResult m;
  CooMatrix all = std::move(p2.hh_tuples);  // steals the largest buffer
  all.append(p2.ll_tuples);
  all.append(queue.tuples);
  m.c = merged_coo_to_csr(all, pool, &m.merge);
  m.cpu_s = platform.cpu().merge_time(m.merge.tuples_in);
  if (workspace != nullptr) {
    workspace->release_coo(std::move(all));          // hh_tuples' buffer
    workspace->release_coo(std::move(p2.ll_tuples));
  }
  return m;
}

}  // namespace hh
