// Per-run accounting: everything Figs. 6–10 need — total simulated time,
// per-phase and per-device breakdown, transfer costs, and output statistics.
#pragma once

#include <string>

#include "primitives/tuple_merge.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace hh {

struct RunReport {
  std::string algorithm;

  // Simulated seconds. total_s is end-to-end; the phase fields follow the
  // paper's Fig. 7 convention: each phase is the max time either device
  // spent on it.
  double total_s = 0;
  double phase1_s = 0;    // threshold identification + classification
  double phase2_s = 0;    // A_H×B_H ∥ A_L×B_L (or the whole product for
                          // single-device baselines)
  double phase3_s = 0;    // workqueue products
  double phase4_s = 0;    // tuple merge
  double transfer_in_s = 0;   // host → device matrices
  double transfer_out_s = 0;  // device → host partial results

  // Per-device busy time inside the overlapped phases.
  double phase2_cpu_s = 0, phase2_gpu_s = 0;
  double phase3_cpu_s = 0, phase3_gpu_s = 0;

  offset_t threshold_a = 0, threshold_b = 0;
  index_t high_rows_a = 0, high_rows_b = 0;
  std::int64_t flops = 0;
  std::int64_t output_nnz = 0;
  MergeStats merge;
  int queue_cpu_units = 0, queue_gpu_units = 0;

  /// Multi-line human-readable rendering.
  std::string to_string() const;

  /// Single JSON object (one line, no trailing newline) with every field
  /// above — machine-readable counterpart of to_string() for benches.
  std::string to_json() const;
};

struct RunResult {
  CsrMatrix c;
  RunReport report;
};

}  // namespace hh
