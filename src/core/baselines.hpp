// Every comparison algorithm in the paper's evaluation:
//  - HiPC2012 [13]: static flops-balanced CPU/GPU split, density-unaware
//    (the "best known heterogeneous algorithm" HH-CPU is measured against)
//  - Unsorted-Workqueue / Sorted-Workqueue (paper §V-C)
//  - CPU-only "MKL" and GPU-only "cuSPARSE" library baselines (Fig. 6)
// All return exact products with simulated-time reports.
#pragma once

#include "core/report.hpp"
#include "device/platform.hpp"
#include "sched/workqueue.hpp"
#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

/// [13]: one static split of A's rows by a-priori estimated cost; each
/// device multiplies its block against all of B.
RunResult run_hipc2012(const CsrMatrix& a, const CsrMatrix& b,
                       const HeteroPlatform& platform, ThreadPool& pool);

/// §V-C: workqueue over rows of A in natural order, full B, CPU from the
/// front and GPU from the back.
RunResult run_unsorted_workqueue(const CsrMatrix& a, const CsrMatrix& b,
                                 const WorkQueueConfig& cfg,
                                 const HeteroPlatform& platform,
                                 ThreadPool& pool);

/// §V-C: same, but rows sorted by size (densest at the CPU end).
RunResult run_sorted_workqueue(const CsrMatrix& a, const CsrMatrix& b,
                               const WorkQueueConfig& cfg,
                               const HeteroPlatform& platform,
                               ThreadPool& pool);

/// Intel MKL-like tuned CPU-only SpGEMM (no heterogeneous pieces at all).
RunResult run_cpu_only_mkl(const CsrMatrix& a, const CsrMatrix& b,
                           const HeteroPlatform& platform, ThreadPool& pool);

/// cuSPARSE-like generic GPU-only SpGEMM (expand–sort–contract kernel),
/// including both transfers.
RunResult run_gpu_only_cusparse(const CsrMatrix& a, const CsrMatrix& b,
                                const HeteroPlatform& platform,
                                ThreadPool& pool);

/// GPU-only run of the [13] warp-per-row kernel (the t → ∞ endpoint of the
/// Fig. 8 threshold sweep).
RunResult run_gpu_only_hipc_kernel(const CsrMatrix& a, const CsrMatrix& b,
                                   const HeteroPlatform& platform,
                                   ThreadPool& pool);

}  // namespace hh
