#include "core/csrmm.hpp"

#include <algorithm>

#include "sparse/partition.hpp"
#include "spgemm/spgemm.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

// Synthesize the cost-relevant stats of multiplying the given A rows with a
// dense B of width n. Every output row is dense (width n), reads of B rows
// are long coalesced streams, and the accumulator is a register/row buffer —
// i.e. the regular, happy case for both devices.
ProductStats csrmm_stats(const CsrMatrix& a, std::span<const index_t> rows,
                         index_t n) {
  ProductStats s;
  for (const index_t r : rows) {
    const offset_t k = a.row_nnz(r);
    s.rows += 1;
    s.a_nnz += k;
    s.flops += k * n;
    s.max_row_flops = std::max<std::int64_t>(s.max_row_flops, k * n);
    s.warp_alu += k * ((n + 31) / 32);
    s.b_read_bytes += k * static_cast<std::int64_t>(n) * 8;
  }
  s.tuples = s.rows * n;   // dense output rows, written streamingly
  s.flops_shared = s.flops;  // row-buffer accumulation: no global scatter
  return s;
}

void csrmm_rows(const CsrMatrix& a, const DenseMatrix& b,
                std::span<const index_t> rows, DenseMatrix& c,
                ThreadPool& pool) {
  pool.parallel_for(
      static_cast<std::int64_t>(rows.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
          const index_t i = rows[idx];
          value_t* out = &c.at(i, 0);
          for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
            const value_t av = a.values[k];
            const value_t* brow = &b.data[static_cast<std::size_t>(
                                              a.indices[k]) *
                                          b.cols];
            for (index_t col = 0; col < b.cols; ++col) {
              out[col] += av * brow[col];
            }
          }
        }
      });
}

// Dense-streaming CPU rate: csrmm's inner loop is a SIMD axpy over a dense
// row — regular, prefetchable work at ~2 cycles/flop, nothing like the
// irregular SpGEMM path of CpuSim::kernel_time.
double cpu_csrmm_time(const CpuCostModel& cm, const ProductStats& s) {
  const double cycles = 2.0 * static_cast<double>(s.flops) +
                        20.0 * static_cast<double>(s.a_nnz) +
                        60.0 * static_cast<double>(s.rows);
  return cycles /
         (static_cast<double>(cm.cores) * cm.parallel_eff * cm.clock_ghz * 1e9);
}

// Dense-streaming GPU rate: fully coalesced reads of dense B rows run near
// the card's streaming bandwidth, not the irregular-access rate the SpGEMM
// kernel model uses.
double gpu_csrmm_time(const GpuCostModel& cm, const ProductStats& s) {
  if (s.rows == 0) return 0.0;
  const double bytes = static_cast<double>(s.b_read_bytes) +
                       12.0 * static_cast<double>(s.a_nnz) +
                       8.0 * static_cast<double>(s.tuples);
  const double dense_bw = 100e9;  // ~70% of the K20c's 140+ GB/s streaming
  return bytes / dense_bw + cm.kernel_launch_s;
}

// Predicted end-to-end time of a candidate partition, mirroring the charges
// of run_hh_csrmm (transfers included — for small instances shipping A and
// the dense B can outweigh any GPU contribution).
double predict_csrmm_total(const CsrMatrix& a, index_t dense_cols,
                           const RowPartition& p,
                           const HeteroPlatform& platform,
                           bool already_on_gpu) {
  const ProductStats cpu_stats = csrmm_stats(a, p.high_rows, dense_cols);
  const ProductStats gpu_stats = csrmm_stats(a, p.low_rows, dense_cols);
  const double t_cpu = cpu_csrmm_time(platform.cost_model().cpu, cpu_stats);
  const double t_gpu = gpu_csrmm_time(platform.cost_model().gpu, gpu_stats);
  // Resident pipelines (already_on_gpu) keep C on the device as well — the
  // next kernel in the chain consumes it there — so neither transfer applies.
  double transfer_in = 0, transfer_out = 0;
  if (gpu_stats.rows > 0 && !already_on_gpu) {
    transfer_in = platform.link().h2d().transfer_time(
        static_cast<double>(a.byte_size()) +
        8.0 * static_cast<double>(a.cols) * dense_cols);
    transfer_out = platform.link().d2h().transfer_time(
        static_cast<double>(gpu_stats.rows) * dense_cols * 8.0);
  }
  return std::max(t_cpu, transfer_in + t_gpu) + transfer_out;
}

// Pick t: start from the CPU's rate-proportional share of the flops (paper
// §VI: A_H×B on the CPU, A_L×B on the GPU), then keep it only if it beats
// the all-CPU degenerate (on small instances the PCIe cost can make any GPU
// involvement a loss).
offset_t pick_csrmm_threshold(const CsrMatrix& a, index_t dense_cols,
                              const HeteroPlatform& platform,
                              bool already_on_gpu) {
  std::vector<index_t> all(static_cast<std::size_t>(a.rows));
  for (index_t r = 0; r < a.rows; ++r) all[r] = r;
  const ProductStats total = csrmm_stats(a, all, dense_cols);
  if (total.flops == 0) return 1;
  const double t_cpu = cpu_csrmm_time(platform.cost_model().cpu, total);
  const double t_gpu = gpu_csrmm_time(platform.cost_model().gpu, total);
  if (t_cpu <= 0 || t_gpu <= 0) return 1;
  const double cpu_share = (1.0 / t_cpu) / (1.0 / t_cpu + 1.0 / t_gpu);

  std::vector<offset_t> sizes(static_cast<std::size_t>(a.rows));
  for (index_t r = 0; r < a.rows; ++r) sizes[r] = a.row_nnz(r);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const auto target = static_cast<offset_t>(
      static_cast<double>(a.nnz()) * cpu_share);
  offset_t balanced_t = 1;
  offset_t acc = 0;
  for (const offset_t k : sizes) {
    acc += k;
    if (acc >= target) {
      balanced_t = std::max<offset_t>(1, k);
      break;
    }
  }
  const double balanced_total = predict_csrmm_total(
      a, dense_cols, classify_rows(a, balanced_t), platform, already_on_gpu);
  const double cpu_only_total = predict_csrmm_total(
      a, dense_cols, classify_rows(a, 0), platform, already_on_gpu);
  return balanced_total <= cpu_only_total ? balanced_t : 0;
}

}  // namespace

DenseMatrix csrmm_reference(const CsrMatrix& a, const DenseMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for csrmm");
  DenseMatrix c(a.rows, b.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const value_t av = a.values[k];
      for (index_t col = 0; col < b.cols; ++col) {
        c.at(i, col) += av * b.at(a.indices[k], col);
      }
    }
  }
  return c;
}

CsrmmResult run_hh_csrmm(const CsrMatrix& a, const DenseMatrix& b,
                         const CsrmmOptions& options,
                         const HeteroPlatform& platform, ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for csrmm");
  CsrmmResult res;
  res.c = DenseMatrix(a.rows, b.cols);
  RunReport& rep = res.report;
  rep.algorithm = "HH-CSRMM";

  const offset_t t =
      options.threshold != 0
          ? std::max<offset_t>(options.threshold, 0)
          : pick_csrmm_threshold(a, b.cols, platform,
                                 options.matrices_already_on_gpu);
  const RowPartition p = classify_rows(a, t);
  rep.threshold_a = t;
  rep.high_rows_a = p.high_count();
  rep.phase1_s = platform.cpu().classify_time(a.rows);

  // Input transfer: A and the dense B go to the GPU — only if the GPU has
  // any rows to work on.
  rep.transfer_in_s =
      (p.low_count() > 0 && !options.matrices_already_on_gpu)
          ? platform.link().h2d().transfer_time(
                static_cast<double>(a.byte_size()) +
                static_cast<double>(b.byte_size()))
          : 0.0;

  // Phase II: CPU on A_H×B, GPU on A_L×B (overlapped). Dense-row streaming
  // is column-blockable by construction.
  csrmm_rows(a, b, p.high_rows, res.c, pool);
  csrmm_rows(a, b, p.low_rows, res.c, pool);
  const ProductStats cpu_stats = csrmm_stats(a, p.high_rows, b.cols);
  const ProductStats gpu_stats = csrmm_stats(a, p.low_rows, b.cols);
  const double t_cpu = cpu_csrmm_time(platform.cost_model().cpu, cpu_stats);
  const double t_gpu = gpu_csrmm_time(platform.cost_model().gpu, gpu_stats);
  rep.phase2_cpu_s = t_cpu;
  rep.phase2_gpu_s = t_gpu;

  // Phase III analogue: the earlier-finishing device steals rows from the
  // slower side until the completion times meet (work is row-divisible, so
  // the meeting point is the harmonic balance of the leftover).
  const double cpu_done = rep.phase1_s + t_cpu;
  const double gpu_done = rep.phase1_s + rep.transfer_in_s + t_gpu;
  double end = std::max(cpu_done, gpu_done);
  const double slack = std::abs(cpu_done - gpu_done);
  if (cpu_stats.flops + gpu_stats.flops > 0 && slack > 0) {
    const double cpu_rate =
        t_cpu > 0 ? static_cast<double>(cpu_stats.flops) / t_cpu : 0;
    const double gpu_rate =
        t_gpu > 0 ? static_cast<double>(gpu_stats.flops) / t_gpu : 0;
    if (cpu_rate > 0 && gpu_rate > 0) {
      // Moving x flops from the late device to the early one meets when
      // slack == x/rate_early + x/rate_late.
      const double meet = slack / (1.0 / cpu_rate + 1.0 / gpu_rate) *
                          (1.0 / std::max(cpu_rate, gpu_rate));
      end -= meet;
      rep.phase3_s = meet;
    }
  }
  rep.phase2_s = HeteroPlatform::overlap(t_cpu, t_gpu);

  // Output: the GPU's C rows come back dense (resident pipelines keep C on
  // the device for the next kernel in the chain).
  rep.transfer_out_s =
      (gpu_stats.rows > 0 && !options.matrices_already_on_gpu)
          ? platform.link().d2h().transfer_time(
                static_cast<double>(gpu_stats.rows) * b.cols * 8.0)
          : 0.0;
  rep.flops = cpu_stats.flops + gpu_stats.flops;
  rep.output_nnz = static_cast<std::int64_t>(res.c.data.size());
  rep.total_s = end + rep.transfer_out_s;
  return res;
}

}  // namespace hh
