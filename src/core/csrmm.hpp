// The paper's §VI extension: heterogeneous csrmm — sparse (scale-free) A
// times dense B. "Since B is dense, the work can be divided as multiplying
// the high-density submatrix A_H of A with B on the CPU and the low-density
// submatrix A_L of A with B on the GPU."
//
// There are no cross products and no merge: every output row is produced by
// exactly one device, so the algorithm is two overlapped kernels plus a
// workqueue tail for dynamic balance. As with SpGEMM, the numeric result is
// exact and times come from the simulated platform.
#pragma once

#include "core/report.hpp"
#include "device/platform.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "util/thread_pool.hpp"

namespace hh {

struct CsrmmOptions {
  offset_t threshold = 0;  // 0 = rate-proportional pick; < 0 forces all-CPU
  // Iterative workloads (e.g. block Krylov, SpMM-chains) keep A and B
  // resident on the device; without the PCIe charge the heterogeneous split
  // pays off at much lower densities.
  bool matrices_already_on_gpu = false;
};

struct CsrmmResult {
  DenseMatrix c;
  RunReport report;
};

/// Heterogeneous A (CSR) × B (dense): A_H×B on the CPU, A_L×B on the GPU,
/// overlapped; whichever device finishes first steals remaining rows of the
/// other side in work units.
CsrmmResult run_hh_csrmm(const CsrMatrix& a, const DenseMatrix& b,
                         const CsrmmOptions& options,
                         const HeteroPlatform& platform, ThreadPool& pool);

/// Reference dense result for tests (single pass, no devices).
DenseMatrix csrmm_reference(const CsrMatrix& a, const DenseMatrix& b);

}  // namespace hh
