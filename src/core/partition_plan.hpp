// Phase I of Algorithm HH-CPU: identify thresholds t_A, t_B and the logical
// submatrices A_H, A_L, B_H, B_L, and charge its (small) simulated cost:
// row sizes are shipped to the GPU, which computes the Boolean
// high-density array (paper §III-A: "embarrassingly parallel ... we perform
// this computation on GPU. For this computation we need only row sizes").
#pragma once

#include "device/platform.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace hh {

struct PartitionPlan {
  RowPartition a;
  RowPartition b;
  // phase1_s = identify_s + classify_s. The split matters to the runtime's
  // partition-plan cache: a cache hit reuses the thresholds and skips the
  // identification pass but still pays the per-request classification
  // (row sizes shipped, Boolean arrays built).
  double phase1_s = 0;
  double identify_s = 0;    // CPU histogram scan / threshold identification
  double classify_s = 0;    // row-size transfer + GPU Boolean-array build
  double ws_bh_bytes = 0;   // working set of B_H (12 bytes / nnz)
  double ws_bl_bytes = 0;   // working set of B_L
  double ws_b_bytes = 0;    // all of B
};

/// Build the plan for thresholds (t_a, t_b). Pass 0 for either to have the
/// analytic picker choose it (both zeros share one picked t, as in the
/// paper's per-matrix sweep).
PartitionPlan make_partition_plan(const CsrMatrix& a, const CsrMatrix& b,
                                  offset_t t_a, offset_t t_b,
                                  const HeteroPlatform& platform);

}  // namespace hh
