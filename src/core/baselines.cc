#include "core/baselines.hpp"

#include <numeric>

#include "primitives/tuple_merge.hpp"
#include "sched/chunk.hpp"
#include "sched/static_partition.hpp"
#include "spgemm/spgemm.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

std::vector<index_t> iota_rows(index_t n) {
  std::vector<index_t> rows(static_cast<std::size_t>(n));
  std::iota(rows.begin(), rows.end(), index_t{0});
  return rows;
}

double input_transfer(const CsrMatrix& a, const CsrMatrix& b,
                      const HeteroPlatform& platform) {
  double t = platform.link().h2d().matrix_transfer_time(a);
  if (&a != &b) t += platform.link().h2d().matrix_transfer_time(b);
  return t;
}

RunResult finish_workqueue_run(const char* name, WorkQueueResult&& queue,
                               double transfer_in,
                               const HeteroPlatform& platform,
                               ThreadPool& pool) {
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = name;
  rep.transfer_in_s = transfer_in;
  rep.phase3_cpu_s = queue.cpu_busy;
  rep.phase3_gpu_s = queue.gpu_busy;
  rep.phase3_s = HeteroPlatform::overlap(queue.cpu_busy, queue.gpu_busy);
  rep.queue_cpu_units = queue.cpu_units;
  rep.queue_gpu_units = queue.gpu_units;
  rep.flops = queue.cpu_stats.flops + queue.gpu_stats.flops;

  rep.transfer_out_s =
      platform.link().d2h().tuple_transfer_time(queue.gpu_stats.tuples);
  res.c = merged_coo_to_csr(queue.tuples, pool, &rep.merge);
  rep.phase4_s = platform.cpu().merge_time(rep.merge.tuples_in);
  rep.output_nnz = res.c.nnz();
  rep.total_s = queue.end_time() + rep.transfer_out_s + rep.phase4_s;
  return res;
}

}  // namespace

RunResult run_hipc2012(const CsrMatrix& a, const CsrMatrix& b,
                       const HeteroPlatform& platform, ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = "HiPC2012";

  const StaticSplit split = balance_static_split(a, b, platform);
  const double transfer_in = input_transfer(a, b, platform);
  rep.transfer_in_s = transfer_in;

  std::vector<index_t> all = iota_rows(a.rows);
  const std::span<const index_t> cpu_rows(all.data(),
                                          static_cast<std::size_t>(split.split_row));
  const std::span<const index_t> gpu_rows(
      all.data() + split.split_row,
      static_cast<std::size_t>(a.rows - split.split_row));

  ProductStats cpu_stats, gpu_stats;
  CooMatrix cpu_tuples =
      partial_product_tuples(a, b, cpu_rows, {}, true, pool, &cpu_stats);
  CooMatrix gpu_tuples =
      partial_product_tuples(a, b, gpu_rows, {}, true, pool, &gpu_stats);

  const double ws_full = 12.0 * static_cast<double>(b.nnz());
  const double t_cpu = platform.cpu().kernel_time(cpu_stats, ws_full, true);
  const double t_gpu = transfer_in + platform.gpu().kernel_time(gpu_stats);
  rep.phase2_cpu_s = t_cpu;
  rep.phase2_gpu_s = t_gpu - transfer_in;
  rep.phase2_s = HeteroPlatform::overlap(t_cpu, t_gpu - transfer_in);
  rep.flops = cpu_stats.flops + gpu_stats.flops;

  // Devices own disjoint row blocks, so "merging ... is straight-forward"
  // (paper §III-D); still, GPU tuples cross PCIe and both blocks are
  // assembled into one CSR.
  rep.transfer_out_s = platform.link().d2h().tuple_transfer_time(gpu_stats.tuples);
  CooMatrix all_tuples = std::move(cpu_tuples);
  all_tuples.append(gpu_tuples);
  res.c = merged_coo_to_csr(all_tuples, pool, &rep.merge);
  rep.phase4_s = platform.cpu().merge_time(rep.merge.tuples_in);
  rep.output_nnz = res.c.nnz();
  rep.total_s = HeteroPlatform::overlap(t_cpu, t_gpu) + rep.transfer_out_s +
                rep.phase4_s;
  return res;
}

RunResult run_unsorted_workqueue(const CsrMatrix& a, const CsrMatrix& b,
                                 const WorkQueueConfig& cfg,
                                 const HeteroPlatform& platform,
                                 ThreadPool& pool) {
  const double transfer_in = input_transfer(a, b, platform);
  const std::vector<WorkEntry> entries = natural_order_entries(a);
  const MaskSpec masks[1] = {{{}, true, 12.0 * static_cast<double>(b.nnz())}};
  WorkQueueResult queue = run_workqueue(a, b, entries, masks, cfg,
                                        /*cpu_start=*/0.0,
                                        /*gpu_start=*/transfer_in, platform,
                                        pool);
  return finish_workqueue_run("Unsorted-Workqueue", std::move(queue),
                              transfer_in, platform, pool);
}

RunResult run_sorted_workqueue(const CsrMatrix& a, const CsrMatrix& b,
                               const WorkQueueConfig& cfg,
                               const HeteroPlatform& platform,
                               ThreadPool& pool) {
  const double transfer_in = input_transfer(a, b, platform);
  const std::vector<WorkEntry> entries = sorted_by_density_entries(a);
  const MaskSpec masks[1] = {{{}, true, 12.0 * static_cast<double>(b.nnz())}};
  WorkQueueResult queue = run_workqueue(a, b, entries, masks, cfg,
                                        /*cpu_start=*/0.0,
                                        /*gpu_start=*/transfer_in, platform,
                                        pool);
  return finish_workqueue_run("Sorted-Workqueue", std::move(queue),
                              transfer_in, platform, pool);
}

RunResult run_cpu_only_mkl(const CsrMatrix& a, const CsrMatrix& b,
                           const HeteroPlatform& platform, ThreadPool& pool) {
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = "MKL (CPU only)";
  const std::vector<index_t> rows = iota_rows(a.rows);
  ProductStats stats;
  CooMatrix tuples = partial_product_tuples(a, b, rows, {}, true, pool, &stats);
  const double ws_full = 12.0 * static_cast<double>(b.nnz());
  rep.phase2_cpu_s = platform.cpu().library_time(stats, ws_full);
  rep.phase2_s = rep.phase2_cpu_s;
  rep.flops = stats.flops;
  res.c = merged_coo_to_csr(tuples, pool, &rep.merge);
  rep.output_nnz = res.c.nnz();
  rep.total_s = rep.phase2_s;  // MKL builds CSR in place: no merge phase
  return res;
}

RunResult run_gpu_only_cusparse(const CsrMatrix& a, const CsrMatrix& b,
                                const HeteroPlatform& platform,
                                ThreadPool& pool) {
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = "cuSPARSE (GPU only)";
  rep.transfer_in_s = input_transfer(a, b, platform);
  const std::vector<index_t> rows = iota_rows(a.rows);
  ProductStats stats;
  CooMatrix tuples = partial_product_tuples(a, b, rows, {}, true, pool, &stats);
  rep.phase2_gpu_s = platform.gpu().generic_time(stats);
  rep.phase2_s = rep.phase2_gpu_s;
  rep.flops = stats.flops;
  res.c = merged_coo_to_csr(tuples, pool, &rep.merge);
  rep.transfer_out_s =
      platform.link().d2h().tuple_transfer_time(static_cast<std::int64_t>(res.c.nnz()));
  rep.output_nnz = res.c.nnz();
  rep.total_s = rep.transfer_in_s + rep.phase2_s + rep.transfer_out_s;
  return res;
}

RunResult run_gpu_only_hipc_kernel(const CsrMatrix& a, const CsrMatrix& b,
                                   const HeteroPlatform& platform,
                                   ThreadPool& pool) {
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = "HiPC2012 GPU kernel (GPU only)";
  rep.transfer_in_s = input_transfer(a, b, platform);
  const std::vector<index_t> rows = iota_rows(a.rows);
  ProductStats stats;
  CooMatrix tuples = partial_product_tuples(a, b, rows, {}, true, pool, &stats);
  rep.phase2_gpu_s = platform.gpu().kernel_time(stats);
  rep.phase2_s = rep.phase2_gpu_s;
  rep.flops = stats.flops;
  res.c = merged_coo_to_csr(tuples, pool, &rep.merge);
  rep.transfer_out_s = platform.link().d2h().tuple_transfer_time(stats.tuples);
  rep.output_nnz = res.c.nnz();
  rep.total_s = rep.transfer_in_s + rep.phase2_s + rep.transfer_out_s +
                platform.cpu().merge_time(rep.merge.tuples_in);
  return res;
}

}  // namespace hh
