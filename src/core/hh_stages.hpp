// Algorithm HH-CPU decomposed into schedulable stages.
//
// run_hh_cpu() executes the four phases back-to-back with the seed's serial
// transfer → compute → transfer accounting. The pipelined service runtime
// (src/runtime/) instead schedules each stage on its own resource timeline
// (CPU, GPU, H2D link, D2H link), overlapping stages of *different* requests.
// Both drivers call the functions below, so the numeric work — and therefore
// the output matrix — is identical; only the clock bookkeeping differs.
//
// Stage → resource map used by the runtime:
//   make_partition_plan (Phase I)   CPU (identification) [+ classify charge]
//   run_phase2                      CPU (A_H×B_H) ∥ GPU (A_L×B_L)
//   run_phase3                      CPU + GPU jointly (double-ended queue)
//   D2H tuple shipment              D2H channel
//   run_phase4                      CPU (radix sort + segmented reduce)
#pragma once

#include "core/partition_plan.hpp"
#include "device/platform.hpp"
#include "primitives/tuple_merge.hpp"
#include "sched/workqueue.hpp"
#include "sparse/csr.hpp"
#include "spgemm/workspace.hpp"
#include "util/thread_pool.hpp"

namespace hh {

/// Phase II: CPU computes A_H×B_H, GPU computes A_L×B_L. Products with an
/// empty side are skipped (no phantom per-row cost). Durations are per-device
/// busy times; the caller decides how they overlap.
struct Phase2Result {
  CooMatrix hh_tuples;  // CPU side (pool-backed when a workspace is given)
  CooMatrix ll_tuples;  // GPU side
  ProductStats hh_stats;
  ProductStats ll_stats;
  double cpu_s = 0;
  double gpu_s = 0;
};

Phase2Result run_phase2(const CsrMatrix& a, const CsrMatrix& b,
                        const PartitionPlan& plan,
                        const HeteroPlatform& platform, ThreadPool& pool,
                        WorkspacePool* workspace = nullptr);

/// Phase III: the double-ended workqueue over A_L×B_H (CPU end) and A_H×B_L
/// (GPU end). Device clocks enter at cpu_start/gpu_start; cross products
/// whose B side is empty are skipped outright.
WorkQueueResult run_phase3(const CsrMatrix& a, const CsrMatrix& b,
                           const PartitionPlan& plan,
                           const WorkQueueConfig& cfg, double cpu_start,
                           double gpu_start, const HeteroPlatform& platform,
                           ThreadPool& pool,
                           WorkspacePool* workspace = nullptr);

/// Phase IV: merge every ⟨r,c,v⟩ tuple into the final CSR. Consumes the
/// phase-2 and queue tuple buffers (releasing pooled ones back to
/// `workspace`). cpu_s is the merge time on the CPU model; the D2H shipment
/// of the GPU tuples is charged separately by the caller.
struct MergeResult {
  CsrMatrix c;
  MergeStats merge;
  double cpu_s = 0;
};

MergeResult run_phase4(Phase2Result&& p2, WorkQueueResult&& queue,
                       const HeteroPlatform& platform, ThreadPool& pool,
                       WorkspacePool* workspace = nullptr);

}  // namespace hh
