#include "core/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "core/hh_cpu.hpp"
#include "sparse/partition.hpp"
#include "sparse/row_stats.hpp"
#include "spgemm/spgemm.hpp"
#include "util/check.hpp"

namespace hh {

std::vector<offset_t> threshold_candidates(const CsrMatrix& m,
                                           int max_candidates) {
  HH_CHECK(max_candidates >= 2);
  // Degenerate inputs (no rows, no nonzeros) have no row-size range to
  // cover; a minimal two-point grid keeps every sweep well-defined.
  const RowStats s = (m.rows > 0 && m.nnz() > 0) ? row_stats(m) : RowStats{};
  const offset_t lo = std::max<offset_t>(2, s.min + 1);
  const offset_t hi = std::max<offset_t>(lo + 1, s.max + 1);
  std::vector<offset_t> out;
  const double ratio = std::pow(static_cast<double>(hi) /
                                    static_cast<double>(lo),
                                1.0 / (max_candidates - 1));
  double x = static_cast<double>(lo);
  for (int i = 0; i < max_candidates; ++i) {
    const auto t = static_cast<offset_t>(std::llround(x));
    if (out.empty() || t > out.back()) out.push_back(t);
    x *= ratio;
  }
  // All-equal row lengths collapse the log grid onto one point; hi > lo by
  // construction, so the endpoint always yields a second distinct candidate.
  if (out.size() < 2) out.push_back(hi);
  HH_CHECK(out.front() >= 2);
  return out;
}

std::vector<offset_t> threshold_grid(const CsrMatrix& a, const CsrMatrix& b,
                                     int max_candidates) {
  std::vector<offset_t> cand = threshold_candidates(a, max_candidates);
  if (&a != &b) {
    const std::vector<offset_t> cb = threshold_candidates(b, max_candidates);
    cand.insert(cand.end(), cb.begin(), cb.end());
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  }
  return cand;
}

PredictedBreakdown predict_breakdown(const CsrMatrix& a, const CsrMatrix& b,
                                     offset_t t,
                                     const HeteroPlatform& platform,
                                     const CostCorrection& corr) {
  const RowPartition pa = classify_rows(a, t);
  const RowPartition pb = classify_rows(b, t);

  const double ws_bh = 12.0 * static_cast<double>(pb.high_nnz);
  const double ws_bl = 12.0 * static_cast<double>(pb.low_nnz);

  // Phase II products (empty sides skipped, as in run_hh_cpu).
  const ProductStats hh =
      (pa.high_count() > 0 && pb.high_count() > 0)
          ? estimate_partial_product(a, b, pa.high_rows, pb.is_high, true)
          : ProductStats{};
  const ProductStats ll =
      (pa.low_count() > 0 && pb.low_count() > 0)
          ? estimate_partial_product(a, b, pa.low_rows, pb.is_high, false)
          : ProductStats{};
  const double t2_cpu =
      corr.cpu * platform.cpu().kernel_time(hh, ws_bh, true, /*blockable=*/true);
  const double t2_gpu_kernel = corr.gpu * platform.gpu().kernel_time(ll);
  double t2_gpu = t2_gpu_kernel;
  // The GPU only waits for the input transfer if this threshold gives it
  // any work at all; a CPU-only partition skips the link entirely.
  double transfer_in = 0;
  if (ll.flops > 0 || pa.high_count() < a.rows || pb.high_count() < b.rows) {
    transfer_in = platform.link().h2d().matrix_transfer_time(a);
    if (&a != &b) transfer_in += platform.link().h2d().matrix_transfer_time(b);
    transfer_in *= corr.h2d;
    t2_gpu += transfer_in;
  }
  const double t2 = HeteroPlatform::overlap(t2_cpu, t2_gpu);

  // Phase III products, shared dynamically: if the CPU alone would take Tc
  // and the GPU alone Tg for the whole phase-III workload, the workqueue
  // approaches the harmonic time Tc·Tg/(Tc+Tg).
  // Cross products with an empty B side are skipped by run_hh_cpu; mirror
  // that here so predictions rank thresholds the way the algorithm behaves.
  const ProductStats lh =
      pb.high_count() > 0
          ? estimate_partial_product(a, b, pa.low_rows, pb.is_high, true)
          : ProductStats{};
  const ProductStats hl =
      pb.low_count() > 0
          ? estimate_partial_product(a, b, pa.high_rows, pb.is_high, false)
          : ProductStats{};
  ProductStats p3 = lh;
  p3.accumulate(hl);
  const double t3_cpu =
      corr.cpu *
      (platform.cpu().kernel_time(lh, ws_bh, true, /*blockable=*/true) +
       platform.cpu().kernel_time(hl, ws_bl, true, /*blockable=*/false));
  const double t3_gpu = corr.gpu * platform.gpu().kernel_time(p3);
  const double t3 = (t3_cpu <= 0 || t3_gpu <= 0)
                        ? std::max(t3_cpu, t3_gpu)
                        : t3_cpu * t3_gpu / (t3_cpu + t3_gpu);

  // Phase IV on the tuple upper bound, plus the GPU→CPU result transfer:
  // tuples produced on the GPU cross PCIe, so giving the CPU work also
  // saves link time — the ranking must see that. The GPU's share of the
  // Phase III tuples is its share of the harmonic split, t3/t3_gpu.
  const std::int64_t tuples = hh.tuples + ll.tuples + p3.tuples;
  const double t4 = corr.cpu * platform.cpu().merge_time(tuples);
  double gpu_tuples = static_cast<double>(ll.tuples);
  if (t3_gpu > 0) gpu_tuples += static_cast<double>(p3.tuples) * t3 / t3_gpu;
  const double t_out =
      corr.d2h * platform.link().d2h().transfer_time(16.0 * gpu_tuples);

  PredictedBreakdown out;
  out.cpu_s = t2_cpu + t3 + t4;
  out.gpu_s = t2_gpu_kernel + t3;
  out.h2d_s = transfer_in;
  out.d2h_s = t_out;
  out.total_s = t2 + t3 + t4 + t_out;
  return out;
}

double predict_total_time(const CsrMatrix& a, const CsrMatrix& b, offset_t t,
                          const HeteroPlatform& platform,
                          const CostCorrection& corr) {
  return predict_breakdown(a, b, t, platform, corr).total_s;
}

ThresholdSweep sweep_thresholds(const CsrMatrix& a, const CsrMatrix& b,
                                const HeteroPlatform& platform,
                                const CostCorrection& corr) {
  ThresholdSweep sweep;
  sweep.grid = threshold_grid(a, b);
  sweep.predicted_s.reserve(sweep.grid.size());
  for (std::size_t i = 0; i < sweep.grid.size(); ++i) {
    sweep.predicted_s.push_back(
        predict_total_time(a, b, sweep.grid[i], platform, corr));
    if (sweep.predicted_s[i] < sweep.predicted_s[sweep.best]) sweep.best = i;
  }
  HH_CHECK(!sweep.grid.empty());
  return sweep;
}

ThresholdChoice pick_threshold_analytic(const CsrMatrix& a,
                                        const CsrMatrix& b,
                                        const HeteroPlatform& platform,
                                        const CostCorrection& corr) {
  const ThresholdChoice best = sweep_thresholds(a, b, platform, corr).choice();
  HH_CHECK(best.predicted_s >= 0);
  return best;
}

ThresholdChoice pick_threshold_empirical(const CsrMatrix& a,
                                         const CsrMatrix& b,
                                         const HeteroPlatform& platform,
                                         ThreadPool& pool) {
  const std::vector<offset_t> cand = threshold_grid(a, b);

  ThresholdChoice best;
  best.predicted_s = -1;
  for (const offset_t t : cand) {
    HhCpuOptions options;
    options.threshold_a = t;
    options.threshold_b = t;
    const RunResult run = run_hh_cpu(a, b, options, platform, pool);
    if (best.predicted_s < 0 || run.report.total_s < best.predicted_s) {
      best.t = t;
      best.predicted_s = run.report.total_s;
    }
  }
  HH_CHECK(best.predicted_s >= 0);
  return best;
}

}  // namespace hh
