#include "core/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "core/hh_cpu.hpp"
#include "sparse/partition.hpp"
#include "sparse/row_stats.hpp"
#include "spgemm/spgemm.hpp"
#include "util/check.hpp"

namespace hh {

std::vector<offset_t> threshold_candidates(const CsrMatrix& m,
                                           int max_candidates) {
  HH_CHECK(max_candidates >= 2);
  const RowStats s = row_stats(m);
  const offset_t lo = std::max<offset_t>(2, s.min + 1);
  const offset_t hi = std::max<offset_t>(lo + 1, s.max + 1);
  std::vector<offset_t> out;
  const double ratio = std::pow(static_cast<double>(hi) /
                                    static_cast<double>(lo),
                                1.0 / (max_candidates - 1));
  double x = static_cast<double>(lo);
  for (int i = 0; i < max_candidates; ++i) {
    const auto t = static_cast<offset_t>(std::llround(x));
    if (out.empty() || t > out.back()) out.push_back(t);
    x *= ratio;
  }
  return out;
}

double predict_total_time(const CsrMatrix& a, const CsrMatrix& b, offset_t t,
                          const HeteroPlatform& platform) {
  const RowPartition pa = classify_rows(a, t);
  const RowPartition pb = classify_rows(b, t);

  const double ws_bh = 12.0 * static_cast<double>(pb.high_nnz);
  const double ws_bl = 12.0 * static_cast<double>(pb.low_nnz);

  // Phase II products (empty sides skipped, as in run_hh_cpu).
  const ProductStats hh =
      (pa.high_count() > 0 && pb.high_count() > 0)
          ? estimate_partial_product(a, b, pa.high_rows, pb.is_high, true)
          : ProductStats{};
  const ProductStats ll =
      (pa.low_count() > 0 && pb.low_count() > 0)
          ? estimate_partial_product(a, b, pa.low_rows, pb.is_high, false)
          : ProductStats{};
  const double t2_cpu =
      platform.cpu().kernel_time(hh, ws_bh, true, /*blockable=*/true);
  double t2_gpu = platform.gpu().kernel_time(ll);
  // The GPU only waits for the input transfer if this threshold gives it
  // any work at all; a CPU-only partition skips the link entirely.
  if (ll.flops > 0 || pa.high_count() < a.rows || pb.high_count() < b.rows) {
    double transfer_in = platform.link().h2d().matrix_transfer_time(a);
    if (&a != &b) transfer_in += platform.link().h2d().matrix_transfer_time(b);
    t2_gpu += transfer_in;
  }
  const double t2 = HeteroPlatform::overlap(t2_cpu, t2_gpu);

  // Phase III products, shared dynamically: if the CPU alone would take Tc
  // and the GPU alone Tg for the whole phase-III workload, the workqueue
  // approaches the harmonic time Tc·Tg/(Tc+Tg).
  // Cross products with an empty B side are skipped by run_hh_cpu; mirror
  // that here so predictions rank thresholds the way the algorithm behaves.
  const ProductStats lh =
      pb.high_count() > 0
          ? estimate_partial_product(a, b, pa.low_rows, pb.is_high, true)
          : ProductStats{};
  const ProductStats hl =
      pb.low_count() > 0
          ? estimate_partial_product(a, b, pa.high_rows, pb.is_high, false)
          : ProductStats{};
  ProductStats p3 = lh;
  p3.accumulate(hl);
  const double t3_cpu =
      platform.cpu().kernel_time(lh, ws_bh, true, /*blockable=*/true) +
      platform.cpu().kernel_time(hl, ws_bl, true, /*blockable=*/false);
  const double t3_gpu = platform.gpu().kernel_time(p3);
  const double t3 = (t3_cpu <= 0 || t3_gpu <= 0)
                        ? std::max(t3_cpu, t3_gpu)
                        : t3_cpu * t3_gpu / (t3_cpu + t3_gpu);

  // Phase IV on the tuple upper bound, plus the GPU→CPU result transfer:
  // tuples produced on the GPU cross PCIe, so giving the CPU work also
  // saves link time — the ranking must see that. The GPU's share of the
  // Phase III tuples is its share of the harmonic split, t3/t3_gpu.
  const std::int64_t tuples = hh.tuples + ll.tuples + p3.tuples;
  const double t4 = platform.cpu().merge_time(tuples);
  double gpu_tuples = static_cast<double>(ll.tuples);
  if (t3_gpu > 0) gpu_tuples += static_cast<double>(p3.tuples) * t3 / t3_gpu;
  const double t_out = platform.link().d2h().transfer_time(16.0 * gpu_tuples);
  return t2 + t3 + t4 + t_out;
}

ThresholdChoice pick_threshold_analytic(const CsrMatrix& a,
                                        const CsrMatrix& b,
                                        const HeteroPlatform& platform) {
  // Shared candidate grid: union of both matrices' grids.
  std::vector<offset_t> cand = threshold_candidates(a);
  const std::vector<offset_t> cb = threshold_candidates(b);
  cand.insert(cand.end(), cb.begin(), cb.end());
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

  ThresholdChoice best;
  best.predicted_s = -1;
  for (const offset_t t : cand) {
    const double pred = predict_total_time(a, b, t, platform);
    if (best.predicted_s < 0 || pred < best.predicted_s) {
      best.t = t;
      best.predicted_s = pred;
    }
  }
  HH_CHECK(best.predicted_s >= 0);
  return best;
}

ThresholdChoice pick_threshold_empirical(const CsrMatrix& a,
                                         const CsrMatrix& b,
                                         const HeteroPlatform& platform,
                                         ThreadPool& pool) {
  std::vector<offset_t> cand = threshold_candidates(a);
  const std::vector<offset_t> cb = threshold_candidates(b);
  cand.insert(cand.end(), cb.begin(), cb.end());
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

  ThresholdChoice best;
  best.predicted_s = -1;
  for (const offset_t t : cand) {
    HhCpuOptions options;
    options.threshold_a = t;
    options.threshold_b = t;
    const RunResult run = run_hh_cpu(a, b, options, platform, pool);
    if (best.predicted_s < 0 || run.report.total_s < best.predicted_s) {
      best.t = t;
      best.predicted_s = run.report.total_s;
    }
  }
  HH_CHECK(best.predicted_s >= 0);
  return best;
}

}  // namespace hh
