// Algorithm HH-CPU (paper Algorithm 1): heterogeneous SpGEMM for scale-free
// matrices on a CPU+GPU platform.
//
//   Phase I    identify thresholds and the A_H/A_L, B_H/B_L views
//   Phase II   CPU: A_H×B_H (cache-friendly dense×dense)  ∥
//              GPU: A_L×B_L (many tiny independent row tasks)
//   Phase III  double-ended workqueue over A_L×B_H (CPU end) and
//              A_H×B_L (GPU end); a device finishing its side steals
//   Phase IV   merge all ⟨r,c,v⟩ tuples into the final CSR; GPU partials
//              are shipped back over PCIe
//
// Numeric work executes on the host; time is charged on the simulated
// platform (DESIGN.md §1). The returned matrix is exact.
#pragma once

#include "core/partition_plan.hpp"
#include "core/report.hpp"
#include "device/platform.hpp"
#include "sched/workqueue.hpp"
#include "sparse/csr.hpp"
#include "spgemm/workspace.hpp"
#include "util/thread_pool.hpp"

namespace hh {

struct HhCpuOptions {
  offset_t threshold_a = 0;  // 0 = analytic pick (shared t, as in Fig. 8)
  offset_t threshold_b = 0;
  WorkQueueConfig queue;
  bool matrices_already_on_gpu = false;  // skip the input transfer charge
  WorkspacePool* workspace = nullptr;    // optional accumulator/buffer pool
};

/// Run Algorithm HH-CPU for C = A × B. When &a == &b (the paper multiplies
/// each matrix with itself) the input is transferred once.
RunResult run_hh_cpu(const CsrMatrix& a, const CsrMatrix& b,
                     const HhCpuOptions& options, const HeteroPlatform& platform,
                     ThreadPool& pool);

}  // namespace hh
