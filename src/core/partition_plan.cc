#include "core/partition_plan.hpp"

#include "core/threshold.hpp"

namespace hh {

PartitionPlan make_partition_plan(const CsrMatrix& a, const CsrMatrix& b,
                                  offset_t t_a, offset_t t_b,
                                  const HeteroPlatform& platform) {
  PartitionPlan plan;
  if (t_a <= 0 || t_b <= 0) {
    const ThresholdChoice choice = pick_threshold_analytic(a, b, platform);
    if (t_a <= 0) t_a = choice.t;
    if (t_b <= 0) t_b = choice.t;
  }
  plan.a = classify_rows(a, t_a);
  plan.b = classify_rows(b, t_b);
  plan.ws_bh_bytes = 12.0 * static_cast<double>(plan.b.high_nnz);
  plan.ws_bl_bytes = 12.0 * static_cast<double>(plan.b.low_nnz);
  plan.ws_b_bytes = 12.0 * static_cast<double>(b.nnz());

  // Row sizes (4 bytes each) to the GPU, Boolean arrays built there, and a
  // histogram pass on the CPU for the threshold identification itself.
  const std::int64_t rows =
      static_cast<std::int64_t>(a.rows) + static_cast<std::int64_t>(b.rows);
  plan.classify_s =
      platform.link().h2d().transfer_time(4.0 * static_cast<double>(rows)) +
      platform.gpu().classify_time(rows);
  plan.identify_s = platform.cpu().classify_time(rows);
  plan.phase1_s = plan.identify_s + plan.classify_s;
  return plan;
}

}  // namespace hh
