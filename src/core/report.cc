#include "core/report.hpp"

#include <cstdio>
#include <sstream>

namespace hh {
namespace {

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

// Algorithm names are plain ASCII, but escape the JSON specials anyway.
std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << algorithm << ": total " << ms(total_s) << "\n";
  os << "  phase I   " << ms(phase1_s) << "  (t_A=" << threshold_a
     << ", t_B=" << threshold_b << ", |A_H|=" << high_rows_a
     << ", |B_H|=" << high_rows_b << ")\n";
  os << "  phase II  " << ms(phase2_s) << "  (cpu " << ms(phase2_cpu_s)
     << ", gpu " << ms(phase2_gpu_s) << ")\n";
  os << "  phase III " << ms(phase3_s) << "  (cpu " << ms(phase3_cpu_s)
     << ", gpu " << ms(phase3_gpu_s) << ", units " << queue_cpu_units << "/"
     << queue_gpu_units << ")\n";
  os << "  phase IV  " << ms(phase4_s) << "  (" << merge.tuples_in
     << " tuples -> " << merge.tuples_out << ")\n";
  os << "  transfers in " << ms(transfer_in_s) << ", out "
     << ms(transfer_out_s) << "\n";
  os << "  flops " << flops << ", output nnz " << output_nnz << "\n";
  return os.str();
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  os << "{\"algorithm\":" << jstr(algorithm)
     << ",\"total_s\":" << jnum(total_s)
     << ",\"phase1_s\":" << jnum(phase1_s)
     << ",\"phase2_s\":" << jnum(phase2_s)
     << ",\"phase3_s\":" << jnum(phase3_s)
     << ",\"phase4_s\":" << jnum(phase4_s)
     << ",\"transfer_in_s\":" << jnum(transfer_in_s)
     << ",\"transfer_out_s\":" << jnum(transfer_out_s)
     << ",\"phase2_cpu_s\":" << jnum(phase2_cpu_s)
     << ",\"phase2_gpu_s\":" << jnum(phase2_gpu_s)
     << ",\"phase3_cpu_s\":" << jnum(phase3_cpu_s)
     << ",\"phase3_gpu_s\":" << jnum(phase3_gpu_s)
     << ",\"threshold_a\":" << threshold_a
     << ",\"threshold_b\":" << threshold_b
     << ",\"high_rows_a\":" << high_rows_a
     << ",\"high_rows_b\":" << high_rows_b << ",\"flops\":" << flops
     << ",\"output_nnz\":" << output_nnz
     << ",\"merge_tuples_in\":" << merge.tuples_in
     << ",\"merge_tuples_out\":" << merge.tuples_out
     << ",\"queue_cpu_units\":" << queue_cpu_units
     << ",\"queue_gpu_units\":" << queue_gpu_units << "}";
  return os.str();
}

}  // namespace hh
