#include "core/report.hpp"

#include <cstdio>
#include <sstream>

namespace hh {
namespace {

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

}  // namespace

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << algorithm << ": total " << ms(total_s) << "\n";
  os << "  phase I   " << ms(phase1_s) << "  (t_A=" << threshold_a
     << ", t_B=" << threshold_b << ", |A_H|=" << high_rows_a
     << ", |B_H|=" << high_rows_b << ")\n";
  os << "  phase II  " << ms(phase2_s) << "  (cpu " << ms(phase2_cpu_s)
     << ", gpu " << ms(phase2_gpu_s) << ")\n";
  os << "  phase III " << ms(phase3_s) << "  (cpu " << ms(phase3_cpu_s)
     << ", gpu " << ms(phase3_gpu_s) << ", units " << queue_cpu_units << "/"
     << queue_gpu_units << ")\n";
  os << "  phase IV  " << ms(phase4_s) << "  (" << merge.tuples_in
     << " tuples -> " << merge.tuples_out << ")\n";
  os << "  transfers in " << ms(transfer_in_s) << ", out "
     << ms(transfer_out_s) << "\n";
  os << "  flops " << flops << ", output nnz " << output_nnz << "\n";
  return os.str();
}

}  // namespace hh
