#include "core/hh_cpu.hpp"

#include <algorithm>

#include "primitives/tuple_merge.hpp"
#include "sched/chunk.hpp"
#include "util/check.hpp"

namespace hh {

RunResult run_hh_cpu(const CsrMatrix& a, const CsrMatrix& b,
                     const HhCpuOptions& options,
                     const HeteroPlatform& platform, ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = "HH-CPU";

  // ---- Phase I: thresholds + classification ----
  const PartitionPlan plan = make_partition_plan(
      a, b, options.threshold_a, options.threshold_b, platform);
  rep.phase1_s = plan.phase1_s;
  rep.threshold_a = plan.a.threshold;
  rep.threshold_b = plan.b.threshold;
  rep.high_rows_a = plan.a.high_count();
  rep.high_rows_b = plan.b.high_count();

  // Input transfer: A and B go to the GPU whole, with the Boolean arrays
  // (§IV-A: the matrices are not physically split).
  double transfer_in = 0;
  if (!options.matrices_already_on_gpu) {
    transfer_in = platform.link().matrix_transfer_time(a);
    if (&a != &b) transfer_in += platform.link().matrix_transfer_time(b);
  }
  rep.transfer_in_s = transfer_in;

  // ---- Phase II: CPU A_H×B_H ∥ GPU A_L×B_L ----
  // A product with an empty side contributes nothing; skip it so degenerate
  // partitions charge no phantom per-row cost.
  ProductStats hh_stats, ll_stats;
  CooMatrix hh_tuples(a.rows, b.cols), ll_tuples(a.rows, b.cols);
  if (plan.a.high_count() > 0 && plan.b.high_count() > 0) {
    hh_tuples = partial_product_tuples(a, b, plan.a.high_rows, plan.b.is_high,
                                       true, pool, &hh_stats);
  }
  if (plan.a.low_count() > 0 && plan.b.low_count() > 0) {
    ll_tuples = partial_product_tuples(a, b, plan.a.low_rows, plan.b.is_high,
                                       false, pool, &ll_stats);
  }
  const double t2_cpu = platform.cpu().kernel_time(hh_stats, plan.ws_bh_bytes,
                                                   true, /*blockable=*/true);
  const double t2_gpu = platform.gpu().kernel_time(ll_stats);
  rep.phase2_cpu_s = t2_cpu;
  rep.phase2_gpu_s = t2_gpu;
  rep.phase2_s = HeteroPlatform::overlap(t2_cpu, t2_gpu);

  // ---- Phase III: double-ended workqueue ----
  // CPU end: A_L×B_H (tag 0). GPU end: A_H×B_L (tag 1). The GPU reaches its
  // side from the back (§IV-B). A cross product whose B side is empty
  // contributes nothing and is skipped outright (degenerate partitions on
  // non-scale-free inputs; §V-B: HH-CPU must not pay for work that is not
  // there).
  std::vector<WorkEntry> entries;
  if (plan.b.high_count() > 0) append_entries(entries, plan.a.low_rows, 0);
  if (plan.b.low_count() > 0) append_entries(entries, plan.a.high_rows, 1);
  const MaskSpec masks[2] = {
      {plan.b.is_high, true, plan.ws_bh_bytes, /*cpu_blockable=*/true},
      {plan.b.is_high, false, plan.ws_bl_bytes, /*cpu_blockable=*/false},
  };

  // Device clocks entering the queue: both saw Phase I; the GPU also waited
  // for the input transfer before its Phase II kernel.
  const double cpu_at_queue = rep.phase1_s + t2_cpu;
  const double gpu_at_queue = rep.phase1_s + transfer_in + t2_gpu;
  const WorkQueueResult queue =
      run_workqueue(a, b, entries, masks, options.queue, cpu_at_queue,
                    gpu_at_queue, platform, pool);
  rep.phase3_cpu_s = queue.cpu_busy;
  rep.phase3_gpu_s = queue.gpu_busy;
  rep.phase3_s = HeteroPlatform::overlap(queue.cpu_busy, queue.gpu_busy);
  rep.queue_cpu_units = queue.cpu_units;
  rep.queue_gpu_units = queue.gpu_units;

  // ---- Phase IV: merge all tuples; GPU partials cross PCIe first ----
  // (the transfer is Algorithm 1's separate "GPU -> CPU::" step, line 10,
  // and is reported outside the Phase IV time as in Fig. 7).
  const std::int64_t gpu_tuples = ll_stats.tuples + queue.gpu_stats.tuples;
  rep.transfer_out_s = platform.link().tuple_transfer_time(gpu_tuples);

  CooMatrix all = std::move(hh_tuples);
  all.append(ll_tuples);
  all.append(queue.tuples);
  res.c = merged_coo_to_csr(all, pool, &rep.merge);
  rep.phase4_s = platform.cpu().merge_time(rep.merge.tuples_in);

  rep.flops = hh_stats.flops + ll_stats.flops + queue.cpu_stats.flops +
              queue.gpu_stats.flops;
  rep.output_nnz = res.c.nnz();
  rep.total_s = queue.end_time() + rep.transfer_out_s + rep.phase4_s;
  return res;
}

}  // namespace hh
