#include "core/hh_cpu.hpp"

#include <algorithm>
#include <utility>

#include "core/hh_stages.hpp"
#include "util/check.hpp"

namespace hh {

// The serial driver: phases back-to-back, transfers bracketing the compute.
// The stage bodies live in core/hh_stages.cc so the pipelined runtime
// (src/runtime/) can schedule the identical work on per-resource timelines.
RunResult run_hh_cpu(const CsrMatrix& a, const CsrMatrix& b,
                     const HhCpuOptions& options,
                     const HeteroPlatform& platform, ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  RunResult res;
  RunReport& rep = res.report;
  rep.algorithm = "HH-CPU";

  // ---- Phase I: thresholds + classification ----
  const PartitionPlan plan = make_partition_plan(
      a, b, options.threshold_a, options.threshold_b, platform);
  rep.phase1_s = plan.phase1_s;
  rep.threshold_a = plan.a.threshold;
  rep.threshold_b = plan.b.threshold;
  rep.high_rows_a = plan.a.high_count();
  rep.high_rows_b = plan.b.high_count();

  // Input transfer: A and B go to the GPU whole, with the Boolean arrays
  // (§IV-A: the matrices are not physically split).
  double transfer_in = 0;
  if (!options.matrices_already_on_gpu) {
    transfer_in = platform.link().h2d().matrix_transfer_time(a);
    if (&a != &b) transfer_in += platform.link().h2d().matrix_transfer_time(b);
  }
  rep.transfer_in_s = transfer_in;

  // ---- Phase II: CPU A_H×B_H ∥ GPU A_L×B_L ----
  Phase2Result p2 =
      run_phase2(a, b, plan, platform, pool, options.workspace);
  rep.phase2_cpu_s = p2.cpu_s;
  rep.phase2_gpu_s = p2.gpu_s;
  rep.phase2_s = HeteroPlatform::overlap(p2.cpu_s, p2.gpu_s);

  // ---- Phase III: double-ended workqueue ----
  // Device clocks entering the queue: both saw Phase I; the GPU also waited
  // for the input transfer before its Phase II kernel.
  const double cpu_at_queue = rep.phase1_s + p2.cpu_s;
  const double gpu_at_queue = rep.phase1_s + transfer_in + p2.gpu_s;
  WorkQueueResult queue =
      run_phase3(a, b, plan, options.queue, cpu_at_queue, gpu_at_queue,
                 platform, pool, options.workspace);
  rep.phase3_cpu_s = queue.cpu_busy;
  rep.phase3_gpu_s = queue.gpu_busy;
  rep.phase3_s = HeteroPlatform::overlap(queue.cpu_busy, queue.gpu_busy);
  rep.queue_cpu_units = queue.cpu_units;
  rep.queue_gpu_units = queue.gpu_units;

  // ---- Phase IV: merge all tuples; GPU partials cross PCIe first ----
  // (the transfer is Algorithm 1's separate "GPU -> CPU::" step, line 10,
  // and is reported outside the Phase IV time as in Fig. 7).
  const std::int64_t gpu_tuples = p2.ll_stats.tuples + queue.gpu_stats.tuples;
  rep.transfer_out_s = platform.link().d2h().tuple_transfer_time(gpu_tuples);
  rep.flops = p2.hh_stats.flops + p2.ll_stats.flops + queue.cpu_stats.flops +
              queue.gpu_stats.flops;
  const double queue_end = queue.end_time();

  MergeResult merged = run_phase4(std::move(p2), std::move(queue), platform,
                                  pool, options.workspace);
  res.c = std::move(merged.c);
  rep.merge = merged.merge;
  rep.phase4_s = merged.cpu_s;

  rep.output_nnz = res.c.nnz();
  rep.total_s = queue_end + rep.transfer_out_s + rep.phase4_s;
  return res;
}

}  // namespace hh
