// Phase I threshold identification (paper §III-A).
//
// The paper picks t empirically (and names analytic identification as
// future work, §VI). We provide both: pick_threshold_analytic() evaluates a
// small candidate grid with structure-only estimates and the device models
// — the architecture-aware analytic method — and threshold_candidates()
// exposes the grid so benches can run the full empirical sweep of Fig. 8.
#pragma once

#include <vector>

#include "device/platform.hpp"
#include "sparse/csr.hpp"

namespace hh {

/// Log-spaced candidate thresholds covering the row-size range of `m`
/// (deduplicated, ascending, at most `max_candidates`).
std::vector<offset_t> threshold_candidates(const CsrMatrix& m,
                                           int max_candidates = 12);

struct ThresholdChoice {
  offset_t t = 0;
  double predicted_s = 0;  // model-predicted total for this t
};

/// Predict HH-CPU's total time for threshold t (same t for A and B, as in
/// the paper's per-matrix sweep) from symbolic estimates: Phase II is the
/// max of the two device products, Phase III is the harmonic sharing of the
/// cross products between the devices.
double predict_total_time(const CsrMatrix& a, const CsrMatrix& b, offset_t t,
                          const HeteroPlatform& platform);

/// argmin over threshold_candidates() of predict_total_time().
ThresholdChoice pick_threshold_analytic(const CsrMatrix& a,
                                        const CsrMatrix& b,
                                        const HeteroPlatform& platform);

/// The paper's method (§III-A): run the full algorithm for every candidate
/// threshold and keep the best *measured* total. Costs one full multiply per
/// candidate; the experiment harness uses this, mirroring the paper's
/// offline per-matrix tuning, while pick_threshold_analytic() is the cheap
/// in-line default.
ThresholdChoice pick_threshold_empirical(const CsrMatrix& a,
                                         const CsrMatrix& b,
                                         const HeteroPlatform& platform,
                                         ThreadPool& pool);

}  // namespace hh
