// Phase I threshold identification (paper §III-A).
//
// The paper picks t empirically (and names analytic identification as
// future work, §VI). We provide both: pick_threshold_analytic() evaluates a
// small candidate grid with structure-only estimates and the device models
// — the architecture-aware analytic method — and threshold_candidates()
// exposes the grid so benches can run the full empirical sweep of Fig. 8.
//
// The online autotuner (src/tune/) closes the remaining gap between the two:
// predict_breakdown() exposes the per-device components of the prediction so
// measured stage times can be compared against them, and every predictor
// accepts a CostCorrection (device/cost_model.hpp) carrying the calibrated
// observed/predicted factors. The default (identity) correction reproduces
// the uncorrected predictions bit-for-bit.
#pragma once

#include <vector>

#include "device/platform.hpp"
#include "sparse/csr.hpp"

namespace hh {

/// Log-spaced candidate thresholds covering the row-size range of `m`
/// (deduplicated, ascending, at most `max_candidates`). Never empty and
/// never contains t <= 1: degenerate inputs (no rows, no nonzeros,
/// all-equal row lengths) fall back to a minimal {2, 3}-style grid.
std::vector<offset_t> threshold_candidates(const CsrMatrix& m,
                                           int max_candidates = 12);

/// The shared candidate grid for the pair (A, B): the deduplicated,
/// ascending union of both matrices' threshold_candidates(). This is the
/// grid every picker (analytic, empirical, online tuner) ranks over.
std::vector<offset_t> threshold_grid(const CsrMatrix& a, const CsrMatrix& b,
                                     int max_candidates = 12);

struct ThresholdChoice {
  offset_t t = 0;
  double predicted_s = 0;  // model-predicted total for this t
};

/// Per-device components of a predicted HH-CPU run at threshold t, so a
/// measured run can be compared stage-by-stage (src/tune/calibration.hpp).
/// cpu_s/gpu_s are predicted busy seconds (Phase II share + the whole
/// overlapped Phase III window + merge on the CPU side); h2d_s/d2h_s are
/// link occupancy. total_s is exactly what predict_total_time() returns.
struct PredictedBreakdown {
  double cpu_s = 0;
  double gpu_s = 0;
  double h2d_s = 0;
  double d2h_s = 0;
  double total_s = 0;
};

/// Predict HH-CPU's time components for threshold t (same t for A and B, as
/// in the paper's per-matrix sweep) from symbolic estimates: Phase II is the
/// max of the two device products, Phase III is the harmonic sharing of the
/// cross products between the devices. Each component is scaled by the
/// matching CostCorrection factor before the overlap/harmonic combination.
PredictedBreakdown predict_breakdown(const CsrMatrix& a, const CsrMatrix& b,
                                     offset_t t,
                                     const HeteroPlatform& platform,
                                     const CostCorrection& correction = {});

/// predict_breakdown(...).total_s — kept as the compact form every caller
/// that only ranks thresholds uses.
double predict_total_time(const CsrMatrix& a, const CsrMatrix& b, offset_t t,
                          const HeteroPlatform& platform,
                          const CostCorrection& correction = {});

/// The full analytic sweep: predicted total for every grid candidate, plus
/// the argmin. pick_threshold_analytic() is this sweep reduced to its best
/// entry; the online tuner keeps the whole ranking so exploration can try
/// near-tied candidates in predicted order.
struct ThresholdSweep {
  std::vector<offset_t> grid;       // ascending, deduplicated
  std::vector<double> predicted_s;  // parallel to grid
  std::size_t best = 0;             // argmin index into grid/predicted_s

  ThresholdChoice choice() const {
    return {grid.empty() ? 0 : grid[best],
            grid.empty() ? 0.0 : predicted_s[best]};
  }
};

ThresholdSweep sweep_thresholds(const CsrMatrix& a, const CsrMatrix& b,
                                const HeteroPlatform& platform,
                                const CostCorrection& correction = {});

/// argmin over threshold_grid() of predict_total_time().
ThresholdChoice pick_threshold_analytic(const CsrMatrix& a,
                                        const CsrMatrix& b,
                                        const HeteroPlatform& platform,
                                        const CostCorrection& correction = {});

/// The paper's method (§III-A): run the full algorithm for every candidate
/// threshold and keep the best *measured* total. Costs one full multiply per
/// candidate; the experiment harness uses this, mirroring the paper's
/// offline per-matrix tuning, while pick_threshold_analytic() is the cheap
/// in-line default.
ThresholdChoice pick_threshold_empirical(const CsrMatrix& a,
                                         const CsrMatrix& b,
                                         const HeteroPlatform& platform,
                                         ThreadPool& pool);

}  // namespace hh
