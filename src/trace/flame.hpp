// Compact text flame views of recorded schedules.
//
// flame_view() renders one fixed-width row per resource over the whole
// recorded window, each span drawn with its request's base-36 glyph — the
// quickest way to see pipeline bubbles and which request owns them without
// leaving the terminal. flame_row() renders one request's own spans as a
// single row (C/G/H/D per resource, '!' for fault attempts), used by
// RequestReport::to_string().
#pragma once

#include <string>
#include <vector>

#include "runtime/resource.hpp"
#include "trace/trace.hpp"

namespace hh {

/// Multi-line, one row per resource:
///   cpu  |00011222...| busy 12.4 ms / 20.0 ms
/// Glyphs are the owning request id mod 36 (0-9a-z), '.' is idle, '#' marks
/// spans with no request identity. Empty string when nothing was recorded.
std::string flame_view(const std::vector<TraceEvent>& events, int width = 64);
std::string flame_view(const TraceRecorder& recorder, int width = 64);

/// Single row over [t0, t1] for one request's spans: C = cpu, G = gpu,
/// H = h2d, D = d2h; fault/abort/corrupt attempts render as '!'.
std::string flame_row(const std::vector<StageSpan>& spans, double t0,
                      double t1, int width = 48);

}  // namespace hh
