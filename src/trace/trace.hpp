// Structured event/span recorder for the heterogeneous runtime.
//
// The paper's argument (Figs. 6–9) is a claim about *where time goes* — CPU
// vs. GPU vs. PCIe overlap — so the runtime needs per-stage, per-resource
// observability, not just end-of-batch aggregates. TraceRecorder captures
//   - every ResourceTimeline::reserve placement (span events, with both the
//     dependence-allowed earliest start the caller asked for and the start
//     the insertion scheduler actually granted — the difference is the
//     pipeline bubble);
//   - every simulated device operation outcome (gpu_sim / cpu_sim / pcie),
//     carrying the fault injector's site-local op index;
//   - every fault, retry, degradation and cancellation decision the service
//     makes, with request identity.
//
// The recorder is toggleable at two levels:
//   - compile time: building with -DHH_TRACE_DISABLED (CMake -DHH_TRACE=OFF)
//     pins enabled() to false, so every record call folds to a dead branch;
//   - run time: a recorder starts disabled and records nothing until
//     enable() — call sites pay one predictable branch.
//
// Consumers: trace/perfetto_export.hpp renders events as a Chrome
// trace-event / Perfetto JSON file (one track per Resource, per-request
// flow arrows); trace/flame.hpp renders a compact text flame view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"  // kNoDeviceOp: device-op identity in events
#include "runtime/resource.hpp"

namespace hh {

/// Sentinel for events not tied to one request (batch-level bookkeeping).
inline constexpr std::size_t kNoRequest = static_cast<std::size_t>(-1);

enum class TraceEventKind { kSpan = 0, kInstant = 1 };

enum class TraceCategory {
  kCompute = 0,    // CPU/GPU occupancy placed by the scheduler
  kTransfer = 1,   // PCIe channel occupancy
  kScheduler = 2,  // placement/cache decisions (plan-cache hit/miss, ...)
  kFault = 3,      // injected fault observed (abort/failure/corruption/stall)
  kRetry = 4,      // a re-attempt was scheduled (with backoff)
  kDegrade = 5,    // request fell back to the CPU-only path
  kCancel = 6,     // request cancelled past its deadline
  kTune = 7,       // autotuner decision (explore / promote / drift)
  kShard = 8,      // shard group event (kill / restart / rehydrate /
                   // failover / breaker transition)
  kSlo = 9,        // SLO burn-rate threshold crossing (obs/slo.hpp)
  kWave = 10,      // wave executor event (begin / end / coalesced upload /
                   // refcount eviction — runtime/wave.hpp)
  kCritPath = 11,  // batch critical-chain step (obs/critpath.hpp); the
                   // Perfetto exporter links these with flow arrows
};

const char* to_string(TraceCategory c);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kInstant;
  TraceCategory category = TraceCategory::kScheduler;
  const char* name = "";  // static string
  bool has_resource = false;
  Resource resource = Resource::kCpu;
  std::size_t request_id = kNoRequest;
  double start_s = 0;
  double end_s = 0;      // instants: end_s == start_s
  double requested_s = 0;  // spans: earliest start the caller asked for
  std::uint64_t device_op = kNoDeviceOp;  // injector site-local op index
  // Track group: 0 = the recording service itself; a shard group re-records
  // shard-local spans under track shard+1 so one recorder can hold several
  // shards' resource occupancy without false overlaps. The Perfetto exporter
  // renders each track as its own process.
  std::uint32_t track = 0;
};

class TraceRecorder {
 public:
  /// False when the library was built with -DHH_TRACE=OFF; every recording
  /// call is then a dead branch the optimizer removes.
  static constexpr bool compiled_in() {
#ifdef HH_TRACE_DISABLED
    return false;
#else
    return true;
#endif
  }

  void enable(bool on = true) { enabled_ = compiled_in() && on; }
  bool enabled() const { return enabled_; }

  void clear() {
    events_.clear();
    current_request_ = kNoRequest;
    current_track_ = 0;
  }

  /// Events recorded from here on carry this request's identity.
  void begin_request(std::size_t id) { current_request_ = id; }
  void end_request() { current_request_ = kNoRequest; }
  std::size_t current_request() const { return current_request_; }

  /// Events recorded from here on land on this track (0 = the recording
  /// service; a shard group uses shard+1 for re-recorded shard spans).
  void set_track(std::uint32_t track) { current_track_ = track; }
  std::uint32_t current_track() const { return current_track_; }

  /// A resource occupancy placed by a scheduler. `requested_s` is the
  /// dependence-allowed earliest start; `start_s - requested_s` is the time
  /// the stage waited for its resource (the pipeline bubble).
  void span(TraceCategory category, const char* name, Resource resource,
            double start_s, double end_s, double requested_s,
            std::uint64_t device_op = kNoDeviceOp) {
    if (!enabled_) return;
    events_.push_back({TraceEventKind::kSpan, category, name,
                       /*has_resource=*/true, resource, current_request_,
                       start_s, end_s, requested_s, device_op,
                       current_track_});
  }

  /// A point event on a resource track (fault observed, retry issued, ...).
  void instant_on(TraceCategory category, const char* name, Resource resource,
                  double t_s, std::uint64_t device_op = kNoDeviceOp) {
    if (!enabled_) return;
    events_.push_back({TraceEventKind::kInstant, category, name,
                       /*has_resource=*/true, resource, current_request_, t_s,
                       t_s, t_s, device_op, current_track_});
  }

  /// A point event on the service track (degradation, cancellation,
  /// plan-cache decisions — nothing occupies a device).
  void instant(TraceCategory category, const char* name, double t_s) {
    if (!enabled_) return;
    events_.push_back({TraceEventKind::kInstant, category, name,
                       /*has_resource=*/false, Resource::kCpu,
                       current_request_, t_s, t_s, t_s, kNoDeviceOp,
                       current_track_});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  bool enabled_ = false;
  std::size_t current_request_ = kNoRequest;
  std::uint32_t current_track_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace hh
