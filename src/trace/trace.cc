#include "trace/trace.hpp"

namespace hh {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kCompute: return "compute";
    case TraceCategory::kTransfer: return "transfer";
    case TraceCategory::kScheduler: return "scheduler";
    case TraceCategory::kFault: return "fault";
    case TraceCategory::kRetry: return "retry";
    case TraceCategory::kDegrade: return "degrade";
    case TraceCategory::kCancel: return "cancel";
    case TraceCategory::kTune: return "tune";
    case TraceCategory::kShard: return "shard";
    case TraceCategory::kSlo: return "slo";
    case TraceCategory::kWave: return "wave";
    case TraceCategory::kCritPath: return "critpath";
  }
  return "?";
}

}  // namespace hh
