#include "trace/perfetto_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace hh {
namespace {

// tids 1..kResourceCount are the resource tracks; the service track follows.
constexpr int kServiceTid = kResourceCount + 1;

int tid_of(const TraceEvent& e) {
  return e.has_resource ? static_cast<int>(e.resource) + 1 : kServiceTid;
}

// Each TraceEvent track renders as its own Perfetto process, so a shard
// group's re-recorded per-shard spans (trace/trace.hpp: track = shard + 1)
// get their own CPU/GPU/H2D/D2H rows instead of falsely overlapping the
// group's rows.
int pid_of(const TraceEvent& e) { return static_cast<int>(e.track) + 1; }

// %.17g round-trips the double exactly: a span's ts + dur must equal the
// next span's ts wherever the timeline placed them back to back, or the
// rendered tracks show sub-ns overlaps that are artifacts of printing.
std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", seconds * 1e6);
  return buf;
}

// dur is derived from the already-converted endpoints, not from
// (end - start) * 1e6, so ts + dur reproduces us(end_s) bit-for-bit.
std::string us_delta(double start_seconds, double end_seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g",
                end_seconds * 1e6 - start_seconds * 1e6);
  return buf;
}

void append_args(std::ostringstream& os, const TraceEvent& e) {
  os << "\"args\":{";
  bool first = true;
  if (e.request_id != kNoRequest) {
    os << "\"request\":" << e.request_id;
    first = false;
  }
  if (e.kind == TraceEventKind::kSpan) {
    if (!first) os << ",";
    os << "\"requested_us\":" << us(e.requested_s) << ",\"bubble_us\":"
       << us(e.start_s - e.requested_s);
    first = false;
  }
  if (e.device_op != kNoDeviceOp) {
    if (!first) os << ",";
    os << "\"device_op\":" << e.device_op;
  }
  os << "}";
}

void append_meta(std::ostringstream& os, int pid, int tid, const char* name) {
  os << ",{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& recorder) {
  std::uint32_t max_track = 0;
  for (const TraceEvent& e : recorder.events()) {
    max_track = std::max(max_track, e.track);
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::uint32_t t = 0; t <= max_track; ++t) {
    const int pid = static_cast<int>(t) + 1;
    os << (t == 0 ? "" : ",") << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    if (t == 0) {
      os << "hh-runtime";
    } else {
      os << "hh-shard-" << (t - 1);
    }
    os << "\"}}";
    for (int r = 0; r < kResourceCount; ++r) {
      append_meta(os, pid, r + 1, to_string(static_cast<Resource>(r)));
    }
    append_meta(os, pid, kServiceTid, "service");
  }

  for (const TraceEvent& e : recorder.events()) {
    os << ",{\"name\":\"" << e.name << "\",\"cat\":\""
       << to_string(e.category) << "\",\"pid\":" << pid_of(e)
       << ",\"tid\":" << tid_of(e) << ",\"ts\":" << us(e.start_s) << ",";
    if (e.kind == TraceEventKind::kSpan) {
      os << "\"ph\":\"X\",\"dur\":" << us_delta(e.start_s, e.end_s) << ",";
    } else {
      os << "\"ph\":\"i\",\"s\":\"t\",";
    }
    append_args(os, e);
    os << "}";
  }

  // Per-request flow arrows over the spans, in start order.
  std::vector<const TraceEvent*> spans;
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == TraceEventKind::kSpan && e.request_id != kNoRequest) {
      spans.push_back(&e);
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->request_id != b->request_id) {
                       return a->request_id < b->request_id;
                     }
                     return a->start_s < b->start_s;
                   });
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = *spans[i];
    const bool first =
        i == 0 || spans[i - 1]->request_id != e.request_id;
    const bool last = i + 1 == spans.size() ||
                      spans[i + 1]->request_id != e.request_id;
    if (first && last) continue;  // single-span request: nothing to link
    os << ",{\"ph\":\"" << (first ? "s" : last ? "f" : "t")
       << "\",\"id\":" << e.request_id << ",\"name\":\"request\","
       << "\"cat\":\"flow\",\"pid\":" << pid_of(e) << ",\"tid\":" << tid_of(e)
       << ",\"ts\":" << us(e.start_s);
    if (last) os << ",\"bp\":\"e\"";
    os << "}";
  }

  // Critical-chain flow arrows over the kCritPath instants the service
  // emitted after attribution (obs/critpath.hpp), in chain order. A distinct
  // category + name keeps these flows from binding to the per-request ones
  // (Chrome matches flows by (cat, name, id)); per (track, chain) they form
  // one arrow thread tracing where the makespan was spent.
  std::vector<const TraceEvent*> crit;
  for (const TraceEvent& e : recorder.events()) {
    if (e.kind == TraceEventKind::kInstant &&
        e.category == TraceCategory::kCritPath) {
      crit.push_back(&e);
    }
  }
  std::stable_sort(crit.begin(), crit.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->track != b->track) return a->track < b->track;
                     return a->start_s < b->start_s;
                   });
  for (std::size_t i = 0; i < crit.size(); ++i) {
    const TraceEvent& e = *crit[i];
    const bool first = i == 0 || crit[i - 1]->track != e.track;
    const bool last = i + 1 == crit.size() || crit[i + 1]->track != e.track;
    if (first && last) continue;  // one-step chain: nothing to link
    os << ",{\"ph\":\"" << (first ? "s" : last ? "f" : "t")
       << "\",\"id\":" << e.track << ",\"name\":\"critical-chain\","
       << "\"cat\":\"critflow\",\"pid\":" << pid_of(e)
       << ",\"tid\":" << tid_of(e) << ",\"ts\":" << us(e.start_s);
    if (last) os << ",\"bp\":\"e\"";
    os << "}";
  }

  os << "]}";
  return os.str();
}

bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json(recorder) << "\n";
  return static_cast<bool>(out);
}

}  // namespace hh
