#include "trace/flame.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace hh {
namespace {

char request_glyph(std::size_t request_id) {
  if (request_id == kNoRequest) return '#';
  return "0123456789abcdefghijklmnopqrstuvwxyz"[request_id % 36];
}

bool is_fault_stage(const char* name) {
  return std::strstr(name, "fault") != nullptr ||
         std::strstr(name, "abort") != nullptr ||
         std::strstr(name, "corrupt") != nullptr;
}

/// Paint [start, end) of a span into a row covering [t0, t1]. A span always
/// claims at least one cell so short stages stay visible.
void paint(std::string& row, double t0, double t1, double start, double end,
           char glyph) {
  const int width = static_cast<int>(row.size());
  if (t1 <= t0 || end <= start) return;
  const double scale = static_cast<double>(width) / (t1 - t0);
  int lo = static_cast<int>((start - t0) * scale);
  int hi = static_cast<int>((end - t0) * scale);
  lo = std::clamp(lo, 0, width - 1);
  hi = std::clamp(hi, lo + 1, width);
  for (int i = lo; i < hi; ++i) row[static_cast<std::size_t>(i)] = glyph;
}

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

}  // namespace

std::string flame_view(const std::vector<TraceEvent>& events, int width) {
  width = std::max(width, 8);
  double t_max = 0;
  bool any = false;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kSpan) continue;
    t_max = std::max(t_max, e.end_s);
    any = true;
  }
  if (!any || t_max <= 0) return "";

  std::string rows[kResourceCount];
  double busy[kResourceCount] = {};
  for (auto& row : rows) row.assign(static_cast<std::size_t>(width), '.');
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kSpan || !e.has_resource) continue;
    const int r = static_cast<int>(e.resource);
    paint(rows[r], 0, t_max, e.start_s, e.end_s, request_glyph(e.request_id));
    busy[r] += e.end_s - e.start_s;
  }

  std::ostringstream os;
  for (int r = 0; r < kResourceCount; ++r) {
    os << "  " << to_string(static_cast<Resource>(r)) << "  |" << rows[r]
       << "| busy " << ms(busy[r]) << " / " << ms(t_max) << "\n";
  }
  return os.str();
}

std::string flame_view(const TraceRecorder& recorder, int width) {
  return flame_view(recorder.events(), width);
}

std::string flame_row(const std::vector<StageSpan>& spans, double t0,
                      double t1, int width) {
  width = std::max(width, 8);
  std::string row(static_cast<std::size_t>(width), '.');
  static constexpr char kLetter[kResourceCount] = {'C', 'G', 'H', 'D'};
  for (const StageSpan& s : spans) {
    const char glyph = is_fault_stage(s.stage)
                           ? '!'
                           : kLetter[static_cast<int>(s.resource)];
    paint(row, t0, t1, s.start_s, s.end_s, glyph);
  }
  return row;
}

}  // namespace hh
