// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Replaces the ad-hoc counter members that accumulated inside SpgemmService
// with one queryable, exportable registry. Counters are monotone over the
// service's lifetime (BatchReport remains the per-drain snapshot); gauges
// hold the latest value; histograms bucket observations against a fixed,
// ascending upper-bound vector (a +inf overflow bucket is implicit), which
// keeps observation O(#buckets) with zero allocation.
//
// Instruments are created on first access and live as long as the registry;
// references returned by counter()/gauge()/histogram() stay valid (deque
// storage, never reallocated). Registration order is preserved in the text
// and JSON renderings so exports diff cleanly.
//
// Not thread-safe by design: the service's drain() — the only writer — is
// single-threaded, and making every counter atomic would put a price on the
// hot path that the instrumentation is meant to avoid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace hh {

class Counter {
 public:
  void inc(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  /// `upper_bounds` must be ascending; an overflow bucket is implicit, so
  /// bucket_counts().size() == upper_bounds().size() + 1. Bucket i counts
  /// observations x with x <= upper_bounds[i] (and > upper_bounds[i-1]).
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

  /// Percentile estimate with linear interpolation inside the bucket
  /// holding the continuous rank q*count (Prometheus histogram_quantile
  /// style): the bucket's value range is taken as [previous bound, bound]
  /// — widened to the observed min for the first bucket and capped at the
  /// observed max for the overflow bucket — and the estimate sits at the
  /// rank's fractional position inside it, clamped to [min(), max()].
  ///
  /// Error bound: the true quantile lies in the same bucket, so the
  /// estimate is off by at most that bucket's width (for the overflow
  /// bucket, max() - last bound); interpolation is exact when observations
  /// are uniform within the bucket. q in (0, 1]. Returns 0 on an empty
  /// histogram.
  double percentile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// True when `name` is a well-formed instrument name: non-empty, starts with
/// a letter or '_', and contains only letters, digits and `_ . : -`. No
/// whitespace — a name with a space would silently alias two series in the
/// Prometheus-flavoured text rendering.
bool valid_metric_name(const std::string& name);

/// One instrument flattened to a scalar sample: counters and gauges render
/// as themselves; a histogram contributes two rows, `<name>.count` and
/// `<name>.sum`. `kind` is 'c', 'g' or 'h'.
struct FlatMetric {
  std::string name;
  char kind;
  double value;
};

class MetricsRegistry {
 public:
  /// Find-or-create. Throws InvalidArgumentError when `name` is malformed
  /// (see valid_metric_name) or already registered as a different instrument
  /// kind — a typed error instead of silently aliasing two series.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is consulted only on first creation.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  std::size_t size() const { return order_.size(); }

  /// Every instrument as scalar samples, in registration order (histograms
  /// expand to `.count` + `.sum` rows). The sampling surface for
  /// obs/timeseries.hpp.
  std::vector<FlatMetric> flattened() const;

  /// Prometheus-flavoured text: one `name value` line per instrument (for
  /// histograms: count/sum plus cumulative `le` buckets).
  std::string to_string() const;

  /// Single-line JSON object keyed by instrument name.
  std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  // into the deque of its kind
  };

  const Entry* find(const std::string& name) const;
  Entry& registered(const std::string& name, Kind kind);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> order_;
  std::unordered_map<std::string, std::size_t> by_name_;  // → order_ index
};

/// Default latency buckets for simulated-seconds histograms: half-decade
/// steps from 10 µs to 100 s.
std::vector<double> latency_buckets_s();

}  // namespace hh
