// Chrome trace-event / Perfetto JSON exporter for TraceRecorder events.
//
// Produces the JSON object format ({"traceEvents":[...]}) that both
// chrome://tracing and https://ui.perfetto.dev load directly:
//   - one named thread track per Resource (cpu / gpu / h2d / d2h) plus a
//     "service" track for decisions that occupy no device;
//   - complete ("X") events for every scheduler placement, with args
//     carrying the request id, the dependence-allowed earliest start (so
//     pipeline bubbles are visible as start - requested), and the fault
//     injector's op index where one exists;
//   - instant ("i") events for faults, retries, degradations, cancellations
//     and cache decisions;
//   - per-request flow arrows ("s"/"t"/"f") linking each request's spans in
//     start order across tracks.
//
// Simulated seconds are exported as microseconds (the trace-event unit).
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace hh {

/// Render every recorded event as one Chrome trace-event JSON object.
std::string chrome_trace_json(const TraceRecorder& recorder);

/// Write chrome_trace_json() to `path`. Returns false if the file could not
/// be opened or written.
bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path);

}  // namespace hh
