#include "trace/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

std::string num(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  HH_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram upper bounds must be ascending");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  count_++;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Histogram::percentile(double q) const {
  HH_CHECK_MSG(q > 0 && q <= 1, "percentile requires q in (0, 1]");
  if (count_ == 0) return 0;
  // Continuous rank: the q-quantile sits `rank` observations into the
  // distribution. The selected bucket is the first whose cumulative count
  // covers it (necessarily non-empty, since rank > 0).
  const double rank = q * static_cast<double>(count_);
  std::int64_t before = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (static_cast<double>(before + counts_[i]) >= rank) {
      const double lo =
          i == 0 ? std::min(min_, bounds_.empty() ? min_ : bounds_[0])
                 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max_;
      const double frac =
          (rank - static_cast<double>(before)) / static_cast<double>(counts_[i]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    before += counts_[i];
  }
  return max_;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name.front());
  if (!std::isalpha(head) && name.front() != '_') return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != '.' && c != ':' && c != '-') {
      return false;
    }
  }
  return true;
}

namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

const MetricsRegistry::Entry* MetricsRegistry::find(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &order_[it->second];
}

MetricsRegistry::Entry& MetricsRegistry::registered(const std::string& name,
                                                    Kind kind) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    Entry& e = order_[it->second];
    if (e.kind != kind) {
      std::ostringstream os;
      os << "metric '" << name << "' already registered as a "
         << kind_name(static_cast<int>(e.kind)) << ", requested as a "
         << kind_name(static_cast<int>(kind));
      throw InvalidArgumentError(os.str());
    }
    return e;
  }
  if (!valid_metric_name(name)) {
    std::ostringstream os;
    os << "invalid metric name '" << name
       << "': names match [A-Za-z_][A-Za-z0-9_.:-]*";
    throw InvalidArgumentError(os.str());
  }
  std::size_t index = 0;
  switch (kind) {
    case Kind::kCounter: index = counters_.size(); counters_.emplace_back(); break;
    case Kind::kGauge: index = gauges_.size(); gauges_.emplace_back(); break;
    case Kind::kHistogram: index = histograms_.size(); break;  // caller adds
  }
  by_name_.emplace(name, order_.size());
  order_.push_back({name, kind, index});
  return order_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[registered(name, Kind::kCounter).index];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[registered(name, Kind::kGauge).index];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const Entry* existing = find(name);
  if (existing != nullptr) {
    if (existing->kind != Kind::kHistogram) {
      std::ostringstream os;
      os << "metric '" << name << "' already registered as a "
         << kind_name(static_cast<int>(existing->kind))
         << ", requested as a histogram";
      throw InvalidArgumentError(os.str());
    }
    return histograms_[existing->index];
  }
  Entry& e = registered(name, Kind::kHistogram);
  histograms_.emplace_back(std::move(upper_bounds));
  return histograms_[e.index];
}

std::vector<FlatMetric> MetricsRegistry::flattened() const {
  std::vector<FlatMetric> out;
  out.reserve(order_.size());
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.push_back(
            {e.name, 'c',
             static_cast<double>(counters_[e.index].value())});
        break;
      case Kind::kGauge:
        out.push_back({e.name, 'g', gauges_[e.index].value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        out.push_back(
            {e.name + ".count", 'h', static_cast<double>(h.count())});
        out.push_back({e.name + ".sum", 'h', h.sum()});
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream os;
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        os << e.name << " " << counters_[e.index].value() << "\n";
        break;
      case Kind::kGauge:
        os << e.name << " " << num(gauges_[e.index].value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        os << e.name << "_count " << h.count() << "\n";
        os << e.name << "_sum " << num(h.sum()) << "\n";
        std::int64_t cum = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cum += h.bucket_counts()[i];
          os << e.name << "{le=\"" << num(h.upper_bounds()[i]) << "\"} " << cum
             << "\n";
        }
        os << e.name << "{le=\"+Inf\"} " << h.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Entry& e : order_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << e.name << "\":";
    switch (e.kind) {
      case Kind::kCounter:
        os << counters_[e.index].value();
        break;
      case Kind::kGauge:
        os << num(gauges_[e.index].value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        os << "{\"count\":" << h.count() << ",\"sum\":" << num(h.sum())
           << ",\"min\":" << num(h.min()) << ",\"max\":" << num(h.max())
           << ",\"bounds\":[";
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          os << (i ? "," : "") << num(h.upper_bounds()[i]);
        }
        os << "],\"buckets\":[";
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          os << (i ? "," : "") << h.bucket_counts()[i];
        }
        os << "]}";
        break;
      }
    }
  }
  os << "}";
  return os.str();
}

std::vector<double> latency_buckets_s() {
  // Half-decade ladder: 1e-5, 3.16e-5, 1e-4, ... 100 s.
  std::vector<double> bounds;
  for (int e = -5; e <= 2; ++e) {
    const double decade = std::pow(10.0, e);
    bounds.push_back(decade);
    if (e < 2) bounds.push_back(decade * std::sqrt(10.0));
  }
  return bounds;
}

}  // namespace hh
