// TuneReport: the observable state of the online autotuner.
//
// One entry per tuned signature pair, in first-seen order, each carrying the
// analytic starting point, the current (possibly promoted) incumbent, the
// measured variants, and the convergence state — plus the calibration
// snapshot. Rendering is deterministic: entry order is insertion order,
// variant order is measurement-first order, and numbers print with a fixed
// format, so two same-seed replays produce byte-identical JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace hh {

/// One measured threshold variant of a tuned signature pair.
struct TuneVariantReport {
  offset_t t = 0;
  int trials = 0;          // completed measurements
  double best_s = 0;       // best measured total (min over trials)
  double predicted_s = 0;  // corrected prediction when the entry was created
};

struct TuneEntryReport {
  std::string key;            // "sig(A) x sig(B)"
  offset_t analytic_t = 0;    // the analytic pick the entry started from
  offset_t incumbent_t = 0;   // current choice served on cache hits
  std::uint32_t version = 0;  // bumped on every promotion
  int hits = 0;               // tunable cache hits seen
  int explorations = 0;
  int promotions = 0;
  bool converged = false;  // all eligible variants measured; exploring ended
  std::vector<TuneVariantReport> variants;
};

struct TuneCalibrationReport {
  std::string device;  // cpu / gpu / h2d / d2h
  std::int64_t samples = 0;
  double ratio = 1.0;       // e^(mean log observed/predicted)
  double correction = 1.0;  // clamped factor applied to predictions
  bool drift = false;
};

struct TuneReport {
  bool enabled = false;
  std::int64_t decisions = 0;     // tunable cache hits routed to the tuner
  std::int64_t explorations = 0;  // requests served a non-incumbent variant
  std::int64_t measurements = 0;  // clean totals ingested
  std::int64_t promotions = 0;
  std::int64_t drift_events = 0;
  std::size_t entries_converged = 0;
  std::vector<TuneEntryReport> entries;  // first-seen order
  std::vector<TuneCalibrationReport> calibration;  // cpu, gpu, h2d, d2h

  std::string to_string() const;
  std::string to_json() const;
};

}  // namespace hh
