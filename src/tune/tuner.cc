#include "tune/tuner.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/signature.hpp"
#include "util/check.hpp"

namespace hh {

ThresholdTuner::ThresholdTuner(TuneConfig config)
    : config_(config), rng_(config.seed) {
  HH_CHECK_MSG(config_.epsilon >= 0 && config_.epsilon <= 1,
               "tune epsilon must be in [0, 1]");
  HH_CHECK_MSG(config_.min_trials >= 1, "tune min_trials must be >= 1");
  HH_CHECK_MSG(config_.max_variants >= 1, "tune max_variants must be >= 1");
  HH_CHECK_MSG(config_.explore_slack >= 0, "tune explore_slack must be >= 0");
  HH_CHECK_MSG(config_.promote_margin >= 0,
               "tune promote_margin must be >= 0");
}

ThresholdTuner::Entry* ThresholdTuner::find(const PlanKey& key) {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

const ThresholdTuner::Entry* ThresholdTuner::find(const PlanKey& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void ThresholdTuner::admit(const PlanKey& key, const ThresholdSweep& sweep) {
  if (has_entry(key)) return;
  HH_CHECK_MSG(!sweep.grid.empty(), "tuner admitted an empty sweep");
  Entry e;
  e.key = key;
  e.grid = sweep.grid;
  e.predicted_s = sweep.predicted_s;
  e.analytic_t = sweep.grid[sweep.best];
  e.incumbent_t = e.analytic_t;

  // Exploration plan: candidates predicted within explore_slack of the best,
  // cheapest-predicted first (stable: ties keep the smaller threshold),
  // excluding the incumbent itself, capped at max_variants - 1. A clearly
  // dominated candidate never runs; a near-tie is exactly where the model's
  // ranking is least trustworthy and a measurement can flip the choice.
  const double cutoff =
      sweep.predicted_s[sweep.best] * (1.0 + config_.explore_slack);
  std::vector<std::size_t> order(e.grid.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return e.predicted_s[x] < e.predicted_s[y];
                   });
  for (const std::size_t i : order) {
    if (i == sweep.best) continue;
    if (e.predicted_s[i] > cutoff) break;  // sorted: all further are worse
    if (static_cast<int>(e.explore_plan.size()) >= config_.max_variants - 1) {
      break;
    }
    e.explore_plan.push_back(e.grid[i]);
  }

  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
}

ThresholdTuner::Variant& ThresholdTuner::variant(Entry& e, offset_t t) {
  for (Variant& v : e.variants) {
    if (v.t == t) return v;
  }
  Variant v;
  v.t = t;
  for (std::size_t i = 0; i < e.grid.size(); ++i) {
    if (e.grid[i] == t) v.predicted_s = e.predicted_s[i];
  }
  e.variants.push_back(v);
  return e.variants.back();
}

int ThresholdTuner::trials_at(const Entry& e, offset_t t) const {
  for (const Variant& v : e.variants) {
    if (v.t == t) return v.trials;
  }
  return 0;
}

offset_t ThresholdTuner::next_explore_target(const Entry& e) const {
  for (const offset_t t : e.explore_plan) {
    if (trials_at(e, t) < config_.min_trials) return t;
  }
  return 0;
}

ThresholdTuner::Decision ThresholdTuner::decide(const PlanKey& key) {
  Entry* e = find(key);
  HH_CHECK_MSG(e != nullptr, "tuner decide() on an unadmitted key");
  e->hits++;
  decisions_++;
  Decision d{e->incumbent_t, false};
  if (e->converged || e->hits <= config_.warmup_hits) return d;
  const offset_t target = next_explore_target(*e);
  if (target == 0) {
    // Every planned variant is measured: the incumbent is the measured best
    // of the neighborhood. Stop paying for exploration — and stop drawing
    // from the PRNG, so a converged key adds zero tuning overhead.
    e->converged = true;
    return d;
  }
  if (rng_.uniform() < config_.epsilon) {
    e->explorations++;
    explorations_++;
    d.t = target;
    d.explore = true;
  }
  return d;
}

std::optional<ThresholdTuner::PromotionEvent> ThresholdTuner::observe(
    const PlanKey& key, offset_t t, double measured_s) {
  Entry* e = find(key);
  HH_CHECK_MSG(e != nullptr, "tuner observe() on an unadmitted key");
  measurements_++;
  Variant& v = variant(*e, t);
  v.trials++;
  if (measured_s < v.best_s) v.best_s = measured_s;

  // Promotion: the best fully-measured variant, if it beats the incumbent's
  // own measured best by the margin. The incumbent must itself be measured —
  // never promote against an unmeasured baseline.
  const Variant* inc = nullptr;
  for (const Variant& c : e->variants) {
    if (c.t == e->incumbent_t) inc = &c;
  }
  if (inc == nullptr || inc->trials < 1) return std::nullopt;
  const Variant* best = inc;
  for (const Variant& c : e->variants) {
    if (c.trials >= config_.min_trials && c.best_s < best->best_s) best = &c;
  }
  if (best->t == e->incumbent_t ||
      best->best_s >= inc->best_s * (1.0 - config_.promote_margin)) {
    return std::nullopt;
  }
  PromotionEvent ev;
  ev.from_t = e->incumbent_t;
  ev.to_t = best->t;
  ev.from_best_s = inc->best_s;
  ev.to_best_s = best->best_s;
  e->incumbent_t = best->t;
  e->version++;
  e->promotions++;
  promotions_++;
  ev.version = e->version;
  return ev;
}

offset_t ThresholdTuner::incumbent(const PlanKey& key) const {
  const Entry* e = find(key);
  return e == nullptr ? 0 : e->incumbent_t;
}

std::size_t ThresholdTuner::converged() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.converged ? 1 : 0;
  return n;
}

TunerSnapshot ThresholdTuner::snapshot() const {
  TunerSnapshot snap;
  snap.entries.reserve(entries_.size());
  for (const Entry& e : entries_) {
    TunerSnapshot::Entry se;
    se.key = e.key;
    se.grid = e.grid;
    se.predicted_s = e.predicted_s;
    se.explore_plan = e.explore_plan;
    se.variants.reserve(e.variants.size());
    for (const Variant& v : e.variants) {
      se.variants.push_back({v.t, v.trials, v.best_s, v.predicted_s});
    }
    se.analytic_t = e.analytic_t;
    se.incumbent_t = e.incumbent_t;
    se.version = e.version;
    se.hits = e.hits;
    se.explorations = e.explorations;
    se.promotions = e.promotions;
    se.converged = e.converged;
    snap.entries.push_back(std::move(se));
  }
  snap.rng_state = rng_.state();
  snap.decisions = decisions_;
  snap.explorations = explorations_;
  snap.measurements = measurements_;
  snap.promotions = promotions_;
  return snap;
}

void ThresholdTuner::restore(const TunerSnapshot& snap) {
  entries_.clear();
  index_.clear();
  entries_.reserve(snap.entries.size());
  for (const TunerSnapshot::Entry& se : snap.entries) {
    Entry e;
    e.key = se.key;
    e.grid = se.grid;
    e.predicted_s = se.predicted_s;
    e.explore_plan = se.explore_plan;
    e.variants.reserve(se.variants.size());
    for (const TunerSnapshot::Variant& v : se.variants) {
      Variant nv;
      nv.t = v.t;
      nv.trials = v.trials;
      nv.best_s = v.best_s;
      nv.predicted_s = v.predicted_s;
      e.variants.push_back(nv);
    }
    e.analytic_t = se.analytic_t;
    e.incumbent_t = se.incumbent_t;
    e.version = se.version;
    e.hits = se.hits;
    e.explorations = se.explorations;
    e.promotions = se.promotions;
    e.converged = se.converged;
    index_.emplace(e.key, entries_.size());
    entries_.push_back(std::move(e));
  }
  rng_.set_state(snap.rng_state);
  decisions_ = snap.decisions;
  explorations_ = snap.explorations;
  measurements_ = snap.measurements;
  promotions_ = snap.promotions;
}

TuneReport ThresholdTuner::report() const {
  TuneReport r;
  r.decisions = decisions_;
  r.explorations = explorations_;
  r.measurements = measurements_;
  r.promotions = promotions_;
  r.entries_converged = converged();
  r.entries.reserve(entries_.size());
  for (const Entry& e : entries_) {
    TuneEntryReport er;
    er.key = to_string(e.key.a) + " x " + to_string(e.key.b);
    er.analytic_t = e.analytic_t;
    er.incumbent_t = e.incumbent_t;
    er.version = e.version;
    er.hits = e.hits;
    er.explorations = e.explorations;
    er.promotions = e.promotions;
    er.converged = e.converged;
    er.variants.reserve(e.variants.size());
    for (const Variant& v : e.variants) {
      er.variants.push_back({v.t, v.trials,
                             v.trials > 0 ? v.best_s : 0.0, v.predicted_s});
    }
    r.entries.push_back(std::move(er));
  }
  return r;
}

}  // namespace hh
