// ThresholdTuner: online explore/exploit refinement of cached thresholds.
//
// The paper picks the H/L threshold t per matrix with an offline empirical
// sweep (§III-A, Fig. 8) and names online identification as future work
// (§VI). The service's plan cache already reuses the *analytic* pick for hot
// signature pairs; this tuner upgrades each cached plan into a versioned,
// measured entry that converges from the analytic guess toward the
// empirical optimum without ever paying the full offline sweep:
//
//  - on admission (the signature pair's first request) the tuner keeps the
//    whole analytic sweep — grid plus corrected predictions — and plans a
//    small exploration list: the candidates whose predicted total is within
//    `explore_slack` of the predicted best, cheapest-predicted first, capped
//    at `max_variants`. Only near-ties are worth measuring; clearly-bad
//    candidates are never run.
//  - on a tunable cache hit the tuner either serves the incumbent
//    (exploit) or, with probability epsilon, serves the next unmeasured
//    explore candidate. Every candidate computes the same bit-exact product
//    — only the simulated schedule differs — so exploration is always safe.
//  - each clean completed request reports its measured total back; once a
//    non-incumbent variant has `min_trials` measurements and beats the
//    incumbent's best by `promote_margin`, it is promoted: the cached plan
//    is overwritten with the better threshold and its version is bumped.
//  - when every planned variant is measured the entry converges and the
//    tuner serves the best-measured threshold with zero further overhead.
//
// Determinism/replay: the epsilon draws come from one Xoshiro256 stream
// seeded by TuneConfig::seed and consumed only on eligible hits in drain
// order, and measured totals are simulated-clock arithmetic — so the same
// seed and submission sequence replay to bit-identical decisions, outputs
// and reports.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/threshold.hpp"
#include "runtime/plan_cache.hpp"
#include "tune/calibration.hpp"
#include "tune/report.hpp"
#include "util/prng.hpp"

namespace hh {

struct TuneConfig {
  bool enabled = false;     // default off: the service behaves exactly as
                            // before this subsystem existed
  std::uint64_t seed = 0x7a11ULL;  // epsilon-greedy PRNG stream
  double epsilon = 0.5;     // explore probability per eligible cache hit
  int warmup_hits = 1;      // exploit-only hits before exploring a key
  int min_trials = 3;       // measurements per variant before comparison.
                            // > 1 matters: a variant's measured total
                            // depends on where in the pipeline's steady
                            // rhythm its request lands, so one trial can
                            // catch a congested beat; the min over a few
                            // trials recovers the variant's true cost
  double promote_margin = 0.02;  // relative win required to promote
  int max_variants = 4;     // incumbent + at most this-1 explored candidates
  double explore_slack = 0.25;   // candidate eligible when its corrected
                                 // predicted total <= (1+slack) * best
  CalibrationConfig calibration;
};

/// Complete copyable tuner state, for shard snapshot/rehydration
/// (src/shard/snapshot.hpp). Includes the epsilon-greedy PRNG state: a
/// restored tuner continues the exact decision stream the snapshotted one
/// would have produced, which is what makes same-seed group replay
/// byte-identical across a kill/restart. Entries may be filtered before
/// restore (e.g. dropping keys under plan-cache quarantine).
struct TunerSnapshot {
  struct Variant {
    offset_t t = 0;
    int trials = 0;
    double best_s = 0;
    double predicted_s = 0;
  };
  struct Entry {
    PlanKey key;
    std::vector<offset_t> grid;
    std::vector<double> predicted_s;
    std::vector<offset_t> explore_plan;
    std::vector<Variant> variants;
    offset_t analytic_t = 0;
    offset_t incumbent_t = 0;
    std::uint32_t version = 0;
    int hits = 0;
    int explorations = 0;
    int promotions = 0;
    bool converged = false;
  };
  std::vector<Entry> entries;  // first-seen order
  std::array<std::uint64_t, 4> rng_state{};
  std::int64_t decisions = 0;
  std::int64_t explorations = 0;
  std::int64_t measurements = 0;
  std::int64_t promotions = 0;
};

class ThresholdTuner {
 public:
  struct Decision {
    offset_t t = 0;        // threshold to serve this request
    bool explore = false;  // true when t is a non-incumbent variant
  };

  struct PromotionEvent {
    offset_t from_t = 0;
    offset_t to_t = 0;
    double from_best_s = 0;
    double to_best_s = 0;
    std::uint32_t version = 0;  // the entry's version after the promotion
  };

  explicit ThresholdTuner(TuneConfig config = {});

  const TuneConfig& config() const { return config_; }

  /// Create the entry for a signature pair from its analytic sweep (no-op
  /// if present). Called on the pair's cache miss, where the sweep was just
  /// paid for anyway; also called lazily on a hit against a plan cached
  /// before tuning was enabled.
  void admit(const PlanKey& key, const ThresholdSweep& sweep);

  bool has_entry(const PlanKey& key) const {
    return index_.find(key) != index_.end();
  }

  /// Explore-or-exploit for a tunable cache hit. The entry must exist.
  Decision decide(const PlanKey& key);

  /// Ingest a clean measured total for the variant served at threshold t.
  /// Returns the promotion event when this measurement changed the
  /// incumbent.
  std::optional<PromotionEvent> observe(const PlanKey& key, offset_t t,
                                        double measured_s);

  /// Current incumbent threshold for the key (0 when absent).
  offset_t incumbent(const PlanKey& key) const;

  std::size_t entries() const { return entries_.size(); }
  std::size_t converged() const;
  std::int64_t decisions() const { return decisions_; }
  std::int64_t explorations() const { return explorations_; }
  std::int64_t measurements() const { return measurements_; }
  std::int64_t promotions() const { return promotions_; }

  /// Tuner-side report (entries in first-seen order). The service fills in
  /// `enabled`, `drift_events` and the calibration section.
  TuneReport report() const;

  /// Copy-out / copy-in of the mutable state, PRNG included (config is NOT
  /// part of the snapshot — the restoring tuner keeps its own).
  TunerSnapshot snapshot() const;
  void restore(const TunerSnapshot& snap);

 private:
  struct Variant {
    offset_t t = 0;
    int trials = 0;
    double best_s = std::numeric_limits<double>::infinity();
    double predicted_s = 0;
  };

  struct Entry {
    PlanKey key;
    std::vector<offset_t> grid;
    std::vector<double> predicted_s;     // corrected, frozen at admit time
    std::vector<offset_t> explore_plan;  // predicted-ascending near-ties
    std::vector<Variant> variants;       // first-measured order
    offset_t analytic_t = 0;
    offset_t incumbent_t = 0;
    std::uint32_t version = 0;
    int hits = 0;
    int explorations = 0;
    int promotions = 0;
    bool converged = false;
  };

  Entry* find(const PlanKey& key);
  const Entry* find(const PlanKey& key) const;
  Variant& variant(Entry& e, offset_t t);
  int trials_at(const Entry& e, offset_t t) const;
  /// First explore_plan threshold still short of min_trials; 0 when none.
  offset_t next_explore_target(const Entry& e) const;

  TuneConfig config_;
  Xoshiro256 rng_;
  std::vector<Entry> entries_;  // stable first-seen order for reporting
  std::unordered_map<PlanKey, std::size_t, PlanKeyHash> index_;
  std::int64_t decisions_ = 0;
  std::int64_t explorations_ = 0;
  std::int64_t measurements_ = 0;
  std::int64_t promotions_ = 0;
};

}  // namespace hh
