#include "tune/report.hpp"

#include <cstdio>
#include <sstream>

namespace hh {

namespace {

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

const char* jbool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string TuneReport::to_string() const {
  std::ostringstream os;
  if (!enabled) return "tuning: disabled\n";
  os << "tuning: " << decisions << " decisions, " << explorations
     << " explorations, " << promotions << " promotions, " << measurements
     << " measurements; " << entries_converged << "/" << entries.size()
     << " signatures converged\n";
  os << "  calibration:";
  for (const TuneCalibrationReport& c : calibration) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s x%.3f (%lld)%s", c.device.c_str(),
                  c.correction, static_cast<long long>(c.samples),
                  c.drift ? " DRIFT" : "");
    os << buf;
  }
  os << "\n";
  for (const TuneEntryReport& e : entries) {
    os << "  " << e.key << ": t " << e.analytic_t << " (analytic) -> "
       << e.incumbent_t << " v" << e.version << ", " << e.hits << " hits, "
       << e.explorations << " explored, " << e.promotions << " promoted"
       << (e.converged ? ", converged" : "") << "\n";
    for (const TuneVariantReport& v : e.variants) {
      os << "    t=" << v.t << ": best " << ms(v.best_s) << " over "
         << v.trials << " trial(s), predicted " << ms(v.predicted_s)
         << (v.t == e.incumbent_t ? "  <- incumbent" : "") << "\n";
    }
  }
  return os.str();
}

std::string TuneReport::to_json() const {
  std::ostringstream os;
  os << "{\"enabled\":" << jbool(enabled) << ",\"decisions\":" << decisions
     << ",\"explorations\":" << explorations
     << ",\"measurements\":" << measurements
     << ",\"promotions\":" << promotions
     << ",\"drift_events\":" << drift_events
     << ",\"entries_converged\":" << entries_converged << ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TuneEntryReport& e = entries[i];
    if (i > 0) os << ",";
    os << "{\"key\":\"" << e.key << "\",\"analytic_t\":" << e.analytic_t
       << ",\"incumbent_t\":" << e.incumbent_t << ",\"version\":" << e.version
       << ",\"hits\":" << e.hits << ",\"explorations\":" << e.explorations
       << ",\"promotions\":" << e.promotions
       << ",\"converged\":" << jbool(e.converged) << ",\"variants\":[";
    for (std::size_t k = 0; k < e.variants.size(); ++k) {
      const TuneVariantReport& v = e.variants[k];
      if (k > 0) os << ",";
      os << "{\"t\":" << v.t << ",\"trials\":" << v.trials
         << ",\"best_s\":" << jnum(v.best_s)
         << ",\"predicted_s\":" << jnum(v.predicted_s) << "}";
    }
    os << "]}";
  }
  os << "],\"calibration\":{";
  for (std::size_t i = 0; i < calibration.size(); ++i) {
    const TuneCalibrationReport& c = calibration[i];
    if (i > 0) os << ",";
    os << "\"" << c.device << "\":{\"samples\":" << c.samples
       << ",\"ratio\":" << jnum(c.ratio)
       << ",\"correction\":" << jnum(c.correction)
       << ",\"drift\":" << jbool(c.drift) << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace hh
