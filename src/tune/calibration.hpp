// CalibrationStore: measured-feedback calibration of the device cost models.
//
// Every completed, fault-free request yields four (predicted, observed)
// stage pairs — CPU compute, GPU compute, H2D occupancy, D2H occupancy —
// where the prediction comes from predict_breakdown() (core/threshold.hpp,
// symbolic estimates through the cost models) and the observation is the
// exact per-stage simulated time the runtime charged. The store maintains a
// per-device exponentially-weighted mean of log(observed/predicted):
//  - correction(): e^mean, clamped — the multiplicative factor that maps the
//    model's prediction onto what the runtime actually measures. Fed back
//    into predict_breakdown() via CostCorrection (device/cost_model.hpp) so
//    analytic picks and explore rankings learn from measurements.
//  - drift flagging: once a device has enough samples and its mean log-ratio
//    leaves the configured band, the model is declared drifted; the
//    transition is an observable event (tune.drift_events, trace instant).
//
// Everything here is pure deterministic arithmetic on the simulated clock:
// same request stream → same corrections, bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "device/cost_model.hpp"

namespace hh {

/// Complete copyable calibration state, for shard snapshot/rehydration
/// (src/shard/snapshot.hpp). Restoring a snapshot into a store with the same
/// config reproduces corrections() bit for bit.
struct CalibrationSnapshot {
  struct DeviceState {
    std::int64_t samples = 0;
    double mean_log_ratio = 0;
    double last_ratio = 1.0;
    bool drift = false;
  };
  std::array<DeviceState, 4> devices;
  std::int64_t drift_events = 0;
};

struct CalibrationConfig {
  double decay = 0.9;         // weight of history in the log-ratio EWMA
  int min_samples = 8;        // samples before corrections/drift apply
  double drift_threshold = 0.25;  // |mean log ratio| beyond which drift flags
  double max_correction = 4.0;    // factors clamped to [1/max, max]
};

class CalibrationStore {
 public:
  enum class Device { kCpu = 0, kGpu = 1, kH2D = 2, kD2H = 3 };
  static constexpr int kDevices = 4;

  struct DeviceState {
    std::int64_t samples = 0;
    double mean_log_ratio = 0;  // EWMA of log(observed/predicted)
    double last_ratio = 1.0;    // most recent raw observed/predicted
    bool drift = false;         // currently outside the drift band
  };

  explicit CalibrationStore(CalibrationConfig config = {})
      : config_(config) {}

  /// Ingest one stage measurement. Pairs with a non-positive side are
  /// ignored (e.g. a resident operand observes zero H2D time — that is
  /// residency, not model error). Returns true when this sample newly
  /// flagged the device as drifted (a false→true transition).
  bool record(Device d, double predicted_s, double observed_s);

  const DeviceState& state(Device d) const {
    return state_[static_cast<int>(d)];
  }

  /// e^mean_log_ratio clamped to [1/max_correction, max_correction]; exactly
  /// 1.0 until the device has min_samples samples, so an uncalibrated store
  /// is the identity correction.
  double correction(Device d) const;

  CostCorrection corrections() const {
    return {correction(Device::kCpu), correction(Device::kGpu),
            correction(Device::kH2D), correction(Device::kD2H)};
  }

  std::int64_t total_samples() const;
  int drift_count() const;  // devices currently flagged as drifted
  std::int64_t drift_events() const { return drift_events_; }

  const CalibrationConfig& config() const { return config_; }

  static const char* name(Device d);

  /// One JSON object per device: samples, ratio (e^mean), correction, drift.
  /// Deterministic rendering (fixed device order, %.17g numbers).
  std::string to_json() const;

  /// Copy-out / copy-in of the mutable state (config is NOT part of the
  /// snapshot — the restoring store keeps its own).
  CalibrationSnapshot snapshot() const;
  void restore(const CalibrationSnapshot& snap);

 private:
  CalibrationConfig config_;
  DeviceState state_[kDevices];
  std::int64_t drift_events_ = 0;
};

}  // namespace hh
