#include "tune/calibration.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hh {

namespace {

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

}  // namespace

bool CalibrationStore::record(Device d, double predicted_s,
                              double observed_s) {
  if (predicted_s <= 0 || observed_s <= 0) return false;
  DeviceState& s = state_[static_cast<int>(d)];
  const double log_ratio = std::log(observed_s / predicted_s);
  s.last_ratio = observed_s / predicted_s;
  // EWMA warm-started on the first sample so early corrections are not
  // diluted toward the 0-initialised mean.
  s.mean_log_ratio = s.samples == 0
                         ? log_ratio
                         : config_.decay * s.mean_log_ratio +
                               (1.0 - config_.decay) * log_ratio;
  s.samples++;
  const bool was_drifted = s.drift;
  s.drift = s.samples >= config_.min_samples &&
            std::abs(s.mean_log_ratio) > config_.drift_threshold;
  if (s.drift && !was_drifted) {
    drift_events_++;
    return true;
  }
  return false;
}

double CalibrationStore::correction(Device d) const {
  const DeviceState& s = state_[static_cast<int>(d)];
  if (s.samples < config_.min_samples) return 1.0;
  const double f = std::exp(s.mean_log_ratio);
  const double hi = config_.max_correction;
  const double lo = 1.0 / config_.max_correction;
  return f > hi ? hi : (f < lo ? lo : f);
}

std::int64_t CalibrationStore::total_samples() const {
  std::int64_t n = 0;
  for (const DeviceState& s : state_) n += s.samples;
  return n;
}

int CalibrationStore::drift_count() const {
  int n = 0;
  for (const DeviceState& s : state_) n += s.drift ? 1 : 0;
  return n;
}

const char* CalibrationStore::name(Device d) {
  switch (d) {
    case Device::kCpu: return "cpu";
    case Device::kGpu: return "gpu";
    case Device::kH2D: return "h2d";
    case Device::kD2H: return "d2h";
  }
  return "?";
}

CalibrationSnapshot CalibrationStore::snapshot() const {
  CalibrationSnapshot snap;
  for (int i = 0; i < kDevices; ++i) {
    snap.devices[i] = {state_[i].samples, state_[i].mean_log_ratio,
                       state_[i].last_ratio, state_[i].drift};
  }
  snap.drift_events = drift_events_;
  return snap;
}

void CalibrationStore::restore(const CalibrationSnapshot& snap) {
  for (int i = 0; i < kDevices; ++i) {
    state_[i] = {snap.devices[i].samples, snap.devices[i].mean_log_ratio,
                 snap.devices[i].last_ratio, snap.devices[i].drift};
  }
  drift_events_ = snap.drift_events;
}

std::string CalibrationStore::to_json() const {
  std::ostringstream os;
  os << "{";
  for (int i = 0; i < kDevices; ++i) {
    const auto d = static_cast<Device>(i);
    const DeviceState& s = state_[i];
    if (i > 0) os << ",";
    os << "\"" << name(d) << "\":{\"samples\":" << s.samples
       << ",\"ratio\":" << jnum(std::exp(s.mean_log_ratio))
       << ",\"correction\":" << jnum(correction(d))
       << ",\"drift\":" << (s.drift ? "true" : "false") << "}";
  }
  os << ",\"drift_events\":" << drift_events_ << "}";
  return os.str();
}

}  // namespace hh
