#include "spgemm/spgemm.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "spgemm/gustavson.hpp"
#include "spgemm/hash_spgemm.hpp"
#include "spgemm/heap_spgemm.hpp"
#include "spgemm/row_column.hpp"
#include "util/check.hpp"

namespace hh {
namespace {
std::atomic<std::int64_t> g_shared_cap{kSharedAccumCap};
}  // namespace

std::int64_t shared_accum_cap() {
  return g_shared_cap.load(std::memory_order_relaxed);
}

void set_shared_accum_cap(std::int64_t cap) {
  HH_CHECK(cap >= 1);
  g_shared_cap.store(cap, std::memory_order_relaxed);
}

std::string to_string(SpgemmKind kind) {
  switch (kind) {
    case SpgemmKind::kGustavson:
      return "gustavson";
    case SpgemmKind::kHash:
      return "hash";
    case SpgemmKind::kHeap:
      return "heap";
    case SpgemmKind::kRowColumn:
      return "row-column";
  }
  return "unknown";
}

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b, SpgemmKind kind,
                   ThreadPool& pool) {
  switch (kind) {
    case SpgemmKind::kGustavson:
      return gustavson_spgemm_parallel(a, b, pool);
    case SpgemmKind::kHash:
      return hash_spgemm_parallel(a, b, pool);
    case SpgemmKind::kHeap:
      return heap_spgemm_parallel(a, b, pool);
    case SpgemmKind::kRowColumn:
      return row_column_spgemm(a, b);
  }
  HH_CHECK_MSG(false, "unreachable");
  return {};
}

void ProductStats::accumulate(const ProductStats& o) {
  rows += o.rows;
  a_nnz += o.a_nnz;
  flops += o.flops;
  tuples += o.tuples;
  max_row_flops = std::max(max_row_flops, o.max_row_flops);
  warp_alu += o.warp_alu;
  flops_shared += o.flops_shared;
  flops_global += o.flops_global;
  b_read_bytes += o.b_read_bytes;
}

namespace {

// Per-block worker: SPA-accumulate the assigned a_rows slice, appending
// tuples to a local COO and aggregating stats.
void partial_rows(const CsrMatrix& a, const CsrMatrix& b,
                  std::span<const index_t> a_rows,
                  std::span<const std::uint8_t> b_mask, bool b_mask_value,
                  std::size_t lo, std::size_t hi, SpaWorkspace& ws,
                  CooMatrix& out, ProductStats& stats) {
  ws.begin_product(b.cols);
  std::vector<value_t>& acc = ws.acc;
  std::vector<std::int64_t>& marker = ws.marker;
  std::vector<index_t>& cols = ws.cols_touched;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const index_t i = a_rows[idx];
    const std::int64_t tag = ws.row_tag(i);
    cols.clear();
    std::int64_t row_flops = 0;
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      if (!b_mask.empty() && (b_mask[j] != 0) != b_mask_value) continue;
      ++stats.a_nnz;
      const value_t av = a.values[k];
      const offset_t blen = b.indptr[j + 1] - b.indptr[j];
      row_flops += blen;
      stats.warp_alu += (blen + 31) / 32;
      stats.b_read_bytes += (blen * 12 + 31) / 32 * 32;
      for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
        const index_t col = b.indices[l];
        if (marker[col] != tag) {
          marker[col] = tag;
          acc[col] = value_t{0};
          cols.push_back(col);
        }
        acc[col] += av * b.values[l];
      }
    }
    std::sort(cols.begin(), cols.end());
    for (const index_t col : cols) out.push(i, col, acc[col]);

    ++stats.rows;
    stats.flops += row_flops;
    stats.tuples += static_cast<std::int64_t>(cols.size());
    stats.max_row_flops = std::max(stats.max_row_flops, row_flops);
    if (static_cast<std::int64_t>(cols.size()) <= shared_accum_cap()) {
      stats.flops_shared += row_flops;
    } else {
      stats.flops_global += row_flops;
    }
  }
}

}  // namespace

CooMatrix partial_product_tuples(const CsrMatrix& a, const CsrMatrix& b,
                                 std::span<const index_t> a_rows,
                                 std::span<const std::uint8_t> b_mask,
                                 bool b_mask_value, ThreadPool& pool,
                                 ProductStats* stats,
                                 WorkspacePool* workspace) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  HH_CHECK(b_mask.empty() ||
           b_mask.size() == static_cast<std::size_t>(b.rows));

  const auto n = static_cast<std::int64_t>(a_rows.size());
  const std::int64_t blocks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(
                                    n, static_cast<std::int64_t>(pool.size()) *
                                           4));
  const std::int64_t chunk = n == 0 ? 1 : (n + blocks - 1) / blocks;
  const std::int64_t nblocks = n == 0 ? 0 : (n + chunk - 1) / chunk;

  std::vector<CooMatrix> block_out;
  block_out.reserve(static_cast<std::size_t>(nblocks));
  for (std::int64_t blk = 0; blk < nblocks; ++blk) {
    block_out.push_back(workspace != nullptr
                            ? workspace->acquire_coo(a.rows, b.cols)
                            : CooMatrix(a.rows, b.cols));
  }
  std::vector<ProductStats> block_stats(static_cast<std::size_t>(nblocks));

  pool.parallel_for(nblocks, [&](std::int64_t b0, std::int64_t b1) {
    // One SPA workspace per worker slice; pooled when a pool is supplied.
    std::unique_ptr<SpaWorkspace> ws = workspace != nullptr
                                           ? workspace->acquire_spa()
                                           : std::make_unique<SpaWorkspace>();
    for (std::int64_t blk = b0; blk < b1; ++blk) {
      const auto lo = static_cast<std::size_t>(blk * chunk);
      const auto hi = static_cast<std::size_t>(std::min(n, (blk + 1) * chunk));
      partial_rows(a, b, a_rows, b_mask, b_mask_value, lo, hi, *ws,
                   block_out[blk], block_stats[blk]);
    }
    if (workspace != nullptr) workspace->release_spa(std::move(ws));
  });

  // Concatenate in block order → deterministic output independent of the
  // number of pool threads.
  CooMatrix out = workspace != nullptr ? workspace->acquire_coo(a.rows, b.cols)
                                       : CooMatrix(a.rows, b.cols);
  std::size_t total = 0;
  for (const auto& blk : block_out) total += blk.nnz();
  out.reserve(total);
  ProductStats agg;
  for (std::int64_t blk = 0; blk < nblocks; ++blk) {
    out.append(block_out[blk]);
    agg.accumulate(block_stats[blk]);
    if (workspace != nullptr) workspace->release_coo(std::move(block_out[blk]));
  }
  if (stats != nullptr) *stats = agg;
  return out;
}

ProductStats estimate_partial_product(const CsrMatrix& a, const CsrMatrix& b,
                                      std::span<const index_t> a_rows,
                                      std::span<const std::uint8_t> b_mask,
                                      bool b_mask_value) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  ProductStats s;
  for (const index_t i : a_rows) {
    std::int64_t row_flops = 0;
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      if (!b_mask.empty() && (b_mask[j] != 0) != b_mask_value) continue;
      ++s.a_nnz;
      const offset_t blen = b.indptr[j + 1] - b.indptr[j];
      row_flops += blen;
      s.warp_alu += (blen + 31) / 32;
      s.b_read_bytes += (blen * 12 + 31) / 32 * 32;
    }
    ++s.rows;
    s.flops += row_flops;
    s.tuples += row_flops;  // upper bound: no cancellation information
    s.max_row_flops = std::max(s.max_row_flops, row_flops);
    if (row_flops <= shared_accum_cap()) {
      s.flops_shared += row_flops;
    } else {
      s.flops_global += row_flops;
    }
  }
  return s;
}

}  // namespace hh
