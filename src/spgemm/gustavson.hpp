// Gustavson's row-row SpGEMM [Gustavson 1978] with a sparse accumulator
// (SPA). This is the "MKL-like" tuned CPU kernel: the CPU-only baseline in
// Fig. 6 and the numeric engine behind every host-side product.
#pragma once

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

/// Sequential two-phase (symbolic + numeric) Gustavson. Output rows sorted.
CsrMatrix gustavson_spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// Row-parallel Gustavson over the given pool. Deterministic: identical
/// output to the sequential version.
CsrMatrix gustavson_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                                    ThreadPool& pool);

}  // namespace hh
