#include "spgemm/workspace.hpp"

#include <algorithm>

namespace hh {

void SpaWorkspace::begin_product(index_t cols) {
  const auto n = static_cast<std::size_t>(cols);
  // Generation 0 is reserved so row_tag() can never collide with the -1
  // fill of fresh marker entries; wrap long before the 31-bit field packs.
  if (++generation_ >= (std::int64_t{1} << 30)) {
    generation_ = 1;
    std::fill(marker.begin(), marker.end(), std::int64_t{-1});
  }
  if (acc.size() < n) {
    acc.resize(n, value_t{0});
    marker.resize(n, std::int64_t{-1});
  }
  cols_touched.clear();
}

std::unique_ptr<SpaWorkspace> WorkspacePool::acquire_spa() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.spa_acquires;
  ++stats_.spa_live;
  if (!free_spa_.empty()) {
    ++stats_.spa_reuses;
    auto ws = std::move(free_spa_.back());
    free_spa_.pop_back();
    return ws;
  }
  return std::make_unique<SpaWorkspace>();
}

void WorkspacePool::release_spa(std::unique_ptr<SpaWorkspace> ws) {
  if (ws == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.spa_live;
  free_spa_.push_back(std::move(ws));
}

CooMatrix WorkspacePool::acquire_coo(index_t rows, index_t cols) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.coo_acquires;
  ++stats_.coo_live;
  if (!free_coo_.empty()) {
    ++stats_.coo_reuses;
    CooMatrix coo = std::move(free_coo_.back());
    free_coo_.pop_back();
    coo.rows = rows;
    coo.cols = cols;
    coo.r.clear();
    coo.c.clear();
    coo.v.clear();
    return coo;
  }
  return CooMatrix(rows, cols);
}

void WorkspacePool::release_coo(CooMatrix&& coo) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.coo_live;
  free_coo_.push_back(std::move(coo));
}

WorkspacePool::Stats WorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hh
