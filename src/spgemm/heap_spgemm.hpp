// Heap (k-way merge) SpGEMM: each output row is the merge of the |A(i,:)|
// already-sorted B rows, driven by a binary min-heap. O(flops · log k) time
// but O(k) extra space and naturally sorted output — the classic
// low-memory alternative evaluated in the accumulator ablation.
#pragma once

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

CsrMatrix heap_spgemm(const CsrMatrix& a, const CsrMatrix& b);
CsrMatrix heap_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                               ThreadPool& pool);

}  // namespace hh
