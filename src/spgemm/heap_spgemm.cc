#include "spgemm/heap_spgemm.hpp"

#include <queue>
#include <vector>

#include "util/check.hpp"

namespace hh {
namespace {

struct Cursor {
  index_t col;    // current column of this stream
  offset_t pos;   // position in B arrays
  offset_t end;   // end of B row
  value_t scale;  // A[i][j] multiplier
};

struct CursorGreater {
  bool operator()(const Cursor& x, const Cursor& y) const {
    return x.col > y.col;
  }
};

void heap_rows(const CsrMatrix& a, const CsrMatrix& b, index_t r0, index_t r1,
               std::vector<std::vector<std::pair<index_t, value_t>>>& rows) {
  std::priority_queue<Cursor, std::vector<Cursor>, CursorGreater> heap;
  for (index_t i = r0; i < r1; ++i) {
    auto& out = rows[i];
    out.clear();
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      if (b.indptr[j] < b.indptr[j + 1]) {
        heap.push(Cursor{b.indices[b.indptr[j]], b.indptr[j], b.indptr[j + 1],
                         a.values[k]});
      }
    }
    while (!heap.empty()) {
      Cursor cur = heap.top();
      heap.pop();
      const value_t contrib = cur.scale * b.values[cur.pos];
      if (!out.empty() && out.back().first == cur.col) {
        out.back().second += contrib;
      } else {
        out.emplace_back(cur.col, contrib);
      }
      if (++cur.pos < cur.end) {
        cur.col = b.indices[cur.pos];
        heap.push(cur);
      }
    }
  }
}

}  // namespace

CsrMatrix heap_spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  std::vector<std::vector<std::pair<index_t, value_t>>> rows(
      static_cast<std::size_t>(a.rows));
  heap_rows(a, b, 0, a.rows, rows);
  CsrMatrix c(a.rows, b.cols);
  offset_t nnz = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    nnz += static_cast<offset_t>(rows[i].size());
    c.indptr[i + 1] = nnz;
  }
  c.indices.reserve(static_cast<std::size_t>(nnz));
  c.values.reserve(static_cast<std::size_t>(nnz));
  for (index_t i = 0; i < a.rows; ++i) {
    for (const auto& [col, v] : rows[i]) {
      c.indices.push_back(col);
      c.values.push_back(v);
    }
  }
  return c;
}

CsrMatrix heap_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                               ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  std::vector<std::vector<std::pair<index_t, value_t>>> rows(
      static_cast<std::size_t>(a.rows));
  pool.parallel_for(a.rows, [&](std::int64_t lo, std::int64_t hi) {
    heap_rows(a, b, static_cast<index_t>(lo), static_cast<index_t>(hi), rows);
  });
  CsrMatrix c(a.rows, b.cols);
  offset_t nnz = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    nnz += static_cast<offset_t>(rows[i].size());
    c.indptr[i + 1] = nnz;
  }
  c.indices.reserve(static_cast<std::size_t>(nnz));
  c.values.reserve(static_cast<std::size_t>(nnz));
  for (index_t i = 0; i < a.rows; ++i) {
    for (const auto& [col, v] : rows[i]) {
      c.indices.push_back(col);
      c.values.push_back(v);
    }
  }
  return c;
}

}  // namespace hh
