#include "spgemm/gustavson.hpp"

#include <algorithm>

#include "spgemm/symbolic.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

// Numeric pass for rows [r0, r1): SPA accumulate, emit sorted columns at the
// row's final offsets. indptr must already hold the exact row offsets.
void numeric_rows(const CsrMatrix& a, const CsrMatrix& b, CsrMatrix& c,
                  index_t r0, index_t r1) {
  std::vector<value_t> acc(static_cast<std::size_t>(b.cols), value_t{0});
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols), -1);
  std::vector<index_t> cols;
  for (index_t i = r0; i < r1; ++i) {
    cols.clear();
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      const value_t av = a.values[k];
      for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
        const index_t col = b.indices[l];
        if (marker[col] != i) {
          marker[col] = i;
          acc[col] = value_t{0};
          cols.push_back(col);
        }
        acc[col] += av * b.values[l];
      }
    }
    std::sort(cols.begin(), cols.end());
    HH_DCHECK(static_cast<offset_t>(cols.size()) ==
              c.indptr[i + 1] - c.indptr[i]);
    offset_t dst = c.indptr[i];
    for (const index_t col : cols) {
      c.indices[dst] = col;
      c.values[dst] = acc[col];
      ++dst;
    }
  }
}

}  // namespace

CsrMatrix gustavson_spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  CsrMatrix c(a.rows, b.cols);
  const std::vector<offset_t> row_nnz = exact_row_nnz(a, b);
  for (index_t i = 0; i < a.rows; ++i) {
    c.indptr[i + 1] = c.indptr[i] + row_nnz[i];
  }
  c.indices.resize(static_cast<std::size_t>(c.nnz()));
  c.values.resize(static_cast<std::size_t>(c.nnz()));
  numeric_rows(a, b, c, 0, a.rows);
  return c;
}

CsrMatrix gustavson_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                                    ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  CsrMatrix c(a.rows, b.cols);
  const std::vector<offset_t> row_nnz = exact_row_nnz(a, b);
  for (index_t i = 0; i < a.rows; ++i) {
    c.indptr[i + 1] = c.indptr[i] + row_nnz[i];
  }
  c.indices.resize(static_cast<std::size_t>(c.nnz()));
  c.values.resize(static_cast<std::size_t>(c.nnz()));
  pool.parallel_for(a.rows, [&](std::int64_t lo, std::int64_t hi) {
    numeric_rows(a, b, c, static_cast<index_t>(lo), static_cast<index_t>(hi));
  });
  return c;
}

}  // namespace hh
