// Expand–Sort–Contract SpGEMM: the strategy behind the cuSPARSE-era generic
// GPU kernels the paper's Fig. 6 compares against. Every multiply-add is
// materialized as a ⟨r, c, v⟩ tuple ("expand"), the tuple list is radix
// sorted by (r, c), and like-tuples are contracted by segmented reduction.
// Simple and massively parallel, but it moves O(flops) tuples through
// memory — which is exactly why the paper's row-row kernels beat it.
#pragma once

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

CsrMatrix esc_spgemm(const CsrMatrix& a, const CsrMatrix& b, ThreadPool& pool);

}  // namespace hh
