#include "spgemm/reference.hpp"

#include <vector>

#include "util/check.hpp"

namespace hh {

CsrMatrix reference_multiply_dense(const CsrMatrix& a, const CsrMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  CsrMatrix c(a.rows, b.cols);
  std::vector<value_t> acc(static_cast<std::size_t>(b.cols));
  std::vector<bool> touched(static_cast<std::size_t>(b.cols));
  for (index_t i = 0; i < a.rows; ++i) {
    std::fill(acc.begin(), acc.end(), value_t{0});
    std::fill(touched.begin(), touched.end(), false);
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      const value_t av = a.values[k];
      for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
        acc[b.indices[l]] += av * b.values[l];
        touched[b.indices[l]] = true;
      }
    }
    for (index_t col = 0; col < b.cols; ++col) {
      if (touched[col]) {
        c.indices.push_back(col);
        c.values.push_back(acc[col]);
      }
    }
    c.indptr[i + 1] = static_cast<offset_t>(c.indices.size());
  }
  return c;
}

}  // namespace hh
