// Row-Column formulation: C[i][j] = A(i,:) · B(:,j) via sorted-list
// intersection against a CSC view of B. The paper (§II-A, citing [13])
// notes this formulation is ill-suited to sparse inputs on modern parallel
// hardware; we implement it so the claim is demonstrable in the ablation
// bench (every candidate (i, j) pays an intersection even when empty).
#pragma once

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

CsrMatrix row_column_spgemm(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace hh
