// Symbolic (structure-only) analysis of a sparse product C = A × B.
//
// flops(i) = Σ_{j ∈ A(i,:)} nnz(B(j,:)) — the multiply-add count of the
// row-row formulation for output row i. The paper (§I) stresses that exact
// per-row output size is as hard as the multiplication itself; these cheap
// upper bounds are what schedulers can actually use a-priori.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace hh {

/// Multiply-add count per row of A (also an upper bound on row nnz of C).
std::vector<offset_t> row_flops(const CsrMatrix& a, const CsrMatrix& b);

/// Same, but only counting contributions through rows j of B with
/// b_mask[j] == mask_value. b_mask may be empty (= no mask, all rows).
std::vector<offset_t> row_flops_masked(const CsrMatrix& a, const CsrMatrix& b,
                                       std::span<const std::uint8_t> b_mask,
                                       bool mask_value);

/// Total flops of the full product. Accumulated in an explicit 64-bit type:
/// scale-free products blow past 2^31 intermediate products long before
/// their operands are large, so the total must not inherit a (possibly
/// narrower) offset_t width.
std::int64_t total_flops(const CsrMatrix& a, const CsrMatrix& b);

/// Exact nnz per row of C (runs a structure-only SPA pass; costs ~ flops).
std::vector<offset_t> exact_row_nnz(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace hh
