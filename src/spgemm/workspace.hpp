// Reusable kernel workspaces.
//
// Every partial-product invocation needs a dense SPA accumulator (one value
// + one marker per B column) and COO tuple buffers. The one-shot driver
// allocates them per call and throws them away; a service runtime executing
// a stream of products over same-shaped matrices would reallocate — and
// re-fault — hundreds of MB per request. WorkspacePool keeps released
// buffers on free lists so steady-state requests run allocation-free
// (paper-adjacent: Liu & Vinter's framework reuses analysis workspaces
// across products for the same reason).
//
// Correctness of SPA reuse: the accumulator is only valid for columns whose
// marker carries the *current* tag. Tags are (generation, row) pairs packed
// into 64 bits and the generation is bumped on every begin_product(), so a
// stale marker from an earlier product can never alias a row of the current
// one. Pooled and non-pooled runs execute the identical kernel and produce
// bit-identical tuples.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"

namespace hh {

/// Dense-accumulator workspace for the row-row SPA kernel.
class SpaWorkspace {
 public:
  /// Start a new product over a B with `cols` columns: grows the arrays if
  /// needed and invalidates all markers by bumping the generation.
  void begin_product(index_t cols);

  /// Marker tag for row `i` of the current product.
  std::int64_t row_tag(index_t i) const {
    return (generation_ << 32) | static_cast<std::uint32_t>(i);
  }

  std::vector<value_t> acc;           // per-column partial values
  std::vector<std::int64_t> marker;   // per-column tag of the owning row
  std::vector<index_t> cols_touched;  // scratch: columns hit by current row

 private:
  std::int64_t generation_ = 0;
};

/// Thread-safe pool of SPA workspaces and COO tuple buffers. Acquire hands
/// out a recycled object when one is free, otherwise a fresh one; release
/// returns the object (buffers intact) to the free list.
class WorkspacePool {
 public:
  struct Stats {
    std::int64_t spa_acquires = 0;
    std::int64_t spa_reuses = 0;  // acquires served from the free list
    std::int64_t coo_acquires = 0;
    std::int64_t coo_reuses = 0;
    std::int64_t spa_live = 0;  // workspaces currently handed out
    std::int64_t coo_live = 0;
  };

  std::unique_ptr<SpaWorkspace> acquire_spa();
  void release_spa(std::unique_ptr<SpaWorkspace> ws);

  /// A CooMatrix shaped (rows, cols) with empty tuple arrays; a recycled
  /// buffer keeps its capacity.
  CooMatrix acquire_coo(index_t rows, index_t cols);
  void release_coo(CooMatrix&& coo);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpaWorkspace>> free_spa_;
  std::vector<CooMatrix> free_coo_;
  Stats stats_;
};

}  // namespace hh
