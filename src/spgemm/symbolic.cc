#include "spgemm/symbolic.hpp"

#include "util/check.hpp"

namespace hh {

std::vector<offset_t> row_flops(const CsrMatrix& a, const CsrMatrix& b) {
  return row_flops_masked(a, b, {}, true);
}

std::vector<offset_t> row_flops_masked(const CsrMatrix& a, const CsrMatrix& b,
                                       std::span<const std::uint8_t> b_mask,
                                       bool mask_value) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  HH_CHECK(b_mask.empty() ||
           b_mask.size() == static_cast<std::size_t>(b.rows));
  std::vector<offset_t> flops(static_cast<std::size_t>(a.rows), 0);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t f = 0;
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      if (!b_mask.empty() && (b_mask[j] != 0) != mask_value) continue;
      f += b.row_nnz(j);
    }
    flops[i] = f;
  }
  return flops;
}

std::int64_t total_flops(const CsrMatrix& a, const CsrMatrix& b) {
  std::int64_t total = 0;
  for (const offset_t f : row_flops(a, b)) {
    total += static_cast<std::int64_t>(f);
  }
  return total;
}

std::vector<offset_t> exact_row_nnz(const CsrMatrix& a, const CsrMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  std::vector<offset_t> out(static_cast<std::size_t>(a.rows), 0);
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols), -1);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t count = 0;
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
        const index_t c = b.indices[l];
        if (marker[c] != i) {
          marker[c] = i;
          ++count;
        }
      }
    }
    out[i] = count;
  }
  return out;
}

}  // namespace hh
