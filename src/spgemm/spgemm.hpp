// Public SpGEMM entry points: algorithm dispatch for full products, and the
// masked partial-product kernel used by the heterogeneous algorithms to
// compute A_X × B_Y (X, Y ∈ {H, L}) without physically splitting matrices.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "spgemm/workspace.hpp"
#include "util/thread_pool.hpp"

namespace hh {

enum class SpgemmKind {
  kGustavson,  // SPA accumulator (MKL-like tuned CPU kernel)
  kHash,       // hash accumulator
  kHeap,       // k-way merge
  kRowColumn,  // row-column formulation (demonstrably inferior, §II-A)
};

std::string to_string(SpgemmKind kind);

/// Full product with the selected algorithm. All kinds produce identical,
/// row-sorted CSR output.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b, SpgemmKind kind,
                   ThreadPool& pool);

/// Cost-relevant statistics of one partial-product kernel invocation.
/// The simulated devices (src/device/) convert these into time; they are
/// exactly the first-order quantities the paper reasons about.
struct ProductStats {
  std::int64_t rows = 0;           // A rows processed (incl. empty results)
  std::int64_t a_nnz = 0;          // A entries visited (after B-mask filter)
  std::int64_t flops = 0;          // multiply-adds
  std::int64_t tuples = 0;         // output tuples emitted
  std::int64_t max_row_flops = 0;  // heaviest single row (GPU serialization)
  std::int64_t warp_alu = 0;       // Σ ceil(len(B_j)/32): warp-instruction count
  std::int64_t flops_shared = 0;   // flops of rows whose accumulator fits
                                   // GPU shared memory (out nnz <= kSharedCap)
  std::int64_t flops_global = 0;   // the rest: PartialOutput in global memory
  std::int64_t b_read_bytes = 0;   // Σ ceil(12·len(B_j)/32)·32: bytes the GPU
                                   // actually moves reading B rows (32-byte
                                   // L2 transactions on Kepler)

  void accumulate(const ProductStats& o);
};

/// Rows whose output fits in a per-warp shared-memory accumulator
/// (K20c: 48 KB/SMX across ~8 resident warps → 512 doubles + indices).
inline constexpr std::int64_t kSharedAccumCap = 512;

/// Runtime value of the shared-accumulator capacity used when classifying
/// rows into flops_shared/flops_global. Defaults to kSharedAccumCap; when
/// experiments run on scaled-down instances the simulated machine is shrunk
/// by the same factor (see device/platform.hpp) so the scaled instance
/// exercises the same shared-vs-global regime as the full-size one.
std::int64_t shared_accum_cap();
void set_shared_accum_cap(std::int64_t cap);

/// Compute tuples of A(rows ∈ a_rows, :) × B restricted to contributions
/// through rows j of B with b_mask[j] == b_mask_value (empty mask = all j).
/// Tuples are emitted row-sorted and column-sorted, deterministically.
/// When `workspace` is non-null the SPA accumulators and tuple buffers are
/// drawn from (and returned to) the pool instead of heap-allocated per call;
/// the returned CooMatrix is pool-backed and may be handed back via
/// WorkspacePool::release_coo once consumed. Output is bit-identical either
/// way.
CooMatrix partial_product_tuples(const CsrMatrix& a, const CsrMatrix& b,
                                 std::span<const index_t> a_rows,
                                 std::span<const std::uint8_t> b_mask,
                                 bool b_mask_value, ThreadPool& pool,
                                 ProductStats* stats = nullptr,
                                 WorkspacePool* workspace = nullptr);

/// Structure-only estimate of the same invocation (no numeric work):
/// flops/a_nnz/warp_alu/max_row_flops are exact; tuples and the shared/global
/// flops split use the flops upper bound per row. Used by schedulers that
/// must decide *before* computing (paper §III: a-priori work volume is hard).
ProductStats estimate_partial_product(const CsrMatrix& a, const CsrMatrix& b,
                                      std::span<const index_t> a_rows,
                                      std::span<const std::uint8_t> b_mask,
                                      bool b_mask_value);

}  // namespace hh
