#include "spgemm/esc_spgemm.hpp"

#include "primitives/tuple_merge.hpp"
#include "spgemm/symbolic.hpp"
#include "util/check.hpp"

namespace hh {

CsrMatrix esc_spgemm(const CsrMatrix& a, const CsrMatrix& b,
                     ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");

  // Expand: one tuple per multiply-add, placed by a per-row flops scan so
  // the expansion parallelizes without synchronization.
  const std::vector<offset_t> flops = row_flops(a, b);
  std::vector<offset_t> offset(flops.size() + 1, 0);
  for (std::size_t i = 0; i < flops.size(); ++i) {
    offset[i + 1] = offset[i] + flops[i];
  }
  CooMatrix expanded(a.rows, b.cols);
  expanded.r.resize(static_cast<std::size_t>(offset.back()));
  expanded.c.resize(expanded.r.size());
  expanded.v.resize(expanded.r.size());
  pool.parallel_for(a.rows, [&](std::int64_t lo, std::int64_t hi) {
    for (index_t i = static_cast<index_t>(lo); i < hi; ++i) {
      offset_t pos = offset[i];
      for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
        const index_t j = a.indices[k];
        const value_t av = a.values[k];
        for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
          expanded.r[pos] = i;
          expanded.c[pos] = b.indices[l];
          expanded.v[pos] = av * b.values[l];
          ++pos;
        }
      }
      HH_DCHECK(pos == offset[i + 1]);
    }
  });

  // Sort + contract: the Phase IV machinery is exactly an ESC backend.
  return merged_coo_to_csr(expanded, pool, nullptr);
}

}  // namespace hh
