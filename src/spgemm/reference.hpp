// Dense reference multiply — the correctness oracle for small matrices.
#pragma once

#include "sparse/csr.hpp"

namespace hh {

/// O(rows·cols) memory: only for test-sized matrices. Entries whose exact
/// accumulated value is 0 are kept out of the result (matching what a sparse
/// kernel that never touches them produces is the caller's job; compare via
/// drop_small + approx_equal).
CsrMatrix reference_multiply_dense(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace hh
