// Hash-accumulator SpGEMM: per output row, accumulate into an open-addressed
// hash table sized to the row's flops upper bound, then sort the row.
// Preferable to the SPA when B has many columns but rows of C are short —
// the accumulator is O(row nnz), not O(cols). Used in the accumulator
// ablation bench.
#pragma once

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

CsrMatrix hash_spgemm(const CsrMatrix& a, const CsrMatrix& b);
CsrMatrix hash_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                               ThreadPool& pool);

}  // namespace hh
