// Hash-accumulator SpGEMM: per output row, accumulate into an open-addressed
// hash table sized to the row's flops upper bound, then sort the row.
// Preferable to the SPA when B has many columns but rows of C are short —
// the accumulator is O(row nnz), not O(cols). Used in the accumulator
// ablation bench.
#pragma once

#include <cstddef>

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

/// Open-addressing capacity for a row whose symbolic upper bound is
/// `upper_bound_nnz` distinct keys: the smallest power of two keeping the
/// load factor <= 1/2, never below 16, and saturating at 2^63 instead of
/// wrapping. (The old round-up loop `while (cap < ub * 2) cap <<= 1`
/// overflowed `cap` to zero for bounds above 2^62 and spun forever — and a
/// table sized from a wrapped capacity makes add()'s linear probe livelock
/// once the table fills.) Non-positive bounds (empty rows) get the floor.
std::size_t hash_table_capacity(offset_t upper_bound_nnz);

CsrMatrix hash_spgemm(const CsrMatrix& a, const CsrMatrix& b);
CsrMatrix hash_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                               ThreadPool& pool);

}  // namespace hh
