#include "spgemm/row_column.hpp"

#include <vector>

#include "sparse/convert.hpp"
#include "util/check.hpp"

namespace hh {

CsrMatrix row_column_spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  const CsrMatrix bt = transpose(b);  // row j of bt == column j of b

  CsrMatrix c(a.rows, b.cols);
  // Candidate columns for row i: columns j whose B(:,j) intersects A(i,:)'s
  // support. Enumerating all cols is hopeless; collect candidates by walking
  // rows of B once per A row (this is what makes the formulation pay:
  // the candidate set is rebuilt per row, with no reuse).
  std::vector<index_t> marker(static_cast<std::size_t>(b.cols), -1);
  std::vector<index_t> candidates;
  for (index_t i = 0; i < a.rows; ++i) {
    candidates.clear();
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
        const index_t col = b.indices[l];
        if (marker[col] != i) {
          marker[col] = i;
          candidates.push_back(col);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (const index_t col : candidates) {
      // Sorted-list dot product of A(i,:) with B(:,col) (= bt row col).
      value_t dot = 0;
      offset_t p = a.indptr[i], q = bt.indptr[col];
      const offset_t pe = a.indptr[i + 1], qe = bt.indptr[col + 1];
      while (p < pe && q < qe) {
        const index_t pa = a.indices[p], qb = bt.indices[q];
        if (pa == qb) {
          dot += a.values[p] * bt.values[q];
          ++p;
          ++q;
        } else if (pa < qb) {
          ++p;
        } else {
          ++q;
        }
      }
      c.indices.push_back(col);
      c.values.push_back(dot);
    }
    c.indptr[i + 1] = static_cast<offset_t>(c.indices.size());
  }
  return c;
}

}  // namespace hh
