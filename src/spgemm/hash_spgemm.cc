#include "spgemm/hash_spgemm.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "spgemm/symbolic.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

// Open-addressing table with linear probing; capacity is a power of two.
class RowHashTable {
 public:
  void reset(offset_t upper_bound_nnz) {
    const std::size_t cap = hash_table_capacity(upper_bound_nnz);
    if (cap > keys_.size()) {
      keys_.assign(cap, -1);
      vals_.resize(cap);
    } else {
      std::fill(keys_.begin(), keys_.begin() + static_cast<std::ptrdiff_t>(cap),
                -1);
    }
    mask_ = cap - 1;
    size_ = 0;
  }

  void add(index_t key, value_t v) {
    std::size_t h = (static_cast<std::size_t>(key) * 0x9e3779b97f4a7c15ULL) &
                    mask_;
    for (;;) {
      if (keys_[h] == key) {
        vals_[h] += v;
        return;
      }
      if (keys_[h] < 0) {
        keys_[h] = key;
        vals_[h] = v;
        ++size_;
        return;
      }
      h = (h + 1) & mask_;
    }
  }

  /// Extract (key, value) pairs sorted by key.
  void extract(std::vector<std::pair<index_t, value_t>>& out) const {
    out.clear();
    out.reserve(size_);
    for (std::size_t h = 0; h <= mask_; ++h) {
      if (keys_[h] >= 0) out.emplace_back(keys_[h], vals_[h]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
  }

 private:
  std::vector<index_t> keys_;
  std::vector<value_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

void hash_rows(const CsrMatrix& a, const CsrMatrix& b,
               const std::vector<offset_t>& flops, index_t r0, index_t r1,
               std::vector<std::vector<std::pair<index_t, value_t>>>& rows) {
  RowHashTable table;
  for (index_t i = r0; i < r1; ++i) {
    if (flops[i] == 0) {
      rows[i].clear();
      continue;
    }
    table.reset(flops[i]);
    for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
      const index_t j = a.indices[k];
      const value_t av = a.values[k];
      for (offset_t l = b.indptr[j]; l < b.indptr[j + 1]; ++l) {
        table.add(b.indices[l], av * b.values[l]);
      }
    }
    table.extract(rows[i]);
  }
}

CsrMatrix assemble(const CsrMatrix& a, const CsrMatrix& b,
                   std::vector<std::vector<std::pair<index_t, value_t>>>& rows) {
  CsrMatrix c(a.rows, b.cols);
  offset_t nnz = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    nnz += static_cast<offset_t>(rows[i].size());
    c.indptr[i + 1] = nnz;
  }
  c.indices.reserve(static_cast<std::size_t>(nnz));
  c.values.reserve(static_cast<std::size_t>(nnz));
  for (index_t i = 0; i < a.rows; ++i) {
    for (const auto& [col, v] : rows[i]) {
      c.indices.push_back(col);
      c.values.push_back(v);
    }
  }
  return c;
}

}  // namespace

std::size_t hash_table_capacity(offset_t upper_bound_nnz) {
  constexpr std::size_t kFloor = 16;
  if (upper_bound_nnz <= static_cast<offset_t>(kFloor / 2)) return kFloor;
  const auto ub = static_cast<std::uint64_t>(upper_bound_nnz);
  // ub * 2 must stay representable for bit_ceil; past that the capacity
  // saturates at the largest power of two (allocation will fail loudly with
  // bad_alloc long before, which beats an unbounded probe loop).
  constexpr std::uint64_t kMax = std::uint64_t{1} << 63;
  if (ub >= kMax / 2) return static_cast<std::size_t>(kMax);
  return static_cast<std::size_t>(std::bit_ceil(ub * 2));
}

CsrMatrix hash_spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  const std::vector<offset_t> flops = row_flops(a, b);
  std::vector<std::vector<std::pair<index_t, value_t>>> rows(
      static_cast<std::size_t>(a.rows));
  hash_rows(a, b, flops, 0, a.rows, rows);
  return assemble(a, b, rows);
}

CsrMatrix hash_spgemm_parallel(const CsrMatrix& a, const CsrMatrix& b,
                               ThreadPool& pool) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  const std::vector<offset_t> flops = row_flops(a, b);
  std::vector<std::vector<std::pair<index_t, value_t>>> rows(
      static_cast<std::size_t>(a.rows));
  pool.parallel_for(a.rows, [&](std::int64_t lo, std::int64_t hi) {
    hash_rows(a, b, flops, static_cast<index_t>(lo), static_cast<index_t>(hi),
              rows);
  });
  return assemble(a, b, rows);
}

}  // namespace hh
