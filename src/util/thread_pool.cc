#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace hh {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HH_CHECK_MSG(!stop_, "submit() on a stopped pool");
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const auto blocks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) * 4);
  const std::int64_t chunk = (n + blocks - 1) / blocks;

  std::atomic<std::size_t> pending{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::int64_t begin = 0; begin < n; begin += chunk) {
    const std::int64_t end = std::min(n, begin + chunk);
    pending.fetch_add(1, std::memory_order_relaxed);
    submit([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  wait_idle();
  HH_CHECK(pending.load() == 0);
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hh
