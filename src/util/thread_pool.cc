#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

/// Rethrow a stashed task exception through the typed taxonomy: HhError
/// subclasses pass unchanged, everything else becomes kInternal.
[[noreturn]] void rethrow_typed(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const HhError&) {
    throw;
  } catch (const std::exception& e) {
    throw HhError(StatusCode::kInternal,
                  std::string("ThreadPool task threw: ") + e.what());
  } catch (...) {
    throw HhError(StatusCode::kInternal,
                  "ThreadPool task threw a non-standard exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
  if (stashed_error_) {
    // Destructors must not throw; surface the swallowed failure in the log.
    try {
      rethrow_typed(stashed_error_);
    } catch (const HhError& e) {
      log_message(LogLevel::kInfo,
                  std::string("ThreadPool destroyed with an unreported task "
                              "failure: ") +
                      e.what());
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HH_CHECK_MSG(!stop_, "submit() on a stopped pool");
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
    error = std::exchange(stashed_error_, nullptr);
  }
  if (error) rethrow_typed(error);
}

void ThreadPool::run_task(std::function<void()> task) {
  try {
    task();
  } catch (...) {
    // A throwing submit()-ed task must not unwind the worker thread (that
    // calls std::terminate). Stash the first failure for wait_idle().
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stashed_error_) stashed_error_ = std::current_exception();
  }
}

bool ThreadPool::try_help_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
    ++in_flight_;
  }
  run_task(std::move(task));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  cv_idle_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    run_task(std::move(task));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const auto blocks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) * 4);
  const std::int64_t chunk = (n + blocks - 1) / blocks;

  // Per-call completion group: this call waits for exactly its own blocks,
  // not for whole-pool idleness, so concurrent parallel_for callers cannot
  // block on each other's tasks. shared_ptr keeps the group alive for any
  // block that finishes after an exceptional unwind.
  struct CallGroup {
    std::mutex m;
    std::condition_variable cv;
    std::int64_t remaining = 0;
    std::exception_ptr first_error;
  };
  const auto group = std::make_shared<CallGroup>();
  group->remaining = (n + chunk - 1) / chunk;

  for (std::int64_t begin = 0; begin < n; begin += chunk) {
    const std::int64_t end = std::min(n, begin + chunk);
    submit([group, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(group->m);
        if (!group->first_error) group->first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(group->m);
      if (--group->remaining == 0) group->cv.notify_all();
    });
  }

  // Help drain the shared queue while this call's blocks are pending. The
  // queue may hand us another caller's task — running it here only speeds
  // that caller up — and helping is what makes nested parallel_for calls
  // progress even when every worker is blocked inside an outer call.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(group->m);
      if (group->remaining == 0) break;
    }
    if (!try_help_one()) {
      // Queue empty: every remaining block is already running on a worker.
      std::unique_lock<std::mutex> lock(group->m);
      group->cv.wait(lock, [&] { return group->remaining == 0; });
      break;
    }
  }
  if (group->first_error) std::rethrow_exception(group->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hh
