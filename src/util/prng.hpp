// Deterministic, seedable pseudo-random number generation.
//
// All generators in the library take an explicit seed so every experiment is
// reproducible bit-for-bit across runs. xoshiro256** is used as the core
// engine (fast, passes BigCrush); splitmix64 expands a single seed into the
// engine state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hh {

/// splitmix64 step: used for seeding and as a cheap standalone mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// The full 256-bit engine state, for checkpoint/restore. A generator
  /// restored via set_state() continues the exact stream the snapshot was
  /// taken from — the basis of byte-identical replay across a service
  /// restart (src/shard/snapshot.hpp).
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hh
