#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hh {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized, read env on first use
std::mutex g_mutex;

int resolve_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level >= 0) return level;
  level = 1;
  if (const char* env = std::getenv("HH_LOG_LEVEL")) {
    level = std::atoi(env);
    if (level < 0) level = 0;
    if (level > 2) level = 2;
  }
  g_level.store(level, std::memory_order_relaxed);
  return level;
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(resolve_level()); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > resolve_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[hh%s] %s\n",
               level == LogLevel::kDebug ? ":debug" : "", msg.c_str());
}

}  // namespace hh
