#include "util/status.hpp"

namespace hh {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kDeviceFault: return "device_fault";
    case StatusCode::kTransferFault: return "transfer_fault";
    case StatusCode::kInternal: return "internal";
  }
  return "?";
}

std::string Status::to_string() const {
  std::string s = hh::to_string(code);
  if (!message.empty()) {
    s += ": ";
    s += message;
  }
  return s;
}

}  // namespace hh
