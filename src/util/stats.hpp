// Small descriptive-statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hh {

// The percentile/Summary ingredients — median, stddev, min_of, max_of,
// percentile* and summarize — are total over empty samples and return 0:
// a merged group report legitimately includes shards that contributed zero
// samples (e.g. a shard that shed every request), and callers should not
// have to pre-filter. mean/geomean keep their non-empty contract (an
// average of nothing is a caller bug, not a degenerate sample).
double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  // xs must be positive
double median(std::vector<double> xs);       // by value: needs to sort
double stddev(std::span<const double> xs);   // sample stddev; 0 when n < 2
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Nearest-rank percentile of an unsorted sample (by value: needs to sort);
/// q must be in (0, 1]. The element at 1-based rank ceil(q * n): p50 of
/// {a, b} is a, p100 is the maximum, and a single-element sample answers
/// every q with that element. Returns 0 on an empty sample.
double percentile(std::vector<double> xs, double q);

/// Same, over a sample already sorted ascending.
double percentile_sorted(std::span<const double> xs, double q);

/// Summary of a sample, convenient for printing benchmark tables.
struct Summary {
  std::size_t n = 0;
  double mean = 0, median = 0, stddev = 0, min = 0, max = 0;
  double p95 = 0, p99 = 0;  // nearest-rank
};

Summary summarize(std::span<const double> xs);

}  // namespace hh
