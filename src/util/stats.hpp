// Small descriptive-statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hh {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  // xs must be positive
double median(std::vector<double> xs);       // by value: needs to sort
double stddev(std::span<const double> xs);   // sample standard deviation
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Summary of a sample, convenient for printing benchmark tables.
struct Summary {
  std::size_t n = 0;
  double mean = 0, median = 0, stddev = 0, min = 0, max = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace hh
