// Typed error taxonomy for the library and the service runtime.
//
// StatusCode names the failure classes a production SpGEMM service must
// distinguish: caller mistakes (kInvalidArgument, kParseError), overload
// (kResourceExhausted), missed deadlines (kDeadlineExceeded), and the
// transient hardware faults the fault-injection framework models
// (kDeviceFault for kernel aborts, kTransferFault for PCIe failures and
// corruption). Status is the value form carried in reports; HhError is the
// throwable form, with one subclass per user-facing failure class so call
// sites can catch exactly what they can handle. CheckError (util/check.hpp)
// derives from HhError with kInternal: an invariant violation is a bug, not
// an operational condition.
#pragma once

#include <stdexcept>
#include <string>

namespace hh {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed request (caller bug)
  kParseError,         // malformed external input (file, stream)
  kResourceExhausted,  // admission queue full — request shed
  kDeadlineExceeded,   // request cancelled past its deadline
  kDeviceFault,        // transient device failure (e.g. GPU kernel abort)
  kTransferFault,      // PCIe transfer failure or detected corruption
  kInternal,           // invariant violation (library bug)
};

const char* to_string(StatusCode code);

/// Value-form outcome carried in reports; ok() when code == kOk.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  std::string to_string() const;
};

/// Base of every typed error the library throws.
class HhError : public std::runtime_error {
 public:
  HhError(StatusCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  StatusCode code() const { return code_; }
  Status status() const { return {code_, what()}; }

 private:
  StatusCode code_;
};

class InvalidArgumentError : public HhError {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : HhError(StatusCode::kInvalidArgument, what) {}
};

class ParseError : public HhError {
 public:
  explicit ParseError(const std::string& what)
      : HhError(StatusCode::kParseError, what) {}
};

/// Thrown by SpgemmService::submit when the bounded admission queue is full.
class AdmissionError : public HhError {
 public:
  explicit AdmissionError(const std::string& what)
      : HhError(StatusCode::kResourceExhausted, what) {}
};

class DeadlineExceededError : public HhError {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : HhError(StatusCode::kDeadlineExceeded, what) {}
};

class DeviceError : public HhError {
 public:
  explicit DeviceError(const std::string& what)
      : HhError(StatusCode::kDeviceFault, what) {}
};

class TransferError : public HhError {
 public:
  explicit TransferError(const std::string& what)
      : HhError(StatusCode::kTransferFault, what) {}
};

}  // namespace hh
