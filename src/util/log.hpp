// Minimal leveled logger. Controlled by HH_LOG_LEVEL env var
// (0 = silent, 1 = info [default], 2 = debug).
#pragma once

#include <sstream>
#include <string>

namespace hh {

enum class LogLevel : int { kSilent = 0, kInfo = 1, kDebug = 2 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hh

#define HH_LOG_INFO ::hh::detail::LogLine(::hh::LogLevel::kInfo)
#define HH_LOG_DEBUG ::hh::detail::LogLine(::hh::LogLevel::kDebug)
