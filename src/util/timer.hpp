// Wall-clock timer for host-side microbenchmarks.
//
// Note: the experiment harness reports *simulated* device time (see
// src/device/); WallTimer is only used for real host-kernel measurements.
#pragma once

#include <chrono>

namespace hh {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hh
