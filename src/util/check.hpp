// Lightweight runtime-checked assertions used across the library.
//
// HH_CHECK is always on (it guards data-structure invariants whose violation
// would otherwise corrupt results silently); HH_DCHECK compiles out in
// release builds and is used on hot paths.
#pragma once

#include <sstream>
#include <string>

#include "util/status.hpp"

namespace hh {

/// Error thrown when a checked invariant fails. Part of the HhError
/// taxonomy (util/status.hpp) with code kInternal: a failed check is a
/// library bug, not an operational condition.
class CheckError : public HhError {
 public:
  explicit CheckError(const std::string& what)
      : HhError(StatusCode::kInternal, what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace hh

#define HH_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr)) ::hh::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HH_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream hh_os_;                                      \
      hh_os_ << msg;                                                  \
      ::hh::detail::check_failed(#expr, __FILE__, __LINE__, hh_os_.str()); \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define HH_DCHECK(expr) ((void)0)
#else
#define HH_DCHECK(expr) HH_CHECK(expr)
#endif
