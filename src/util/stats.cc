#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hh {

double mean(std::span<const double> xs) {
  HH_CHECK(!xs.empty());
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  HH_CHECK(!xs.empty());
  double s = 0;
  for (double x : xs) {
    HH_CHECK_MSG(x > 0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(),
                                xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile_sorted(std::span<const double> xs, double q) {
  HH_CHECK_MSG(q > 0 && q <= 1, "percentile requires q in (0, 1]");
  if (xs.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[std::min(xs.size(), std::max<std::size_t>(rank, 1)) - 1];
}

double percentile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, q);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.median = median(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

}  // namespace hh
