// Fixed-size thread pool with a blocked-range parallel_for.
//
// Host kernels (the "real" numeric computation) run through this pool; the
// simulated devices charge time from their own cost models independently of
// how many host threads actually execute.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hh {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; wait_idle() blocks until all enqueued tasks finish.
  void submit(std::function<void()> task);
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into roughly size()*4 blocks and
  /// block until done. Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace hh
