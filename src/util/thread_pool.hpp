// Fixed-size thread pool with a blocked-range parallel_for.
//
// Host kernels (the "real" numeric computation) run through this pool; the
// simulated devices charge time from their own cost models independently of
// how many host threads actually execute.
//
// Concurrency contract:
//  - parallel_for() waits on its own per-call completion group, never on the
//    whole pool, so concurrent callers (e.g. the service worker and a bench
//    harness sharing the global pool) do not block on each other's tasks.
//    While waiting, the calling thread helps drain the shared queue, which
//    also makes nested parallel_for calls (a task that itself calls
//    parallel_for) deadlock-free even on a single-worker pool.
//  - A task submitted via submit() that throws never escapes the worker
//    thread (which would std::terminate the process): the first exception is
//    stashed and rethrown from the next wait_idle() — as-is when it is part
//    of the HhError taxonomy (util/status.hpp), wrapped into an HhError with
//    StatusCode::kInternal otherwise. If the pool is destroyed with an
//    unreported stashed exception, it is logged, not thrown.
//  - parallel_for() reports its body's exceptions itself (first one wins,
//    original type preserved); they do not go through the wait_idle() stash.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hh {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; wait_idle() blocks until all enqueued tasks finish.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running, then rethrow
  /// the first exception any submit()-ed task threw since the last call
  /// (HhError subclasses as-is, anything else wrapped as kInternal).
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into roughly size()*4 blocks and
  /// block until this call's blocks are done (not the whole pool).
  /// Exceptions from fn are rethrown (first one wins). Safe to call from
  /// multiple threads concurrently and from inside pool tasks (nested).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Run a task, stashing (not propagating) anything it throws.
  void run_task(std::function<void()> task);
  /// Pop and run one queued task on the calling thread; false if none.
  bool try_help_one();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr stashed_error_;  // first submit()-task failure, guarded
                                      // by mutex_
};

}  // namespace hh
