#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace hh {

void DenseMatrix::validate() const {
  HH_CHECK(rows >= 0 && cols >= 0);
  HH_CHECK_MSG(data.size() == static_cast<std::size_t>(rows) *
                                  static_cast<std::size_t>(cols),
               "dense data size mismatch");
}

DenseMatrix random_dense(index_t rows, index_t cols, std::uint64_t seed) {
  DenseMatrix m(rows, cols);
  Xoshiro256 rng(seed);
  for (auto& x : m.data) x = 0.5 + rng.uniform();
  return m;
}

value_t max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  HH_CHECK(a.rows == b.rows && a.cols == b.cols);
  value_t d = 0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    d = std::max(d, std::abs(a.data[i] - b.data[i]));
  }
  return d;
}

}  // namespace hh
