// Structural and numerical matrix comparison, used by every correctness test
// to check algorithm outputs against the sequential reference.
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace hh {

/// Remove entries with |v| <= drop_tol (products can create exact zeros whose
/// presence is representation-dependent).
CsrMatrix drop_small(const CsrMatrix& m, value_t drop_tol);

/// True iff same shape, same sparsity pattern and values within
/// rel_tol * max(1, |a|, |b|) element-wise. Both inputs must be row-sorted.
/// On mismatch, *why (if given) gets a human-readable explanation.
bool approx_equal(const CsrMatrix& a, const CsrMatrix& b,
                  value_t rel_tol = 1e-9, std::string* why = nullptr);

}  // namespace hh
