#include "sparse/partition.hpp"

namespace hh {

RowPartition classify_rows(const CsrMatrix& m, offset_t threshold) {
  RowPartition p;
  p.threshold = threshold;
  p.is_high.resize(static_cast<std::size_t>(m.rows));
  for (index_t r = 0; r < m.rows; ++r) {
    const offset_t k = m.row_nnz(r);
    const bool high = k >= threshold;
    p.is_high[r] = high ? 1 : 0;
    if (high) {
      p.high_rows.push_back(r);
      p.high_nnz += k;
    } else {
      p.low_rows.push_back(r);
      p.low_nnz += k;
    }
  }
  return p;
}

}  // namespace hh
