// Compressed Sparse Row matrix — the library's primary format.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace hh {

/// CSR matrix. Invariants (checked by validate()):
///  - indptr.size() == rows + 1, indptr[0] == 0, non-decreasing
///  - indices/values have indptr[rows] entries, indices in [0, cols)
/// Column indices within a row are kept sorted by all library kernels.
struct CsrMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<offset_t> indptr;  // size rows+1
  std::vector<index_t> indices;  // size nnz
  std::vector<value_t> values;   // size nnz

  CsrMatrix() : indptr(1, 0) {}
  CsrMatrix(index_t rows, index_t cols)
      : rows(rows), cols(cols), indptr(static_cast<std::size_t>(rows) + 1, 0) {}

  offset_t nnz() const { return indptr.empty() ? 0 : indptr.back(); }

  offset_t row_nnz(index_t r) const { return indptr[r + 1] - indptr[r]; }

  std::span<const index_t> row_indices(index_t r) const {
    return {indices.data() + indptr[r],
            static_cast<std::size_t>(row_nnz(r))};
  }
  std::span<const value_t> row_values(index_t r) const {
    return {values.data() + indptr[r], static_cast<std::size_t>(row_nnz(r))};
  }

  /// Throws CheckError on any violated invariant. `sorted` additionally
  /// requires strictly increasing column indices within each row.
  void validate(bool sorted = true) const;

  /// Sort column indices (and values) within every row.
  void sort_rows();

  /// Total bytes of the CSR arrays (what a device transfer must move).
  std::size_t byte_size() const {
    return indptr.size() * sizeof(offset_t) +
           indices.size() * sizeof(index_t) + values.size() * sizeof(value_t);
  }

  /// Human-readable one-line summary, e.g. "1000x1000, nnz=5000".
  std::string summary() const;
};

/// Build a CSR matrix from (row, col, value) triplets; duplicates are summed.
CsrMatrix csr_from_triplets(index_t rows, index_t cols,
                            std::span<const index_t> tr,
                            std::span<const index_t> tc,
                            std::span<const value_t> tv);

/// Identity matrix of size n.
CsrMatrix csr_identity(index_t n);

}  // namespace hh
