// Coordinate-format matrix: the tuple ⟨r, c, v⟩ representation that Phases
// II/III of Algorithm HH-CPU emit and Phase IV merges (paper §III-D).
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"

namespace hh {

struct CooMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> r;  // row index of each tuple
  std::vector<index_t> c;  // column index of each tuple
  std::vector<value_t> v;  // value of each tuple

  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols) : rows(rows), cols(cols) {}

  std::size_t nnz() const { return r.size(); }

  void push(index_t row, index_t col, value_t val) {
    r.push_back(row);
    c.push_back(col);
    v.push_back(val);
  }

  void reserve(std::size_t n) {
    r.reserve(n);
    c.reserve(n);
    v.reserve(n);
  }

  /// Append all tuples of `other` (dimensions must match).
  void append(const CooMatrix& other);

  /// Throws CheckError if any tuple is out of range or array sizes differ.
  void validate() const;
};

}  // namespace hh
