// High/low density row classification — Phase I of Algorithm HH-CPU.
//
// Rows with nnz >= threshold are "high density" (part of A_H / B_H); the
// rest are "low density" (A_L / B_L). Matrices are never physically split:
// the Boolean flag array defines the two logical views (paper §III-A, §IV-A).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace hh {

struct RowPartition {
  offset_t threshold = 0;
  std::vector<std::uint8_t> is_high;  // one flag per row
  std::vector<index_t> high_rows;     // row ids with is_high == 1, ascending
  std::vector<index_t> low_rows;      // complement, ascending
  offset_t high_nnz = 0;              // total nnz in high rows
  offset_t low_nnz = 0;

  index_t high_count() const {
    return static_cast<index_t>(high_rows.size());
  }
  index_t low_count() const { return static_cast<index_t>(low_rows.size()); }
};

/// Classify every row of `m` against `threshold` (nnz >= threshold → high).
RowPartition classify_rows(const CsrMatrix& m, offset_t threshold);

}  // namespace hh
