#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace hh {

void CsrMatrix::validate(bool sorted) const {
  HH_CHECK(rows >= 0 && cols >= 0);
  HH_CHECK_MSG(indptr.size() == static_cast<std::size_t>(rows) + 1,
               "indptr size " << indptr.size() << " for " << rows << " rows");
  HH_CHECK(indptr.front() == 0);
  for (index_t r = 0; r < rows; ++r) {
    HH_CHECK_MSG(indptr[r] <= indptr[r + 1], "indptr decreasing at row " << r);
  }
  const auto nz = static_cast<std::size_t>(indptr.back());
  HH_CHECK_MSG(indices.size() == nz, "indices size mismatch");
  HH_CHECK_MSG(values.size() == nz, "values size mismatch");
  for (index_t r = 0; r < rows; ++r) {
    for (offset_t k = indptr[r]; k < indptr[r + 1]; ++k) {
      HH_CHECK_MSG(indices[k] >= 0 && indices[k] < cols,
                   "column " << indices[k] << " out of range in row " << r);
      if (sorted && k > indptr[r]) {
        HH_CHECK_MSG(indices[k - 1] < indices[k],
                     "unsorted/duplicate column in row " << r);
      }
    }
  }
}

void CsrMatrix::sort_rows() {
  std::vector<std::pair<index_t, value_t>> buf;
  for (index_t r = 0; r < rows; ++r) {
    const offset_t b = indptr[r], e = indptr[r + 1];
    if (e - b <= 1) continue;
    bool is_sorted = true;
    for (offset_t k = b + 1; k < e; ++k) {
      if (indices[k - 1] >= indices[k]) {
        is_sorted = false;
        break;
      }
    }
    if (is_sorted) continue;
    buf.clear();
    for (offset_t k = b; k < e; ++k) buf.emplace_back(indices[k], values[k]);
    std::sort(buf.begin(), buf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (offset_t k = b; k < e; ++k) {
      indices[k] = buf[k - b].first;
      values[k] = buf[k - b].second;
    }
  }
}

std::string CsrMatrix::summary() const {
  std::ostringstream os;
  os << rows << "x" << cols << ", nnz=" << nnz();
  return os.str();
}

CsrMatrix csr_from_triplets(index_t rows, index_t cols,
                            std::span<const index_t> tr,
                            std::span<const index_t> tc,
                            std::span<const value_t> tv) {
  HH_CHECK(tr.size() == tc.size() && tc.size() == tv.size());
  const std::size_t n = tr.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tr[a] != tr[b]) return tr[a] < tr[b];
    return tc[a] < tc[b];
  });

  CsrMatrix m(rows, cols);
  m.indices.reserve(n);
  m.values.reserve(n);
  index_t last_r = -1, last_c = -1;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t i = order[pos];
    HH_CHECK_MSG(tr[i] >= 0 && tr[i] < rows, "triplet row out of range");
    HH_CHECK_MSG(tc[i] >= 0 && tc[i] < cols, "triplet col out of range");
    if (tr[i] == last_r && tc[i] == last_c) {
      m.values.back() += tv[i];  // duplicate (r, c): accumulate
      continue;
    }
    m.indices.push_back(tc[i]);
    m.values.push_back(tv[i]);
    m.indptr[tr[i] + 1]++;
    last_r = tr[i];
    last_c = tc[i];
  }
  for (index_t r = 0; r < rows; ++r) m.indptr[r + 1] += m.indptr[r];
  return m;
}

CsrMatrix csr_identity(index_t n) {
  CsrMatrix m(n, n);
  m.indices.resize(n);
  m.values.assign(n, value_t{1});
  for (index_t i = 0; i < n; ++i) {
    m.indices[i] = i;
    m.indptr[i + 1] = i + 1;
  }
  return m;
}

}  // namespace hh
