#include "sparse/mm_io.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace hh {
namespace {

std::string lower(std::string s) {
  for (char& ch : s) ch = static_cast<char>(std::tolower(ch));
  return s;
}

[[noreturn]] void fail(const std::string& what, const std::string& line) {
  std::ostringstream os;
  os << "MatrixMarket: " << what;
  if (!line.empty()) os << " in line \"" << line << "\"";
  throw ParseError(os.str());
}

/// Strict numeric token: istream's operator>> leaves the target untouched on
/// garbage, which would silently read "x y z" as zeros. Extract-and-check.
template <typename T>
T parse_token(std::istringstream& s, const char* what,
              const std::string& line) {
  T v{};
  if (!(s >> v)) fail(std::string("expected ") + what, line);
  return v;
}

void reject_trailing(std::istringstream& s, const std::string& line) {
  std::string junk;
  if (s >> junk) fail("unexpected trailing token \"" + junk + "\"", line);
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream", "");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing banner", line);
  if (lower(object) != "matrix") fail("unsupported object " + object, line);
  if (lower(format) != "coordinate") {
    fail("only coordinate format is supported", line);
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    fail("unsupported field " + field, line);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    fail("unsupported symmetry " + symmetry, line);
  }

  // Skip comments, read size line.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  if (!have_size_line) fail("missing size line", "");
  std::istringstream size_line(line);
  const auto rows = parse_token<long long>(size_line, "row count", line);
  const auto cols = parse_token<long long>(size_line, "column count", line);
  const auto entries = parse_token<long long>(size_line, "entry count", line);
  reject_trailing(size_line, line);
  if (rows <= 0 || cols <= 0 || entries < 0) fail("bad size line", line);
  constexpr long long kMaxDim = std::numeric_limits<index_t>::max();
  if (rows > kMaxDim || cols > kMaxDim) {
    fail("dimension overflows index type", line);
  }
  // Coordinate entries are distinct positions, so more of them than the
  // matrix has cells means a corrupt size line; catching it here also bounds
  // the reserve below against absurd claimed counts.
  if (static_cast<unsigned long long>(entries) >
      static_cast<unsigned long long>(rows) *
          static_cast<unsigned long long>(cols)) {
    fail("entry count exceeds rows*cols", line);
  }

  std::vector<index_t> tr, tc;
  std::vector<value_t> tv;
  tr.reserve(static_cast<std::size_t>(entries) * (symmetric ? 2 : 1));
  tc.reserve(tr.capacity());
  tv.reserve(tr.capacity());
  for (long long i = 0; i < entries; ++i) {
    if (!std::getline(in, line)) {
      std::ostringstream os;
      os << "truncated entry list: got " << i << " of " << entries
         << " entries";
      fail(os.str(), "");
    }
    std::istringstream es(line);
    const auto r = parse_token<long long>(es, "row index", line);
    const auto c = parse_token<long long>(es, "column index", line);
    double v = 1.0;
    if (!pattern) v = parse_token<double>(es, "value", line);
    reject_trailing(es, line);
    if (r < 1 || r > rows || c < 1 || c > cols) {
      fail("entry out of range", line);
    }
    tr.push_back(static_cast<index_t>(r - 1));
    tc.push_back(static_cast<index_t>(c - 1));
    tv.push_back(v);
    if (symmetric && r != c) {
      tr.push_back(static_cast<index_t>(c - 1));
      tc.push_back(static_cast<index_t>(r - 1));
      tv.push_back(v);
    }
  }
  return csr_from_triplets(static_cast<index_t>(rows),
                           static_cast<index_t>(cols), tr, tc, tv);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) throw ParseError("cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out.precision(17);  // round-trip exact doubles
  out << m.rows << " " << m.cols << " " << m.nnz() << "\n";
  for (index_t r = 0; r < m.rows; ++r) {
    for (offset_t k = m.indptr[r]; k < m.indptr[r + 1]; ++k) {
      out << (r + 1) << " " << (m.indices[k] + 1) << " " << m.values[k]
          << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream f(path);
  if (!f.good()) throw ParseError("cannot open " + path + " for writing");
  write_matrix_market(f, m);
}

}  // namespace hh
