#include "sparse/mm_io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hh {
namespace {

std::string lower(std::string s) {
  for (char& ch : s) ch = static_cast<char>(std::tolower(ch));
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  HH_CHECK_MSG(std::getline(in, line), "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  HH_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  HH_CHECK_MSG(lower(object) == "matrix", "unsupported object " << object);
  HH_CHECK_MSG(lower(format) == "coordinate",
               "only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  HH_CHECK_MSG(pattern || field == "real" || field == "integer",
               "unsupported field " << field);
  const bool symmetric = symmetry == "symmetric";
  HH_CHECK_MSG(symmetric || symmetry == "general",
               "unsupported symmetry " << symmetry);

  // Skip comments, read size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  HH_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0,
               "bad size line: " << line);

  std::vector<index_t> tr, tc;
  std::vector<value_t> tv;
  tr.reserve(static_cast<std::size_t>(entries) * (symmetric ? 2 : 1));
  tc.reserve(tr.capacity());
  tv.reserve(tr.capacity());
  for (long long i = 0; i < entries; ++i) {
    HH_CHECK_MSG(std::getline(in, line), "truncated entry list at " << i);
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    es >> r >> c;
    if (!pattern) es >> v;
    HH_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                 "entry out of range: " << line);
    tr.push_back(static_cast<index_t>(r - 1));
    tc.push_back(static_cast<index_t>(c - 1));
    tv.push_back(v);
    if (symmetric && r != c) {
      tr.push_back(static_cast<index_t>(c - 1));
      tc.push_back(static_cast<index_t>(r - 1));
      tv.push_back(v);
    }
  }
  return csr_from_triplets(static_cast<index_t>(rows),
                           static_cast<index_t>(cols), tr, tc, tv);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  HH_CHECK_MSG(f.good(), "cannot open " << path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out.precision(17);  // round-trip exact doubles
  out << m.rows << " " << m.cols << " " << m.nnz() << "\n";
  for (index_t r = 0; r < m.rows; ++r) {
    for (offset_t k = m.indptr[r]; k < m.indptr[r + 1]; ++k) {
      out << (r + 1) << " " << (m.indices[k] + 1) << " " << m.values[k]
          << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream f(path);
  HH_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_matrix_market(f, m);
}

}  // namespace hh
