// Row-size (nonzeros-per-row) statistics: the quantity the whole paper keys
// on. Fig. 1 / Fig. 5 are histograms of these values.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace hh {

/// nnz of every row.
std::vector<offset_t> row_nnz_vector(const CsrMatrix& m);

struct RowStats {
  offset_t min = 0;
  offset_t max = 0;
  double mean = 0;
  index_t empty_rows = 0;
};

RowStats row_stats(const CsrMatrix& m);

/// hist[k] = number of rows with exactly k nonzeros, k in [0, max_row_nnz].
std::vector<std::int64_t> row_nnz_histogram(const CsrMatrix& m);

/// Number of rows with nnz >= threshold (the "HD" count in Fig. 5 legends).
index_t count_rows_at_least(const CsrMatrix& m, offset_t threshold);

}  // namespace hh
