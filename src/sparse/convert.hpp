// Format conversions and structural transforms.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace hh {

/// COO → CSR. Duplicate (r, c) tuples are summed; columns end up sorted.
CsrMatrix coo_to_csr(const CooMatrix& coo);

/// CSR → COO (tuples emitted in row-major order).
CooMatrix csr_to_coo(const CsrMatrix& csr);

/// Transpose (also CSR → CSC reinterpretation).
CsrMatrix transpose(const CsrMatrix& m);

/// Keep only rows where keep[r] != 0; other rows become empty. Row numbering
/// is preserved (matrices are never physically split — paper §IV-A).
CsrMatrix mask_rows(const CsrMatrix& m, const std::vector<std::uint8_t>& keep);

}  // namespace hh
