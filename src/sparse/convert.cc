#include "sparse/convert.hpp"

#include <algorithm>

#include "primitives/tuple_merge.hpp"
#include "util/check.hpp"

namespace hh {

CsrMatrix coo_to_csr(const CooMatrix& coo) {
  // Delegates to the Phase IV machinery (radix sort + segmented reduce),
  // which both sums duplicates and sorts columns within rows.
  return merged_coo_to_csr(coo);
}

CooMatrix csr_to_coo(const CsrMatrix& csr) {
  CooMatrix coo(csr.rows, csr.cols);
  coo.reserve(static_cast<std::size_t>(csr.nnz()));
  for (index_t r = 0; r < csr.rows; ++r) {
    for (offset_t k = csr.indptr[r]; k < csr.indptr[r + 1]; ++k) {
      coo.push(r, csr.indices[k], csr.values[k]);
    }
  }
  return coo;
}

CsrMatrix transpose(const CsrMatrix& m) {
  CsrMatrix t(m.cols, m.rows);
  const auto nz = static_cast<std::size_t>(m.nnz());
  t.indices.resize(nz);
  t.values.resize(nz);
  // Counting pass.
  for (std::size_t k = 0; k < nz; ++k) t.indptr[m.indices[k] + 1]++;
  for (index_t c = 0; c < m.cols; ++c) t.indptr[c + 1] += t.indptr[c];
  // Scatter pass: iterating rows in order makes each output row sorted.
  std::vector<offset_t> cursor(t.indptr.begin(), t.indptr.end() - 1);
  for (index_t r = 0; r < m.rows; ++r) {
    for (offset_t k = m.indptr[r]; k < m.indptr[r + 1]; ++k) {
      const offset_t dst = cursor[m.indices[k]]++;
      t.indices[dst] = r;
      t.values[dst] = m.values[k];
    }
  }
  return t;
}

CsrMatrix mask_rows(const CsrMatrix& m, const std::vector<std::uint8_t>& keep) {
  HH_CHECK(keep.size() == static_cast<std::size_t>(m.rows));
  CsrMatrix out(m.rows, m.cols);
  offset_t total = 0;
  for (index_t r = 0; r < m.rows; ++r) {
    if (keep[r]) total += m.row_nnz(r);
  }
  out.indices.reserve(static_cast<std::size_t>(total));
  out.values.reserve(static_cast<std::size_t>(total));
  for (index_t r = 0; r < m.rows; ++r) {
    if (keep[r]) {
      for (offset_t k = m.indptr[r]; k < m.indptr[r + 1]; ++k) {
        out.indices.push_back(m.indices[k]);
        out.values.push_back(m.values[k]);
      }
    }
    out.indptr[r + 1] = static_cast<offset_t>(out.indices.size());
  }
  return out;
}

}  // namespace hh
