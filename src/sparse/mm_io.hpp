// MatrixMarket (.mtx) coordinate-format I/O.
//
// Lets real SuiteSparse/SNAP matrices (paper Table I) be dropped into the
// benchmarks in place of the synthetic analogues: set HH_DATASET_DIR to a
// directory containing <name>.mtx files.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace hh {

/// Reads "matrix coordinate (real|integer|pattern) (general|symmetric)".
/// Pattern entries get value 1.0; symmetric inputs are mirrored.
/// Throws ParseError (util/status.hpp) on malformed input: bad banner,
/// non-numeric tokens, out-of-range indices, dimensions that overflow the
/// index type, entry counts exceeding rows*cols, truncation, trailing junk.
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes "matrix coordinate real general" with 1-based indices.
void write_matrix_market(std::ostream& out, const CsrMatrix& m);
void write_matrix_market_file(const std::string& path, const CsrMatrix& m);

}  // namespace hh
