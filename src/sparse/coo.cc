#include "sparse/coo.hpp"

#include "util/check.hpp"

namespace hh {

void CooMatrix::append(const CooMatrix& other) {
  HH_CHECK_MSG(rows == other.rows && cols == other.cols,
               "appending COO of different shape");
  r.insert(r.end(), other.r.begin(), other.r.end());
  c.insert(c.end(), other.c.begin(), other.c.end());
  v.insert(v.end(), other.v.begin(), other.v.end());
}

void CooMatrix::validate() const {
  HH_CHECK(r.size() == c.size() && c.size() == v.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    HH_CHECK_MSG(r[i] >= 0 && r[i] < rows, "COO row out of range at " << i);
    HH_CHECK_MSG(c[i] >= 0 && c[i] < cols, "COO col out of range at " << i);
  }
}

}  // namespace hh
