#include "sparse/row_stats.hpp"

#include <algorithm>

namespace hh {

std::vector<offset_t> row_nnz_vector(const CsrMatrix& m) {
  std::vector<offset_t> out(static_cast<std::size_t>(m.rows));
  for (index_t r = 0; r < m.rows; ++r) out[r] = m.row_nnz(r);
  return out;
}

RowStats row_stats(const CsrMatrix& m) {
  RowStats s;
  if (m.rows == 0) return s;
  s.min = m.row_nnz(0);
  for (index_t r = 0; r < m.rows; ++r) {
    const offset_t k = m.row_nnz(r);
    s.min = std::min(s.min, k);
    s.max = std::max(s.max, k);
    if (k == 0) s.empty_rows++;
  }
  s.mean = static_cast<double>(m.nnz()) / static_cast<double>(m.rows);
  return s;
}

std::vector<std::int64_t> row_nnz_histogram(const CsrMatrix& m) {
  const RowStats s = row_stats(m);
  std::vector<std::int64_t> hist(static_cast<std::size_t>(s.max) + 1, 0);
  for (index_t r = 0; r < m.rows; ++r) hist[m.row_nnz(r)]++;
  return hist;
}

index_t count_rows_at_least(const CsrMatrix& m, offset_t threshold) {
  index_t n = 0;
  for (index_t r = 0; r < m.rows; ++r) {
    if (m.row_nnz(r) >= threshold) ++n;
  }
  return n;
}

}  // namespace hh
