// Fundamental scalar types used across the library.
//
// Row/column indices are 32-bit (largest paper matrix, cit-Patents, has
// 3.77 M rows); nonzero counts and CSR offsets are 64-bit because products
// of sparse matrices can exceed 2^31 nonzeros.
#pragma once

#include <cstdint>

namespace hh {

using index_t = std::int32_t;   // row / column index
using offset_t = std::int64_t;  // CSR offset / nonzero count
using value_t = double;         // matrix element

}  // namespace hh
