#include "sparse/equality.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hh {
namespace {

void explain(std::string* why, const std::ostringstream& os) {
  if (why != nullptr) *why = os.str();
}

}  // namespace

CsrMatrix drop_small(const CsrMatrix& m, value_t drop_tol) {
  CsrMatrix out(m.rows, m.cols);
  out.indices.reserve(m.indices.size());
  out.values.reserve(m.values.size());
  for (index_t r = 0; r < m.rows; ++r) {
    for (offset_t k = m.indptr[r]; k < m.indptr[r + 1]; ++k) {
      if (std::abs(m.values[k]) > drop_tol) {
        out.indices.push_back(m.indices[k]);
        out.values.push_back(m.values[k]);
      }
    }
    out.indptr[r + 1] = static_cast<offset_t>(out.indices.size());
  }
  return out;
}

bool approx_equal(const CsrMatrix& a, const CsrMatrix& b, value_t rel_tol,
                  std::string* why) {
  std::ostringstream os;
  if (a.rows != b.rows || a.cols != b.cols) {
    os << "shape mismatch: " << a.summary() << " vs " << b.summary();
    explain(why, os);
    return false;
  }
  for (index_t r = 0; r < a.rows; ++r) {
    if (a.row_nnz(r) != b.row_nnz(r)) {
      os << "row " << r << " nnz " << a.row_nnz(r) << " vs " << b.row_nnz(r);
      explain(why, os);
      return false;
    }
    const offset_t ab = a.indptr[r], bb = b.indptr[r];
    for (offset_t k = 0; k < a.row_nnz(r); ++k) {
      if (a.indices[ab + k] != b.indices[bb + k]) {
        os << "row " << r << " col mismatch at slot " << k << ": "
           << a.indices[ab + k] << " vs " << b.indices[bb + k];
        explain(why, os);
        return false;
      }
      const value_t x = a.values[ab + k], y = b.values[bb + k];
      const value_t scale = std::max({value_t{1}, std::abs(x), std::abs(y)});
      if (std::abs(x - y) > rel_tol * scale) {
        os << "value mismatch at (" << r << ", " << a.indices[ab + k]
           << "): " << x << " vs " << y;
        explain(why, os);
        return false;
      }
    }
  }
  return true;
}

}  // namespace hh
