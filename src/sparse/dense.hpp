// Row-major dense matrix — the B operand of the csrmm extension (paper §VI:
// multiplying a sparse scale-free A with a dense B).
#pragma once

#include <vector>

#include "sparse/types.hpp"

namespace hh {

struct DenseMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<value_t> data;  // row-major, rows*cols entries

  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols)
      : rows(rows), cols(cols),
        data(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
             value_t{0}) {}

  value_t& at(index_t r, index_t c) {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
  value_t at(index_t r, index_t c) const {
    return data[static_cast<std::size_t>(r) * cols + c];
  }

  std::size_t byte_size() const { return data.size() * sizeof(value_t); }

  /// Throws CheckError on inconsistent dimensions.
  void validate() const;
};

/// Dense matrix with entries uniform in [0.5, 1.5]; deterministic in seed.
DenseMatrix random_dense(index_t rows, index_t cols, std::uint64_t seed);

/// Max-norm distance (for tests).
value_t max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace hh
