// The paper's Table I dataset suite.
//
// Offline we cannot download the SuiteSparse/SNAP files, so each matrix has
// a synthetic analogue generated to match its (rows, nnz, α) triple — the
// three properties the paper's entire analysis keys on. If HH_DATASET_DIR
// is set and contains <name>.mtx, the real matrix is loaded instead.
#pragma once

#include <span>
#include <string>

#include "sparse/csr.hpp"

namespace hh {

struct DatasetSpec {
  const char* name;
  index_t rows;
  std::int64_t nnz;
  double alpha;  // power-law exponent of the row sizes (Table I, col α)
};

/// The 12 matrices of Table I, in paper order.
std::span<const DatasetSpec> table1_datasets();

/// Find a spec by name (throws CheckError if unknown).
const DatasetSpec& dataset_spec(const std::string& name);

/// Synthetic analogue at `scale` (rows and nnz scaled; α preserved).
CsrMatrix make_dataset(const DatasetSpec& spec, double scale,
                       std::uint64_t seed_salt = 0);

/// Real matrix from $HH_DATASET_DIR/<name>.mtx if present, else the
/// synthetic analogue.
CsrMatrix load_or_make_dataset(const DatasetSpec& spec, double scale);

/// Benchmark default scale: HH_SCALE env var, else 0.25 (the repo runs on
/// modest CI hardware; scale 1.0 reproduces paper-sized instances).
double default_bench_scale();

}  // namespace hh
