// Synthetic scale-free matrix generation — the GTgraph substitute (paper
// §V-D uses GTgraph [3] to produce graphs whose degree sequence is power-law
// and interprets them as matrices).
//
// Row degrees are drawn from a discrete power law P(k) ∝ k^-α on
// [kmin, kmax], rescaled to hit a target nnz (rescaling preserves the tail
// exponent); column endpoints are drawn from an independent power-law weight
// sequence so column densities are scale-free too, as in real web/citation
// graphs.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace hh {

enum class DegreeDist {
  kPowerLaw,  // discrete power law with exponent alpha (scale-free)
  kPoisson,   // Poisson(mean-1)+1: the narrow unimodal row-size profile of
              // the paper's non-scale-free matrices (roadNet-CA, cop20kA,
              // p2p-Gnutella31 — Fig. 5 shows their spread of ~1..12 around
              // the mean rather than a heavy tail)
};

struct PowerLawGenConfig {
  index_t rows = 0;
  index_t cols = 0;            // 0 = square
  double alpha = 3.0;          // target tail exponent (> 1)
  DegreeDist dist = DegreeDist::kPowerLaw;
  double poisson_mean = 0;     // kPoisson: mean row size (0 = derive from
                               // target_nnz / rows)
  std::int64_t target_nnz = 0; // 0 = whatever the raw sampling produces
  std::int64_t kmin = 1;       // minimum row degree before rescaling
  std::int64_t kmax = 0;       // maximum row degree; 0 = auto, which caps at
                               // min(cols, 2·sqrt(max(target_nnz, rows))) —
                               // the hub-size-to-volume ratio real SNAP
                               // graphs show (webbase-1M: max row 4700 of
                               // 3.1 M nnz ≈ 2.7·sqrt(nnz))
  std::uint64_t seed = 1;
  // Real scale-free graphs (web, citation, social) have correlated in- and
  // out-degree: hub rows are also hub columns. With this set (and a square
  // matrix), column endpoints are drawn proportionally to the row-degree
  // sequence, which reproduces the hub-amplified flops profile of the
  // paper's datasets (flops/nnz ≫ mean degree). When false, columns come
  // from an independent power-law weight sequence.
  bool correlate_columns = true;
};

/// Generate a scale-free CSR matrix. Values uniform in [0.5, 1.5] so that
/// products have no systematic cancellation. Deterministic in `seed`.
CsrMatrix generate_power_law_matrix(const PowerLawGenConfig& cfg);

/// Draw one degree sample from the discrete power law (exposed for tests).
std::int64_t sample_power_law_degree(double alpha, std::int64_t kmin,
                                     std::int64_t kmax, double u01);

}  // namespace hh
