#include "gen/powerlaw_gen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace hh {

std::int64_t sample_power_law_degree(double alpha, std::int64_t kmin,
                                     std::int64_t kmax, double u01) {
  HH_CHECK(alpha > 1.0 && kmin >= 1 && kmax >= kmin);
  // Clauset–Shalizi–Newman's continuous approximation of the discrete power
  // law: draw a continuous Pareto starting at kmin − ½ and round to the
  // nearest integer. This is the convention the MLE's ½-shift assumes, so
  // fitted exponents of generated data recover the generating α.
  const double a1 = 1.0 - alpha;
  const double lo = std::pow(static_cast<double>(kmin) - 0.5, a1);
  const double hi = std::pow(static_cast<double>(kmax) + 0.5, a1);
  const double x = std::pow(lo + u01 * (hi - lo), 1.0 / a1);
  const auto k = static_cast<std::int64_t>(std::llround(x));
  return std::clamp(k, kmin, kmax);
}

namespace {

// Alias table for O(1) sampling from a discrete weight distribution
// (Walker / Vose). Used for the column-endpoint distribution.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    HH_CHECK(n > 0);
    prob_.resize(n);
    alias_.resize(n);
    double total = 0;
    for (const double w : weights) total += w;
    HH_CHECK(total > 0);

    std::vector<double> scaled(n);
    std::vector<std::size_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const std::size_t s = small.back();
      small.pop_back();
      const std::size_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (const std::size_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (const std::size_t i : small) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  std::size_t sample(Xoshiro256& rng) const {
    const std::size_t i =
        static_cast<std::size_t>(rng.below(prob_.size()));
    return rng.uniform() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

}  // namespace

namespace {

// Knuth's method; fine for the small means (< 50) the datasets need.
std::int64_t sample_poisson(double mean, Xoshiro256& rng) {
  const double limit = std::exp(-mean);
  double p = 1.0;
  std::int64_t k = 0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace

CsrMatrix generate_power_law_matrix(const PowerLawGenConfig& cfg) {
  HH_CHECK(cfg.rows > 0);
  HH_CHECK(cfg.alpha > 1.0);
  const index_t cols = cfg.cols > 0 ? cfg.cols : cfg.rows;
  Xoshiro256 rng(cfg.seed);

  // 1. Raw degree sequence.
  std::int64_t kmax = cfg.kmax;
  if (kmax <= 0) {
    const double volume = static_cast<double>(
        std::max<std::int64_t>(cfg.target_nnz, cfg.rows));
    kmax = std::min<std::int64_t>(
        cols, std::max<std::int64_t>(cfg.kmin + 1,
                                     static_cast<std::int64_t>(
                                         2.0 * std::sqrt(volume))));
  }
  kmax = std::max(kmax, cfg.kmin);
  std::vector<std::int64_t> degree(static_cast<std::size_t>(cfg.rows));
  std::int64_t sum = 0;
  if (cfg.dist == DegreeDist::kPoisson) {
    double mean = cfg.poisson_mean;
    if (mean <= 0 && cfg.target_nnz > 0) {
      mean = static_cast<double>(cfg.target_nnz) /
             static_cast<double>(cfg.rows);
    }
    HH_CHECK_MSG(mean > 1.0, "Poisson mode needs a mean row size > 1");
    for (auto& d : degree) {
      d = std::min<std::int64_t>(kmax, 1 + sample_poisson(mean - 1.0, rng));
      sum += d;
    }
  } else {
    for (auto& d : degree) {
      d = sample_power_law_degree(cfg.alpha, cfg.kmin, kmax, rng.uniform());
      sum += d;
    }
  }

  // 2. Rescale multiplicatively to hit target_nnz (keeps the tail exponent).
  if (cfg.target_nnz > 0 && sum > 0) {
    const double ratio = static_cast<double>(cfg.target_nnz) /
                         static_cast<double>(sum);
    for (auto& d : degree) {
      const double scaled = static_cast<double>(d) * ratio;
      // Stochastic rounding keeps the expected total exact.
      auto floor_part = static_cast<std::int64_t>(scaled);
      if (rng.uniform() < scaled - static_cast<double>(floor_part)) {
        ++floor_part;
      }
      d = std::min<std::int64_t>(std::max<std::int64_t>(floor_part, 0), kmax);
    }
  }

  // 3. Column-endpoint weights. Correlated mode reuses the degree sequence
  //    (hub rows are hub columns, as in real web/citation graphs);
  //    independent mode draws a fresh power-law weight per column.
  std::vector<double> col_weight(static_cast<std::size_t>(cols));
  if (cfg.correlate_columns && cols == cfg.rows) {
    for (index_t c = 0; c < cols; ++c) {
      col_weight[c] = static_cast<double>(std::max<std::int64_t>(1, degree[c]));
    }
  } else {
    for (auto& w : col_weight) {
      w = static_cast<double>(
          sample_power_law_degree(cfg.alpha, 1, kmax, rng.uniform()));
    }
  }
  const AliasTable col_sampler(col_weight);

  // 4. Emit rows; duplicates within a row are removed (thinning a row by a
  //    few entries does not change the degree distribution's tail).
  CsrMatrix m(cfg.rows, cols);
  std::size_t reserve = 0;
  for (const auto d : degree) reserve += static_cast<std::size_t>(d);
  m.indices.reserve(reserve);
  m.values.reserve(reserve);
  std::vector<index_t> row_cols;
  for (index_t r = 0; r < cfg.rows; ++r) {
    const std::int64_t d = degree[r];
    row_cols.clear();
    if (d >= cols) {
      row_cols.resize(static_cast<std::size_t>(cols));
      for (index_t c = 0; c < cols; ++c) row_cols[c] = c;
    } else {
      for (std::int64_t k = 0; k < d; ++k) {
        row_cols.push_back(static_cast<index_t>(col_sampler.sample(rng)));
      }
      std::sort(row_cols.begin(), row_cols.end());
      row_cols.erase(std::unique(row_cols.begin(), row_cols.end()),
                     row_cols.end());
    }
    for (const index_t c : row_cols) {
      m.indices.push_back(c);
      m.values.push_back(0.5 + rng.uniform());
    }
    m.indptr[r + 1] = static_cast<offset_t>(m.indices.size());
  }
  return m;
}

}  // namespace hh
