// R-MAT recursive matrix generator [Chakrabarti et al. 2004] — the second
// generator family GTgraph offers. Produces skewed degree distributions via
// recursive quadrant descent.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace hh {

struct RmatConfig {
  int scale = 10;                 // matrix is 2^scale square
  std::int64_t edges = 0;         // number of sampled edges (pre-dedup)
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  std::uint64_t seed = 1;
};

/// Generate an R-MAT matrix; duplicate edges collapse (values summed).
CsrMatrix generate_rmat_matrix(const RmatConfig& cfg);

}  // namespace hh
