#include "gen/rmat.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace hh {

CsrMatrix generate_rmat_matrix(const RmatConfig& cfg) {
  HH_CHECK(cfg.scale >= 1 && cfg.scale <= 30);
  HH_CHECK(cfg.edges > 0);
  const double total = cfg.a + cfg.b + cfg.c + cfg.d;
  HH_CHECK_MSG(std::abs(total - 1.0) < 1e-9, "R-MAT probabilities must sum to 1");

  const auto n = static_cast<index_t>(std::int64_t{1} << cfg.scale);
  Xoshiro256 rng(cfg.seed);

  std::vector<index_t> tr, tc;
  std::vector<value_t> tv;
  tr.reserve(static_cast<std::size_t>(cfg.edges));
  tc.reserve(static_cast<std::size_t>(cfg.edges));
  tv.reserve(static_cast<std::size_t>(cfg.edges));
  for (std::int64_t e = 0; e < cfg.edges; ++e) {
    index_t r = 0, c = 0;
    for (int level = 0; level < cfg.scale; ++level) {
      const double u = rng.uniform();
      r <<= 1;
      c <<= 1;
      if (u < cfg.a) {
        // top-left: nothing to add
      } else if (u < cfg.a + cfg.b) {
        c |= 1;
      } else if (u < cfg.a + cfg.b + cfg.c) {
        r |= 1;
      } else {
        r |= 1;
        c |= 1;
      }
    }
    tr.push_back(r);
    tc.push_back(c);
    tv.push_back(0.5 + rng.uniform());
  }
  return csr_from_triplets(n, n, tr, tc, tv);
}

}  // namespace hh
