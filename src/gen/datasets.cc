#include "gen/datasets.hpp"

#include <array>
#include <cstdlib>
#include <fstream>

#include "gen/powerlaw_gen.hpp"
#include "sparse/mm_io.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"

namespace hh {
namespace {

// Table I of the paper, verbatim.
constexpr std::array<DatasetSpec, 12> kTable1 = {{
    {"scircuit", 170998, 958936, 3.55},
    {"webbase-1M", 1000005, 3105536, 2.1},
    {"cop20kA", 121192, 2624331, 143.8},
    {"web-Google", 916428, 5105039, 3.75},
    {"p2p-Gnutella31", 62586, 147892, 48.9},
    {"ca-CondMat", 23133, 186936, 3.58},
    {"roadNet-CA", 1971281, 5533214, 133.80},
    {"internet", 124651, 207214, 4.63},
    {"dblp2010", 326186, 1615400, 5.79},
    {"email-Enron", 36692, 367662, 2.1},
    {"wiki-Vote", 8297, 103689, 3.88},
    {"cit-Patents", 3774768, 16518948, 3.90},
}};

std::uint64_t name_seed(const char* name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<std::uint64_t>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::span<const DatasetSpec> table1_datasets() { return kTable1; }

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& spec : kTable1) {
    if (name == spec.name) return spec;
  }
  HH_CHECK_MSG(false, "unknown dataset " << name);
  return kTable1[0];  // unreachable
}

CsrMatrix make_dataset(const DatasetSpec& spec, double scale,
                       std::uint64_t seed_salt) {
  HH_CHECK(scale > 0 && scale <= 1.0);
  PowerLawGenConfig cfg;
  cfg.rows = std::max<index_t>(64, static_cast<index_t>(spec.rows * scale));
  cfg.cols = cfg.rows;
  cfg.target_nnz = std::max<std::int64_t>(
      cfg.rows, static_cast<std::int64_t>(static_cast<double>(spec.nnz) * scale));
  cfg.seed = name_seed(spec.name) + seed_salt;

  const double mean_deg = static_cast<double>(cfg.target_nnz) /
                          static_cast<double>(cfg.rows);
  if (spec.alpha > 6.5) {
    // Not meaningfully scale-free (cop20kA, roadNet-CA, p2p-Gnutella31):
    // row sizes spread unimodally around the mean (paper Fig. 5), which a
    // Poisson profile matches far better than a degenerate power law.
    cfg.alpha = spec.alpha;
    cfg.dist = DegreeDist::kPoisson;
    cfg.poisson_mean = mean_deg;
  } else {
    cfg.alpha = spec.alpha;
    // For 2 < α, a Pareto tail with mean m has kmin ≈ m(α-2)/(α-1); for
    // α ≤ 2 the mean is cut-off-dominated, kmin = 1 and the nnz rescale
    // does the rest.
    cfg.kmin = std::max<std::int64_t>(
        1, spec.alpha > 2.2
               ? static_cast<std::int64_t>(mean_deg * (spec.alpha - 2.0) /
                                           (spec.alpha - 1.0))
               : 1);
  }
  return generate_power_law_matrix(cfg);
}

CsrMatrix load_or_make_dataset(const DatasetSpec& spec, double scale) {
  if (const char* dir = std::getenv("HH_DATASET_DIR")) {
    const std::string path = std::string(dir) + "/" + spec.name + ".mtx";
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      HH_LOG_INFO << "loading real dataset " << path;
      return read_matrix_market_file(path);
    }
  }
  return make_dataset(spec, scale);
}

double default_bench_scale() {
  if (const char* env = std::getenv("HH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0 && s <= 1.0) return s;
  }
  return 0.25;
}

}  // namespace hh
