#include "fault/fault.hpp"

namespace hh {
namespace {

// One draw from the decision stream for (seed, site, op, salt). Each salt
// indexes an independent stream so the fault/corruption/fraction draws of
// one op do not correlate.
double uniform_draw(std::uint64_t seed, FaultSite site, std::uint64_t op,
                    std::uint64_t salt) {
  std::uint64_t state = seed;
  state ^= (static_cast<std::uint64_t>(site) + 1) * 0x9e3779b97f4a7c15ULL;
  state ^= (op + 1) * 0xbf58476d1ce4e5b9ULL;
  state ^= (salt + 1) * 0x94d049bb133111ebULL;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool in_burst(const FaultSpec& s, std::uint64_t op) {
  if (s.burst_period == 0 || s.burst_len == 0) return false;
  if (op < s.burst_start) return false;
  return (op - s.burst_start) % s.burst_period < s.burst_len;
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kGpuKernel: return "gpu_kernel";
    case FaultSite::kH2D: return "h2d";
    case FaultSite::kD2H: return "d2h";
    case FaultSite::kCpuWorker: return "cpu_worker";
    case FaultSite::kShard: return "shard";
  }
  return "?";
}

const FaultSpec& FaultPlan::spec(FaultSite site) const {
  switch (site) {
    case FaultSite::kGpuKernel: return gpu_kernel;
    case FaultSite::kH2D: return h2d;
    case FaultSite::kD2H: return d2h;
    case FaultSite::kCpuWorker: return cpu_worker;
    case FaultSite::kShard: return shard;
  }
  return gpu_kernel;  // unreachable
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (FaultSpec* s : {&plan_.gpu_kernel, &plan_.h2d, &plan_.d2h,
                       &plan_.cpu_worker, &plan_.shard}) {
    std::sort(s->trigger_ops.begin(), s->trigger_ops.end());
  }
}

FaultDecision FaultInjector::next(FaultSite site) {
  const int idx = static_cast<int>(site);
  const FaultSpec& spec = plan_.spec(site);
  FaultDecision d;
  d.op = op_[idx]++;
  FaultCounters& ctr = counters_[idx];
  ctr.ops++;

  const bool triggered =
      std::binary_search(spec.trigger_ops.begin(), spec.trigger_ops.end(),
                         d.op);
  if (!triggered) {
    const double rate =
        in_burst(spec, d.op) ? std::max(spec.rate, spec.burst_rate)
                             : spec.rate;
    if (rate <= 0 ||
        uniform_draw(plan_.seed, site, d.op, /*salt=*/0) >= rate) {
      return d;  // healthy op
    }
  }

  d.fault = true;
  ctr.faults++;
  if (site == FaultSite::kH2D || site == FaultSite::kD2H) {
    d.corrupt = uniform_draw(plan_.seed, site, d.op, /*salt=*/1) <
                plan_.transfer_corruption_fraction;
    if (d.corrupt) ctr.corruptions++;
  }
  if (site == FaultSite::kCpuWorker) {
    d.stall_s = plan_.cpu_stall_s;
    ctr.stall_s += d.stall_s;
  }
  // Aborts happen somewhere in the middle of the op, never at 0% or 100%.
  d.fraction = 0.05 + 0.9 * uniform_draw(plan_.seed, site, d.op, /*salt=*/2);
  return d;
}

void FaultInjector::reset() {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    op_[i] = 0;
    counters_[i] = FaultCounters{};
  }
}

}  // namespace hh
