// Deterministic, seed-driven fault injection for the simulated platform.
//
// A FaultPlan describes, per fault site, when the simulated hardware
// misbehaves: transient GPU kernel aborts, PCIe transfer failures or
// payload corruption (caught by checksums, fault/checksum.hpp), and CPU
// worker stalls. The schedule is a pure function of (seed, site, op index)
// — NOT of the order in which sites are interrogated — so two services
// configured with the same plan see bit-identical fault schedules no matter
// how their requests interleave, and a replay with the same seed reproduces
// the same faults, the same recovery decisions, and the same reports.
//
// Three knobs compose per site (any may be active at once):
//   rate         — stationary Bernoulli fault probability per operation;
//   burst window — ops with (op - burst_start) % burst_period < burst_len
//                  fault with burst_rate instead (correlated outages);
//   trigger_ops  — fixed op indices that always fault (unit-test precision).
//
// The injector only *decides*; the simulated devices (device/gpu_sim,
// device/pcie, device/cpu_sim) turn decisions into DeviceAttempt outcomes
// and the service runtime (runtime/service) turns those into retries,
// re-uploads, and CPU-only degradation. Numeric results are host-computed
// and never pass through the injector, which is why recovery can promise
// bit-identical output (docs/robustness.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/prng.hpp"

namespace hh {

enum class FaultSite {
  kGpuKernel = 0,
  kH2D = 1,
  kD2H = 2,
  kCpuWorker = 3,
  // Whole-node failure: a shard process dies and must be restarted. Never
  // interrogated by the device simulators — the shard group runtime
  // (src/shard/) owns its own injector and consumes one kShard op per shard
  // slot per scheduling round, so a kill schedule is as replayable as any
  // device-fault schedule.
  kShard = 4,
};
inline constexpr int kFaultSiteCount = 5;

const char* to_string(FaultSite site);

/// Per-site fault schedule description.
struct FaultSpec {
  double rate = 0;          // stationary per-op fault probability in [0, 1]
  double burst_rate = 1.0;  // fault probability inside burst windows
  std::uint64_t burst_start = 0;   // op index where the first window opens
  std::uint64_t burst_period = 0;  // 0 = no bursts; else windows repeat
  std::uint64_t burst_len = 0;     // ops per window
  std::vector<std::uint64_t> trigger_ops;  // always fault at these op indices

  bool enabled() const {
    return rate > 0 || (burst_period > 0 && burst_len > 0 && burst_rate > 0) ||
           !trigger_ops.empty();
  }
};

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa117a5c1234ULL;
  FaultSpec gpu_kernel;  // transient kernel aborts
  FaultSpec h2d;         // host→device transfer faults
  FaultSpec d2h;         // device→host transfer faults
  FaultSpec cpu_worker;  // worker stalls (delay, not failure)
  FaultSpec shard;       // whole-shard kills (src/shard/ group runtime only)

  /// Of the injected transfer faults, this fraction are corruptions: the
  /// transfer runs to completion but the payload fails checksum
  /// verification, forcing a re-send (and residency invalidation for
  /// uploads). The rest are hard failures that abort partway through.
  double transfer_corruption_fraction = 0.5;

  /// Extra occupancy a stalled CPU stage pays (simulated seconds).
  double cpu_stall_s = 5e-4;

  const FaultSpec& spec(FaultSite site) const;
  /// Device-site faults only: the service runtime keys "do I need an
  /// injector?" on this, and kShard is consumed by the shard group's own
  /// injector, never by the per-shard service.
  bool enabled() const {
    return gpu_kernel.enabled() || h2d.enabled() || d2h.enabled() ||
           cpu_worker.enabled();
  }
};

/// Verdict for one operation at one site.
struct FaultDecision {
  bool fault = false;
  bool corrupt = false;   // transfer sites: full time spent, checksum fails
  double fraction = 1.0;  // portion of the op completed before an abort
  double stall_s = 0;     // kCpuWorker: extra occupancy, no failure
  std::uint64_t op = 0;   // site-local op index this decision consumed
};

struct FaultCounters {
  std::uint64_t ops = 0;
  std::uint64_t faults = 0;
  std::uint64_t corruptions = 0;
  double stall_s = 0;
};

/// Sentinel op index for attempts that consumed no injector operation
/// (no-work ops, or runs without an injector).
inline constexpr std::uint64_t kNoDeviceOp = static_cast<std::uint64_t>(-1);

/// Outcome of one fault-aware device operation (a kernel launch, one
/// direction of a PCIe transfer, a CPU stage). elapsed_s is the simulated
/// time the attempt occupied its resource whether or not it succeeded. op is
/// the injector's site-local op index the attempt consumed (kNoDeviceOp when
/// none): it ties every attempt in a trace back to the deterministic fault
/// schedule, so a trace can be reconciled op-by-op against FaultCounters.
struct DeviceAttempt {
  bool ok = true;
  bool corrupt = false;  // failed checksum verification after the transfer
  double elapsed_s = 0;
  std::uint64_t op = kNoDeviceOp;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  /// Decide the fate of the next operation at `site` (advances that site's
  /// op counter and fault counters; the decision itself depends only on the
  /// plan and the site-local op index).
  FaultDecision next(FaultSite site);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters(FaultSite site) const {
    return counters_[static_cast<int>(site)];
  }

  /// Restart the schedule from op 0 everywhere (same plan ⇒ same schedule).
  void reset();

 private:
  FaultPlan plan_;
  std::uint64_t op_[kFaultSiteCount] = {};
  FaultCounters counters_[kFaultSiteCount] = {};
};

}  // namespace hh
