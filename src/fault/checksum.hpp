// End-to-end checksums over shipped buffers.
//
// Every operand uploaded to the device and every tuple buffer shipped back
// carries an FNV-1a digest of its raw bytes. The service computes the
// digest host-side before a transfer and verifies it after: a corrupted
// PCIe transfer (fault/fault.hpp) fails verification and forces a re-send —
// for uploads, the device-side copy is also dropped from the residency memo
// so later requests cannot silently reuse a damaged operand.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace hh {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;

/// FNV-1a over raw bytes; chainable via the seed parameter.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = kFnv1aOffset);

/// Digest of a CSR operand as shipped (indptr ‖ indices ‖ values + shape).
std::uint64_t matrix_checksum(const CsrMatrix& m);

/// Digest of a COO tuple buffer as shipped (r ‖ c ‖ v + shape).
std::uint64_t tuple_checksum(const CooMatrix& coo);

}  // namespace hh
