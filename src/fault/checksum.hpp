// End-to-end checksums over shipped buffers.
//
// Every operand uploaded to the device and every tuple buffer shipped back
// carries an FNV-1a digest of its raw bytes. The service computes the
// digest host-side before a transfer and verifies it after: a corrupted
// PCIe transfer (fault/fault.hpp) fails verification and forces a re-send —
// for uploads, the device-side copy is also dropped from the residency memo
// so later requests cannot silently reuse a damaged operand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace hh {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;

/// FNV-1a over raw bytes; chainable via the seed parameter.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = kFnv1aOffset);

// Field-by-field chaining over scalars: each value is digested from its own
// bytes, so no struct padding ever enters the stream. Shared by the shard
// snapshot checksum (shard/snapshot.cc) and the workload flight recorder
// (obs/record.cc), which must agree on the mixing discipline so a record
// verified on parse is the record that was written.
inline void checksum_mix(std::uint64_t& h, std::uint64_t v) {
  h = fnv1a64(&v, sizeof(v), h);
}
inline void checksum_mix_i64(std::uint64_t& h, std::int64_t v) {
  checksum_mix(h, static_cast<std::uint64_t>(v));
}
inline void checksum_mix_f64(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  checksum_mix(h, bits);
}

/// Digest of a CSR operand as shipped (indptr ‖ indices ‖ values + shape).
std::uint64_t matrix_checksum(const CsrMatrix& m);

/// Digest of a COO tuple buffer as shipped (r ‖ c ‖ v + shape).
std::uint64_t tuple_checksum(const CooMatrix& coo);

}  // namespace hh
