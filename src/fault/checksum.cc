#include "fault/checksum.hpp"

namespace hh {
namespace {

constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

template <typename T>
std::uint64_t chain(const std::vector<T>& v, std::uint64_t seed) {
  return fnv1a64(v.data(), v.size() * sizeof(T), seed);
}

std::uint64_t chain_scalar(std::uint64_t x, std::uint64_t seed) {
  return fnv1a64(&x, sizeof(x), seed);
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

std::uint64_t matrix_checksum(const CsrMatrix& m) {
  std::uint64_t h = kFnv1aOffset;
  h = chain_scalar(static_cast<std::uint64_t>(m.rows), h);
  h = chain_scalar(static_cast<std::uint64_t>(m.cols), h);
  h = chain(m.indptr, h);
  h = chain(m.indices, h);
  h = chain(m.values, h);
  return h;
}

std::uint64_t tuple_checksum(const CooMatrix& coo) {
  std::uint64_t h = kFnv1aOffset;
  h = chain_scalar(static_cast<std::uint64_t>(coo.rows), h);
  h = chain_scalar(static_cast<std::uint64_t>(coo.cols), h);
  h = chain(coo.r, h);
  h = chain(coo.c, h);
  h = chain(coo.v, h);
  return h;
}

}  // namespace hh
