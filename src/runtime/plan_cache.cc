#include "runtime/plan_cache.hpp"

#include "trace/metrics.hpp"
#include "util/check.hpp"

namespace hh {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  HH_CHECK_MSG(capacity > 0, "plan cache capacity must be positive");
}

void PlanCache::bind_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  publish_size();
}

void PlanCache::count(const char* name) const {
  if (metrics_ != nullptr) {
    metrics_->counter(std::string("plan_cache.") + name).inc();
  }
}

void PlanCache::publish_size() const {
  if (metrics_ != nullptr) {
    metrics_->gauge("plan_cache.size").set(static_cast<double>(map_.size()));
  }
}

std::optional<CachedPlan> PlanCache::lookup(const PlanKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    count("misses");
    return std::nullopt;
  }
  ++stats_.hits;
  count("hits");
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PlanCache::insert(const PlanKey& key, CachedPlan plan) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = plan;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++stats_.overwrites;
    count("overwrites");
    return;
  }
  if (map_.size() >= capacity_) {
    ++stats_.evictions;
    count("evictions");
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, plan);
  map_.emplace(key, lru_.begin());
  publish_size();
}

std::vector<std::pair<PlanKey, CachedPlan>> PlanCache::export_entries() const {
  return {lru_.begin(), lru_.end()};
}

void PlanCache::restore_entries(
    const std::vector<std::pair<PlanKey, CachedPlan>>& entries) {
  lru_.clear();
  map_.clear();
  for (const auto& [key, plan] : entries) {
    if (map_.size() >= capacity_) break;
    if (map_.count(key) != 0) continue;
    lru_.emplace_back(key, plan);  // input is MRU-first; append keeps order
    map_.emplace(key, std::prev(lru_.end()));
  }
  publish_size();
}

bool PlanCache::quarantine(const PlanKey& key) {
  quarantine_log_.push_back(key);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  ++stats_.quarantines;
  count("quarantines");
  publish_size();
  return true;
}

void PlanCache::clear() {
  lru_.clear();
  map_.clear();
  publish_size();
}

}  // namespace hh
