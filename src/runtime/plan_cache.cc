#include "runtime/plan_cache.hpp"

#include "util/check.hpp"

namespace hh {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  HH_CHECK_MSG(capacity > 0, "plan cache capacity must be positive");
}

std::optional<CachedPlan> PlanCache::lookup(const PlanKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PlanCache::insert(const PlanKey& key, CachedPlan plan) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = plan;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    ++stats_.evictions;
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, plan);
  map_.emplace(key, lru_.begin());
}

bool PlanCache::quarantine(const PlanKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  ++stats_.quarantines;
  return true;
}

void PlanCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace hh
