#include "runtime/signature.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "powerlaw/fit.hpp"
#include "powerlaw/histogram.hpp"
#include "sparse/row_stats.hpp"

namespace hh {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

MatrixSignature matrix_signature(const CsrMatrix& m) {
  MatrixSignature sig;
  sig.rows = m.rows;
  sig.cols = m.cols;
  sig.nnz = m.nnz();

  const std::vector<offset_t> row_sizes = row_nnz_vector(m);

  // Fitted α over the nonempty rows, quantized to 1e-3 so the key is stable
  // against last-bit float noise. A small xmin-candidate cap keeps the scan
  // cheap — the signature needs stability, not estimator quality.
  std::vector<std::int64_t> positive;
  positive.reserve(row_sizes.size());
  for (const offset_t s : row_sizes) {
    if (s > 0) positive.push_back(s);
  }
  if (positive.size() >= 2) {
    const PowerLawFit fit = fit_power_law(positive, /*max_xmin_candidates=*/8);
    sig.alpha_milli = std::llround(fit.alpha * 1000.0);
  }

  // Digest of the full log2 row-size histogram (bin bounds + counts).
  std::uint64_t h = kFnvOffset;
  if (!row_sizes.empty()) {
    for (const HistogramBin& bin : log2_histogram(row_sizes)) {
      fnv_mix(h, static_cast<std::uint64_t>(bin.lo));
      fnv_mix(h, static_cast<std::uint64_t>(bin.count));
    }
  }
  sig.degree_digest = h;
  return sig;
}

std::string to_string(const MatrixSignature& s) {
  std::ostringstream os;
  os << s.rows << "x" << s.cols << " nnz=" << s.nnz
     << " alpha=" << static_cast<double>(s.alpha_milli) / 1000.0 << " digest=0x"
     << std::hex << s.degree_digest;
  return os.str();
}

std::size_t MatrixSignatureHash::operator()(const MatrixSignature& s) const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(s.rows));
  fnv_mix(h, static_cast<std::uint64_t>(s.cols));
  fnv_mix(h, static_cast<std::uint64_t>(s.nnz));
  fnv_mix(h, static_cast<std::uint64_t>(s.alpha_milli));
  fnv_mix(h, s.degree_digest);
  return static_cast<std::size_t>(h);
}

}  // namespace hh
