// Partition-plan cache: signature pair → identified thresholds.
//
// Threshold identification is the only part of Phase I whose result is a
// pure function of the operands' sparsity structure, so the service caches
// it keyed by (signature(A), signature(B)). A hit skips the identification
// pass (host work and simulated CPU time); the per-request classification —
// building the Boolean H/L arrays for the actual matrices — is always
// re-run, so a hit yields exactly the plan a cold run would have produced
// and the output matrix stays bit-identical.
//
// Bounded LRU: the cache holds at most `capacity` plans; inserting beyond
// that evicts the least-recently-used entry (lookups refresh recency).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/signature.hpp"
#include "sparse/types.hpp"

namespace hh {

class MetricsRegistry;  // trace/metrics.hpp

struct PlanKey {
  MatrixSignature a;
  MatrixSignature b;

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    const MatrixSignatureHash h;
    // Boost-style mix so (a, b) and (b, a) hash differently.
    const std::size_t ha = h(k.a);
    return ha ^ (h(k.b) + 0x9e3779b97f4a7c15ull + (ha << 6) + (ha >> 2));
  }
};

/// The cached decision: the identified thresholds for C = A×B. With the
/// online autotuner (src/tune/) attached, the entry is versioned and
/// measured: a promotion overwrites the thresholds with the best-measured
/// variant, bumps `version`, and records the winning measured total, so a
/// hit can tell an analytic guess (version 0, measured_s < 0) from a
/// measured-and-promoted plan.
struct CachedPlan {
  offset_t threshold_a = 0;
  offset_t threshold_b = 0;
  std::uint32_t version = 0;  // number of tuner promotions applied
  double measured_s = -1;     // best measured total backing this plan
                              // (< 0: analytic only, never measured)
};

class PlanCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;      // capacity victims only
    std::int64_t overwrites = 0;     // insert() over an existing key
    std::int64_t quarantines = 0;
  };

  explicit PlanCache(std::size_t capacity = 64);

  /// nullopt on miss; a hit refreshes the entry's recency.
  std::optional<CachedPlan> lookup(const PlanKey& key);

  /// Insert or overwrite; evicts the LRU entry when at capacity. An
  /// overwrite of an existing key refreshes the entry's recency and counts
  /// as an overwrite, never as an eviction (no entry is lost).
  void insert(const PlanKey& key, CachedPlan plan);

  /// Drop the entry after a request that used it failed (retry exhaustion,
  /// deadline miss): the next request with this key re-identifies from
  /// scratch instead of reusing a possibly-implicated plan. Returns whether
  /// an entry was present. A no-op on absent keys. Every call (hit or not)
  /// is appended to quarantine_log() so an external supervisor — the shard
  /// group runtime — can keep its own quarantine ledger across restarts.
  bool quarantine(const PlanKey& key);

  /// Append-only record of every quarantine() call, in call order. The
  /// shard group reads the tail past its cursor after each drain; a
  /// rehydrated snapshot must not resurrect a key quarantined after the
  /// snapshot was taken (src/shard/sharded_service.hpp).
  const std::vector<PlanKey>& quarantine_log() const {
    return quarantine_log_;
  }

  /// The cached entries, most-recently-used first — the snapshot side of
  /// shard rehydration. Pure read: stats and recency are untouched.
  std::vector<std::pair<PlanKey, CachedPlan>> export_entries() const;

  /// Replace the contents with `entries` (most-recently-used first, as
  /// export_entries produces), truncated to capacity. Restores state rather
  /// than performing inserts: hit/miss/overwrite stats are NOT counted —
  /// rehydration is bookkeeping, not traffic.
  void restore_entries(
      const std::vector<std::pair<PlanKey, CachedPlan>>& entries);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  void clear();

  /// Mirror every hit/miss/eviction/quarantine into `metrics` (counters
  /// under "plan_cache.*", plus a "plan_cache.size" gauge). Pass nullptr to
  /// detach. The registry must outlive the cache or the next bind call.
  void bind_metrics(MetricsRegistry* metrics);

 private:
  void count(const char* name) const;
  void publish_size() const;
  using LruList = std::list<std::pair<PlanKey, CachedPlan>>;

  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> map_;
  Stats stats_;
  std::vector<PlanKey> quarantine_log_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace hh
