// The four independently-clocked channels of the simulated platform, and
// the occupancy span a scheduler places on one of them.
//
// Split out of runtime/timeline.hpp so the structured trace layer
// (src/trace/) can name resources and spans without depending on the
// insertion scheduler itself.
#pragma once

namespace hh {

enum class Resource { kCpu = 0, kGpu = 1, kH2D = 2, kD2H = 3 };
inline constexpr int kResourceCount = 4;

inline const char* to_string(Resource r) {
  switch (r) {
    case Resource::kCpu: return "cpu";
    case Resource::kGpu: return "gpu";
    case Resource::kH2D: return "h2d";
    case Resource::kD2H: return "d2h";
  }
  return "?";
}

/// One scheduled occupancy of a resource.
struct StageSpan {
  const char* stage = "";  // static stage name
  Resource resource = Resource::kCpu;
  double start_s = 0;
  double end_s = 0;

  double duration_s() const { return end_s - start_s; }
};

}  // namespace hh
