#include "runtime/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "core/hh_stages.hpp"
#include "core/partition_plan.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

/// Nearest-rank percentile over an unsorted sample; q in (0, 1].
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[std::min(xs.size(), std::max<std::size_t>(rank, 1)) - 1];
}

}  // namespace

std::string RequestReport::to_string() const {
  std::ostringstream os;
  os << "request #" << request_id;
  if (!label.empty()) os << " [" << label << "]";
  os << ": latency " << ms(latency_s) << " (wait " << ms(queue_wait_s)
     << "), finish at " << ms(finish_s);
  if (plan_cache_hit) os << ", plan cached";
  if (inputs_resident) os << ", inputs resident";
  os << "\n";
  for (const StageSpan& s : spans) {
    os << "    " << hh::to_string(s.resource) << "  " << s.stage << "  ["
       << ms(s.start_s) << " .. " << ms(s.end_s) << "]\n";
  }
  return os.str();
}

std::string RequestReport::to_json() const {
  std::ostringstream os;
  os << "{\"request_id\":" << request_id << ",\"label\":\"" << label
     << "\",\"plan_cache_hit\":" << (plan_cache_hit ? "true" : "false")
     << ",\"inputs_resident\":" << (inputs_resident ? "true" : "false")
     << ",\"submit_s\":" << jnum(submit_s) << ",\"start_s\":" << jnum(start_s)
     << ",\"finish_s\":" << jnum(finish_s)
     << ",\"queue_wait_s\":" << jnum(queue_wait_s)
     << ",\"latency_s\":" << jnum(latency_s) << ",\"stages\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"stage\":\"" << spans[i].stage << "\",\"resource\":\""
       << hh::to_string(spans[i].resource)
       << "\",\"start_s\":" << jnum(spans[i].start_s)
       << ",\"end_s\":" << jnum(spans[i].end_s) << "}";
  }
  os << "],\"run\":" << run.to_json() << "}";
  return os.str();
}

std::string BatchReport::to_string() const {
  std::ostringstream os;
  os << "batch: " << requests << " requests, makespan " << ms(makespan_s)
     << " (serial estimate " << ms(sequential_estimate_s) << ", "
     << (sequential_estimate_s > 0
             ? jnum(sequential_estimate_s / std::max(makespan_s, 1e-300))
             : "n/a")
     << "x)\n";
  os << "  latency p50 " << ms(p50_latency_s) << ", p95 " << ms(p95_latency_s)
     << ", p99 " << ms(p99_latency_s) << "\n";
  os << "  busy: cpu " << ms(cpu_busy_s) << ", gpu " << ms(gpu_busy_s)
     << ", h2d " << ms(h2d_busy_s) << ", d2h " << ms(d2h_busy_s) << "\n";
  os << "  plan cache: " << plan_cache.hits << " hits, " << plan_cache.misses
     << " misses, " << plan_cache.evictions << " evictions\n";
  os << "  workspace pool: " << workspace.spa_reuses << "/"
     << workspace.spa_acquires << " SPA reuses, " << workspace.coo_reuses
     << "/" << workspace.coo_acquires << " tuple-buffer reuses\n";
  return os.str();
}

std::string BatchReport::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests
     << ",\"makespan_s\":" << jnum(makespan_s)
     << ",\"sequential_estimate_s\":" << jnum(sequential_estimate_s)
     << ",\"p50_latency_s\":" << jnum(p50_latency_s)
     << ",\"p95_latency_s\":" << jnum(p95_latency_s)
     << ",\"p99_latency_s\":" << jnum(p99_latency_s)
     << ",\"cpu_busy_s\":" << jnum(cpu_busy_s)
     << ",\"gpu_busy_s\":" << jnum(gpu_busy_s)
     << ",\"h2d_busy_s\":" << jnum(h2d_busy_s)
     << ",\"d2h_busy_s\":" << jnum(d2h_busy_s) << ",\"plan_cache\":{\"hits\":"
     << plan_cache.hits << ",\"misses\":" << plan_cache.misses
     << ",\"evictions\":" << plan_cache.evictions
     << "},\"workspace\":{\"spa_acquires\":" << workspace.spa_acquires
     << ",\"spa_reuses\":" << workspace.spa_reuses
     << ",\"coo_acquires\":" << workspace.coo_acquires
     << ",\"coo_reuses\":" << workspace.coo_reuses << "}}";
  return os.str();
}

SpgemmService::SpgemmService(const HeteroPlatform& platform, ThreadPool& pool,
                             Config config)
    : platform_(platform),
      pool_(pool),
      config_(config),
      plan_cache_(config.plan_cache_capacity) {}

std::size_t SpgemmService::submit(SpgemmRequest request) {
  HH_CHECK_MSG(request.a != nullptr, "request needs an A operand");
  const CsrMatrix& a = *request.a;
  const CsrMatrix& b = request.b != nullptr ? *request.b : a;
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  queue_.push_back(std::move(request));
  return next_id_++;
}

void SpgemmService::invalidate_inputs() {
  signatures_.clear();
  resident_.clear();
}

const MatrixSignature& SpgemmService::signature_of(const CsrMatrix* m) {
  auto it = signatures_.find(m);
  if (it == signatures_.end()) {
    it = signatures_.emplace(m, matrix_signature(*m)).first;
  }
  return it->second;
}

BatchResult SpgemmService::drain() {
  BatchResult out;
  out.results.reserve(queue_.size());
  out.requests.reserve(queue_.size());

  // Fresh timelines per drain: the batch clock starts at 0.
  ResourceTimeline cpu(Resource::kCpu);
  ResourceTimeline gpu(Resource::kGpu);
  ResourceTimeline h2d(Resource::kH2D);
  ResourceTimeline d2h(Resource::kD2H);
  WorkspacePool* ws = config_.use_workspace_pool ? &workspace_ : nullptr;
  const std::size_t first_id = next_id_ - queue_.size();

  std::vector<double> latencies;
  latencies.reserve(queue_.size());
  double makespan = 0;
  double seq_estimate = 0;

  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const SpgemmRequest& req = queue_[i];
    const CsrMatrix& a = *req.a;
    const CsrMatrix& b = req.b != nullptr ? *req.b : a;
    const CsrMatrix* pb = req.b != nullptr ? req.b : req.a;

    RequestReport rr;
    rr.request_id = first_id + i;
    rr.label = req.label;
    rr.submit_s = 0;
    RunReport& rep = rr.run;
    rep.algorithm = "HH-CPU (pipelined)";

    // ---- Phase I: plan, through the cache when thresholds are not pinned.
    offset_t t_a = req.options.threshold_a;
    offset_t t_b = req.options.threshold_b;
    const bool cacheable = t_a <= 0 || t_b <= 0;
    if (cacheable) {
      const PlanKey key{signature_of(req.a), signature_of(pb)};
      if (const auto cached = plan_cache_.lookup(key)) {
        t_a = cached->threshold_a;
        t_b = cached->threshold_b;
        rr.plan_cache_hit = true;
      } else {
        // Cold: identify below (make_partition_plan runs the analytic
        // picker on the 0 thresholds), then remember the outcome.
      }
    }
    const PartitionPlan plan =
        make_partition_plan(a, b, t_a, t_b, platform_);
    if (cacheable && !rr.plan_cache_hit) {
      plan_cache_.insert({signature_of(req.a), signature_of(pb)},
                         {plan.a.threshold, plan.b.threshold});
    }
    rep.threshold_a = plan.a.threshold;
    rep.threshold_b = plan.b.threshold;
    rep.high_rows_a = plan.a.high_count();
    rep.high_rows_b = plan.b.high_count();

    // A cache hit skips the identification pass but still classifies.
    rep.phase1_s = rr.plan_cache_hit ? plan.classify_s : plan.phase1_s;
    const StageSpan analyze =
        cpu.reserve(rr.plan_cache_hit ? "analyze(cached-plan)" : "analyze",
                    rr.submit_s, rep.phase1_s);

    // ---- Input transfer on the H2D channel; resident operands skip it.
    const bool on_gpu = req.options.matrices_already_on_gpu;
    double tx_in_s = 0;
    if (!on_gpu && resident_.count(req.a) == 0) {
      tx_in_s += platform_.link().h2d().matrix_transfer_time(a);
    }
    if (!on_gpu && &b != &a && resident_.count(pb) == 0) {
      tx_in_s += platform_.link().h2d().matrix_transfer_time(b);
    }
    rr.inputs_resident = tx_in_s == 0;
    rep.transfer_in_s = tx_in_s;
    const StageSpan tx_in = h2d.reserve("h2d-input", rr.submit_s, tx_in_s);
    if (config_.keep_inputs_resident) {
      resident_.insert(req.a);
      resident_.insert(pb);
    }

    // ---- Phase II: CPU A_H×B_H ∥ GPU A_L×B_L.
    Phase2Result p2 = run_phase2(a, b, plan, platform_, pool_, ws);
    rep.phase2_cpu_s = p2.cpu_s;
    rep.phase2_gpu_s = p2.gpu_s;
    rep.phase2_s = HeteroPlatform::overlap(p2.cpu_s, p2.gpu_s);
    const StageSpan cpu2 = cpu.reserve("phase2-cpu", analyze.end_s, p2.cpu_s);
    const StageSpan gpu2 = gpu.reserve(
        "phase2-gpu", std::max(analyze.end_s, tx_in.end_s), p2.gpu_s);

    // ---- Phase III: the double-ended queue occupies both devices from
    // their current frontiers (which already include any skew the pipeline
    // introduced — an early GPU steals more units, exactly as on hardware).
    const double cpu_q_start =
        std::max({cpu.now(), analyze.end_s, cpu2.end_s});
    const double gpu_q_start =
        std::max({gpu.now(), analyze.end_s, tx_in.end_s, gpu2.end_s});
    WorkQueueResult q =
        run_phase3(a, b, plan, req.options.queue, cpu_q_start, gpu_q_start,
                   platform_, pool_, ws);
    rep.phase3_cpu_s = q.cpu_busy;
    rep.phase3_gpu_s = q.gpu_busy;
    rep.phase3_s = HeteroPlatform::overlap(q.cpu_busy, q.gpu_busy);
    rep.queue_cpu_units = q.cpu_units;
    rep.queue_gpu_units = q.gpu_units;
    const StageSpan q_cpu = cpu.reserve("phase3-cpu", cpu_q_start, q.cpu_busy);
    const StageSpan q_gpu = gpu.reserve("phase3-gpu", gpu_q_start, q.gpu_busy);

    // ---- D2H shipment of the GPU tuples, then the Phase IV merge.
    const std::int64_t gpu_tuples = p2.ll_stats.tuples + q.gpu_stats.tuples;
    rep.transfer_out_s =
        platform_.link().d2h().tuple_transfer_time(gpu_tuples);
    const StageSpan tx_out =
        d2h.reserve("d2h-tuples", q_gpu.end_s, rep.transfer_out_s);

    rep.flops = p2.hh_stats.flops + p2.ll_stats.flops + q.cpu_stats.flops +
                q.gpu_stats.flops;
    const double seq_tx_in =
        platform_.link().h2d().matrix_transfer_time(a) +
        (&b != &a ? platform_.link().h2d().matrix_transfer_time(b) : 0.0);

    MergeResult merged =
        run_phase4(std::move(p2), std::move(q), platform_, pool_, ws);
    rep.merge = merged.merge;
    rep.phase4_s = merged.cpu_s;
    const StageSpan merge = cpu.reserve(
        "merge", std::max(q_cpu.end_s, tx_out.end_s), merged.cpu_s);

    // ---- Request accounting.
    rr.start_s = std::min(analyze.start_s,
                          tx_in_s > 0 ? tx_in.start_s : analyze.start_s);
    rr.finish_s = merge.end_s;
    rr.queue_wait_s = rr.start_s - rr.submit_s;
    rr.latency_s = rr.finish_s - rr.submit_s;
    rep.output_nnz = merged.c.nnz();
    rep.total_s = rr.latency_s;
    rr.spans = {analyze, tx_in, cpu2, gpu2, q_cpu, q_gpu, tx_out, merge};
    std::erase_if(rr.spans,
                  [](const StageSpan& s) { return s.duration_s() <= 0; });

    makespan = std::max(makespan, rr.finish_s);
    latencies.push_back(rr.latency_s);

    // First-order cost of the same request under the serial driver: cold
    // transfers, cold identification, single-clock overlap accounting.
    const double seq_cpu_end = plan.phase1_s + rep.phase2_cpu_s + q.cpu_busy;
    const double seq_gpu_end =
        plan.phase1_s + seq_tx_in + rep.phase2_gpu_s + q.gpu_busy;
    seq_estimate += std::max(seq_cpu_end, seq_gpu_end) + rep.transfer_out_s +
                    rep.phase4_s;

    RunResult res;
    res.c = std::move(merged.c);
    res.report = rep;
    out.results.push_back(std::move(res));
    out.requests.push_back(std::move(rr));
  }
  queue_.clear();

  BatchReport& batch = out.batch;
  batch.requests = out.requests.size();
  batch.makespan_s = makespan;
  batch.sequential_estimate_s = seq_estimate;
  batch.p50_latency_s = percentile(latencies, 0.50);
  batch.p95_latency_s = percentile(latencies, 0.95);
  batch.p99_latency_s = percentile(latencies, 0.99);
  batch.cpu_busy_s = cpu.busy();
  batch.gpu_busy_s = gpu.busy();
  batch.h2d_busy_s = h2d.busy();
  batch.d2h_busy_s = d2h.busy();
  batch.plan_cache = plan_cache_.stats();
  batch.workspace = workspace_.stats();
  return out;
}

}  // namespace hh
