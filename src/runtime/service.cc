#include "runtime/service.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "core/hh_stages.hpp"
#include "core/partition_plan.hpp"
#include "core/threshold.hpp"
#include "fault/checksum.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "trace/flame.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace hh {
namespace {

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

std::string jbool(bool b) { return b ? "true" : "false"; }

std::string faults_json(const FaultRecoveryStats& f) {
  std::ostringstream os;
  os << "{\"gpu_aborts\":" << f.gpu_aborts
     << ",\"h2d_faults\":" << f.h2d_faults
     << ",\"d2h_faults\":" << f.d2h_faults
     << ",\"corruptions\":" << f.corruptions
     << ",\"cpu_stalls\":" << f.cpu_stalls << ",\"retries\":" << f.retries
     << ",\"backoff_s\":" << jnum(f.backoff_s) << "}";
  return os.str();
}

// A GPU "join time" no request can ever reach: passing it as the queue's
// gpu_start makes run_phase3 assign every unit to the CPU end — the
// CPU-only re-plan of a degraded request.
constexpr double kGpuNeverJoins = 1e300;

}  // namespace

void FaultRecoveryStats::accumulate(const FaultRecoveryStats& o) {
  gpu_aborts += o.gpu_aborts;
  h2d_faults += o.h2d_faults;
  d2h_faults += o.d2h_faults;
  corruptions += o.corruptions;
  cpu_stalls += o.cpu_stalls;
  retries += o.retries;
  backoff_s += o.backoff_s;
}

std::string RequestReport::to_string() const {
  std::ostringstream os;
  os << "request #" << request_id;
  if (!label.empty()) os << " [" << label << "]";
  os << ": latency " << ms(latency_s) << " (wait " << ms(queue_wait_s)
     << "), finish at " << ms(finish_s);
  if (plan_cache_hit) os << ", plan cached";
  if (inputs_resident) os << ", inputs resident";
  if (degraded_to_cpu) os << ", DEGRADED to CPU-only";
  if (deadline_missed) os << ", DEADLINE MISSED (cancelled)";
  if (faults.total_faults() > 0) {
    os << ", faults " << faults.total_faults() << " (retries "
       << faults.retries << ")";
  }
  os << "\n";
  if (!flame.empty()) os << "    |" << flame << "|\n";
  for (const StageSpan& s : spans) {
    os << "    " << hh::to_string(s.resource) << "  " << s.stage << "  ["
       << ms(s.start_s) << " .. " << ms(s.end_s) << "]\n";
  }
  return os.str();
}

std::string RequestReport::to_json() const {
  std::ostringstream os;
  os << "{\"request_id\":" << request_id << ",\"label\":\"" << label
     << "\",\"status\":\"" << hh::to_string(status.code)
     << "\",\"plan_cache_hit\":" << jbool(plan_cache_hit)
     << ",\"inputs_resident\":" << jbool(inputs_resident)
     << ",\"degraded_to_cpu\":" << jbool(degraded_to_cpu)
     << ",\"deadline_missed\":" << jbool(deadline_missed)
     << ",\"deadline_s\":" << jnum(deadline_s)
     << ",\"faults\":" << faults_json(faults)
     << ",\"submit_s\":" << jnum(submit_s) << ",\"start_s\":" << jnum(start_s)
     << ",\"finish_s\":" << jnum(finish_s)
     << ",\"queue_wait_s\":" << jnum(queue_wait_s)
     << ",\"latency_s\":" << jnum(latency_s) << ",\"stages\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"stage\":\"" << spans[i].stage << "\",\"resource\":\""
       << hh::to_string(spans[i].resource)
       << "\",\"start_s\":" << jnum(spans[i].start_s)
       << ",\"end_s\":" << jnum(spans[i].end_s) << "}";
  }
  os << "],\"run\":" << run.to_json() << "}";
  return os.str();
}

std::string BatchReport::to_string() const {
  std::ostringstream os;
  os << "batch: " << requests << " requests, makespan " << ms(makespan_s)
     << " (serial estimate " << ms(sequential_estimate_s) << ", "
     << (sequential_estimate_s > 0
             ? jnum(sequential_estimate_s / std::max(makespan_s, 1e-300))
             : "n/a")
     << "x)\n";
  os << "  latency p50 " << ms(p50_latency_s) << ", p95 " << ms(p95_latency_s)
     << ", p99 " << ms(p99_latency_s) << "\n";
  os << "  outcome: " << completed << " completed, " << degraded
     << " degraded to CPU, " << deadline_missed << " deadline-missed, "
     << shed << " shed\n";
  os << "  faults: gpu " << faults.gpu_aborts << ", h2d " << faults.h2d_faults
     << ", d2h " << faults.d2h_faults << " (" << faults.corruptions
     << " corrupt), cpu stalls " << faults.cpu_stalls << "; retries "
     << faults.retries << ", backoff " << ms(faults.backoff_s)
     << (backoff_jitter ? " (decorrelated jitter)" : "") << "\n";
  os << "  busy: cpu " << ms(cpu_busy_s) << ", gpu " << ms(gpu_busy_s)
     << ", h2d " << ms(h2d_busy_s) << ", d2h " << ms(d2h_busy_s) << "\n";
  os << "  plan cache: " << plan_cache.hits << " hits, " << plan_cache.misses
     << " misses, " << plan_cache.evictions << " evictions, "
     << plan_cache.overwrites << " overwrites, " << plan_cache.quarantines
     << " quarantines\n";
  os << "  workspace pool: " << workspace.spa_reuses << "/"
     << workspace.spa_acquires << " SPA reuses, " << workspace.coo_reuses
     << "/" << workspace.coo_acquires << " tuple-buffer reuses\n";
  if (wave_enabled) {
    os << "  waves: " << wave.waves << " over " << wave.wave_requests
       << " requests; " << wave.uploads << " uploads ("
       << wave.coalesced_uploads << " coalesced, " << wave.deduped_uploads
       << " deduped, " << wave.h2d_bytes << " bytes), "
       << wave.batched_launches << " batched launches, " << wave.evictions
       << " evictions\n";
  }
  if (critpath_enabled) os << "  critpath: " << critpath.to_string() << "\n";
  if (!flame.empty()) os << "  schedule (glyph = request id, '.' = idle):\n"
                         << flame;
  return os.str();
}

std::string BatchReport::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests << ",\"completed\":" << completed
     << ",\"degraded\":" << degraded
     << ",\"deadline_missed\":" << deadline_missed << ",\"shed\":" << shed
     << ",\"faults\":" << faults_json(faults)
     << ",\"backoff_jitter\":" << jbool(backoff_jitter)
     << ",\"makespan_s\":" << jnum(makespan_s)
     << ",\"sequential_estimate_s\":" << jnum(sequential_estimate_s)
     << ",\"p50_latency_s\":" << jnum(p50_latency_s)
     << ",\"p95_latency_s\":" << jnum(p95_latency_s)
     << ",\"p99_latency_s\":" << jnum(p99_latency_s)
     << ",\"cpu_busy_s\":" << jnum(cpu_busy_s)
     << ",\"gpu_busy_s\":" << jnum(gpu_busy_s)
     << ",\"h2d_busy_s\":" << jnum(h2d_busy_s)
     << ",\"d2h_busy_s\":" << jnum(d2h_busy_s) << ",\"plan_cache\":{\"hits\":"
     << plan_cache.hits << ",\"misses\":" << plan_cache.misses
     << ",\"evictions\":" << plan_cache.evictions
     << ",\"overwrites\":" << plan_cache.overwrites
     << ",\"quarantines\":" << plan_cache.quarantines
     << "},\"workspace\":{\"spa_acquires\":" << workspace.spa_acquires
     << ",\"spa_reuses\":" << workspace.spa_reuses
     << ",\"coo_acquires\":" << workspace.coo_acquires
     << ",\"coo_reuses\":" << workspace.coo_reuses << "}";
  // Emitted only when the executor is on: a disabled service's JSON stays
  // byte-identical to before the wave executor existed.
  if (wave_enabled) os << ",\"wave\":" << wave.to_json();
  // Same contract for the critical-path profiler (on by default).
  if (critpath_enabled) os << ",\"critpath\":" << critpath.to_json();
  os << "}";
  return os.str();
}

SpgemmService::SpgemmService(const HeteroPlatform& platform, ThreadPool& pool,
                             Config config)
    : platform_(platform),
      pool_(pool),
      config_(config),
      plan_cache_(config.plan_cache_capacity),
      injector_(config.fault_plan),
      tuner_(config.tune),
      calib_(config.tune.calibration),
      jitter_rng_(config.recovery.jitter_seed) {
  plan_cache_.bind_metrics(&metrics_);
}

TuneReport SpgemmService::tune_report() const {
  TuneReport r = tuner_.report();
  r.enabled = config_.tune.enabled;
  r.drift_events = calib_.drift_events();
  r.calibration.reserve(CalibrationStore::kDevices);
  for (int i = 0; i < CalibrationStore::kDevices; ++i) {
    const auto d = static_cast<CalibrationStore::Device>(i);
    const CalibrationStore::DeviceState& s = calib_.state(d);
    r.calibration.push_back({CalibrationStore::name(d), s.samples,
                             std::exp(s.mean_log_ratio),
                             calib_.correction(d), s.drift});
  }
  return r;
}

void validate_spgemm_request(const SpgemmRequest& request) {
  if (request.a == nullptr) {
    throw InvalidArgumentError("request needs an A operand");
  }
  const CsrMatrix& a = *request.a;
  const CsrMatrix& b = request.b != nullptr ? *request.b : a;
  auto check_operand = [](const CsrMatrix& m, const char* side) {
    if (m.rows <= 0 || m.cols <= 0) {
      std::ostringstream os;
      os << side << " operand is empty (" << m.rows << "x" << m.cols << ")";
      throw InvalidArgumentError(os.str());
    }
    // Cheap structural sanity (O(1)); full validate() is the caller's job.
    if (m.indptr.size() != static_cast<std::size_t>(m.rows) + 1 ||
        m.indptr.back() != static_cast<offset_t>(m.indices.size()) ||
        m.indices.size() != m.values.size()) {
      std::ostringstream os;
      os << side << " operand has inconsistent CSR arrays";
      throw InvalidArgumentError(os.str());
    }
  };
  check_operand(a, "A");
  if (request.b != nullptr) check_operand(b, "B");
  if (a.cols != b.rows) {
    std::ostringstream os;
    os << "incompatible shapes for product: A is " << a.rows << "x" << a.cols
       << ", B is " << b.rows << "x" << b.cols;
    throw InvalidArgumentError(os.str());
  }
  if (request.options.threshold_a < 0 || request.options.threshold_b < 0) {
    throw InvalidArgumentError("thresholds must be >= 0 (0 = analytic pick)");
  }
  if (request.options.queue.cpu_rows < 0 || request.options.queue.gpu_rows < 0) {
    throw InvalidArgumentError("queue unit sizes must be >= 0 (0 = auto)");
  }
  if (request.options.queue.cpu_dequeue_s < 0 ||
      request.options.queue.gpu_dequeue_s < 0) {
    throw InvalidArgumentError("queue dequeue costs must be >= 0");
  }
  if (request.deadline_s < 0) {
    throw InvalidArgumentError("deadline must be >= 0 (0 = service default)");
  }
}

std::size_t SpgemmService::submit(SpgemmRequest request) {
  validate_spgemm_request(request);
  if (config_.admission_capacity > 0 &&
      queue_.size() >= config_.admission_capacity) {
    metrics_.counter("service.shed").inc();
    std::ostringstream os;
    os << "admission queue full (" << queue_.size() << "/"
       << config_.admission_capacity << "), request shed";
    throw AdmissionError(os.str());
  }
  queue_.push_back(std::move(request));
  return next_id_++;
}

void SpgemmService::invalidate_inputs() {
  signatures_.clear();
  resident_.clear();
  wave_resident_.clear();
}

const MatrixSignature& SpgemmService::signature_of(const CsrMatrix* m) {
  auto it = signatures_.find(m);
  if (it == signatures_.end()) {
    it = signatures_.emplace(m, matrix_signature(*m)).first;
  }
  return it->second;
}

BatchResult SpgemmService::drain() {
  BatchResult out;
  out.results.reserve(queue_.size());
  out.requests.reserve(queue_.size());

  // Fresh timelines per drain: the batch clock starts at 0. When a recorder
  // is attached and enabled, every placement the timelines make is traced;
  // `tr` is nullptr otherwise so instrumentation below is one branch.
  TraceRecorder* tr = config_.trace != nullptr && config_.trace->enabled()
                          ? config_.trace
                          : nullptr;
  ResourceTimeline cpu(Resource::kCpu, tr);
  ResourceTimeline gpu(Resource::kGpu, tr);
  ResourceTimeline h2d(Resource::kH2D, tr);
  ResourceTimeline d2h(Resource::kD2H, tr);
  // Placement provenance for the critical-path profiler (obs/critpath.hpp):
  // when enabled, every positive-duration reservation below lands in `plog`
  // with the request/wave context current at reservation time — the same
  // scopes that set trace identity, but independent of tracing.
  PlacementLog plog;
  PlacementLog* pl = config_.critpath ? &plog : nullptr;
  if (pl != nullptr) {
    cpu.attach_placements(pl);
    gpu.attach_placements(pl);
    h2d.attach_placements(pl);
    d2h.attach_placements(pl);
  }
  WorkspacePool* ws = config_.use_workspace_pool ? &workspace_ : nullptr;
  FaultInjector* fi = config_.fault_plan.enabled() ? &injector_ : nullptr;
  const RecoveryPolicy& rp = config_.recovery;
  const std::size_t first_id = next_id_ - queue_.size();

  std::vector<double> latencies;
  latencies.reserve(queue_.size());
  double makespan = 0;
  double seq_estimate = 0;

  // ---- Wave formation (Config::wave, runtime/wave.hpp): group the queue,
  // in submit order, into waves of requests that share operands by content
  // signature. Disabled, none of the wave code below runs and the drain is
  // the legacy per-request loop, byte for byte.
  const bool wave_on = config_.wave.enabled;
  std::vector<WaveBounds> wave_bounds;
  if (wave_on && !queue_.empty()) {
    std::unordered_map<MatrixSignature, std::uint32_t, MatrixSignatureHash>
        dense_ids;
    std::vector<std::array<std::uint32_t, 2>> operand_ids;
    operand_ids.reserve(queue_.size());
    for (const SpgemmRequest& wr : queue_) {
      const auto id_of = [&](const CsrMatrix* m) {
        return dense_ids
            .emplace(signature_of(m),
                     static_cast<std::uint32_t>(dense_ids.size()))
            .first->second;
      };
      const CsrMatrix* pb = wr.b != nullptr ? wr.b : wr.a;
      const std::uint32_t ia = id_of(wr.a);
      operand_ids.push_back({ia, pb != wr.a ? id_of(pb) : ia});
    }
    wave_bounds = form_waves(operand_ids, config_.wave.max_requests,
                             config_.wave.max_operands);
  }
  WaveStats wstats;

  // Per-wave operand table: distinct operands in first-use order, each with
  // its refcount over the wave's requests, its upload outcome, and the
  // spans/faults attributed to its first user.
  struct WaveOperand {
    const CsrMatrix* m = nullptr;
    MatrixSignature sig;
    std::size_t first_req = 0;  // queue index of the first user
    int refs = 0;               // users among the wave's requests
    double ready_s = 0;         // device copy usable from here on
    double attributed_s = 0;    // upload time charged to first_req
    double failed_at = 0;
    bool failed = false;  // retries exhausted: every user degrades
    std::vector<StageSpan> spans;
    FaultRecoveryStats faults;
  };
  std::vector<WaveOperand> wave_ops;
  std::unordered_map<MatrixSignature, std::size_t, MatrixSignatureHash>
      wave_op_index;
  bool wave_gpu_lead_done = false;  // first healthy launch pays the overhead
  std::size_t wave_idx = 0;

  // Wave preamble: collect the wave's distinct operands, refcount their
  // users, and upload each one exactly once. The happy path (every first
  // attempt healthy) coalesces the uploads into one contiguous H2D block
  // placed from ResourceTimeline::block_start — the lead transfer pays the
  // link latency, followers stream back-to-back behind it (device/pcie.hpp
  // batched costing). Under faults the pending operands fall back to
  // per-operand retry loops mirroring the legacy upload path. Spans and
  // fault counters are attributed to each operand's first user.
  const auto begin_wave = [&](const WaveBounds& wb) {
    wave_ops.clear();
    wave_op_index.clear();
    wave_gpu_lead_done = false;
    wstats.waves++;
    wstats.wave_requests += static_cast<std::int64_t>(wb.end - wb.begin);
    if (tr != nullptr) {
      tr->instant(TraceCategory::kWave, "wave-begin",
                  std::max({cpu.now(), gpu.now(), h2d.now(), d2h.now()}));
    }
    for (std::size_t r = wb.begin; r < wb.end; ++r) {
      const SpgemmRequest& rq = queue_[r];
      if (rq.options.matrices_already_on_gpu) continue;
      const CsrMatrix* prb = rq.b != nullptr ? rq.b : rq.a;
      const CsrMatrix* operands[2] = {rq.a, prb != rq.a ? prb : nullptr};
      for (const CsrMatrix* m : operands) {
        if (m == nullptr) continue;
        const MatrixSignature& sig = signature_of(m);
        const auto [it, fresh] = wave_op_index.emplace(sig, wave_ops.size());
        if (fresh) {
          WaveOperand op;
          op.m = m;
          op.sig = sig;
          op.first_req = r;
          wave_ops.push_back(std::move(op));
        }
        wave_ops[it->second].refs++;
      }
    }
    std::vector<std::size_t> pending;
    for (std::size_t k = 0; k < wave_ops.size(); ++k) {
      const auto rit = wave_resident_.find(wave_ops[k].sig);
      if (rit != wave_resident_.end()) {
        rit->second.refs += wave_ops[k].refs;  // already on device: reuse
      } else {
        pending.push_back(k);
      }
    }
    if (pending.empty()) return;
    const auto complete_upload = [&](WaveOperand& op, double ready) {
      op.ready_s = ready;
      wave_resident_.emplace(op.sig,
                             WaveResident{matrix_checksum(*op.m), op.refs});
      wstats.uploads++;
      wstats.deduped_uploads += op.refs - 1;
      wstats.h2d_bytes += static_cast<std::int64_t>(op.m->byte_size());
    };
    std::vector<DeviceAttempt> first;
    first.reserve(pending.size());
    bool any_fault = false;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      first.push_back(platform_.link().h2d().matrix_transfer_attempt_batched(
          *wave_ops[pending[k]].m, fi, /*lead=*/k == 0));
      any_fault |= !first.back().ok;
    }
    if (!any_fault) {
      double total = 0;
      for (const DeviceAttempt& at : first) total += at.elapsed_s;
      double cursor = h2d.block_start(0.0, total);
      for (std::size_t k = 0; k < pending.size(); ++k) {
        WaveOperand& op = wave_ops[pending[k]];
        if (tr != nullptr) tr->begin_request(first_id + op.first_req);
        if (pl != nullptr) pl->begin_request(first_id + op.first_req);
        const StageSpan s =
            h2d.reserve("wave-h2d-input", cursor, first[k].elapsed_s);
        cursor = s.end_s;
        op.spans.push_back(s);
        op.attributed_s = first[k].elapsed_s;
        complete_upload(op, s.end_s);
        if (k > 0) wstats.coalesced_uploads++;
      }
      if (pl != nullptr) pl->end_request();
      if (tr != nullptr) {
        tr->end_request();
        tr->instant_on(TraceCategory::kWave, "wave-h2d-coalesced",
                       Resource::kH2D, cursor);
      }
      return;
    }
    // Fault fallback: sequential per-operand retry loops. Every attempt
    // re-arbitrates the link, so every retry pays lead (full-latency)
    // costing, exactly like the legacy path.
    double chain = 0;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      WaveOperand& op = wave_ops[pending[k]];
      if (tr != nullptr) tr->begin_request(first_id + op.first_req);
      if (pl != nullptr) pl->begin_request(first_id + op.first_req);
      double prev_backoff_s = rp.backoff_base_s;
      int failures = 0;
      DeviceAttempt at = first[k];
      for (;;) {
        const char* name = at.ok        ? "wave-h2d-input"
                           : at.corrupt ? "wave-h2d-input-corrupt"
                                        : "wave-h2d-input-fault";
        const StageSpan s = h2d.reserve(name, chain, at.elapsed_s);
        op.spans.push_back(s);
        op.attributed_s += at.elapsed_s;
        chain = s.end_s;
        if (at.ok) {
          complete_upload(op, s.end_s);
          break;
        }
        op.faults.h2d_faults++;
        if (tr != nullptr) {
          tr->instant_on(TraceCategory::kFault,
                         at.corrupt ? "h2d-corrupt" : "h2d-fault",
                         Resource::kH2D, s.end_s, at.op);
        }
        if (at.corrupt) {
          op.faults.corruptions++;
          // Never reuse a damaged device copy: any resident entry under
          // this signature is evicted mid-wave before the re-upload.
          if (wave_resident_.erase(op.sig) > 0) {
            wstats.evictions++;
            if (tr != nullptr) {
              tr->instant_on(TraceCategory::kWave, "wave-evict-corrupt",
                             Resource::kH2D, s.end_s, at.op);
            }
          }
        }
        ++failures;
        if (failures >= rp.max_attempts) {
          op.failed = true;
          op.failed_at = s.end_s;
          break;
        }
        op.faults.retries++;
        if (tr != nullptr) {
          tr->instant_on(TraceCategory::kRetry, "retry-h2d", Resource::kH2D,
                         s.end_s, at.op);
        }
        double wait;
        if (!rp.decorrelated_jitter) {
          wait =
              rp.backoff_base_s * std::pow(rp.backoff_multiplier, failures - 1);
        } else {
          const double u = jitter_rng_.uniform();
          wait = rp.backoff_base_s +
                 u * (3.0 * prev_backoff_s - rp.backoff_base_s);
          if (rp.backoff_cap_s > 0 && wait > rp.backoff_cap_s) {
            wait = rp.backoff_cap_s;
          }
          prev_backoff_s = wait;
        }
        op.faults.backoff_s += wait;
        chain = s.end_s + wait;
        at = platform_.link().h2d().matrix_transfer_attempt_batched(
            *op.m, fi, /*lead=*/true);
      }
    }
    if (tr != nullptr) tr->end_request();
    if (pl != nullptr) pl->end_request();
  };

  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (wave_on && wave_idx < wave_bounds.size() &&
        i == wave_bounds[wave_idx].begin) {
      // Placements from here to the next wave boundary (the preamble uploads
      // and every member request's stages) carry this wave's index.
      if (pl != nullptr) pl->set_wave(static_cast<int>(wave_idx));
      begin_wave(wave_bounds[wave_idx]);
      ++wave_idx;
    }
    const SpgemmRequest& req = queue_[i];
    const CsrMatrix& a = *req.a;
    const CsrMatrix& b = req.b != nullptr ? *req.b : a;
    const CsrMatrix* pb = req.b != nullptr ? req.b : req.a;

    RequestReport rr;
    rr.request_id = first_id + i;
    if (tr != nullptr) tr->begin_request(rr.request_id);
    if (pl != nullptr) pl->begin_request(rr.request_id);
    rr.label = req.label;
    rr.submit_s = 0;
    rr.deadline_s =
        req.deadline_s > 0 ? req.deadline_s : config_.default_deadline_s;
    RunReport& rep = rr.run;
    rep.algorithm = "HH-CPU (pipelined)";

    bool cancelled = false;
    bool degraded = false;
    double degrade_at = 0;  // clock where the degrade decision landed

    const auto past_deadline = [&](double t) {
      return rr.deadline_s > 0 && t - rr.submit_s > rr.deadline_s + 1e-15;
    };
    // Decorrelated jitter carries the previous wait forward within one
    // request; the legacy ladder is a pure function of the failure count.
    double prev_backoff_s = rp.backoff_base_s;
    const auto backoff_for = [&](int failures) {
      if (!rp.decorrelated_jitter) {
        return rp.backoff_base_s *
               std::pow(rp.backoff_multiplier, failures - 1);
      }
      const double u = jitter_rng_.uniform();
      double wait =
          rp.backoff_base_s + u * (3.0 * prev_backoff_s - rp.backoff_base_s);
      if (rp.backoff_cap_s > 0 && wait > rp.backoff_cap_s) {
        wait = rp.backoff_cap_s;
      }
      prev_backoff_s = wait;
      return wait;
    };
    // A CPU stage's duration plus any injected worker stall (stalls delay,
    // never fail). Zero-duration stages consume no injector op so the fault
    // schedule is stable across degenerate partitions. The stall is decided
    // before the stage is placed, so its trace instant is deferred until the
    // placed span is known — call note_stall(span) after the reserve.
    double pending_stall_s = 0;
    std::uint64_t pending_stall_op = kNoDeviceOp;
    const auto stalled = [&](double base) {
      pending_stall_s = 0;
      pending_stall_op = kNoDeviceOp;
      if (base <= 0) return base;
      const DeviceAttempt at = platform_.cpu().stall_attempt(fi);
      if (at.elapsed_s > 0) {
        rr.faults.cpu_stalls++;
        pending_stall_s = at.elapsed_s;
        pending_stall_op = at.op;
      }
      return base + at.elapsed_s;
    };
    const auto note_stall = [&](const StageSpan& s) {
      if (pending_stall_s > 0 && tr != nullptr) {
        tr->instant_on(TraceCategory::kFault, "cpu-stall", Resource::kCpu,
                       s.end_s, pending_stall_op);
      }
      pending_stall_s = 0;
    };

    // ---- Phase I: plan, through the cache when thresholds are not pinned.
    offset_t t_a = req.options.threshold_a;
    offset_t t_b = req.options.threshold_b;
    const bool cacheable = t_a <= 0 || t_b <= 0;
    // The autotuner engages only for fully-unpinned requests: a pinned
    // threshold is the caller's explicit choice, never second-guessed.
    const bool tunable = config_.tune.enabled && t_a <= 0 && t_b <= 0;
    offset_t tuned_t = 0;  // the variant this request measures (0 = none)
    PlanKey cache_key;
    if (cacheable) {
      cache_key = PlanKey{signature_of(req.a), signature_of(pb)};
      if (const auto cached = plan_cache_.lookup(cache_key)) {
        t_a = cached->threshold_a;
        t_b = cached->threshold_b;
        rr.plan_cache_hit = true;
        if (tunable) {
          if (!tuner_.has_entry(cache_key)) {
            // Plan cached before tuning was enabled: one sweep adopts it.
            tuner_.admit(cache_key, sweep_thresholds(a, b, platform_,
                                                     calib_.corrections()));
          }
          const ThresholdTuner::Decision d = tuner_.decide(cache_key);
          metrics_.counter("tune.decisions").inc();
          tuned_t = d.t;
          t_a = t_b = d.t;
          if (d.explore) {
            metrics_.counter("tune.explorations").inc();
            if (tr != nullptr) {
              tr->instant(TraceCategory::kTune, "tune-explore", rr.submit_s);
            }
          }
        }
      }
    }
    if (cacheable && tr != nullptr) {
      tr->instant(TraceCategory::kScheduler,
                  rr.plan_cache_hit ? "plan-cache-hit" : "plan-cache-miss",
                  rr.submit_s);
    }
    if (tunable && !rr.plan_cache_hit) {
      // Cold signature pair: run the analytic sweep once (with the current
      // calibration corrections), remember the full ranking for later
      // exploration, and serve its best. With an uncalibrated store this is
      // exactly the pick make_partition_plan would have made on its own.
      tuner_.admit(cache_key,
                   sweep_thresholds(a, b, platform_, calib_.corrections()));
      t_a = t_b = tuner_.incumbent(cache_key);
      tuned_t = t_a;
    }
    const PartitionPlan plan = make_partition_plan(a, b, t_a, t_b, platform_);
    if (cacheable && !rr.plan_cache_hit) {
      CachedPlan fresh;
      fresh.threshold_a = plan.a.threshold;
      fresh.threshold_b = plan.b.threshold;
      plan_cache_.insert(cache_key, fresh);
    }
    rep.threshold_a = plan.a.threshold;
    rep.threshold_b = plan.b.threshold;
    rep.high_rows_a = plan.a.high_count();
    rep.high_rows_b = plan.b.high_count();

    // A cache hit skips the identification pass but still classifies.
    rep.phase1_s = rr.plan_cache_hit ? plan.classify_s : plan.phase1_s;
    const StageSpan analyze =
        cpu.reserve(rr.plan_cache_hit ? "analyze(cached-plan)" : "analyze",
                    rr.submit_s, stalled(rep.phase1_s));
    note_stall(analyze);
    rr.spans.push_back(analyze);
    if (past_deadline(analyze.end_s)) cancelled = true;

    // ---- Input transfer on the H2D channel; resident operands skip it.
    // Each non-resident operand is uploaded with bounded retries: a hard
    // failure wastes part of the transfer, a corruption spends the whole
    // transfer and is caught by checksum verification (the damaged device
    // copy is never memoized as resident). Retry exhaustion flips the
    // request to the CPU-only path — no GPU, no PCIe.
    const bool on_gpu = req.options.matrices_already_on_gpu;
    double tx_in_total = 0;
    // When this request's operands are all usable on the device (uploads
    // done, or nothing to ship). Gates the GPU-side stages below.
    double tx_gate = rr.submit_s;
    StageSpan tx_in_last{"h2d-input", Resource::kH2D, rr.submit_s,
                         rr.submit_s};
    if (wave_on) {
      // Wave mode: the uploads already ran in the wave preamble. Collect
      // this request's readiness gate, attribute each operand's upload
      // spans/faults to its first user, and degrade every user of an
      // operand whose upload retries were exhausted.
      if (!on_gpu) {
        const CsrMatrix* operands[2] = {req.a, pb != req.a ? pb : nullptr};
        for (const CsrMatrix* m : operands) {
          if (m == nullptr) continue;
          WaveOperand& op = wave_ops[wave_op_index.at(signature_of(m))];
          tx_gate = std::max(tx_gate, op.ready_s);
          if (op.first_req == i) {
            for (const StageSpan& s : op.spans) rr.spans.push_back(s);
            rr.faults.accumulate(op.faults);
            tx_in_total += op.attributed_s;
          }
          if (op.failed && !degraded) {
            degraded = true;
            degrade_at = std::max(degrade_at, op.failed_at);
            if (tr != nullptr) {
              tr->instant(TraceCategory::kDegrade, "degrade-to-cpu",
                          op.failed_at);
            }
          }
        }
        if (!cancelled && past_deadline(tx_gate)) cancelled = true;
      }
    } else if (!cancelled && !on_gpu) {
      const CsrMatrix* operands[2] = {req.a, pb != req.a ? pb : nullptr};
      for (const CsrMatrix* m : operands) {
        if (m == nullptr || resident_.count(m) != 0) continue;
        int failures = 0;
        double earliest = rr.submit_s;
        for (;;) {
          const DeviceAttempt at =
              platform_.link().h2d().matrix_transfer_attempt(*m, fi);
          const char* name = at.ok               ? "h2d-input"
                             : at.corrupt        ? "h2d-input-corrupt"
                                                 : "h2d-input-fault";
          const StageSpan s = h2d.reserve(name, earliest, at.elapsed_s);
          rr.spans.push_back(s);
          tx_in_total += at.elapsed_s;
          if (s.end_s > tx_in_last.end_s) tx_in_last = s;
          if (at.ok) {
            if (config_.keep_inputs_resident) {
              resident_.emplace(m, matrix_checksum(*m));
            }
            if (past_deadline(s.end_s)) cancelled = true;
            break;
          }
          rr.faults.h2d_faults++;
          if (tr != nullptr) {
            tr->instant_on(TraceCategory::kFault,
                           at.corrupt ? "h2d-corrupt" : "h2d-fault",
                           Resource::kH2D, s.end_s, at.op);
          }
          if (at.corrupt) {
            rr.faults.corruptions++;
            resident_.erase(m);  // never reuse a damaged device copy
          }
          ++failures;
          if (past_deadline(s.end_s)) {
            cancelled = true;
            break;
          }
          if (failures >= rp.max_attempts) {
            degraded = true;
            degrade_at = std::max(degrade_at, s.end_s);
            if (tr != nullptr) {
              tr->instant(TraceCategory::kDegrade, "degrade-to-cpu", s.end_s);
            }
            break;
          }
          rr.faults.retries++;
          if (tr != nullptr) {
            tr->instant_on(TraceCategory::kRetry, "retry-h2d", Resource::kH2D,
                           s.end_s, at.op);
          }
          const double wait = backoff_for(failures);
          rr.faults.backoff_s += wait;
          earliest = s.end_s + wait;
        }
        if (cancelled || degraded) break;
      }
    }
    if (!wave_on) tx_gate = tx_in_last.end_s;
    rr.inputs_resident = tx_in_total == 0;
    rep.transfer_in_s = tx_in_total;

    // ---- Phase II numerics + scheduling. The numeric work always executes
    // host-side with the same decomposition, so retries and degradation
    // cannot change the output bits.
    Phase2Result p2;
    bool p2_live = false;
    WorkQueueResult q;
    MergeResult merged;
    bool have_output = false;
    StageSpan cpu2{}, gpu2{}, q_cpu{}, tx_out{}, deg{}, merge{};

    if (!cancelled) {
      p2 = run_phase2(a, b, plan, platform_, pool_, ws);
      p2_live = true;
      rep.phase2_cpu_s = p2.cpu_s;
      rep.phase2_gpu_s = p2.gpu_s;
      rep.phase2_s = HeteroPlatform::overlap(p2.cpu_s, p2.gpu_s);
      cpu2 = cpu.reserve("phase2-cpu", analyze.end_s, stalled(p2.cpu_s));
      note_stall(cpu2);
      rr.spans.push_back(cpu2);
      if (past_deadline(cpu2.end_s)) cancelled = true;

      // GPU side of Phase II: re-launch on transient aborts, degrade after
      // the request's N-th GPU failure.
      gpu2 = StageSpan{"phase2-gpu", Resource::kGpu, analyze.end_s,
                       analyze.end_s};
      if (!cancelled && !degraded && p2.gpu_s > 0) {
        double earliest = std::max(analyze.end_s, tx_gate);
        for (;;) {
          // In a wave, the first healthy Phase II launch is the lead and
          // pays the kernel-launch overhead; same-wave followers skip it
          // (batched costing). rep.phase2_* stay the model times from
          // run_phase2, so tuner feedback is identical wave-on and -off.
          const DeviceAttempt at =
              wave_on ? platform_.gpu().kernel_attempt_batched(
                            p2.ll_stats, fi, /*lead=*/!wave_gpu_lead_done)
                      : platform_.gpu().kernel_attempt(p2.ll_stats, fi);
          const StageSpan s = gpu.reserve(
              at.ok ? "phase2-gpu" : "phase2-gpu-abort", earliest,
              at.elapsed_s);
          rr.spans.push_back(s);
          if (at.ok) {
            gpu2 = s;
            if (wave_on && at.elapsed_s > 0) {
              if (wave_gpu_lead_done) wstats.batched_launches++;
              wave_gpu_lead_done = true;
            }
            if (past_deadline(s.end_s)) cancelled = true;
            break;
          }
          rr.faults.gpu_aborts++;
          if (tr != nullptr) {
            tr->instant_on(TraceCategory::kFault, "gpu-abort", Resource::kGpu,
                           s.end_s, at.op);
          }
          if (past_deadline(s.end_s)) {
            cancelled = true;
            break;
          }
          if (rr.faults.gpu_aborts >= rp.gpu_failures_before_degrade) {
            degraded = true;
            degrade_at = std::max(degrade_at, s.end_s);
            if (tr != nullptr) {
              tr->instant(TraceCategory::kDegrade, "degrade-to-cpu", s.end_s);
            }
            break;
          }
          rr.faults.retries++;
          if (tr != nullptr) {
            tr->instant_on(TraceCategory::kRetry, "retry-gpu", Resource::kGpu,
                           s.end_s, at.op);
          }
          const double wait = backoff_for(rr.faults.gpu_aborts);
          rr.faults.backoff_s += wait;
          earliest = s.end_s + wait;
        }
      }
    }

    // ---- Phase III: the double-ended queue occupies both devices from
    // their current frontiers. A degraded request re-plans the queue with
    // the GPU never joining: every unit runs on the CPU end — the CPU-only
    // Gustavson path — and the tuple stream (hence the output) is unchanged.
    bool q_ran = false;
    if (!cancelled) {
      const double cpu_q_start =
          std::max({cpu.now(), analyze.end_s, cpu2.end_s});
      const double gpu_q_start =
          degraded ? kGpuNeverJoins
                   : std::max({gpu.now(), analyze.end_s, tx_gate,
                               gpu2.end_s});
      q = run_phase3(a, b, plan, req.options.queue, cpu_q_start, gpu_q_start,
                     platform_, pool_, ws);
      q_ran = true;
      rep.phase3_cpu_s = q.cpu_busy;
      rep.phase3_gpu_s = q.gpu_busy;
      rep.phase3_s = HeteroPlatform::overlap(q.cpu_busy, q.gpu_busy);
      rep.queue_cpu_units = q.cpu_units;
      rep.queue_gpu_units = q.gpu_units;
      q_cpu = cpu.reserve("phase3-cpu", cpu_q_start, stalled(q.cpu_busy));
      note_stall(q_cpu);
      rr.spans.push_back(q_cpu);
      if (past_deadline(q_cpu.end_s)) cancelled = true;

      StageSpan q_gpu{"phase3-gpu", Resource::kGpu, gpu2.end_s, gpu2.end_s};
      if (!cancelled && !degraded && q.gpu_busy > 0) {
        double earliest = gpu_q_start;
        for (;;) {
          const DeviceAttempt at =
              platform_.gpu().kernel_attempt(q.gpu_stats, fi);
          // The queue's GPU share executes as one fault domain: an abort
          // re-runs the whole share (its units were a single stream of
          // back-to-back launches feeding one tuple buffer).
          const double dur = at.ok ? q.gpu_busy : at.elapsed_s;
          const StageSpan s = gpu.reserve(
              at.ok ? "phase3-gpu" : "phase3-gpu-abort", earliest, dur);
          rr.spans.push_back(s);
          if (at.ok) {
            q_gpu = s;
            if (past_deadline(s.end_s)) cancelled = true;
            break;
          }
          rr.faults.gpu_aborts++;
          if (tr != nullptr) {
            tr->instant_on(TraceCategory::kFault, "gpu-abort", Resource::kGpu,
                           s.end_s, at.op);
          }
          if (past_deadline(s.end_s)) {
            cancelled = true;
            break;
          }
          if (rr.faults.gpu_aborts >= rp.gpu_failures_before_degrade) {
            degraded = true;
            degrade_at = std::max(degrade_at, s.end_s);
            if (tr != nullptr) {
              tr->instant(TraceCategory::kDegrade, "degrade-to-cpu", s.end_s);
            }
            break;
          }
          rr.faults.retries++;
          if (tr != nullptr) {
            tr->instant_on(TraceCategory::kRetry, "retry-gpu", Resource::kGpu,
                           s.end_s, at.op);
          }
          const double wait = backoff_for(rr.faults.gpu_aborts);
          rr.faults.backoff_s += wait;
          earliest = s.end_s + wait;
        }
      }

      // ---- D2H shipment of the GPU tuples (skipped when degraded: the CPU
      // recomputes the GPU share locally, nothing crosses the link).
      if (!cancelled && !degraded) {
        const std::int64_t gpu_tuples =
            p2.ll_stats.tuples + q.gpu_stats.tuples;
        if (gpu_tuples > 0) {
          int failures = 0;
          double earliest = std::max(gpu2.end_s, q_gpu.end_s);
          for (;;) {
            const DeviceAttempt at =
                platform_.link().d2h().tuple_transfer_attempt(gpu_tuples, fi);
            const char* name = at.ok               ? "d2h-tuples"
                               : at.corrupt        ? "d2h-tuples-corrupt"
                                                   : "d2h-tuples-fault";
            const StageSpan s = d2h.reserve(name, earliest, at.elapsed_s);
            rr.spans.push_back(s);
            rep.transfer_out_s += at.elapsed_s;
            if (at.ok) {
              tx_out = s;
              if (past_deadline(s.end_s)) cancelled = true;
              break;
            }
            rr.faults.d2h_faults++;
            if (tr != nullptr) {
              tr->instant_on(TraceCategory::kFault,
                             at.corrupt ? "d2h-corrupt" : "d2h-fault",
                             Resource::kD2H, s.end_s, at.op);
            }
            if (at.corrupt) rr.faults.corruptions++;
            ++failures;
            if (past_deadline(s.end_s)) {
              cancelled = true;
              break;
            }
            if (failures >= rp.max_attempts) {
              degraded = true;
              degrade_at = std::max(degrade_at, s.end_s);
              if (tr != nullptr) {
                tr->instant(TraceCategory::kDegrade, "degrade-to-cpu",
                            s.end_s);
              }
              break;
            }
            rr.faults.retries++;
            if (tr != nullptr) {
              tr->instant_on(TraceCategory::kRetry, "retry-d2h",
                             Resource::kD2H, s.end_s, at.op);
            }
            const double wait = backoff_for(failures);
            rr.faults.backoff_s += wait;
            earliest = s.end_s + wait;
          }
        }
      }

      // ---- Degraded re-plan: the CPU redoes the GPU's share (Phase II
      // A_L×B_L and whatever the queue had assigned to the GPU) with its
      // own cost model. Numerically this is the same host-side Gustavson
      // work that produced the tuples, so the output bits are unchanged.
      if (!cancelled && degraded) {
        const double extra =
            platform_.cpu().kernel_time(p2.ll_stats, plan.ws_bl_bytes,
                                        /*rewritten=*/true,
                                        /*blockable=*/false) +
            platform_.cpu().kernel_time(q.gpu_stats, plan.ws_bl_bytes,
                                        /*rewritten=*/true,
                                        /*blockable=*/false);
        if (extra > 0) {
          deg = cpu.reserve("degraded-cpu-replan",
                            std::max({q_cpu.end_s, cpu2.end_s, degrade_at}),
                            extra);
          rr.spans.push_back(deg);
          if (past_deadline(deg.end_s)) cancelled = true;
        }
      }
    }

    rep.flops = p2.hh_stats.flops + p2.ll_stats.flops + q.cpu_stats.flops +
                q.gpu_stats.flops;
    const double seq_tx_in =
        platform_.link().h2d().matrix_transfer_time(a) +
        (&b != &a ? platform_.link().h2d().matrix_transfer_time(b) : 0.0);

    // ---- Phase IV merge (consumes the tuple buffers, releasing pooled
    // ones, so it runs whenever Phase III did — even for a request that is
    // already past its deadline, so cancellation never leaks a pooled
    // buffer). A request cancelled before Phase III releases the Phase II
    // buffers directly.
    if (p2_live && !q_ran) {
      if (ws != nullptr) {
        ws->release_coo(std::move(p2.hh_tuples));
        ws->release_coo(std::move(p2.ll_tuples));
      }
      p2_live = false;
    } else if (p2_live) {
      merged = run_phase4(std::move(p2), std::move(q), platform_, pool_, ws);
      p2_live = false;
      rep.merge = merged.merge;
      rep.phase4_s = merged.cpu_s;
      if (!cancelled) {
        merge = cpu.reserve(
            "merge",
            std::max({q_cpu.end_s, tx_out.end_s, deg.end_s, cpu2.end_s}),
            stalled(merged.cpu_s));
        note_stall(merge);
        rr.spans.push_back(merge);
        if (past_deadline(merge.end_s)) {
          cancelled = true;
        } else {
          have_output = true;
        }
      }
    }

    // ---- Request accounting.
    std::erase_if(rr.spans,
                  [](const StageSpan& s) { return s.duration_s() <= 0; });
    rr.start_s = rr.submit_s;
    rr.finish_s = rr.submit_s;
    for (std::size_t k = 0; k < rr.spans.size(); ++k) {
      rr.start_s = k == 0 ? rr.spans[k].start_s
                          : std::min(rr.start_s, rr.spans[k].start_s);
      rr.finish_s = std::max(rr.finish_s, rr.spans[k].end_s);
    }
    rr.queue_wait_s = rr.start_s - rr.submit_s;
    rr.latency_s = rr.finish_s - rr.submit_s;
    rr.degraded_to_cpu = degraded;
    if (cancelled) {
      rr.deadline_missed = true;
      std::ostringstream os;
      os << "deadline of " << rr.deadline_s << " s exceeded at "
         << rr.finish_s << " s; request cancelled";
      rr.status = Status{StatusCode::kDeadlineExceeded, os.str()};
      if (tr != nullptr) {
        tr->instant(TraceCategory::kCancel, "deadline-cancel", rr.finish_s);
      }
      // The plan this request rode on is suspect until re-identified.
      if (cacheable && rr.plan_cache_hit) plan_cache_.quarantine(cache_key);
    }
    rep.output_nnz = have_output ? merged.c.nnz() : 0;
    rep.total_s = rr.latency_s;

    // ---- Feed the tuner: only clean requests observe. A faulted, degraded
    // or cancelled request's timings measure the fault plan, not the plan
    // quality, and would poison both the variant table and the calibration.
    if (tunable && tuned_t > 0 && !cancelled && !degraded &&
        rr.faults.total_faults() == 0) {
      // What the threshold choice actually controls: compute + merge +
      // output shipment. Queue wait and input transfer are workload state.
      const double measured =
          rep.phase2_s + rep.phase3_s + rep.phase4_s + rep.transfer_out_s;
      metrics_.counter("tune.measurements").inc();
      if (const auto promo = tuner_.observe(cache_key, tuned_t, measured)) {
        CachedPlan promoted;
        promoted.threshold_a = promo->to_t;
        promoted.threshold_b = promo->to_t;
        promoted.version = promo->version;
        promoted.measured_s = promo->to_best_s;
        plan_cache_.insert(cache_key, promoted);
        metrics_.counter("tune.promotions").inc();
        if (tr != nullptr) {
          tr->instant(TraceCategory::kTune, "tune-promote", rr.finish_s);
        }
      }
      // Calibrate the cost model against this request's observed stage
      // times (per device; transfers only when bytes actually moved).
      const PredictedBreakdown pred =
          predict_breakdown(a, b, tuned_t, platform_);
      const double obs_cpu = rep.phase2_cpu_s + rep.phase3_cpu_s + rep.phase4_s;
      const double obs_gpu = rep.phase2_gpu_s + rep.phase3_gpu_s;
      bool drift = false;
      drift |= calib_.record(CalibrationStore::Device::kCpu, pred.cpu_s,
                             obs_cpu);
      drift |= calib_.record(CalibrationStore::Device::kGpu, pred.gpu_s,
                             obs_gpu);
      if (rep.transfer_in_s > 0) {
        drift |= calib_.record(CalibrationStore::Device::kH2D, pred.h2d_s,
                               rep.transfer_in_s);
      }
      if (rep.transfer_out_s > 0) {
        drift |= calib_.record(CalibrationStore::Device::kD2H, pred.d2h_s,
                               rep.transfer_out_s);
      }
      if (drift) {
        metrics_.counter("tune.drift_events").inc();
        if (tr != nullptr) {
          tr->instant(TraceCategory::kTune, "tune-drift", rr.finish_s);
        }
      }
    }

    makespan = std::max(makespan, rr.finish_s);
    latencies.push_back(rr.latency_s);

    // First-order cost of the same request under the serial driver: cold
    // transfers, cold identification, single-clock overlap accounting.
    const double seq_cpu_end = plan.phase1_s + rep.phase2_cpu_s + q.cpu_busy;
    const double seq_gpu_end =
        plan.phase1_s + seq_tx_in + rep.phase2_gpu_s + q.gpu_busy;
    seq_estimate += std::max(seq_cpu_end, seq_gpu_end) + rep.transfer_out_s +
                    rep.phase4_s;

    // ---- Flight recorder + SLO feed: the record carries everything the
    // replay harness needs to re-drive the request (signatures, arrival on
    // the recorder's accumulated clock, deadline, pinned thresholds) and to
    // judge the replay (outcome, chosen thresholds, stage totals).
    if (config_.recorder != nullptr) {
      WorkloadRecord w;
      w.id = rr.request_id;
      w.label = rr.label;
      w.a = signature_of(req.a);
      w.b = signature_of(pb);
      w.submit_s = config_.recorder->clock() + rr.submit_s;
      w.deadline_s = rr.deadline_s;
      w.pin_ta = req.options.threshold_a;
      w.pin_tb = req.options.threshold_b;
      w.ta = rep.threshold_a;
      w.tb = rep.threshold_b;
      w.status = hh::to_string(rr.status.code);
      w.cache_hit = rr.plan_cache_hit;
      w.degraded = rr.degraded_to_cpu;
      w.deadline_missed = rr.deadline_missed;
      w.latency_s = rr.latency_s;
      w.queue_wait_s = rr.queue_wait_s;
      w.phase1_s = rep.phase1_s;
      w.phase2_s = rep.phase2_s;
      w.phase3_s = rep.phase3_s;
      w.phase4_s = rep.phase4_s;
      w.tx_in_s = rep.transfer_in_s;
      w.tx_out_s = rep.transfer_out_s;
      w.output_nnz = rep.output_nnz;
      w.faults = rr.faults.total_faults();
      w.retries = rr.faults.retries;
      config_.recorder->append(std::move(w));
    }
    if (config_.slo != nullptr) {
      config_.slo->observe(rr.latency_s, rr.status.ok(), rr.deadline_missed,
                           rr.finish_s);
    }

    // ---- Wave residency refcounts: this request no longer needs its
    // operands. With keep_inputs_resident == false the last user's finish
    // evicts the device copy — mid-wave, when an operand's users all sit
    // early in the wave.
    if (wave_on && !on_gpu) {
      const CsrMatrix* operands[2] = {req.a, pb != req.a ? pb : nullptr};
      for (const CsrMatrix* m : operands) {
        if (m == nullptr) continue;
        const auto rit = wave_resident_.find(signature_of(m));
        if (rit == wave_resident_.end()) continue;
        if (--rit->second.refs <= 0 && !config_.keep_inputs_resident) {
          wave_resident_.erase(rit);
          wstats.evictions++;
          if (tr != nullptr) {
            tr->instant(TraceCategory::kWave, "wave-evict", rr.finish_s);
          }
        }
      }
    }

    RunResult res;
    if (have_output) res.c = std::move(merged.c);
    res.report = rep;
    out.results.push_back(std::move(res));
    out.requests.push_back(std::move(rr));
    if (tr != nullptr) tr->end_request();
    if (pl != nullptr) pl->end_request();
    if (wave_on && tr != nullptr && wave_idx > 0 &&
        i + 1 == wave_bounds[wave_idx - 1].end) {
      tr->instant(TraceCategory::kWave, "wave-end",
                  std::max({cpu.now(), gpu.now(), h2d.now(), d2h.now()}));
    }
  }
  queue_.clear();

  BatchReport& batch = out.batch;
  batch.requests = out.requests.size();
  batch.makespan_s = makespan;
  batch.sequential_estimate_s = seq_estimate;
  batch.p50_latency_s = percentile(latencies, 0.50);
  batch.p95_latency_s = percentile(latencies, 0.95);
  batch.p99_latency_s = percentile(latencies, 0.99);
  batch.cpu_busy_s = cpu.busy();
  batch.gpu_busy_s = gpu.busy();
  batch.h2d_busy_s = h2d.busy();
  batch.d2h_busy_s = d2h.busy();
  batch.plan_cache = plan_cache_.stats();
  batch.workspace = workspace_.stats();
  batch.backoff_jitter = rp.decorrelated_jitter;
  batch.wave_enabled = wave_on;
  if (wave_on) {
    batch.wave = wstats;
    metrics_.counter("wave.waves").inc(wstats.waves);
    metrics_.counter("wave.requests").inc(wstats.wave_requests);
    metrics_.counter("wave.uploads").inc(wstats.uploads);
    metrics_.counter("wave.deduped_uploads").inc(wstats.deduped_uploads);
    metrics_.counter("wave.coalesced_uploads").inc(wstats.coalesced_uploads);
    metrics_.counter("wave.batched_launches").inc(wstats.batched_launches);
    metrics_.counter("wave.evictions").inc(wstats.evictions);
    metrics_.counter("wave.h2d_bytes").inc(wstats.h2d_bytes);
  }

  // ---- Critical-path profile (obs/critpath.hpp): attribute the makespan.
  batch.critpath_enabled = pl != nullptr;
  if (pl != nullptr) {
    // Invariant: the provenance log is attribution-complete — per resource,
    // the sum of logged placement durations equals the timeline's busy time
    // (both only ever grow by positive-duration reservations).
    const double busy[kResourceCount] = {cpu.busy(), gpu.busy(), h2d.busy(),
                                         d2h.busy()};
    for (int r = 0; r < kResourceCount; ++r) {
      const double attributed =
          pl->attributed_busy_s(static_cast<Resource>(r));
      HH_CHECK_MSG(std::abs(attributed - busy[r]) <=
                       1e-9 * std::max(1.0, busy[r]),
                   "placement log does not cover the timeline's busy time");
    }
    std::vector<CritPathRequestInfo> infos;
    infos.reserve(out.requests.size());
    for (const RequestReport& r : out.requests) {
      CritPathRequestInfo info;
      info.request_id = r.request_id;
      info.label = r.label;
      info.queue_wait_s = r.queue_wait_s;
      info.latency_s = r.latency_s;
      info.backoff_s = r.faults.backoff_s;
      infos.push_back(std::move(info));
    }
    batch.critpath = compute_critical_path(pl->placements(), makespan, infos);
    const CritPathReport& cp = batch.critpath;
    const double denom = std::max(cp.makespan_s, 1e-300);
    for (int r = 0; r < kResourceCount; ++r) {
      const char* lane = crit_lane_name(r);
      double queueing = 0;
      Histogram& qd = metrics_.histogram(
          std::string("critpath.queue_delay_s.") + lane, latency_buckets_s());
      for (const Placement& p : pl->placements()) {
        if (static_cast<int>(p.resource) != r) continue;
        const double delay = std::max(0.0, p.queue_delay_s());
        queueing += delay;
        qd.observe(delay);
      }
      metrics_.gauge(std::string("critpath.") + lane + ".busy_frac")
          .set(cp.makespan_s > 0 ? busy[r] / denom : 0.0);
      metrics_.gauge(std::string("critpath.") + lane + ".blocked_frac")
          .set(cp.makespan_s > 0 ? queueing / denom : 0.0);
      metrics_.gauge(std::string("critpath.") + lane + ".idle_frac")
          .set(cp.makespan_s > 0 ? 1.0 - busy[r] / denom : 0.0);
      metrics_.gauge(std::string("critpath.") + lane + ".crit_s")
          .set(cp.attributed_s[r]);
    }
    metrics_.gauge("critpath.idle.crit_s").set(cp.attributed_s[kIdleLane]);
    metrics_.gauge("critpath.bottleneck")
        .set(static_cast<double>(cp.bottleneck_lane()));
    if (tr != nullptr) {
      // One instant per chain step; the Perfetto exporter links them with
      // flow arrows so the critical chain reads as one thread of causality.
      for (const CritPathStep& s : cp.steps) {
        if (s.lane < kResourceCount) {
          tr->instant_on(TraceCategory::kCritPath, "crit-step",
                         static_cast<Resource>(s.lane), s.start_s);
        } else {
          tr->instant(TraceCategory::kCritPath, "crit-idle", s.start_s);
        }
      }
    }
  }

  const std::int64_t shed_total = metrics_.counter("service.shed").value();
  batch.shed = static_cast<std::size_t>(shed_total - shed_at_last_drain_);
  shed_at_last_drain_ = shed_total;

  Histogram& latency_hist =
      metrics_.histogram("service.latency_s", latency_buckets_s());
  for (RequestReport& r : out.requests) {
    batch.faults.accumulate(r.faults);
    if (r.status.ok()) batch.completed++;
    if (r.degraded_to_cpu) batch.degraded++;
    if (r.deadline_missed) batch.deadline_missed++;
    r.flame = flame_row(r.spans, 0, makespan);
    metrics_.counter("service.requests").inc();
    if (!r.deadline_missed) latency_hist.observe(r.latency_s);
  }
  metrics_.counter("service.completed").inc(
      static_cast<std::int64_t>(batch.completed));
  metrics_.counter("service.degraded").inc(
      static_cast<std::int64_t>(batch.degraded));
  metrics_.counter("service.deadline_missed").inc(
      static_cast<std::int64_t>(batch.deadline_missed));
  metrics_.counter("service.faults.gpu_aborts").inc(batch.faults.gpu_aborts);
  metrics_.counter("service.faults.h2d").inc(batch.faults.h2d_faults);
  metrics_.counter("service.faults.d2h").inc(batch.faults.d2h_faults);
  metrics_.counter("service.faults.corruptions").inc(batch.faults.corruptions);
  metrics_.counter("service.faults.cpu_stalls").inc(batch.faults.cpu_stalls);
  metrics_.counter("service.retries").inc(batch.faults.retries);
  metrics_.gauge("service.makespan_s").set(batch.makespan_s);
  metrics_.gauge("service.cpu_busy_s").set(batch.cpu_busy_s);
  metrics_.gauge("service.gpu_busy_s").set(batch.gpu_busy_s);
  metrics_.gauge("service.h2d_busy_s").set(batch.h2d_busy_s);
  metrics_.gauge("service.d2h_busy_s").set(batch.d2h_busy_s);
  if (config_.tune.enabled) {
    metrics_.gauge("tune.entries").set(static_cast<double>(tuner_.entries()));
    metrics_.gauge("tune.converged").set(
        static_cast<double>(tuner_.converged()));
    metrics_.gauge("tune.calibration.cpu")
        .set(calib_.correction(CalibrationStore::Device::kCpu));
    metrics_.gauge("tune.calibration.gpu")
        .set(calib_.correction(CalibrationStore::Device::kGpu));
    metrics_.gauge("tune.calibration.h2d")
        .set(calib_.correction(CalibrationStore::Device::kH2D));
    metrics_.gauge("tune.calibration.d2h")
        .set(calib_.correction(CalibrationStore::Device::kD2H));
  }

  // The batch flame is built from the per-request spans (not the recorder),
  // so the text view works even with tracing compiled out or disabled.
  std::vector<TraceEvent> flame_events;
  for (const RequestReport& r : out.requests) {
    for (const StageSpan& s : r.spans) {
      flame_events.push_back({TraceEventKind::kSpan, TraceCategory::kCompute,
                              s.stage, /*has_resource=*/true, s.resource,
                              r.request_id, s.start_s, s.end_s, s.start_s,
                              kNoDeviceOp});
    }
  }
  batch.flame = flame_view(flame_events);

  // Close the wave: the recorder's clock absorbs this drain's makespan so
  // the next drain's records arrive later on the accumulated clock.
  if (config_.recorder != nullptr) {
    config_.recorder->advance_clock(batch.makespan_s);
  }
  return out;
}

}  // namespace hh
