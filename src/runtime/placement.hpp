// Placement provenance for the critical-path profiler (src/obs/critpath.*).
//
// Every positive-duration ResourceTimeline::reserve() already lands as a
// trace span when a TraceRecorder is attached, but trace events are
// string-keyed and optional — attribution analysis would have to re-parse
// span names to recover which request, wave and stage produced a placement.
// PlacementLog instead records the placement facts first-class: the stage
// name, the resource, the dependence-allowed earliest start the caller asked
// for (`requested_s`), the granted [start, end) window, and the request /
// wave context the service had set when the reservation was made.
//
// The log is attribution-complete by construction: ResourceTimeline appends
// one Placement per positive-duration reservation, exactly the reservations
// that advance busy(). The service checks this invariant after every drain —
// per resource, the sum of logged placement durations equals the timeline's
// busy time — so critical-path attribution can trust the log without
// cross-checking the trace.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/resource.hpp"

namespace hh {

/// Sentinel request id for placements made outside any request context
/// (mirrors trace kNoRequest; kept separate so this header stays free of the
/// trace dependency).
inline constexpr std::size_t kNoPlacementRequest = static_cast<std::size_t>(-1);

/// Sentinel wave index for placements made outside the wave executor (wave
/// executor disabled, or batch-level work).
inline constexpr int kNoWave = -1;

/// One positive-duration resource reservation with full provenance.
struct Placement {
  const char* stage = "";   // static stage name passed to reserve()
  Resource resource = Resource::kCpu;
  double requested_s = 0;   // dependence-allowed earliest start
  double start_s = 0;       // granted start (start - requested = queue delay)
  double end_s = 0;
  std::size_t request_id = kNoPlacementRequest;
  int wave = kNoWave;

  double duration_s() const { return end_s - start_s; }
  double queue_delay_s() const { return start_s - requested_s; }
};

/// Append-only log of placements for one drain. The service sets the request
/// / wave context around the same scopes where it sets trace identity; the
/// timelines append into the log from inside reserve().
class PlacementLog {
 public:
  void begin_request(std::size_t id) { request_ = id; }
  void end_request() { request_ = kNoPlacementRequest; }
  void set_wave(int wave) { wave_ = wave; }

  void append(const char* stage, Resource resource, double requested_s,
              double start_s, double end_s) {
    placements_.push_back(
        {stage, resource, requested_s, start_s, end_s, request_, wave_});
  }

  const std::vector<Placement>& placements() const { return placements_; }

  /// Sum of logged durations on `r` — must equal the owning timeline's
  /// busy() (the invariant the service checks after each drain).
  double attributed_busy_s(Resource r) const {
    double total = 0;
    for (const Placement& p : placements_) {
      if (p.resource == r) total += p.duration_s();
    }
    return total;
  }

 private:
  std::size_t request_ = kNoPlacementRequest;
  int wave_ = kNoWave;
  std::vector<Placement> placements_;
};

}  // namespace hh
