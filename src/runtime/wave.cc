#include "runtime/wave.hpp"

#include <sstream>
#include <unordered_set>

namespace hh {

void WaveStats::accumulate(const WaveStats& o) {
  waves += o.waves;
  wave_requests += o.wave_requests;
  uploads += o.uploads;
  deduped_uploads += o.deduped_uploads;
  coalesced_uploads += o.coalesced_uploads;
  batched_launches += o.batched_launches;
  evictions += o.evictions;
  h2d_bytes += o.h2d_bytes;
}

std::string WaveStats::to_json() const {
  std::ostringstream os;
  os << "{\"waves\":" << waves << ",\"requests\":" << wave_requests
     << ",\"uploads\":" << uploads
     << ",\"deduped_uploads\":" << deduped_uploads
     << ",\"coalesced_uploads\":" << coalesced_uploads
     << ",\"batched_launches\":" << batched_launches
     << ",\"evictions\":" << evictions << ",\"h2d_bytes\":" << h2d_bytes
     << "}";
  return os.str();
}

std::vector<WaveBounds> form_waves(
    const std::vector<std::array<std::uint32_t, 2>>& operand_ids,
    std::size_t max_requests, std::size_t max_operands) {
  std::vector<WaveBounds> waves;
  const std::size_t n = operand_ids.size();
  std::size_t begin = 0;
  std::unordered_set<std::uint32_t> ops;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = operand_ids[i][0];
    const std::uint32_t b = operand_ids[i][1];
    std::size_t fresh = ops.count(a) == 0 ? 1 : 0;
    if (b != a && ops.count(b) == 0) ++fresh;
    const bool req_ok = max_requests == 0 || i - begin < max_requests;
    const bool ops_ok =
        max_operands == 0 || ops.size() + fresh <= max_operands;
    if (i != begin && !(req_ok && (fresh == 0 || ops_ok))) {
      waves.push_back({begin, i});
      begin = i;
      ops.clear();
    }
    ops.insert(a);
    ops.insert(b);
  }
  if (begin < n) waves.push_back({begin, n});
  return waves;
}

}  // namespace hh
