// SpgemmService: a pipelined multi-query SpGEMM execution engine.
//
// The one-shot driver (run_hh_cpu) charges each request serially:
// transfer → compute → transfer. A service under sustained traffic does
// better: while request k computes, request k+1's operands are already
// crossing the H2D channel and its Phase I analysis can run in a CPU idle
// window; request k's result tuples cross D2H while k+1 occupies the GPU.
// drain() schedules each request's stages (core/hh_stages.hpp) on four
// independently-clocked resource timelines — CPU, GPU, H2D, D2H — with
// dependence-respecting insertion scheduling (runtime/timeline.hpp).
//
// Steady-state accelerators, all optional and all output-preserving:
//  - partition-plan cache keyed by sparsity signatures (runtime/plan_cache)
//    — a hit skips threshold identification;
//  - operand residency — a matrix already uploaded in this service's
//    lifetime is not re-shipped (device memory is retained across requests,
//    and each resident copy carries a checksum from fault/checksum.hpp);
//  - workspace pooling (spgemm/workspace.hpp) — SPA accumulators and tuple
//    buffers are recycled instead of reallocated per request.
//
// Fault tolerance (docs/robustness.md): when Config::fault_plan injects
// faults (fault/fault.hpp), the service recovers per request —
//  - transient GPU kernel aborts and PCIe failures are retried with
//    exponential backoff and bounded attempts;
//  - corrupted transfers are detected by checksum, the residency entry is
//    invalidated, and the operand is re-uploaded;
//  - after RecoveryPolicy::gpu_failures_before_degrade GPU-side failures
//    (or transfer-retry exhaustion) the request degrades to the CPU-only
//    Gustavson path: the GPU's share is re-charged on the CPU timeline and
//    no PCIe traffic is scheduled;
//  - per-request deadlines cancel a request that cannot finish in time, and
//    a bounded admission queue sheds load at submit().
// Numeric work always executes host-side with the same decomposition, so
// every completed request's output matrix — retried, degraded, or not — is
// bit-identical to what a cold, serial, fault-free run_hh_cpu call
// produces; only the simulated clock bookkeeping differs. Submitted
// matrices must stay alive and unmodified until drain() returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hh_cpu.hpp"
#include "core/report.hpp"
#include "device/platform.hpp"
#include "fault/fault.hpp"
#include "obs/critpath.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/timeline.hpp"
#include "runtime/wave.hpp"
#include "sparse/csr.hpp"
#include "spgemm/workspace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "tune/calibration.hpp"
#include "tune/tuner.hpp"
#include "util/prng.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace hh {

class WorkloadRecorder;  // obs/recorder.hpp
class SloMonitor;        // obs/slo.hpp

struct SpgemmRequest {
  const CsrMatrix* a = nullptr;
  const CsrMatrix* b = nullptr;  // nullptr = self product (B is A)
  HhCpuOptions options;          // explicit thresholds bypass the plan cache
  std::string label;
  double deadline_s = 0;  // relative to submit; 0 = Config::default_deadline_s
};

/// The request validation SpgemmService::submit performs, as a free function
/// so a fronting layer (the shard group, src/shard/) can reject malformed
/// requests before routing instead of discovering the throw mid-failover.
/// Throws InvalidArgumentError; returns normally on a well-formed request.
void validate_spgemm_request(const SpgemmRequest& request);

/// Per-request fault/recovery accounting.
struct FaultRecoveryStats {
  int gpu_aborts = 0;   // injected GPU kernel aborts seen
  int h2d_faults = 0;   // injected H2D failures + corruptions
  int d2h_faults = 0;
  int corruptions = 0;  // subset of transfer faults caught by checksum
  int cpu_stalls = 0;   // injected CPU worker stalls
  int retries = 0;      // re-executed attempts (all resources)
  double backoff_s = 0;  // total exponential-backoff delay inserted

  int total_faults() const {
    return gpu_aborts + h2d_faults + d2h_faults + cpu_stalls;
  }
  void accumulate(const FaultRecoveryStats& o);
};

/// Per-request accounting: the familiar RunReport (phase durations) plus the
/// pipeline view — queue wait, absolute stage spans, cache/residency flags —
/// and the fault/recovery outcome.
struct RequestReport {
  RunReport run;  // run.total_s is the request latency
  std::size_t request_id = 0;
  std::string label;
  Status status;  // ok, or kDeadlineExceeded when cancelled
  bool plan_cache_hit = false;
  bool inputs_resident = false;  // no bytes crossed H2D for this request
  bool degraded_to_cpu = false;  // GPU share re-planned onto the CPU
  bool deadline_missed = false;  // cancelled: no output produced
  FaultRecoveryStats faults;
  double deadline_s = 0;    // effective relative deadline (0 = none)
  double submit_s = 0;
  double start_s = 0;       // first stage begins
  double finish_s = 0;      // merge ends (or cancellation point)
  double queue_wait_s = 0;  // start_s - submit_s
  double latency_s = 0;     // finish_s - submit_s
  std::vector<StageSpan> spans;
  std::string flame;  // one-row text flame of this request's spans over the
                      // batch window (trace/flame.hpp)

  std::string to_string() const;
  std::string to_json() const;
};

/// Batch-level accounting across one drain().
struct BatchReport {
  std::size_t requests = 0;
  std::size_t completed = 0;        // status ok (with or without recovery)
  std::size_t degraded = 0;         // finished on the CPU-only path
  std::size_t deadline_missed = 0;  // cancelled
  std::size_t shed = 0;             // rejected at submit since last drain
  FaultRecoveryStats faults;        // aggregated over the batch
  double makespan_s = 0;             // last finish over all requests
  double sequential_estimate_s = 0;  // first-order back-to-back serial cost
                                     // of the same work (cold transfers,
                                     // cold identification)
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double cpu_busy_s = 0;  // occupied time per resource timeline
  double gpu_busy_s = 0;
  double h2d_busy_s = 0;
  double d2h_busy_s = 0;
  PlanCache::Stats plan_cache;
  WorkspacePool::Stats workspace;
  // Wave-executor accounting (runtime/wave.hpp). wave_enabled echoes
  // Config::wave.enabled; when false the stats stay zero and to_string /
  // to_json omit them entirely, keeping disabled reports byte-identical to
  // before the executor existed.
  bool wave_enabled = false;
  WaveStats wave;
  // Critical-path profile (obs/critpath.hpp). critpath_enabled echoes
  // Config::critpath (on by default); when false the report stays empty and
  // to_string / to_json omit it entirely.
  bool critpath_enabled = false;
  CritPathReport critpath;
  bool backoff_jitter = false;  // RecoveryPolicy::decorrelated_jitter echo
  std::string flame;  // per-resource text flame view of the whole batch

  std::string to_string() const;
  std::string to_json() const;
};

struct BatchResult {
  std::vector<RunResult> results;  // submit order; results[i].report is the
                                   // same RunReport as requests[i].run. A
                                   // cancelled request's matrix is empty and
                                   // its report carries the deadline status.
  std::vector<RequestReport> requests;
  BatchReport batch;
};

/// How the service recovers from injected faults.
struct RecoveryPolicy {
  int max_attempts = 4;  // per transfer/kernel op, including the first try
  double backoff_base_s = 1e-4;   // wait before the 2nd attempt...
  double backoff_multiplier = 2;  // ...growing geometrically
  int gpu_failures_before_degrade = 3;  // per request, across all GPU stages
  // Decorrelated-jitter backoff (wait = base + u·(3·prev − base), capped):
  // spreads retries of correlated faults apart instead of synchronizing them
  // on the geometric ladder. Off by default — disabled, the service draws
  // nothing from the jitter stream and behaves byte-identically to before
  // the knob existed. The draws come from a dedicated deterministic PRNG
  // (jitter_seed), so same-seed replays stay bit-identical.
  bool decorrelated_jitter = false;
  double backoff_cap_s = 5e-2;        // ceiling on one jittered wait
  std::uint64_t jitter_seed = 0x6a17ULL;
};

class SpgemmService {
 public:
  struct Config {
    std::size_t plan_cache_capacity = 64;
    bool keep_inputs_resident = true;  // uploaded operands stay on the device
    bool use_workspace_pool = true;
    FaultPlan fault_plan;     // default: fault-free
    RecoveryPolicy recovery;
    std::size_t admission_capacity = 0;  // max pending; 0 = unbounded
    double default_deadline_s = 0;       // per-request default; 0 = none
    // Batched wave executor (runtime/wave.hpp, docs/runtime.md): drain()
    // groups requests sharing operands (by content signature) into waves,
    // uploads each distinct operand once per wave under a refcount,
    // coalesces the wave's H2D transfers into one block reservation, and
    // batches same-wave Phase II GPU launches. Output bits are unchanged;
    // disabled (the default), the service behaves — reports included —
    // byte-identically to before the executor existed.
    WaveConfig wave;
    // Critical-path profiler (obs/critpath.hpp, docs/observability.md): every
    // drain records placement provenance (runtime/placement.hpp), checks that
    // per-resource busy time equals the sum of attributed placements, and
    // embeds a CritPathReport — per-request latency decomposition plus the
    // batch critical chain attributing each makespan second to
    // cpu/gpu/h2d/d2h/idle — in the BatchReport, with critpath.* metrics and
    // kCritPath trace instants. Pure observability: placements and outputs
    // are unchanged either way.
    bool critpath = true;
    // Online autotuning (src/tune/, docs/tuning.md): measured-feedback
    // refinement of cached thresholds plus cost-model calibration. Off by
    // default — a disabled tuner leaves every request, report and metric
    // exactly as they were without the subsystem. Tuning never changes
    // output bits: it only re-selects among threshold candidates, and every
    // candidate computes the same product.
    TuneConfig tune;
    // Optional structured tracing (trace/trace.hpp). The recorder must
    // outlive the service; it records nothing until enable()d. Every
    // timeline placement, device attempt outcome, retry, degradation and
    // cancellation lands in it with request identity — export with
    // trace/perfetto_export.hpp or render with trace/flame.hpp.
    TraceRecorder* trace = nullptr;
    // Optional workload flight recorder (obs/recorder.hpp): every drained
    // request appends one checksum-chained JSONL record (signature pair,
    // submit time, deadline, pinned thresholds, outcome, stage totals) —
    // the input of the trace-replay harness (obs/replay.hpp). Must outlive
    // the service. nullptr = off, with zero behavioural difference.
    WorkloadRecorder* recorder = nullptr;
    // Optional SLO monitor (obs/slo.hpp): every drained request is judged
    // against its objectives; `slo.*` instruments land wherever the monitor
    // is bound (bind it to this service's metrics() to keep one registry).
    // Must outlive the service. nullptr = off.
    SloMonitor* slo = nullptr;
  };

  SpgemmService(const HeteroPlatform& platform, ThreadPool& pool,
                Config config);
  SpgemmService(const HeteroPlatform& platform, ThreadPool& pool)
      : SpgemmService(platform, pool, Config{}) {}

  /// Enqueue; returns the request id (drain-order index). The matrices must
  /// outlive the next drain() and must not be modified. Throws
  /// InvalidArgumentError on a malformed request (null/degenerate operands,
  /// incompatible shapes, negative thresholds/deadline/queue knobs) and
  /// AdmissionError when the bounded admission queue is full (the shed is
  /// counted in the next BatchReport).
  std::size_t submit(SpgemmRequest request);

  std::size_t pending() const { return queue_.size(); }

  /// Execute every pending request over the pipelined timelines. Requests
  /// are admitted FIFO; stages are placed by the insertion scheduler.
  BatchResult drain();

  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  WorkspacePool& workspace_pool() { return workspace_; }
  const FaultInjector& fault_injector() const { return injector_; }
  const ThresholdTuner& tuner() const { return tuner_; }
  const CalibrationStore& calibration() const { return calib_; }
  // Mutable tuner/calibration access for snapshot rehydration (src/shard/):
  // a restarted shard restores both stores before serving traffic.
  ThresholdTuner& tuner() { return tuner_; }
  CalibrationStore& calibration() { return calib_; }

  /// Convergence/calibration snapshot of the online autotuner: entries in
  /// first-seen order, measured variants, promotion versions, per-device
  /// correction factors. Deterministic — same-seed replays render
  /// byte-identical JSON.
  TuneReport tune_report() const;

  /// Lifetime-cumulative instruments ("service.*", "plan_cache.*"): request
  /// outcome counters, fault/retry counters, a latency histogram, last-drain
  /// busy gauges. BatchReport stays the per-drain snapshot.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Drop device residency and cached host-side signatures (e.g. after the
  /// caller mutated or freed previously-submitted matrices).
  void invalidate_inputs();

 private:
  const MatrixSignature& signature_of(const CsrMatrix* m);

  const HeteroPlatform& platform_;
  ThreadPool& pool_;
  Config config_;
  PlanCache plan_cache_;
  WorkspacePool workspace_;
  FaultInjector injector_;
  ThresholdTuner tuner_;
  CalibrationStore calib_;
  Xoshiro256 jitter_rng_;  // consumed only when decorrelated_jitter is on
  std::vector<SpgemmRequest> queue_;
  std::size_t next_id_ = 0;
  MetricsRegistry metrics_;
  // BatchReport::shed is the per-drain delta of the lifetime-cumulative
  // "service.shed" counter; this is the counter's value at the last drain.
  std::int64_t shed_at_last_drain_ = 0;
  // Host-side memos, keyed by operand identity (see submit() contract).
  std::unordered_map<const CsrMatrix*, MatrixSignature> signatures_;
  // Device residency: operand → checksum of the uploaded copy.
  std::unordered_map<const CsrMatrix*, std::uint64_t> resident_;
  // Wave-mode residency, keyed by content signature so pointer-distinct but
  // bit-identical operands share one device copy. `refs` counts the
  // not-yet-finished users in the current drain; with
  // keep_inputs_resident == false an entry is evicted when refs reaches
  // zero. Kept separate from the pointer-keyed map above so enabling the
  // wave flag cannot change the legacy path's residency decisions.
  struct WaveResident {
    std::uint64_t checksum = 0;
    int refs = 0;
  };
  std::unordered_map<MatrixSignature, WaveResident, MatrixSignatureHash>
      wave_resident_;
};

}  // namespace hh
