// SpgemmService: a pipelined multi-query SpGEMM execution engine.
//
// The one-shot driver (run_hh_cpu) charges each request serially:
// transfer → compute → transfer. A service under sustained traffic does
// better: while request k computes, request k+1's operands are already
// crossing the H2D channel and its Phase I analysis can run in a CPU idle
// window; request k's result tuples cross D2H while k+1 occupies the GPU.
// drain() schedules each request's stages (core/hh_stages.hpp) on four
// independently-clocked resource timelines — CPU, GPU, H2D, D2H — with
// dependence-respecting insertion scheduling (runtime/timeline.hpp).
//
// Steady-state accelerators, all optional and all output-preserving:
//  - partition-plan cache keyed by sparsity signatures (runtime/plan_cache)
//    — a hit skips threshold identification;
//  - operand residency — a matrix already uploaded in this service's
//    lifetime is not re-shipped (device memory is retained across requests);
//  - workspace pooling (spgemm/workspace.hpp) — SPA accumulators and tuple
//    buffers are recycled instead of reallocated per request.
//
// Every request's output matrix is bit-identical to what a cold, serial
// run_hh_cpu call produces; only the clock bookkeeping differs. Submitted
// matrices must stay alive and unmodified until drain() returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/hh_cpu.hpp"
#include "core/report.hpp"
#include "device/platform.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/timeline.hpp"
#include "sparse/csr.hpp"
#include "spgemm/workspace.hpp"
#include "util/thread_pool.hpp"

namespace hh {

struct SpgemmRequest {
  const CsrMatrix* a = nullptr;
  const CsrMatrix* b = nullptr;  // nullptr = self product (B is A)
  HhCpuOptions options;          // explicit thresholds bypass the plan cache
  std::string label;
};

/// Per-request accounting: the familiar RunReport (phase durations) plus the
/// pipeline view — queue wait, absolute stage spans, cache/residency flags.
struct RequestReport {
  RunReport run;  // run.total_s is the request latency
  std::size_t request_id = 0;
  std::string label;
  bool plan_cache_hit = false;
  bool inputs_resident = false;  // no bytes crossed H2D for this request
  double submit_s = 0;
  double start_s = 0;       // first stage begins
  double finish_s = 0;      // merge ends
  double queue_wait_s = 0;  // start_s - submit_s
  double latency_s = 0;     // finish_s - submit_s
  std::vector<StageSpan> spans;

  std::string to_string() const;
  std::string to_json() const;
};

/// Batch-level accounting across one drain().
struct BatchReport {
  std::size_t requests = 0;
  double makespan_s = 0;             // last finish over all requests
  double sequential_estimate_s = 0;  // first-order back-to-back serial cost
                                     // of the same work (cold transfers,
                                     // cold identification)
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double cpu_busy_s = 0;  // occupied time per resource timeline
  double gpu_busy_s = 0;
  double h2d_busy_s = 0;
  double d2h_busy_s = 0;
  PlanCache::Stats plan_cache;
  WorkspacePool::Stats workspace;

  std::string to_string() const;
  std::string to_json() const;
};

struct BatchResult {
  std::vector<RunResult> results;  // submit order; results[i].report is the
                                   // same RunReport as requests[i].run
  std::vector<RequestReport> requests;
  BatchReport batch;
};

class SpgemmService {
 public:
  struct Config {
    std::size_t plan_cache_capacity = 64;
    bool keep_inputs_resident = true;  // uploaded operands stay on the device
    bool use_workspace_pool = true;
  };

  SpgemmService(const HeteroPlatform& platform, ThreadPool& pool,
                Config config);
  SpgemmService(const HeteroPlatform& platform, ThreadPool& pool)
      : SpgemmService(platform, pool, Config{}) {}

  /// Enqueue; returns the request id (drain-order index). The matrices must
  /// outlive the next drain() and must not be modified.
  std::size_t submit(SpgemmRequest request);

  std::size_t pending() const { return queue_.size(); }

  /// Execute every pending request over the pipelined timelines. Requests
  /// are admitted FIFO; stages are placed by the insertion scheduler.
  BatchResult drain();

  PlanCache& plan_cache() { return plan_cache_; }
  WorkspacePool& workspace_pool() { return workspace_; }

  /// Drop device residency and cached host-side signatures (e.g. after the
  /// caller mutated or freed previously-submitted matrices).
  void invalidate_inputs();

 private:
  const MatrixSignature& signature_of(const CsrMatrix* m);

  const HeteroPlatform& platform_;
  ThreadPool& pool_;
  Config config_;
  PlanCache plan_cache_;
  WorkspacePool workspace_;
  std::vector<SpgemmRequest> queue_;
  std::size_t next_id_ = 0;
  // Host-side memos, keyed by operand identity (see submit() contract).
  std::unordered_map<const CsrMatrix*, MatrixSignature> signatures_;
  std::unordered_set<const CsrMatrix*> resident_;
};

}  // namespace hh
