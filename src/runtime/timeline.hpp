// Independently-clocked resource timelines for the pipelined runtime.
//
// The simulated platform has four channels that can make progress
// concurrently: the CPU, the GPU, and the two directions of the full-duplex
// PCIe link. DESIGN.md's single overlap() accounting collapses them into one
// request-local clock; the runtime instead keeps one ResourceTimeline per
// channel so stages of *different* requests overlap wherever their
// dependences allow (software pipelining).
//
// reserve() is an insertion scheduler: a stage is placed into the earliest
// idle window on its resource that fits entirely and starts no earlier than
// its dependences allow — so, e.g., request k+1's Phase I analysis can run
// on the CPU inside the window where request k's tuples are still crossing
// the D2H channel. Everything is deterministic.
//
// When a TraceRecorder is attached, every placement is recorded with both
// the dependence-allowed earliest start and the granted start, so pipeline
// bubbles are directly visible in the exported trace
// (docs/observability.md).
#pragma once

#include <algorithm>
#include <vector>

#include "runtime/placement.hpp"
#include "runtime/resource.hpp"
#include "trace/trace.hpp"

namespace hh {

class ResourceTimeline {
 public:
  explicit ResourceTimeline(Resource r = Resource::kCpu,
                            TraceRecorder* trace = nullptr)
      : resource_(r), trace_(trace) {}

  /// Attach a placement-provenance log: every positive-duration reservation
  /// from here on is appended with the log's current request/wave context
  /// (obs/critpath.* consumes it for latency attribution).
  void attach_placements(PlacementLog* log) { placements_ = log; }

  /// Clock after the last scheduled stage.
  double now() const { return now_; }

  /// Total occupied time (excludes idle windows).
  double busy() const { return busy_; }

  /// The earliest instant >= `earliest` at which this resource is not
  /// occupied: `earliest` itself past the frontier, the first idle window
  /// still open at `earliest`, or the frontier.
  double available_at(double earliest) const {
    if (earliest >= now_) return earliest;
    for (const Gap& g : gaps_) {
      if (g.end >= earliest) return std::max(g.start, earliest);
    }
    return now_;
  }

  /// Schedule a stage of `duration` seconds starting no earlier than
  /// `earliest`: placed into the first idle window that fits, else appended
  /// at the end (recording the idle window this opens, if any). A
  /// non-positive duration occupies nothing and returns a zero-length span
  /// clamped to the resource's true availability — never inside an occupied
  /// window — so traces stay ordered.
  StageSpan reserve(const char* stage, double earliest, double duration) {
    if (duration <= 0) {
      const double at = available_at(earliest);
      return {stage, resource_, at, at};
    }
    for (std::size_t i = 0; i < gaps_.size(); ++i) {
      const double start = std::max(gaps_[i].start, earliest);
      if (start + duration <= gaps_[i].end) {
        const Gap g = gaps_[i];
        gaps_.erase(gaps_.begin() + static_cast<std::ptrdiff_t>(i));
        if (g.start < start) {
          gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i),
                       Gap{g.start, start});
          ++i;
        }
        if (start + duration < g.end) {
          gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i),
                       Gap{start + duration, g.end});
        }
        busy_ += duration;
        return record(stage, earliest, start, start + duration);
      }
    }
    const double start = std::max(now_, earliest);
    if (start > now_) gaps_.push_back({now_, start});
    now_ = start + duration;
    busy_ += duration;
    return record(stage, earliest, start, now_);
  }

  /// The earliest instant >= `earliest` at which `total` contiguous seconds
  /// fit on this resource: the first idle window that admits the whole
  /// block, else the frontier. Sub-reserving segments back-to-back from the
  /// returned instant (each with `earliest` = the previous segment's end)
  /// keeps them inside that window with no idle time between them — no
  /// earlier gap can claim a segment, because every earlier gap closes at
  /// or before the block's start.
  double block_start(double earliest, double total) const {
    if (total <= 0) return available_at(earliest);
    for (const Gap& g : gaps_) {
      const double start = std::max(g.start, earliest);
      if (start + total <= g.end) return start;
    }
    return std::max(now_, earliest);
  }

  /// One named segment of a wave-scoped block reservation.
  struct BlockSegment {
    const char* stage;
    double duration;
  };

  /// Wave-scoped reservation: place `segments` contiguously, in order, as
  /// one block starting no earlier than `earliest` — the insertion
  /// scheduler treats the block as a unit (a wave's coalesced H2D uploads
  /// stream back-to-back on one PCIe arbitration). Non-positive segments
  /// occupy nothing and pin a zero-length span at the running cursor.
  std::vector<StageSpan> reserve_block(const std::vector<BlockSegment>& segments,
                                       double earliest) {
    double total = 0;
    for (const BlockSegment& s : segments) {
      if (s.duration > 0) total += s.duration;
    }
    std::vector<StageSpan> spans;
    spans.reserve(segments.size());
    double cursor = block_start(earliest, total);
    for (const BlockSegment& s : segments) {
      if (s.duration <= 0) {
        spans.push_back({s.stage, resource_, cursor, cursor});
        continue;
      }
      const StageSpan placed = reserve(s.stage, cursor, s.duration);
      cursor = placed.end_s;
      spans.push_back(placed);
    }
    return spans;
  }

 private:
  struct Gap {
    double start;
    double end;
  };

  StageSpan record(const char* stage, double requested, double start,
                   double end) {
    if (placements_ != nullptr) {
      placements_->append(stage, resource_, requested, start, end);
    }
    if (trace_ != nullptr) {
      const bool transfer =
          resource_ == Resource::kH2D || resource_ == Resource::kD2H;
      trace_->span(transfer ? TraceCategory::kTransfer
                            : TraceCategory::kCompute,
                   stage, resource_, start, end, requested);
    }
    return {stage, resource_, start, end};
  }

  Resource resource_;
  TraceRecorder* trace_ = nullptr;
  PlacementLog* placements_ = nullptr;
  std::vector<Gap> gaps_;  // idle windows, ascending, disjoint
  double now_ = 0;
  double busy_ = 0;
};

}  // namespace hh
