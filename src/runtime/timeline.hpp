// Independently-clocked resource timelines for the pipelined runtime.
//
// The simulated platform has four channels that can make progress
// concurrently: the CPU, the GPU, and the two directions of the full-duplex
// PCIe link. DESIGN.md's single overlap() accounting collapses them into one
// request-local clock; the runtime instead keeps one ResourceTimeline per
// channel so stages of *different* requests overlap wherever their
// dependences allow (software pipelining).
//
// reserve() is an insertion scheduler: a stage is placed into the earliest
// idle window on its resource that fits entirely and starts no earlier than
// its dependences allow — so, e.g., request k+1's Phase I analysis can run
// on the CPU inside the window where request k's tuples are still crossing
// the D2H channel. Everything is deterministic.
//
// When a TraceRecorder is attached, every placement is recorded with both
// the dependence-allowed earliest start and the granted start, so pipeline
// bubbles are directly visible in the exported trace
// (docs/observability.md).
#pragma once

#include <algorithm>
#include <vector>

#include "runtime/resource.hpp"
#include "trace/trace.hpp"

namespace hh {

class ResourceTimeline {
 public:
  explicit ResourceTimeline(Resource r = Resource::kCpu,
                            TraceRecorder* trace = nullptr)
      : resource_(r), trace_(trace) {}

  /// Clock after the last scheduled stage.
  double now() const { return now_; }

  /// Total occupied time (excludes idle windows).
  double busy() const { return busy_; }

  /// The earliest instant >= `earliest` at which this resource is not
  /// occupied: `earliest` itself past the frontier, the first idle window
  /// still open at `earliest`, or the frontier.
  double available_at(double earliest) const {
    if (earliest >= now_) return earliest;
    for (const Gap& g : gaps_) {
      if (g.end >= earliest) return std::max(g.start, earliest);
    }
    return now_;
  }

  /// Schedule a stage of `duration` seconds starting no earlier than
  /// `earliest`: placed into the first idle window that fits, else appended
  /// at the end (recording the idle window this opens, if any). A
  /// non-positive duration occupies nothing and returns a zero-length span
  /// clamped to the resource's true availability — never inside an occupied
  /// window — so traces stay ordered.
  StageSpan reserve(const char* stage, double earliest, double duration) {
    if (duration <= 0) {
      const double at = available_at(earliest);
      return {stage, resource_, at, at};
    }
    for (std::size_t i = 0; i < gaps_.size(); ++i) {
      const double start = std::max(gaps_[i].start, earliest);
      if (start + duration <= gaps_[i].end) {
        const Gap g = gaps_[i];
        gaps_.erase(gaps_.begin() + static_cast<std::ptrdiff_t>(i));
        if (g.start < start) {
          gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i),
                       Gap{g.start, start});
          ++i;
        }
        if (start + duration < g.end) {
          gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i),
                       Gap{start + duration, g.end});
        }
        busy_ += duration;
        return record(stage, earliest, start, start + duration);
      }
    }
    const double start = std::max(now_, earliest);
    if (start > now_) gaps_.push_back({now_, start});
    now_ = start + duration;
    busy_ += duration;
    return record(stage, earliest, start, now_);
  }

 private:
  struct Gap {
    double start;
    double end;
  };

  StageSpan record(const char* stage, double requested, double start,
                   double end) {
    if (trace_ != nullptr) {
      const bool transfer =
          resource_ == Resource::kH2D || resource_ == Resource::kD2H;
      trace_->span(transfer ? TraceCategory::kTransfer
                            : TraceCategory::kCompute,
                   stage, resource_, start, end, requested);
    }
    return {stage, resource_, start, end};
  }

  Resource resource_;
  TraceRecorder* trace_ = nullptr;
  std::vector<Gap> gaps_;  // idle windows, ascending, disjoint
  double now_ = 0;
  double busy_ = 0;
};

}  // namespace hh
