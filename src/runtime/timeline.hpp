// Independently-clocked resource timelines for the pipelined runtime.
//
// The simulated platform has four channels that can make progress
// concurrently: the CPU, the GPU, and the two directions of the full-duplex
// PCIe link. DESIGN.md's single overlap() accounting collapses them into one
// request-local clock; the runtime instead keeps one ResourceTimeline per
// channel so stages of *different* requests overlap wherever their
// dependences allow (software pipelining).
//
// reserve() is an insertion scheduler: a stage is placed into the earliest
// idle window on its resource that fits entirely and starts no earlier than
// its dependences allow — so, e.g., request k+1's Phase I analysis can run
// on the CPU inside the window where request k's tuples are still crossing
// the D2H channel. Everything is deterministic.
#pragma once

#include <algorithm>
#include <vector>

namespace hh {

enum class Resource { kCpu = 0, kGpu = 1, kH2D = 2, kD2H = 3 };
inline constexpr int kResourceCount = 4;

inline const char* to_string(Resource r) {
  switch (r) {
    case Resource::kCpu: return "cpu";
    case Resource::kGpu: return "gpu";
    case Resource::kH2D: return "h2d";
    case Resource::kD2H: return "d2h";
  }
  return "?";
}

/// One scheduled occupancy of a resource.
struct StageSpan {
  const char* stage = "";  // static stage name
  Resource resource = Resource::kCpu;
  double start_s = 0;
  double end_s = 0;

  double duration_s() const { return end_s - start_s; }
};

class ResourceTimeline {
 public:
  explicit ResourceTimeline(Resource r = Resource::kCpu) : resource_(r) {}

  /// Clock after the last scheduled stage.
  double now() const { return now_; }

  /// Total occupied time (excludes idle windows).
  double busy() const { return busy_; }

  /// Schedule a stage of `duration` seconds starting no earlier than
  /// `earliest`: placed into the first idle window that fits, else appended
  /// at the end (recording the idle window this opens, if any). A
  /// non-positive duration occupies nothing and returns a zero-length span
  /// at `earliest`.
  StageSpan reserve(const char* stage, double earliest, double duration) {
    if (duration <= 0) {
      return {stage, resource_, earliest, earliest};
    }
    for (std::size_t i = 0; i < gaps_.size(); ++i) {
      const double start = std::max(gaps_[i].start, earliest);
      if (start + duration <= gaps_[i].end) {
        const Gap g = gaps_[i];
        gaps_.erase(gaps_.begin() + static_cast<std::ptrdiff_t>(i));
        if (g.start < start) {
          gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i),
                       Gap{g.start, start});
          ++i;
        }
        if (start + duration < g.end) {
          gaps_.insert(gaps_.begin() + static_cast<std::ptrdiff_t>(i),
                       Gap{start + duration, g.end});
        }
        busy_ += duration;
        return {stage, resource_, start, start + duration};
      }
    }
    const double start = std::max(now_, earliest);
    if (start > now_) gaps_.push_back({now_, start});
    now_ = start + duration;
    busy_ += duration;
    return {stage, resource_, start, now_};
  }

 private:
  struct Gap {
    double start;
    double end;
  };

  Resource resource_;
  std::vector<Gap> gaps_;  // idle windows, ascending, disjoint
  double now_ = 0;
  double busy_ = 0;
};

}  // namespace hh
