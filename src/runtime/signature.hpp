// Sparsity signature: the key of the runtime's partition-plan cache.
//
// Threshold identification (Phase I of HH-CPU) depends only on the row-size
// *distribution* of the operands — exactly the quantities the paper keys its
// analysis on: rows, nnz, the fitted power-law exponent α (Table I), and the
// row-density histogram shape (Fig. 1/5). Two matrices with identical
// signatures are structurally identical for planning purposes, so a service
// stream that repeatedly multiplies the same (or same-shaped) matrices can
// reuse the identified thresholds instead of re-running the sweep.
//
// The digest folds the full log2 row-size histogram, so any change to the
// degree distribution — not just to the aggregate (rows, nnz, α) — produces
// a different key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace hh {

struct MatrixSignature {
  index_t rows = 0;
  index_t cols = 0;
  std::int64_t nnz = 0;
  std::int64_t alpha_milli = 0;     // fitted α × 1000, rounded (0 = no tail)
  std::uint64_t degree_digest = 0;  // FNV-1a over the log2 row-size histogram

  bool operator==(const MatrixSignature&) const = default;
};

/// Deterministic: the same matrix always produces the same signature.
MatrixSignature matrix_signature(const CsrMatrix& m);

std::string to_string(const MatrixSignature& s);

struct MatrixSignatureHash {
  std::size_t operator()(const MatrixSignature& s) const;
};

}  // namespace hh
