// Batched wave executor support: wave formation and wave accounting.
//
// A service under repeated-operand traffic (the dominant pattern the shard
// ring's signature affinity creates) pays redundant PCIe traffic and
// per-request kernel-launch overhead when every request is scheduled
// independently. The wave executor (SpgemmService::Config::wave,
// docs/runtime.md) groups drained requests that share an operand — by
// content signature, not pointer identity — into waves:
//   - each distinct operand is uploaded once per wave and held under a
//     refcount until its last user finishes (cross-request residency dedup
//     with refcounted eviction);
//   - the wave's uploads coalesce into one contiguous H2D block reservation
//     (ResourceTimeline::reserve_block): the link latency is paid by the
//     lead transfer only (PcieChannel::*_batched);
//   - same-wave Phase II GPU kernels are batched: the first healthy launch
//     pays the kernel-launch overhead, followers skip it
//     (GpuSim::kernel_attempt_batched).
// Output bits never change: numeric work still executes host-side with the
// same decomposition, so every request stays bit-identical to the serial
// reference. With `enabled == false` none of this code runs and the service
// behaves — reports included — byte-identically to before the knob existed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hh {

/// Knobs of the batched wave executor (off by default).
struct WaveConfig {
  bool enabled = false;
  // Requests per wave. The cap is strict — max_requests == 1 degenerates to
  // single-request waves (the legacy schedule plus wave bookkeeping).
  // 0 = unbounded.
  std::size_t max_requests = 16;
  // Distinct operands (by content signature) per wave: bounds the device
  // memory a wave pins. A request whose operands are all already in the
  // wave adds no pressure and joins past this cap. 0 = unbounded.
  std::size_t max_operands = 8;
};

/// Per-drain wave accounting, reported in BatchReport (and aggregated per
/// shard) only when the executor is enabled.
struct WaveStats {
  std::int64_t waves = 0;
  std::int64_t wave_requests = 0;      // requests executed through waves
  std::int64_t uploads = 0;            // distinct-operand uploads performed
  std::int64_t deduped_uploads = 0;    // same-wave uses served by dedup
  std::int64_t coalesced_uploads = 0;  // uploads riding a shared reservation
                                       // behind the lead (latency skipped)
  std::int64_t batched_launches = 0;   // GPU launches that skipped overhead
  std::int64_t evictions = 0;          // refcount-zero residency evictions
  std::int64_t h2d_bytes = 0;          // payload bytes of successful uploads

  void accumulate(const WaveStats& o);
  std::string to_json() const;
};

/// Half-open request-index range [begin, end) of one wave, in submit order.
struct WaveBounds {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Deterministic wave formation over the drain queue, in submit order.
/// `operand_ids[i]` are request i's operands as dense ids (two entries; a
/// self product repeats the same id). A request joins the current wave when
/// the wave is empty, or when it fits the request cap and either introduces
/// no new operand or keeps the distinct-operand count within the operand
/// cap; otherwise it starts a new wave. Every request lands in exactly one
/// wave and waves partition [0, n) contiguously.
std::vector<WaveBounds> form_waves(
    const std::vector<std::array<std::uint32_t, 2>>& operand_ids,
    std::size_t max_requests, std::size_t max_operands);

}  // namespace hh
