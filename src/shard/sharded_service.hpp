// ShardedSpgemmService: a fault-tolerant group of SpgemmService shards.
//
// One SpgemmService recovers from *device*-level faults (kernel aborts,
// PCIe corruption) inside a request. This layer recovers from *service*-
// level faults — a whole shard dying mid-batch — without losing a single
// request or changing a single output bit:
//
//  - Routing. Requests are consistent-hashed by their plan-cache key
//    (signature(A), signature(B)) onto `shards` SpgemmService instances
//    (shard/ring.hpp): same-shaped products keep landing on the same shard
//    and keep hitting its plan cache, operand residency and tuner state.
//  - Health + circuit breaker. Each shard's request outcomes feed a monitor:
//    `HealthPolicy::consecutive_failures` straight failures or
//    `HealthPolicy::deadline_misses` total deadline misses trip the shard's
//    breaker open (no traffic). After `open_rounds` rounds it goes half-open
//    and receives up to `half_open_probes` probe requests; a clean probe
//    round closes it, a failed probe re-opens it.
//  - Failover. drain() executes in rounds: each routable shard receives up
//    to `round_quantum` requests, then the group consumes one kShard fault
//    decision per shard slot (in slot order) from its deterministic
//    injector, then the surviving shards drain. A shard killed this round
//    loses its in-flight submissions — the group re-queues them at the
//    front and the ring re-routes them to the dead shard's successor next
//    round (operands re-upload there naturally: residency died with the
//    shard). A request that cannot be placed this round (its shard is
//    saturated, open, or nothing is routable) is deferred, never dropped;
//    the only way the group refuses work is a typed AdmissionError at
//    submit() when `group_capacity` is reached.
//  - Restart + rehydration. A killed shard restarts after
//    `restart_after_rounds` rounds with a fresh service (derived per-shard
//    seeds, fault injector back at op 0) whose plan cache, tuner (PRNG
//    position included) and calibration are restored from the last
//    checksummed snapshot (shard/snapshot.hpp) — minus any key the group's
//    quarantine ledger still holds (TTL `quarantine_ttl_rounds` rounds), so
//    a plan quarantined after the snapshot cannot be resurrected. A
//    snapshot failing checksum verification is rejected: cold start. A
//    restarted shard re-enters through the half-open probe path.
//
// The kShard decision stream is one op per shard slot per round, slot order
// — op index = (round - 1) * shards + shard for the group's round counter
// starting at 1 — so Config::shard_faults.trigger_ops can kill an exact
// shard at an exact round. Everything in this layer is deterministic: same
// seeds and submission order replay to bit-identical outputs and
// byte-identical group reports, kills, restarts and failovers included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "runtime/service.hpp"
#include "shard/report.hpp"
#include "shard/ring.hpp"
#include "shard/snapshot.hpp"

namespace hh {

/// Thresholds the per-shard health monitor trips the breaker on.
struct HealthPolicy {
  int consecutive_failures = 3;  // straight failed requests → open
  int deadline_misses = 8;       // total misses this incarnation → open
  int open_rounds = 2;           // rounds open before the half-open probe
  std::size_t half_open_probes = 1;  // requests routed while half-open
};

class ShardedSpgemmService {
 public:
  struct Config {
    std::size_t shards = 4;
    int virtual_nodes = 16;       // ring points per shard
    std::uint64_t seed = 0x5a4dULL;  // ring placement, kill schedule, and
                                     // per-shard derived seeds
    std::size_t round_quantum = 8;   // requests per closed shard per round
    std::size_t group_capacity = 0;  // max pending at submit; 0 = unbounded
    HealthPolicy health;
    FaultSpec shard_faults;          // kShard kill schedule (see header)
    int restart_after_rounds = 2;    // rounds a killed shard stays down
    std::uint64_t quarantine_ttl_rounds = 4;  // ledger entry lifetime
    // Template for every shard's SpgemmService. Per-shard seeds (fault
    // plan, tuner, retry jitter) are derived from Config::seed and the
    // shard index; the template's admission capacity and observability
    // hooks (trace, recorder, slo) are overridden — the group owns
    // admission and observability, feeding them on the group clock.
    SpgemmService::Config shard;
    // Group-level tracing: kShard instants on track 0, plus every request's
    // stage spans re-recorded on the group clock under track shard+1 (the
    // Perfetto exporter renders each shard as its own process, so
    // per-resource rows never falsely overlap across shards).
    TraceRecorder* trace = nullptr;
    // Group-level flight recorder / SLO monitor (obs/): fed once per
    // request as results map back to the group clock, with the executing
    // shard stamped on each record. Must outlive the group.
    WorkloadRecorder* recorder = nullptr;
    SloMonitor* slo = nullptr;
  };

  ShardedSpgemmService(const HeteroPlatform& platform, ThreadPool& pool,
                       Config config);

  /// Enqueue; returns the group request id. Throws InvalidArgumentError on
  /// a malformed request and AdmissionError when group_capacity is reached
  /// (counted as shed in the next GroupBatchReport).
  std::size_t submit(SpgemmRequest request);

  std::size_t pending() const { return queue_.size(); }

  /// Execute every pending request across the shard group (rounds of
  /// route → kill decisions → drain; see the header comment). Results come
  /// back in group submit order regardless of which shard — or how many
  /// shards, after failover — executed each request.
  GroupResult drain();

  /// Per-shard tuner/calibration state (index == shard; a dead shard
  /// contributes a default report). Deterministic JSON, replay-stable.
  GroupTuneReport tune_report() const;

  std::size_t shards() const { return shards_.size(); }
  const HashRing& ring() const { return ring_; }
  BreakerState breaker_state(std::size_t shard) const;
  bool alive(std::size_t shard) const { return shards_[shard].alive; }
  /// Rounds executed over the group's lifetime (quarantine TTL clock).
  std::uint64_t rounds() const { return round_; }

  /// The shard's live service; nullptr while the shard is dead.
  SpgemmService* shard_service(std::size_t shard) {
    return shards_[shard].service.get();
  }
  /// The last snapshot captured for the shard; nullptr before the first
  /// capture. Mutable so tests can tamper with it and exercise checksum
  /// rejection.
  ShardSnapshot* stored_snapshot(std::size_t shard) {
    return shards_[shard].has_snapshot ? &shards_[shard].snapshot : nullptr;
  }

  /// Group-lifetime instruments ("shard.*"): kills, restarts, failovers,
  /// deferrals, breaker transitions, rehydrations, shed, rounds.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct QuarantineEntry {
    PlanKey key;
    std::uint64_t expires_round = 0;  // inclusive: quarantined through this
  };

  struct Shard {
    std::unique_ptr<SpgemmService> service;
    BreakerState breaker = BreakerState::kClosed;
    bool alive = true;
    int consecutive_failures = 0;
    int deadline_misses = 0;
    int open_rounds_left = 0;
    int restart_countdown = 0;
    std::size_t quarantine_cursor = 0;  // read position in the service's log
    std::vector<QuarantineEntry> ledger;
    bool has_snapshot = false;
    ShardSnapshot snapshot;
    ShardReport report;  // reset per group drain
  };

  SpgemmService::Config shard_config(std::size_t shard) const;
  void restart_shard(std::size_t shard, double now_s);
  void kill_shard(std::size_t shard, double now_s);
  void open_breaker(Shard& sh, double now_s);
  void harvest_quarantines(std::size_t shard);
  std::uint64_t request_hash(const SpgemmRequest& request);
  const MatrixSignature& signature_of(const CsrMatrix* m);

  const HeteroPlatform& platform_;
  ThreadPool& pool_;
  Config config_;
  HashRing ring_;
  FaultInjector injector_;  // kShard decisions only
  std::vector<Shard> shards_;
  std::vector<SpgemmRequest> queue_;
  std::vector<std::uint64_t> queue_hashes_;  // ring position per queued item
  std::size_t next_id_ = 0;
  std::uint64_t round_ = 0;
  MetricsRegistry metrics_;
  std::int64_t shed_at_last_drain_ = 0;
  std::unordered_map<const CsrMatrix*, MatrixSignature> signatures_;
};

}  // namespace hh
