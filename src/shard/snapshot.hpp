// Checksummed shard state snapshots, for restart rehydration.
//
// A killed shard loses everything it learned: its plan cache, its tuner
// variant tables (including the epsilon-greedy PRNG position) and its cost-
// model calibration. The group periodically captures that state into a
// ShardSnapshot; on restart the snapshot is verified against its FNV-1a
// checksum and restored, so a restarted shard resumes with warm plans and —
// because the tuner PRNG state is part of the snapshot — continues the exact
// decision stream the killed shard would have produced. A snapshot that
// fails verification is rejected and the shard cold-starts instead:
// rehydrating corrupt state is strictly worse than rehydrating none.
//
// The checksum is chained field by field (fnv1a64 over each scalar's bytes
// in a fixed order), never over whole structs — struct padding bytes are
// indeterminate and would make verification flaky.
//
// What is NOT in a snapshot: operand residency (the device memory is gone —
// operands genuinely must be re-uploaded after a restart) and any in-flight
// request state (the group re-routes those at kill time; see
// sharded_service.hpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/plan_cache.hpp"
#include "tune/calibration.hpp"
#include "tune/tuner.hpp"

namespace hh {

class SpgemmService;  // runtime/service.hpp

struct ShardSnapshot {
  std::size_t shard = 0;
  std::uint64_t round = 0;  // group round the snapshot was taken at
  std::vector<std::pair<PlanKey, CachedPlan>> plans;  // MRU-first
  TunerSnapshot tuner;
  CalibrationSnapshot calibration;
  std::uint64_t checksum = 0;  // over every field above, in declaration order

  /// Recompute the chained FNV-1a digest of the payload fields (everything
  /// except `checksum` itself).
  std::uint64_t compute_checksum() const;

  bool valid() const { return checksum == compute_checksum(); }
};

/// Capture `service`'s rehydratable state. The returned snapshot carries a
/// freshly computed checksum.
ShardSnapshot take_shard_snapshot(std::size_t shard, std::uint64_t round,
                                  const SpgemmService& service);

/// Restore `snap` into `service`, dropping any plan-cache or tuner entry
/// whose key is in `quarantined` — a plan quarantined after the snapshot was
/// taken must not be resurrected by rehydration. The snapshot must be
/// valid(); the caller decides what to do with an invalid one (cold start).
void restore_shard_snapshot(const ShardSnapshot& snap,
                            const std::vector<PlanKey>& quarantined,
                            SpgemmService& service);

}  // namespace hh
