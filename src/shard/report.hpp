// Merged group-level reporting for the sharded service.
//
// One group drain produces a GroupBatchReport: batch-style aggregates over
// every request the group executed (whichever shard ran it), plus one
// ShardReport row per shard with its routing, breaker, failover and
// restart/rehydration accounting. tune_report() produces a GroupTuneReport:
// the per-shard TuneReports side by side. Rendering follows the same
// determinism contract as the rest of the runtime (fixed field order, fixed
// numeric formats), so two same-seed group runs — including runs with
// kills, restarts and failovers — print byte-identical JSON.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/service.hpp"
#include "tune/report.hpp"

namespace hh {

/// Circuit-breaker state of one shard, as the group's router sees it.
enum class BreakerState {
  kClosed = 0,    // healthy: takes its full round quantum
  kOpen = 1,      // tripped (or killed): receives no traffic
  kHalfOpen = 2,  // probing: takes a limited number of requests
};

const char* to_string(BreakerState s);

/// Per-shard accounting over one group drain.
struct ShardReport {
  std::size_t shard = 0;
  std::string breaker;            // state at the end of the drain, or "dead"
  std::size_t assigned = 0;       // requests submitted to this shard
  std::size_t completed = 0;
  std::size_t degraded = 0;
  std::size_t deadline_missed = 0;
  std::size_t failovers_out = 0;  // re-routed away after this shard's kill
  std::size_t kills = 0;
  std::size_t restarts = 0;
  std::size_t breaker_opens = 0;  // health-driven opens (kills not included)
  bool rehydrated = false;          // restart restored a snapshot
  bool snapshot_rejected = false;   // checksum verification failed
  FaultRecoveryStats faults;        // device-level faults seen by this shard
  PlanCache::Stats plan_cache;      // lifetime stats of the current service
  WaveStats wave;                   // per-shard wave accounting; reported
                                    // only when the group's wave executor
                                    // is enabled
  CritPathSummary critpath;         // per-shard critical-path attribution
                                    // accumulated over the shard's drains
                                    // (makespan_s sums round makespans);
                                    // reported only when the group's
                                    // profiler is enabled
};

/// Group-level accounting across one ShardedSpgemmService::drain().
struct GroupBatchReport {
  std::size_t shards = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t degraded = 0;
  std::size_t deadline_missed = 0;
  std::size_t shed = 0;       // rejected at group submit since last drain
  std::size_t failovers = 0;  // requests re-routed off a killed/open shard
  std::size_t deferrals = 0;  // request-rounds spent waiting for capacity
  std::size_t kills = 0;
  std::size_t restarts = 0;
  std::size_t rounds = 0;
  double makespan_s = 0;  // group clock at the last request's finish
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  FaultRecoveryStats faults;  // aggregated over all shards
  // Wave accounting aggregated over all shards (runtime/wave.hpp): each
  // shard runs its own waves over the requests routed to it. Omitted from
  // to_string/to_json unless wave_enabled, so a wave-disabled group renders
  // byte-identically to before the executor existed.
  bool wave_enabled = false;
  WaveStats wave;
  // Critical-path attribution summed over all shards' drains
  // (obs/critpath.hpp): "critical seconds" per lane across the group, not
  // wall time — shards drain on independent clocks. Omitted unless
  // critpath_enabled, following the wave contract.
  bool critpath_enabled = false;
  CritPathSummary critpath;
  bool backoff_jitter = false;
  std::vector<ShardReport> shard_reports;  // index == shard

  std::string to_string() const;
  std::string to_json() const;
};

struct GroupResult {
  std::vector<RunResult> results;        // group submit order
  std::vector<RequestReport> requests;   // group submit order; ids are group
                                         // ids and times are on the group
                                         // clock
  GroupBatchReport group;
};

/// Per-shard tuner state side by side (index == shard). A shard that is
/// dead at reporting time contributes a default (empty) TuneReport.
struct GroupTuneReport {
  std::vector<TuneReport> shards;

  std::string to_string() const;
  std::string to_json() const;
};

}  // namespace hh
