#include "shard/sharded_service.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace hh {

ShardedSpgemmService::ShardedSpgemmService(const HeteroPlatform& platform,
                                           ThreadPool& pool, Config config)
    : platform_(platform),
      pool_(pool),
      config_(std::move(config)),
      ring_(config_.shards, config_.virtual_nodes, config_.seed),
      injector_([&] {
        FaultPlan plan;
        plan.seed = config_.seed;
        plan.shard = config_.shard_faults;
        return plan;
      }()) {
  HH_CHECK_MSG(config_.shards > 0, "shard group needs at least one shard");
  HH_CHECK_MSG(config_.round_quantum > 0,
               "shard group round quantum must be positive");
  HH_CHECK_MSG(config_.restart_after_rounds > 0,
               "restart_after_rounds must be positive");
  HH_CHECK_MSG(config_.health.half_open_probes > 0,
               "half_open_probes must be positive");
  shards_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_[s].service = std::make_unique<SpgemmService>(platform_, pool_,
                                                         shard_config(s));
  }
}

SpgemmService::Config ShardedSpgemmService::shard_config(
    std::size_t shard) const {
  SpgemmService::Config cfg = config_.shard;
  // Three independent derived seeds per shard, a pure function of
  // (group seed, shard index): the same shard always rebuilds with the same
  // streams, which is what keeps a restart replay-identical.
  std::uint64_t st = config_.seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
  cfg.fault_plan.seed ^= splitmix64(st);
  cfg.tune.seed ^= splitmix64(st);
  cfg.recovery.jitter_seed ^= splitmix64(st);
  // The group owns admission (deferral + group_capacity shedding) and
  // observability (inner drains run on round-local clocks that would
  // interleave meaninglessly in one recorder; the group re-feeds trace,
  // flight recorder and SLO monitor on the group clock instead).
  cfg.admission_capacity = 0;
  cfg.trace = nullptr;
  cfg.recorder = nullptr;
  cfg.slo = nullptr;
  return cfg;
}

const MatrixSignature& ShardedSpgemmService::signature_of(const CsrMatrix* m) {
  auto it = signatures_.find(m);
  if (it == signatures_.end()) {
    it = signatures_.emplace(m, matrix_signature(*m)).first;
  }
  return it->second;
}

std::uint64_t ShardedSpgemmService::request_hash(
    const SpgemmRequest& request) {
  const CsrMatrix* pb = request.b != nullptr ? request.b : request.a;
  const PlanKey key{signature_of(request.a), signature_of(pb)};
  std::uint64_t st = static_cast<std::uint64_t>(PlanKeyHash{}(key));
  return splitmix64(st);
}

std::size_t ShardedSpgemmService::submit(SpgemmRequest request) {
  validate_spgemm_request(request);
  if (config_.group_capacity > 0 &&
      queue_.size() >= config_.group_capacity) {
    metrics_.counter("shard.shed").inc();
    std::ostringstream os;
    os << "shard group saturated (" << queue_.size() << "/"
       << config_.group_capacity << " pending), request shed";
    throw AdmissionError(os.str());
  }
  queue_hashes_.push_back(request_hash(request));
  queue_.push_back(std::move(request));
  return next_id_++;
}

BreakerState ShardedSpgemmService::breaker_state(std::size_t shard) const {
  return shards_[shard].breaker;
}

void ShardedSpgemmService::open_breaker(Shard& sh, double now_s) {
  sh.breaker = BreakerState::kOpen;
  sh.open_rounds_left = config_.health.open_rounds;
  sh.report.breaker_opens++;
  metrics_.counter("shard.breaker_opens").inc();
  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->instant(TraceCategory::kShard, "breaker-open", now_s);
  }
}

void ShardedSpgemmService::kill_shard(std::size_t shard, double now_s) {
  Shard& sh = shards_[shard];
  sh.service.reset();  // device state, residency, in-memory caches: gone
  sh.alive = false;
  sh.breaker = BreakerState::kOpen;
  sh.open_rounds_left = 0;
  sh.restart_countdown = config_.restart_after_rounds;
  sh.consecutive_failures = 0;
  sh.deadline_misses = 0;
  sh.quarantine_cursor = 0;  // the next incarnation's log starts empty
  sh.report.kills++;
  metrics_.counter("shard.kills").inc();
  if (config_.trace != nullptr && config_.trace->enabled()) {
    config_.trace->instant(TraceCategory::kShard, "shard-kill", now_s);
  }
}

void ShardedSpgemmService::restart_shard(std::size_t shard, double now_s) {
  Shard& sh = shards_[shard];
  sh.service =
      std::make_unique<SpgemmService>(platform_, pool_, shard_config(shard));
  sh.alive = true;
  // A restarted shard has no track record: it re-enters through the
  // half-open probe path rather than taking a full quantum on faith.
  sh.breaker = BreakerState::kHalfOpen;
  sh.restart_countdown = 0;
  sh.consecutive_failures = 0;
  sh.deadline_misses = 0;
  sh.report.restarts++;
  metrics_.counter("shard.restarts").inc();
  const bool tracing = config_.trace != nullptr && config_.trace->enabled();
  if (tracing) {
    config_.trace->instant(TraceCategory::kShard, "shard-restart", now_s);
  }
  if (!sh.has_snapshot) return;
  if (!sh.snapshot.valid()) {
    sh.report.snapshot_rejected = true;
    metrics_.counter("shard.snapshots_rejected").inc();
    if (tracing) {
      config_.trace->instant(TraceCategory::kShard, "shard-rehydrate-rejected",
                             now_s);
    }
    return;  // cold start: corrupt state is worse than no state
  }
  std::vector<PlanKey> quarantined;
  for (const QuarantineEntry& q : sh.ledger) {
    if (q.expires_round >= round_) quarantined.push_back(q.key);
  }
  restore_shard_snapshot(sh.snapshot, quarantined, *sh.service);
  sh.report.rehydrated = true;
  metrics_.counter("shard.rehydrations").inc();
  if (tracing) {
    config_.trace->instant(TraceCategory::kShard, "shard-rehydrate", now_s);
  }
}

void ShardedSpgemmService::harvest_quarantines(std::size_t shard) {
  Shard& sh = shards_[shard];
  const std::vector<PlanKey>& log =
      sh.service->plan_cache().quarantine_log();
  for (; sh.quarantine_cursor < log.size(); ++sh.quarantine_cursor) {
    sh.ledger.push_back(
        {log[sh.quarantine_cursor], round_ + config_.quarantine_ttl_rounds});
  }
  std::erase_if(sh.ledger, [&](const QuarantineEntry& q) {
    return q.expires_round < round_;
  });
}

GroupResult ShardedSpgemmService::drain() {
  GroupResult out;
  const std::size_t n = queue_.size();
  const std::size_t first_id = next_id_ - n;
  std::vector<SpgemmRequest> reqs = std::move(queue_);
  std::vector<std::uint64_t> hashes = std::move(queue_hashes_);
  queue_.clear();
  queue_hashes_.clear();
  out.results.resize(n);
  out.requests.resize(n);

  const std::size_t shard_count = shards_.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].report = ShardReport{};
    shards_[s].report.shard = s;
  }

  TraceRecorder* tr = config_.trace != nullptr && config_.trace->enabled()
                          ? config_.trace
                          : nullptr;
  const HealthPolicy& hp = config_.health;

  std::deque<std::size_t> work;
  for (std::size_t i = 0; i < n; ++i) work.push_back(i);

  std::vector<double> latencies;
  latencies.reserve(n);
  double group_clock = 0;
  double max_finish = 0;
  std::size_t remaining = n;
  std::size_t rounds_this_drain = 0;
  std::size_t failovers = 0;
  std::size_t deferrals = 0;

  while (remaining > 0) {
    ++round_;
    ++rounds_this_drain;
    HH_CHECK_MSG(rounds_this_drain <= 1000 + 10 * n,
                 "shard group made no progress (kill schedule starves every "
                 "round?)");
    const double round_start = group_clock;

    // ---- Round start: restart countdowns and breaker cool-downs.
    for (std::size_t s = 0; s < shard_count; ++s) {
      Shard& sh = shards_[s];
      if (!sh.alive) {
        if (--sh.restart_countdown <= 0) restart_shard(s, round_start);
      } else if (sh.breaker == BreakerState::kOpen &&
                 --sh.open_rounds_left <= 0) {
        sh.breaker = BreakerState::kHalfOpen;
        metrics_.counter("shard.breaker_half_opens").inc();
        if (tr != nullptr) {
          tr->instant(TraceCategory::kShard, "breaker-half-open", round_start);
        }
      }
    }

    // ---- Assignment: ring-route each pending request to the first
    // routable shard clockwise from its hash, bounded by the round quantum
    // (half-open: the probe budget). Whatever does not fit is deferred to
    // the next round — backpressure, never loss.
    std::vector<bool> eligible(shard_count);
    std::vector<std::size_t> capacity(shard_count, 0);
    bool any_eligible = false;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const Shard& sh = shards_[s];
      eligible[s] = sh.alive && sh.breaker != BreakerState::kOpen;
      any_eligible = any_eligible || eligible[s];
      if (!eligible[s]) continue;
      capacity[s] = sh.breaker == BreakerState::kHalfOpen
                        ? std::min(config_.round_quantum,
                                   hp.half_open_probes)
                        : config_.round_quantum;
    }
    std::vector<std::vector<std::size_t>> submitted(shard_count);
    std::deque<std::size_t> leftover;
    while (!work.empty()) {
      const std::size_t idx = work.front();
      work.pop_front();
      const std::size_t target =
          any_eligible ? ring_.route(hashes[idx], eligible) : kNoShard;
      if (target != kNoShard && capacity[target] > 0) {
        shards_[target].service->submit(reqs[idx]);
        submitted[target].push_back(idx);
        --capacity[target];
        shards_[target].report.assigned++;
      } else {
        leftover.push_back(idx);
        ++deferrals;
        metrics_.counter("shard.deferrals").inc();
      }
    }
    work = std::move(leftover);

    // ---- Kill decisions: one kShard op per shard slot per round, slot
    // order, consumed whether or not the slot is alive — so trigger_ops
    // address (round, shard) exactly. The decision lands after this round's
    // submissions and before its drain: a killed shard has genuinely
    // in-flight requests, and they fail over.
    for (std::size_t s = 0; s < shard_count; ++s) {
      const FaultDecision d = injector_.next(FaultSite::kShard);
      if (!d.fault || !shards_[s].alive) continue;
      const std::vector<std::size_t>& items = submitted[s];
      for (auto it = items.rbegin(); it != items.rend(); ++it) {
        work.push_front(*it);  // re-routes to the ring successor next round
      }
      failovers += items.size();
      shards_[s].report.failovers_out += items.size();
      metrics_.counter("shard.failovers")
          .inc(static_cast<std::int64_t>(items.size()));
      if (tr != nullptr && !items.empty()) {
        tr->instant(TraceCategory::kShard, "shard-failover", round_start);
      }
      kill_shard(s, round_start);
      submitted[s].clear();
    }

    // ---- Drain the survivors (shard order — deterministic), map results
    // back to group order, and feed the health monitor.
    double round_makespan = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      Shard& sh = shards_[s];
      if (!sh.alive || submitted[s].empty()) continue;
      BatchResult br = sh.service->drain();
      round_makespan = std::max(round_makespan, br.batch.makespan_s);
      std::size_t round_misses = 0;
      for (std::size_t i = 0; i < submitted[s].size(); ++i) {
        const std::size_t gidx = submitted[s][i];
        RequestReport rr = std::move(br.requests[i]);
        for (StageSpan& span : rr.spans) {
          span.start_s += round_start;
          span.end_s += round_start;
        }
        rr.request_id = first_id + gidx;
        rr.submit_s = 0;  // group drain start
        rr.start_s += round_start;
        rr.finish_s += round_start;
        rr.queue_wait_s = rr.start_s;  // includes deferred/failed-over rounds
        rr.latency_s = rr.finish_s;
        rr.run.total_s = rr.latency_s;
        rr.flame.clear();  // rendered against a round-local window; stale

        // Re-record the shard-local spans (already mapped to the group
        // clock) under the shard's own trace track, so one Perfetto export
        // shows every shard's resource occupancy side by side without
        // false overlaps on shared CPU/GPU/H2D/D2H rows.
        if (tr != nullptr) {
          tr->set_track(static_cast<std::uint32_t>(s) + 1);
          tr->begin_request(rr.request_id);
          for (const StageSpan& span : rr.spans) {
            const bool transfer = span.resource == Resource::kH2D ||
                                  span.resource == Resource::kD2H;
            tr->span(transfer ? TraceCategory::kTransfer
                              : TraceCategory::kCompute,
                     span.stage, span.resource, span.start_s, span.end_s,
                     span.start_s);
          }
          tr->end_request();
          tr->set_track(0);
        }

        // Group-level flight recorder + SLO feed, on the group clock, with
        // the executing shard stamped on the record.
        if (config_.recorder != nullptr) {
          const SpgemmRequest& greq = reqs[gidx];
          const CsrMatrix* pb = greq.b != nullptr ? greq.b : greq.a;
          const RunReport& rep = rr.run;
          WorkloadRecord w;
          w.id = rr.request_id;
          w.shard = static_cast<std::int64_t>(s);
          w.label = rr.label;
          w.a = signature_of(greq.a);
          w.b = signature_of(pb);
          w.submit_s = config_.recorder->clock() + rr.submit_s;
          w.deadline_s = rr.deadline_s;
          w.pin_ta = greq.options.threshold_a;
          w.pin_tb = greq.options.threshold_b;
          w.ta = rep.threshold_a;
          w.tb = rep.threshold_b;
          w.status = hh::to_string(rr.status.code);
          w.cache_hit = rr.plan_cache_hit;
          w.degraded = rr.degraded_to_cpu;
          w.deadline_missed = rr.deadline_missed;
          w.latency_s = rr.latency_s;
          w.queue_wait_s = rr.queue_wait_s;
          w.phase1_s = rep.phase1_s;
          w.phase2_s = rep.phase2_s;
          w.phase3_s = rep.phase3_s;
          w.phase4_s = rep.phase4_s;
          w.tx_in_s = rep.transfer_in_s;
          w.tx_out_s = rep.transfer_out_s;
          w.output_nnz = rep.output_nnz;
          w.faults = rr.faults.total_faults();
          w.retries = rr.faults.retries;
          config_.recorder->append(std::move(w));
        }
        if (config_.slo != nullptr) {
          config_.slo->observe(rr.latency_s, rr.status.ok(),
                               rr.deadline_missed, rr.finish_s);
        }

        if (rr.deadline_missed) {
          sh.consecutive_failures++;
          sh.deadline_misses++;
          sh.report.deadline_missed++;
          ++round_misses;
        } else {
          sh.consecutive_failures = 0;
          sh.report.completed++;
        }
        if (rr.degraded_to_cpu) sh.report.degraded++;
        latencies.push_back(rr.latency_s);
        max_finish = std::max(max_finish, rr.finish_s);
        out.requests[gidx] = std::move(rr);
        out.results[gidx] = std::move(br.results[i]);
        --remaining;
      }
      sh.report.faults.accumulate(br.batch.faults);
      sh.report.wave.accumulate(br.batch.wave);
      if (br.batch.critpath_enabled) {
        sh.report.critpath.accumulate(br.batch.critpath.summary());
      }

      // Breaker transitions on this round's evidence.
      if (sh.breaker == BreakerState::kHalfOpen) {
        if (round_misses > 0) {
          open_breaker(sh, round_start);  // probe failed: back to open
        } else {
          sh.breaker = BreakerState::kClosed;
          sh.consecutive_failures = 0;
          sh.deadline_misses = 0;
          metrics_.counter("shard.breaker_closes").inc();
          if (tr != nullptr) {
            tr->instant(TraceCategory::kShard, "breaker-close", round_start);
          }
        }
      } else if (sh.breaker == BreakerState::kClosed &&
                 (sh.consecutive_failures >= hp.consecutive_failures ||
                  sh.deadline_misses >= hp.deadline_misses)) {
        open_breaker(sh, round_start);
      }

      // Ledger before snapshot: a key quarantined this round must be in the
      // ledger before any snapshot that could outlive this incarnation.
      harvest_quarantines(s);
      sh.snapshot = take_shard_snapshot(s, round_, *sh.service);
      sh.has_snapshot = true;
    }

    group_clock += round_makespan;
  }

  // ---- Merged group report.
  GroupBatchReport& g = out.group;
  g.shards = shard_count;
  g.requests = n;
  for (const RequestReport& rr : out.requests) {
    if (rr.status.ok()) g.completed++;
    if (rr.degraded_to_cpu) g.degraded++;
    if (rr.deadline_missed) g.deadline_missed++;
    g.faults.accumulate(rr.faults);
  }
  const std::int64_t shed_total = metrics_.counter("shard.shed").value();
  g.shed = static_cast<std::size_t>(shed_total - shed_at_last_drain_);
  shed_at_last_drain_ = shed_total;
  g.failovers = failovers;
  g.deferrals = deferrals;
  g.rounds = rounds_this_drain;
  g.makespan_s = max_finish;
  g.p50_latency_s = percentile(latencies, 0.50);
  g.p95_latency_s = percentile(latencies, 0.95);
  g.p99_latency_s = percentile(latencies, 0.99);
  g.backoff_jitter = config_.shard.recovery.decorrelated_jitter;
  g.wave_enabled = config_.shard.wave.enabled;
  g.critpath_enabled = config_.shard.critpath;
  g.shard_reports.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard& sh = shards_[s];
    sh.report.breaker = sh.alive ? to_string(sh.breaker) : "dead";
    if (sh.alive) sh.report.plan_cache = sh.service->plan_cache().stats();
    g.kills += sh.report.kills;
    g.restarts += sh.report.restarts;
    g.wave.accumulate(sh.report.wave);
    g.critpath.accumulate(sh.report.critpath);
    g.shard_reports.push_back(sh.report);
  }
  metrics_.gauge("shard.rounds").set(static_cast<double>(round_));
  metrics_.gauge("shard.makespan_s").set(g.makespan_s);
  if (config_.recorder != nullptr) {
    config_.recorder->advance_clock(g.makespan_s);
  }
  return out;
}

GroupTuneReport ShardedSpgemmService::tune_report() const {
  GroupTuneReport gr;
  gr.shards.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    if (sh.alive) {
      gr.shards.push_back(sh.service->tune_report());
    } else {
      TuneReport dead;  // deterministic placeholder for a dead shard
      dead.enabled = config_.shard.tune.enabled;
      gr.shards.push_back(std::move(dead));
    }
  }
  return gr;
}

}  // namespace hh
