#include "shard/ring.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace hh {

HashRing::HashRing(std::size_t shards, int virtual_nodes, std::uint64_t seed)
    : shards_(shards) {
  HH_CHECK_MSG(shards > 0, "hash ring needs at least one shard");
  HH_CHECK_MSG(virtual_nodes > 0, "hash ring needs at least one vnode");
  points_.reserve(shards * static_cast<std::size_t>(virtual_nodes));
  for (std::size_t s = 0; s < shards; ++s) {
    for (int v = 0; v < virtual_nodes; ++v) {
      // splitmix64 of a per-(shard, vnode) counter: well-spread deterministic
      // positions, no dependence on std::hash.
      std::uint64_t input =
          seed + 0x9e3779b97f4a7c15ULL *
                     (s * static_cast<std::uint64_t>(virtual_nodes) + v + 1);
      points_.push_back({splitmix64(input), s});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

std::size_t HashRing::owner(std::uint64_t key_hash) const {
  auto it = std::lower_bound(points_.begin(), points_.end(), key_hash,
                             [](const Point& p, std::uint64_t h) {
                               return p.position < h;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->shard;
}

std::size_t HashRing::route(std::uint64_t key_hash,
                            const std::vector<bool>& eligible) const {
  HH_CHECK_MSG(eligible.size() == shards_,
               "eligibility mask size does not match shard count");
  auto it = std::lower_bound(points_.begin(), points_.end(), key_hash,
                             [](const Point& p, std::uint64_t h) {
                               return p.position < h;
                             });
  for (std::size_t walked = 0; walked < points_.size(); ++walked) {
    if (it == points_.end()) it = points_.begin();
    if (eligible[it->shard]) return it->shard;
    ++it;
  }
  return kNoShard;
}

}  // namespace hh
