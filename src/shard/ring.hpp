// Consistent-hash ring: plan-affine request routing across shards.
//
// The shard group (src/shard/sharded_service.hpp) routes each request by the
// hash of its plan-cache key — the (signature(A), signature(B)) pair — so
// repeated products of the same-shaped operands land on the same shard and
// keep hitting that shard's plan cache, operand residency and tuner entries.
// A plain `hash % N` would reshuffle almost every key when a shard dies; the
// classic consistent-hash construction (`virtual_nodes` pseudo-random points
// per shard on a 64-bit ring, a key owned by the first point clockwise from
// its hash) moves only the dead shard's keys, and moves each of them to its
// ring successor — which is exactly the failover target the group wants.
//
// Everything is a pure function of (seed, shards, virtual_nodes): the same
// configuration always builds the same ring, so routing decisions replay
// bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hh {

/// Sentinel returned by route() when no shard is eligible.
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

class HashRing {
 public:
  HashRing(std::size_t shards, int virtual_nodes, std::uint64_t seed);

  std::size_t shards() const { return shards_; }

  /// The shard owning `key_hash` with every shard eligible.
  std::size_t owner(std::uint64_t key_hash) const;

  /// The first eligible shard clockwise from `key_hash`: the owner when
  /// `eligible[owner]`, else the owner's ring successor, and so on —
  /// kNoShard when nothing is eligible. `eligible` must have shards()
  /// entries.
  std::size_t route(std::uint64_t key_hash,
                    const std::vector<bool>& eligible) const;

  /// Number of ring points (shards() * virtual_nodes).
  std::size_t points() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t position;
    std::size_t shard;
  };

  std::size_t shards_;
  std::vector<Point> points_;  // ascending by position
};

}  // namespace hh
