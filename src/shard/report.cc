#include "shard/report.hpp"

#include <cstdio>
#include <sstream>

namespace hh {
namespace {

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

std::string jnum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

std::string jbool(bool b) { return b ? "true" : "false"; }

std::string faults_json(const FaultRecoveryStats& f) {
  std::ostringstream os;
  os << "{\"gpu_aborts\":" << f.gpu_aborts
     << ",\"h2d_faults\":" << f.h2d_faults
     << ",\"d2h_faults\":" << f.d2h_faults
     << ",\"corruptions\":" << f.corruptions
     << ",\"cpu_stalls\":" << f.cpu_stalls << ",\"retries\":" << f.retries
     << ",\"backoff_s\":" << jnum(f.backoff_s) << "}";
  return os.str();
}

}  // namespace

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

std::string GroupBatchReport::to_string() const {
  std::ostringstream os;
  os << "group: " << requests << " requests over " << shards << " shards, "
     << rounds << " rounds, makespan " << ms(makespan_s) << "\n";
  os << "  latency p50 " << ms(p50_latency_s) << ", p95 " << ms(p95_latency_s)
     << ", p99 " << ms(p99_latency_s) << "\n";
  os << "  outcome: " << completed << " completed, " << degraded
     << " degraded, " << deadline_missed << " deadline-missed, " << shed
     << " shed\n";
  os << "  churn: " << kills << " kills, " << restarts << " restarts, "
     << failovers << " failovers, " << deferrals << " deferrals\n";
  os << "  faults: gpu " << faults.gpu_aborts << ", h2d " << faults.h2d_faults
     << ", d2h " << faults.d2h_faults << " (" << faults.corruptions
     << " corrupt), cpu stalls " << faults.cpu_stalls << "; retries "
     << faults.retries << ", backoff " << ms(faults.backoff_s)
     << (backoff_jitter ? " (decorrelated jitter)" : "") << "\n";
  if (wave_enabled) {
    os << "  waves: " << wave.waves << " over " << wave.wave_requests
       << " requests; " << wave.uploads << " uploads ("
       << wave.coalesced_uploads << " coalesced, " << wave.deduped_uploads
       << " deduped, " << wave.h2d_bytes << " bytes), "
       << wave.batched_launches << " batched launches, " << wave.evictions
       << " evictions\n";
  }
  if (critpath_enabled) os << "  critpath: " << critpath.to_string() << "\n";
  for (const ShardReport& s : shard_reports) {
    os << "  shard " << s.shard << " [" << s.breaker << "]: " << s.assigned
       << " assigned, " << s.completed << " completed, " << s.degraded
       << " degraded, " << s.deadline_missed << " deadline-missed";
    if (s.failovers_out > 0) os << ", " << s.failovers_out << " failed over";
    if (s.kills > 0) {
      os << ", " << s.kills << " kills/" << s.restarts << " restarts";
    }
    if (s.breaker_opens > 0) os << ", " << s.breaker_opens << " breaker opens";
    if (s.rehydrated) os << ", rehydrated";
    if (s.snapshot_rejected) os << ", SNAPSHOT REJECTED";
    os << "\n";
  }
  return os.str();
}

std::string GroupBatchReport::to_json() const {
  std::ostringstream os;
  os << "{\"shards\":" << shards << ",\"requests\":" << requests
     << ",\"completed\":" << completed << ",\"degraded\":" << degraded
     << ",\"deadline_missed\":" << deadline_missed << ",\"shed\":" << shed
     << ",\"failovers\":" << failovers << ",\"deferrals\":" << deferrals
     << ",\"kills\":" << kills << ",\"restarts\":" << restarts
     << ",\"rounds\":" << rounds << ",\"makespan_s\":" << jnum(makespan_s)
     << ",\"p50_latency_s\":" << jnum(p50_latency_s)
     << ",\"p95_latency_s\":" << jnum(p95_latency_s)
     << ",\"p99_latency_s\":" << jnum(p99_latency_s)
     << ",\"faults\":" << faults_json(faults);
  // Wave fields appear only when the executor is on, keeping disabled
  // groups' JSON byte-identical to before the executor existed.
  if (wave_enabled) os << ",\"wave\":" << wave.to_json();
  // Same contract for the critical-path profiler (on by default).
  if (critpath_enabled) os << ",\"critpath\":" << critpath.to_json();
  os << ",\"backoff_jitter\":" << jbool(backoff_jitter)
     << ",\"shard_reports\":[";
  for (std::size_t i = 0; i < shard_reports.size(); ++i) {
    const ShardReport& s = shard_reports[i];
    if (i > 0) os << ",";
    os << "{\"shard\":" << s.shard << ",\"breaker\":\"" << s.breaker
       << "\",\"assigned\":" << s.assigned << ",\"completed\":" << s.completed
       << ",\"degraded\":" << s.degraded
       << ",\"deadline_missed\":" << s.deadline_missed
       << ",\"failovers_out\":" << s.failovers_out << ",\"kills\":" << s.kills
       << ",\"restarts\":" << s.restarts
       << ",\"breaker_opens\":" << s.breaker_opens
       << ",\"rehydrated\":" << jbool(s.rehydrated)
       << ",\"snapshot_rejected\":" << jbool(s.snapshot_rejected)
       << ",\"faults\":" << faults_json(s.faults)
       << ",\"plan_cache\":{\"hits\":" << s.plan_cache.hits
       << ",\"misses\":" << s.plan_cache.misses
       << ",\"evictions\":" << s.plan_cache.evictions
       << ",\"overwrites\":" << s.plan_cache.overwrites
       << ",\"quarantines\":" << s.plan_cache.quarantines << "}";
    if (wave_enabled) os << ",\"wave\":" << s.wave.to_json();
    if (critpath_enabled) os << ",\"critpath\":" << s.critpath.to_json();
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string GroupTuneReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    os << "shard " << i << " tuner:\n" << shards[i].to_string();
  }
  return os.str();
}

std::string GroupTuneReport::to_json() const {
  std::ostringstream os;
  os << "{\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) os << ",";
    os << shards[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace hh
