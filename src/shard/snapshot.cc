#include "shard/snapshot.hpp"

#include <algorithm>
#include <cstring>

#include "fault/checksum.hpp"
#include "runtime/service.hpp"

namespace hh {
namespace {

// Field-by-field chaining via the shared helpers in fault/checksum.hpp (the
// workload flight recorder uses the same discipline).
constexpr auto mix = checksum_mix;
constexpr auto mix_i64 = checksum_mix_i64;
constexpr auto mix_f64 = checksum_mix_f64;

void mix_signature(std::uint64_t& h, const MatrixSignature& s) {
  mix_i64(h, s.rows);
  mix_i64(h, s.cols);
  mix_i64(h, s.nnz);
  mix_i64(h, s.alpha_milli);
  mix(h, s.degree_digest);
}

void mix_key(std::uint64_t& h, const PlanKey& k) {
  mix_signature(h, k.a);
  mix_signature(h, k.b);
}

}  // namespace

std::uint64_t ShardSnapshot::compute_checksum() const {
  std::uint64_t h = kFnv1aOffset;
  mix(h, static_cast<std::uint64_t>(shard));
  mix(h, round);
  mix(h, static_cast<std::uint64_t>(plans.size()));
  for (const auto& [key, plan] : plans) {
    mix_key(h, key);
    mix_i64(h, plan.threshold_a);
    mix_i64(h, plan.threshold_b);
    mix(h, plan.version);
    mix_f64(h, plan.measured_s);
  }
  mix(h, static_cast<std::uint64_t>(tuner.entries.size()));
  for (const TunerSnapshot::Entry& e : tuner.entries) {
    mix_key(h, e.key);
    mix(h, static_cast<std::uint64_t>(e.grid.size()));
    for (const offset_t t : e.grid) mix_i64(h, t);
    for (const double p : e.predicted_s) mix_f64(h, p);
    mix(h, static_cast<std::uint64_t>(e.explore_plan.size()));
    for (const offset_t t : e.explore_plan) mix_i64(h, t);
    mix(h, static_cast<std::uint64_t>(e.variants.size()));
    for (const TunerSnapshot::Variant& v : e.variants) {
      mix_i64(h, v.t);
      mix_i64(h, v.trials);
      mix_f64(h, v.best_s);
      mix_f64(h, v.predicted_s);
    }
    mix_i64(h, e.analytic_t);
    mix_i64(h, e.incumbent_t);
    mix(h, e.version);
    mix_i64(h, e.hits);
    mix_i64(h, e.explorations);
    mix_i64(h, e.promotions);
    mix(h, e.converged ? 1u : 0u);
  }
  for (const std::uint64_t w : tuner.rng_state) mix(h, w);
  mix_i64(h, tuner.decisions);
  mix_i64(h, tuner.explorations);
  mix_i64(h, tuner.measurements);
  mix_i64(h, tuner.promotions);
  for (const CalibrationSnapshot::DeviceState& d : calibration.devices) {
    mix_i64(h, d.samples);
    mix_f64(h, d.mean_log_ratio);
    mix_f64(h, d.last_ratio);
    mix(h, d.drift ? 1u : 0u);
  }
  mix_i64(h, calibration.drift_events);
  return h;
}

ShardSnapshot take_shard_snapshot(std::size_t shard, std::uint64_t round,
                                  const SpgemmService& service) {
  ShardSnapshot snap;
  snap.shard = shard;
  snap.round = round;
  snap.plans = service.plan_cache().export_entries();
  snap.tuner = service.tuner().snapshot();
  snap.calibration = service.calibration().snapshot();
  snap.checksum = snap.compute_checksum();
  return snap;
}

void restore_shard_snapshot(const ShardSnapshot& snap,
                            const std::vector<PlanKey>& quarantined,
                            SpgemmService& service) {
  const auto under_quarantine = [&](const PlanKey& k) {
    return std::find(quarantined.begin(), quarantined.end(), k) !=
           quarantined.end();
  };

  std::vector<std::pair<PlanKey, CachedPlan>> plans;
  plans.reserve(snap.plans.size());
  for (const auto& entry : snap.plans) {
    if (!under_quarantine(entry.first)) plans.push_back(entry);
  }
  service.plan_cache().restore_entries(plans);

  TunerSnapshot tuner = snap.tuner;
  std::erase_if(tuner.entries, [&](const TunerSnapshot::Entry& e) {
    return under_quarantine(e.key);
  });
  service.tuner().restore(tuner);

  service.calibration().restore(snap.calibration);
}

}  // namespace hh
