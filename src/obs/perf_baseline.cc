#include "obs/perf_baseline.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "runtime/service.hpp"
#include "util/status.hpp"

namespace hh {

namespace {

std::string jexact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string jpct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.2f%%", v * 100.0);
  return buf;
}

// ---- Minimal JSON reader for the flat baseline format. Only what the
// format uses: objects, arrays, strings without escapes, numbers, bools.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool at(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      std::ostringstream os;
      os << "baseline JSON: expected '" << c << "' at offset " << pos_;
      throw ParseError(os.str());
    }
    ++pos_;
  }

  bool consume(char c) {
    if (!at(c)) return false;
    ++pos_;
    return true;
  }

  std::string string() {
    expect('"');
    const std::size_t begin = pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        throw ParseError("baseline JSON: escape sequences are not supported");
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) throw ParseError("baseline JSON: unterminated string");
    return s_.substr(begin, pos_++ - begin);
  }

  double number() {
    skip_ws();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      std::ostringstream os;
      os << "baseline JSON: expected a number at offset " << pos_;
      throw ParseError(os.str());
    }
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  // Skip any well-formed value (for unknown keys: forward compatibility).
  void skip_value() {
    skip_ws();
    if (at('"')) {
      string();
    } else if (consume('{')) {
      if (!consume('}')) {
        do {
          string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (consume('[')) {
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else if (literal("true") || literal("false") || literal("null")) {
    } else {
      number();
    }
  }

  bool done() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  bool literal(const char* lit) {
    skip_ws();
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int lane_index(const std::string& name) {
  for (int i = 0; i < kCritLaneCount; ++i) {
    if (name == crit_lane_name(i)) return i;
  }
  return -1;
}

PerfBaseline parse_record(JsonCursor& c) {
  PerfBaseline b;
  c.expect('{');
  if (!c.consume('}')) {
    do {
      const std::string key = c.string();
      c.expect(':');
      if (key == "bench") {
        b.bench = c.string();
      } else if (key == "scale") {
        b.scale = c.number();
      } else if (key == "requests") {
        b.requests = static_cast<std::int64_t>(c.number());
      } else if (key == "makespan_s") {
        b.makespan_s = c.number();
      } else if (key == "p50_latency_s") {
        b.p50_latency_s = c.number();
      } else if (key == "p95_latency_s") {
        b.p95_latency_s = c.number();
      } else if (key == "p99_latency_s") {
        b.p99_latency_s = c.number();
      } else if (key == "attributed_s") {
        c.expect('{');
        if (!c.consume('}')) {
          do {
            const std::string lane = c.string();
            c.expect(':');
            const double v = c.number();
            const int idx = lane_index(lane);
            if (idx < 0) {
              throw ParseError("baseline JSON: unknown lane \"" + lane + "\"");
            }
            b.attributed_s[idx] = v;
          } while (c.consume(','));
          c.expect('}');
        }
      } else {
        c.skip_value();
      }
    } while (c.consume(','));
    c.expect('}');
  }
  if (b.bench.empty()) {
    throw ParseError("baseline JSON: record is missing \"bench\"");
  }
  return b;
}

}  // namespace

std::string PerfBaseline::to_json() const {
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\",\"scale\":" << jexact(scale)
     << ",\"requests\":" << requests
     << ",\"makespan_s\":" << jexact(makespan_s)
     << ",\"p50_latency_s\":" << jexact(p50_latency_s)
     << ",\"p95_latency_s\":" << jexact(p95_latency_s)
     << ",\"p99_latency_s\":" << jexact(p99_latency_s) << ",\"attributed_s\":{";
  for (int i = 0; i < kCritLaneCount; ++i) {
    os << (i ? "," : "") << "\"" << crit_lane_name(i)
       << "\":" << jexact(attributed_s[i]);
  }
  os << "}}";
  return os.str();
}

PerfBaseline baseline_from_batch(const std::string& bench, double scale,
                                 const BatchReport& batch) {
  PerfBaseline b;
  b.bench = bench;
  b.scale = scale;
  b.requests = static_cast<std::int64_t>(batch.requests);
  b.makespan_s = batch.makespan_s;
  b.p50_latency_s = batch.p50_latency_s;
  b.p95_latency_s = batch.p95_latency_s;
  b.p99_latency_s = batch.p99_latency_s;
  for (int i = 0; i < kCritLaneCount; ++i) {
    b.attributed_s[i] = batch.critpath.attributed_s[i];
  }
  return b;
}

std::string render_perf_baselines(const std::vector<PerfBaseline>& baselines) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < baselines.size(); ++i) {
    os << (i ? ",\n " : "\n ") << baselines[i].to_json();
  }
  os << "\n]\n";
  return os.str();
}

std::vector<PerfBaseline> parse_perf_baselines(const std::string& text) {
  JsonCursor c(text);
  std::vector<PerfBaseline> out;
  if (c.at('[')) {
    c.expect('[');
    if (!c.consume(']')) {
      do {
        out.push_back(parse_record(c));
      } while (c.consume(','));
      c.expect(']');
    }
  } else {
    out.push_back(parse_record(c));
  }
  if (!c.done()) {
    throw ParseError("baseline JSON: trailing content after the record set");
  }
  return out;
}

std::string PerfDiff::to_string() const {
  std::ostringstream os;
  os << (regressed ? "REGRESSED" : "OK") << " (" << findings.size()
     << " regressions, " << improvements.size() << " improvements)\n";
  for (const std::string& f : findings) os << "  REGRESSION: " << f << "\n";
  for (const std::string& f : improvements) os << "  improved: " << f << "\n";
  for (const std::string& f : notes) os << "  note: " << f << "\n";
  return os.str();
}

std::string PerfDiff::to_json() const {
  const auto arr = [](const std::vector<std::string>& v) {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      os << (i ? "," : "") << "\"" << v[i] << "\"";
    }
    os << "]";
    return os.str();
  };
  std::ostringstream os;
  os << "{\"regressed\":" << (regressed ? "true" : "false")
     << ",\"findings\":" << arr(findings)
     << ",\"improvements\":" << arr(improvements) << ",\"notes\":" << arr(notes)
     << "}";
  return os.str();
}

PerfDiff compare_perf_baselines(const std::vector<PerfBaseline>& baseline,
                                const std::vector<PerfBaseline>& fresh,
                                const PerfCompareOptions& opts) {
  PerfDiff d;
  const auto find = [&](const std::string& bench) -> const PerfBaseline* {
    for (const PerfBaseline& b : fresh) {
      if (b.bench == bench) return &b;
    }
    return nullptr;
  };
  const auto rel = [](double now, double was) {
    return was > 0 ? now / was - 1.0 : 0.0;
  };

  for (const PerfBaseline& old : baseline) {
    const PerfBaseline* cur = find(old.bench);
    if (cur == nullptr) {
      d.findings.push_back(old.bench + ": missing from the new run");
      continue;
    }
    if (cur->scale != old.scale || cur->requests != old.requests) {
      std::ostringstream os;
      os << old.bench << ": not comparable (scale " << old.scale << " -> "
         << cur->scale << ", requests " << old.requests << " -> "
         << cur->requests << ")";
      d.findings.push_back(os.str());
      continue;
    }
    const struct {
      const char* what;
      double was, now, tol;
    } bands[] = {
        {"makespan_s", old.makespan_s, cur->makespan_s, opts.makespan_rel_tol},
        {"p95_latency_s", old.p95_latency_s, cur->p95_latency_s,
         opts.latency_rel_tol},
        {"p99_latency_s", old.p99_latency_s, cur->p99_latency_s,
         opts.latency_rel_tol},
    };
    for (const auto& band : bands) {
      const double delta = rel(band.now, band.was);
      std::ostringstream os;
      os << old.bench << ": " << band.what << " " << jexact(band.was) << " -> "
         << jexact(band.now) << " (" << jpct(delta) << ", band "
         << jpct(band.tol) << ")";
      if (delta > band.tol) {
        d.findings.push_back(os.str());
      } else if (delta < -band.tol) {
        d.improvements.push_back(os.str());
      }
    }
    // Attribution structure: each lane's share of the makespan must stay
    // within an absolute band. Catches "same makespan, but the bottleneck
    // migrated to the PCIe link" drifts the scalar bands cannot see.
    for (int lane = 0; lane < kCritLaneCount; ++lane) {
      const double was_frac =
          old.makespan_s > 0 ? old.attributed_s[lane] / old.makespan_s : 0;
      const double now_frac =
          cur->makespan_s > 0 ? cur->attributed_s[lane] / cur->makespan_s : 0;
      if (std::abs(now_frac - was_frac) > opts.attribution_abs_tol) {
        std::ostringstream os;
        os << old.bench << ": critpath share of " << crit_lane_name(lane)
           << " shifted " << jpct(was_frac) << " -> " << jpct(now_frac)
           << " (band +/-" << jpct(opts.attribution_abs_tol) << ")";
        d.findings.push_back(os.str());
      }
    }
  }
  for (const PerfBaseline& b : fresh) {
    bool known = false;
    for (const PerfBaseline& old : baseline) known |= old.bench == b.bench;
    if (!known) {
      d.notes.push_back(b.bench +
                        ": new bench (not in baseline; refresh to adopt)");
    }
  }
  d.regressed = !d.findings.empty();
  return d;
}

}  // namespace hh
