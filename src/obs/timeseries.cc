#include "obs/timeseries.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hh {
namespace {

std::string num(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

}  // namespace

MetricsTimeline::MetricsTimeline(const MetricsRegistry* registry,
                                 double interval_s)
    : registry_(registry), interval_s_(interval_s) {
  HH_CHECK_MSG(registry_ != nullptr, "metrics timeline needs a registry");
}

void MetricsTimeline::snapshot(double now_s) {
  const std::size_t sample = t_s_.size();
  t_s_.push_back(now_s);
  for (const FlatMetric& m : registry_->flattened()) {
    auto it = by_name_.find(m.name);
    if (it == by_name_.end()) {
      it = by_name_.emplace(m.name, series_.size()).first;
      series_.push_back({m.name, m.kind, std::vector<double>(sample, 0)});
    }
    series_[it->second].values.push_back(m.value);
  }
  // A registry never drops instruments, so every series was just extended;
  // guard anyway so a stale series stays aligned instead of shearing.
  for (Series& s : series_) {
    if (s.values.size() < t_s_.size()) s.values.push_back(0);
  }
}

bool MetricsTimeline::maybe_snapshot(double now_s) {
  if (interval_s_ <= 0) return false;
  if (!t_s_.empty() && now_s < t_s_.back() + interval_s_) return false;
  snapshot(now_s);
  return true;
}

std::string MetricsTimeline::to_json() const {
  std::ostringstream os;
  os << "{\"interval_s\":" << num(interval_s_)
     << ",\"samples\":" << t_s_.size() << ",\"t_s\":[";
  for (std::size_t i = 0; i < t_s_.size(); ++i) {
    os << (i ? "," : "") << num(t_s_[i]);
  }
  os << "],\"series\":{";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const Series& s = series_[si];
    if (si > 0) os << ",";
    os << "\"" << s.name << "\":{\"kind\":\"" << s.kind << "\",\"values\":[";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      os << (i ? "," : "") << num(s.values[i]);
    }
    os << "],\"deltas\":[";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      const double d = i == 0 ? s.values[0] : s.values[i] - s.values[i - 1];
      os << (i ? "," : "") << num(d);
    }
    os << "],\"rates\":[";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      double rate = 0;
      if (i > 0) {
        const double dt = t_s_[i] - t_s_[i - 1];
        if (dt > 0) rate = (s.values[i] - s.values[i - 1]) / dt;
      }
      os << (i ? "," : "") << num(rate);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace hh
