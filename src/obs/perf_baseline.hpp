// Machine-readable performance baselines + regression diffing.
//
// BENCH_*.json records have existed since PR 4, but nothing compared two
// runs, so the bench trajectory never gated anything. This module defines a
// small, stable baseline format — the numbers a perf gate should care about
// (makespan, tail latencies, critical-path attribution per lane) — plus a
// tolerance-band comparator. bench/bench_compare.cc wraps it as a CLI that
// exits nonzero on regression; CI's perf-gate job runs it against the
// committed snapshots in bench/baselines/ (regenerate intentionally with the
// `refresh-baselines` CMake target — see docs/observability.md).
//
// The simulator is deterministic, so identical code produces byte-identical
// baselines and the gate is noise-free: any drift is a real behaviour
// change. Tolerances exist to let intentional small changes ride while
// catching the "10% slower" class of silent regression.
#pragma once

#include <string>
#include <vector>

#include "obs/critpath.hpp"

namespace hh {

struct BatchReport;

/// One benchmark scenario's gated numbers. `attributed_s` is the
/// critical-path attribution per lane (cpu/gpu/h2d/d2h/idle) whose sum is
/// the makespan.
struct PerfBaseline {
  std::string bench;       // scenario id, e.g. "runtime_throughput.part1"
  double scale = 0;        // HH_SCALE the scenario ran at
  std::int64_t requests = 0;
  double makespan_s = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double attributed_s[kCritLaneCount] = {0, 0, 0, 0, 0};

  /// Single-line JSON, fixed field order, %.17g (round-trips exactly).
  std::string to_json() const;
};

/// Derive a baseline record from one drain's BatchReport (requires the
/// drain to have run with Config::critpath enabled).
PerfBaseline baseline_from_batch(const std::string& bench, double scale,
                                 const BatchReport& batch);

/// Render a baseline set as a JSON array (one record per line).
std::string render_perf_baselines(const std::vector<PerfBaseline>& baselines);

/// Parse a baseline file: a JSON array of records, or one bare record.
/// Throws ParseError on malformed input.
std::vector<PerfBaseline> parse_perf_baselines(const std::string& text);

struct PerfCompareOptions {
  double makespan_rel_tol = 0.05;   // new makespan may exceed old by 5%
  double latency_rel_tol = 0.08;    // p95/p99 band (tails move more)
  double attribution_abs_tol = 0.10;  // per-lane fraction-of-makespan shift
};

/// Deterministic tolerance-band diff of two baseline sets, matched by bench
/// id. A regression is: a bench missing from `fresh`, an incomparable run
/// (scale or request count changed), makespan or tail latency above its
/// band, or a lane's attributed share of the makespan shifting by more than
/// the absolute tolerance (structure drift — e.g. time migrating from GPU
/// to the PCIe link). Faster-than-band results land in `improvements`.
struct PerfDiff {
  bool regressed = false;
  std::vector<std::string> findings;      // regressions, deterministic order
  std::vector<std::string> improvements;  // informational
  std::vector<std::string> notes;         // benches only in `fresh`, ...

  std::string to_string() const;
  std::string to_json() const;
};

PerfDiff compare_perf_baselines(const std::vector<PerfBaseline>& baseline,
                                const std::vector<PerfBaseline>& fresh,
                                const PerfCompareOptions& opts = {});

}  // namespace hh
