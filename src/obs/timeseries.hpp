// MetricsTimeline: periodic snapshots of a MetricsRegistry as a time
// series.
//
// The registry holds end-state totals; a replay run also wants the shape of
// how they got there — when the tuner promoted, when the SLO burn spiked,
// how the fault counters ramped. The timeline samples the registry's
// flattened view (counters, gauges, histogram count/sum) at fixed simulated
// intervals and renders, per series, the raw values plus per-interval
// deltas and rates.
//
// Series discovered after the first sample (instruments register lazily)
// are backfilled with zeros for the samples they missed, keeping every
// series aligned with the t_s axis. Deterministic: same run, same JSON.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/metrics.hpp"

namespace hh {

class MetricsTimeline {
 public:
  /// `registry` must outlive the timeline. `interval_s` <= 0 disables
  /// maybe_snapshot (explicit snapshot() still works).
  MetricsTimeline(const MetricsRegistry* registry, double interval_s);

  /// Take an unconditional sample at `now_s`.
  void snapshot(double now_s);

  /// Take a sample when at least interval_s has passed since the last one
  /// (or when none was taken yet). Returns whether a sample was taken.
  bool maybe_snapshot(double now_s);

  std::size_t samples() const { return t_s_.size(); }
  double interval_s() const { return interval_s_; }

  /// {"interval_s":..,"samples":N,"t_s":[...],"series":{name:{"kind":"c",
  /// "values":[...],"deltas":[...],"rates":[...]}}} — deltas are
  /// sample-over-sample differences (first delta = first value), rates are
  /// delta / dt (0 for the first sample or a non-advancing clock).
  std::string to_json() const;

 private:
  struct Series {
    std::string name;
    char kind;
    std::vector<double> values;  // aligned with t_s_
  };

  const MetricsRegistry* registry_;
  double interval_s_;
  std::vector<double> t_s_;
  std::vector<Series> series_;  // first-seen order
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace hh
