#include "obs/record.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "fault/checksum.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

// %.17g round-trips every double bit-for-bit through strtod, which is what
// makes parse-then-reverify reproduce the writer's checksums exactly.
std::string jexact(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      os << buf;
    } else {
      os << c;
    }
  }
}

void mix_str(std::uint64_t& h, const std::string& s) {
  checksum_mix(h, s.size());
  h = fnv1a64(s.data(), s.size(), h);
}

void mix_sig(std::uint64_t& h, const MatrixSignature& s) {
  checksum_mix_i64(h, s.rows);
  checksum_mix_i64(h, s.cols);
  checksum_mix_i64(h, s.nnz);
  checksum_mix_i64(h, s.alpha_milli);
  checksum_mix(h, s.degree_digest);
}

[[noreturn]] void fail(std::size_t lineno, const std::string& why) {
  std::ostringstream os;
  os << "workload log line " << lineno << ": " << why;
  throw ParseError(os.str());
}

// Minimal flat-JSON object reader for the exact shape this module writes:
// one level deep, string / number / bool values. Raw value text is kept so
// integer fields never round-trip through a double.
class FlatJson {
 public:
  FlatJson(const std::string& line, std::size_t lineno) : lineno_(lineno) {
    std::size_t i = 0;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != '{') fail(lineno_, "expected '{'");
    ++i;
    skip_ws(line, i);
    if (i < line.size() && line[i] == '}') {
      ++i;
    } else {
      while (true) {
        const std::string key = parse_string(line, i);
        skip_ws(line, i);
        if (i >= line.size() || line[i] != ':') {
          fail(lineno_, "expected ':' after key '" + key + "'");
        }
        ++i;
        skip_ws(line, i);
        Value v;
        if (i < line.size() && line[i] == '"') {
          v.text = parse_string(line, i);
          v.is_string = true;
        } else {
          const std::size_t start = i;
          while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
          v.text = line.substr(start, i - start);
          while (!v.text.empty() && (v.text.back() == ' ')) v.text.pop_back();
          if (v.text.empty()) fail(lineno_, "empty value for '" + key + "'");
        }
        kv_.emplace(key, std::move(v));
        skip_ws(line, i);
        if (i < line.size() && line[i] == ',') {
          ++i;
          skip_ws(line, i);
          continue;
        }
        if (i < line.size() && line[i] == '}') {
          ++i;
          break;
        }
        fail(lineno_, "expected ',' or '}'");
      }
    }
    skip_ws(line, i);
    if (i != line.size()) fail(lineno_, "trailing characters after object");
  }

  std::uint64_t u64(const char* key) const {
    const std::string& t = number(key);
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || t[0] == '-') {
      fail(lineno_, std::string("field '") + key + "' is not a u64: " + t);
    }
    return static_cast<std::uint64_t>(v);
  }

  std::int64_t i64(const char* key) const {
    const std::string& t = number(key);
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      fail(lineno_, std::string("field '") + key + "' is not an i64: " + t);
    }
    return static_cast<std::int64_t>(v);
  }

  double f64(const char* key) const {
    const std::string& t = number(key);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
      fail(lineno_, std::string("field '") + key + "' is not a number: " + t);
    }
    return v;
  }

  bool boolean(const char* key) const {
    const Value& v = get(key);
    if (v.is_string || (v.text != "true" && v.text != "false")) {
      fail(lineno_, std::string("field '") + key + "' is not a bool");
    }
    return v.text == "true";
  }

  std::string str(const char* key) const {
    const Value& v = get(key);
    if (!v.is_string) {
      fail(lineno_, std::string("field '") + key + "' is not a string");
    }
    return v.text;
  }

 private:
  struct Value {
    std::string text;  // strings: already unescaped
    bool is_string = false;
  };

  static void skip_ws(const std::string& s, std::size_t& i) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }

  std::string parse_string(const std::string& s, std::size_t& i) const {
    if (i >= s.size() || s[i] != '"') fail(lineno_, "expected '\"'");
    ++i;
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) fail(lineno_, "dangling escape in string");
        const char c = s[i];
        if (c == '"' || c == '\\' || c == '/') {
          out.push_back(c);
        } else if (c == 'u') {
          if (i + 4 >= s.size()) fail(lineno_, "truncated \\u escape");
          const std::string hex = s.substr(i + 1, 4);
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end == nullptr || *end != '\0' || code < 0 || code > 0x7f) {
            fail(lineno_, "unsupported \\u escape: " + hex);
          }
          out.push_back(static_cast<char>(code));
          i += 4;
        } else {
          fail(lineno_, std::string("unsupported escape '\\") + c + "'");
        }
      } else {
        out.push_back(s[i]);
      }
      ++i;
    }
    if (i >= s.size()) fail(lineno_, "unterminated string");
    ++i;  // closing quote
    return out;
  }

  const Value& get(const char* key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) {
      fail(lineno_, std::string("missing field '") + key + "'");
    }
    return it->second;
  }

  const std::string& number(const char* key) const {
    const Value& v = get(key);
    if (v.is_string) {
      fail(lineno_, std::string("field '") + key + "' is not a number");
    }
    return v.text;
  }

  std::size_t lineno_;
  std::map<std::string, Value> kv_;
};

MatrixSignature parse_sig(const FlatJson& j, const char* prefix) {
  const auto key = [&](const char* f) { return std::string(prefix) + f; };
  MatrixSignature s;
  s.rows = static_cast<index_t>(j.i64(key("_rows").c_str()));
  s.cols = static_cast<index_t>(j.i64(key("_cols").c_str()));
  s.nnz = j.i64(key("_nnz").c_str());
  s.alpha_milli = j.i64(key("_alpha_milli").c_str());
  s.degree_digest = j.u64(key("_degree_digest").c_str());
  return s;
}

void append_sig(std::ostringstream& os, const char* prefix,
                const MatrixSignature& s) {
  os << "\"" << prefix << "_rows\":" << s.rows << ",\"" << prefix
     << "_cols\":" << s.cols << ",\"" << prefix << "_nnz\":" << s.nnz
     << ",\"" << prefix << "_alpha_milli\":" << s.alpha_milli << ",\""
     << prefix << "_degree_digest\":" << s.degree_digest;
}

}  // namespace

std::uint64_t WorkloadRecord::payload_checksum(std::uint64_t seed) const {
  std::uint64_t h = seed;
  checksum_mix(h, id);
  checksum_mix(h, drain);
  checksum_mix_i64(h, shard);
  mix_str(h, label);
  mix_sig(h, a);
  mix_sig(h, b);
  checksum_mix_f64(h, submit_s);
  checksum_mix_f64(h, deadline_s);
  checksum_mix_i64(h, pin_ta);
  checksum_mix_i64(h, pin_tb);
  checksum_mix_i64(h, ta);
  checksum_mix_i64(h, tb);
  mix_str(h, status);
  checksum_mix(h, cache_hit ? 1u : 0u);
  checksum_mix(h, degraded ? 1u : 0u);
  checksum_mix(h, deadline_missed ? 1u : 0u);
  checksum_mix_f64(h, latency_s);
  checksum_mix_f64(h, queue_wait_s);
  checksum_mix_f64(h, phase1_s);
  checksum_mix_f64(h, phase2_s);
  checksum_mix_f64(h, phase3_s);
  checksum_mix_f64(h, phase4_s);
  checksum_mix_f64(h, tx_in_s);
  checksum_mix_f64(h, tx_out_s);
  checksum_mix_i64(h, output_nnz);
  checksum_mix_i64(h, faults);
  checksum_mix_i64(h, retries);
  return h;
}

std::string WorkloadRecord::to_jsonl() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"drain\":" << drain << ",\"shard\":" << shard
     << ",\"label\":\"";
  append_escaped(os, label);
  os << "\",";
  append_sig(os, "a", a);
  os << ",";
  append_sig(os, "b", b);
  os << ",\"submit_s\":" << jexact(submit_s)
     << ",\"deadline_s\":" << jexact(deadline_s) << ",\"pin_ta\":" << pin_ta
     << ",\"pin_tb\":" << pin_tb << ",\"ta\":" << ta << ",\"tb\":" << tb
     << ",\"status\":\"";
  append_escaped(os, status);
  os << "\",\"cache_hit\":" << (cache_hit ? "true" : "false")
     << ",\"degraded\":" << (degraded ? "true" : "false")
     << ",\"deadline_missed\":" << (deadline_missed ? "true" : "false")
     << ",\"latency_s\":" << jexact(latency_s)
     << ",\"queue_wait_s\":" << jexact(queue_wait_s)
     << ",\"phase1_s\":" << jexact(phase1_s)
     << ",\"phase2_s\":" << jexact(phase2_s)
     << ",\"phase3_s\":" << jexact(phase3_s)
     << ",\"phase4_s\":" << jexact(phase4_s)
     << ",\"tx_in_s\":" << jexact(tx_in_s)
     << ",\"tx_out_s\":" << jexact(tx_out_s)
     << ",\"output_nnz\":" << output_nnz << ",\"faults\":" << faults
     << ",\"retries\":" << retries << ",\"checksum\":" << checksum << "}";
  return os.str();
}

std::string WorkloadLog::to_jsonl() const {
  std::ostringstream os;
  os << "{\"hh_workload_log\":true,\"version\":" << version
     << ",\"chain_seed\":" << chain_seed
     << ",\"total_appended\":" << total_appended
     << ",\"rotations\":" << rotations << ",\"records\":" << records.size()
     << "}\n";
  for (const WorkloadRecord& r : records) os << r.to_jsonl() << "\n";
  return os.str();
}

WorkloadLog parse_workload_log(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.empty()) {
    throw ParseError("workload log is empty (no header line)");
  }

  const FlatJson header(lines[0], 1);
  if (!header.boolean("hh_workload_log")) {
    fail(1, "not a workload log header");
  }
  WorkloadLog log;
  log.version = static_cast<int>(header.i64("version"));
  if (log.version != kWorkloadLogVersion) {
    std::ostringstream os;
    os << "unsupported workload log version " << log.version << " (expected "
       << kWorkloadLogVersion << ")";
    fail(1, os.str());
  }
  log.chain_seed = header.u64("chain_seed");
  log.total_appended = header.u64("total_appended");
  log.rotations = header.u64("rotations");
  const std::uint64_t declared = header.u64("records");
  if (declared != lines.size() - 1) {
    std::ostringstream os;
    os << "header declares " << declared << " records but the log has "
       << lines.size() - 1 << " (truncated or padded?)";
    fail(1, os.str());
  }

  std::uint64_t prev = log.chain_seed;
  log.records.reserve(lines.size() - 1);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const FlatJson j(lines[i], i + 1);
    WorkloadRecord r;
    r.id = static_cast<std::size_t>(j.u64("id"));
    r.drain = j.u64("drain");
    r.shard = j.i64("shard");
    r.label = j.str("label");
    r.a = parse_sig(j, "a");
    r.b = parse_sig(j, "b");
    r.submit_s = j.f64("submit_s");
    r.deadline_s = j.f64("deadline_s");
    r.pin_ta = j.i64("pin_ta");
    r.pin_tb = j.i64("pin_tb");
    r.ta = j.i64("ta");
    r.tb = j.i64("tb");
    r.status = j.str("status");
    r.cache_hit = j.boolean("cache_hit");
    r.degraded = j.boolean("degraded");
    r.deadline_missed = j.boolean("deadline_missed");
    r.latency_s = j.f64("latency_s");
    r.queue_wait_s = j.f64("queue_wait_s");
    r.phase1_s = j.f64("phase1_s");
    r.phase2_s = j.f64("phase2_s");
    r.phase3_s = j.f64("phase3_s");
    r.phase4_s = j.f64("phase4_s");
    r.tx_in_s = j.f64("tx_in_s");
    r.tx_out_s = j.f64("tx_out_s");
    r.output_nnz = j.i64("output_nnz");
    r.faults = j.i64("faults");
    r.retries = j.i64("retries");
    r.checksum = j.u64("checksum");
    const std::uint64_t want = r.payload_checksum(prev);
    if (want != r.checksum) {
      std::ostringstream os;
      os << "record checksum mismatch (stored " << r.checksum
         << ", recomputed " << want << "): tampered, edited or reordered";
      fail(i + 1, os.str());
    }
    prev = r.checksum;
    log.records.push_back(std::move(r));
  }
  return log;
}

}  // namespace hh
