// ReplayHarness: re-drive a recorded workload through a fresh service (or
// shard group) and judge the outcome.
//
// The flight-recorder log (obs/record.hpp) fixes *what* arrived and *when*:
// signature pairs, per-drain waves, inter-wave gaps on the recorder's
// accumulated clock, deadlines and pinned thresholds. The harness re-creates
// that workload against operands registered by signature and runs it twice —
// untuned (the production baseline) and tuned (autotuner on, seeded from
// ReplayOptions) — so promotion and calibration behaviour can be validated
// against production-shaped arrival patterns instead of synthetic uniform
// waves (ROADMAP: real-workload replay).
//
// Two arrival modes:
//  - open loop: waves are released at their recorded inter-arrival gaps
//    scaled by `speed` (2.0 = twice as fast); a wave whose turn has not come
//    waits, a late wave starts immediately. Latency counts from the
//    scheduled arrival, so queueing delay from compressed gaps is visible.
//  - closed loop: every record is submitted at once and drained
//    as-fast-as-possible — the throughput ceiling of the same work.
//
// Every replayed request is checked for bit-identity against the serial
// run_hh_cpu reference at the thresholds the replay actually chose, and the
// SLO monitor's accounting is reconciled against the BatchReport /
// GroupBatchReport totals. Everything is deterministic: same log + same
// options ⇒ byte-identical ReplayReport JSON and bit-identical outputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "obs/record.hpp"
#include "obs/slo.hpp"
#include "runtime/service.hpp"
#include "shard/sharded_service.hpp"

namespace hh {

struct ReplayOptions {
  bool open_loop = true;  // false = closed loop (one as-fast-as-possible wave)
  double speed = 1.0;     // open loop: recorded gaps are divided by this
  std::uint64_t seed = 0x5eedULL;  // tuned pass's tuner seed (and the group
                                   // seed when shards > 0)
  std::size_t shards = 0;  // 0 = single SpgemmService; > 0 = sharded group
  bool verify_outputs = true;  // bit-identity vs the serial reference
  double metrics_interval_s = 0;  // > 0: registry time series per pass
  std::vector<SloObjective> slo;  // objectives both passes are judged on
  // Base service config for both passes. The harness overrides: admission
  // (unbounded), default deadline (0 — the record's deadline is
  // authoritative), recorder (off: a replay is not re-recorded), slo (the
  // harness's own monitor), and tune.enabled/tune.seed per pass.
  SpgemmService::Config service;
};

/// One pass (untuned or tuned) over the whole log.
struct ReplayRunReport {
  std::string name;  // "untuned" / "tuned"
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t degraded = 0;
  std::size_t deadline_missed = 0;
  std::size_t lost = 0;  // recorded requests that produced no replay result
  std::size_t outcome_divergence = 0;  // deadline outcome differs from log
  std::size_t identity_mismatches = 0;  // outputs != serial reference
  std::int64_t promotions = 0;          // tuner promotions during the pass
  double makespan_s = 0;  // absolute end of the last wave
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  // Chained FNV-1a over every output matrix in log order: two passes with
  // equal digests produced bit-identical outputs.
  std::uint64_t output_digest = 0;
  bool slo_reconciled = true;  // monitor totals match the batch reports
  std::string slo_json;        // SloMonitor end state
  std::string timeline_json;   // metrics time series ("" when disabled)
  // "Why was this request slow": the critical-path explainer for the pass's
  // highest-latency request (obs/critpath.hpp RequestCostBreakdown::explain).
  // "" when the service's critpath profiler is off or the pass is sharded
  // (group drains do not carry per-request breakdowns).
  std::string slowest;

  std::string to_json() const;
};

struct ReplayReport {
  std::size_t records = 0;
  std::size_t waves = 0;
  bool open_loop = true;
  double speed = 1.0;
  std::size_t shards = 0;  // 0 = unsharded
  ReplayRunReport untuned;
  ReplayRunReport tuned;
  // Tuned-vs-untuned quotients (untuned / tuned; > 1 means tuning won).
  double makespan_speedup = 0;
  double p50_speedup = 0;
  double p95_speedup = 0;
  double p99_speedup = 0;

  std::string to_string() const;
  std::string to_json() const;
};

class ReplayHarness {
 public:
  ReplayHarness(const HeteroPlatform& platform, ThreadPool& pool)
      : platform_(platform), pool_(pool) {}

  /// Make `m` available to replays under its signature. The matrix must
  /// outlive the harness. Registering two matrices with equal signatures
  /// keeps the first (they are interchangeable for planning purposes, but
  /// replay identity wants one canonical operand).
  void register_operand(const CsrMatrix* m);

  /// Replay the log through an untuned and a tuned pass. Throws
  /// InvalidArgumentError on an empty log, a record whose signatures were
  /// never registered, or invalid options (speed <= 0).
  ReplayReport replay(const WorkloadLog& log, const ReplayOptions& options);

 private:
  ReplayRunReport run_pass(const WorkloadLog& log,
                           const ReplayOptions& options, bool tuned);
  const CsrMatrix* resolve(const MatrixSignature& sig) const;
  const CsrMatrix& reference(const CsrMatrix* a, const CsrMatrix* b,
                             offset_t ta, offset_t tb);

  const HeteroPlatform& platform_;
  ThreadPool& pool_;
  std::unordered_map<MatrixSignature, const CsrMatrix*, MatrixSignatureHash>
      operands_;
  // Serial-reference cache: (a, b, threshold_a, threshold_b) → product.
  std::map<std::tuple<const void*, const void*, offset_t, offset_t>,
           CsrMatrix>
      references_;
};

}  // namespace hh
