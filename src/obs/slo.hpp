// SloMonitor: named service-level objectives over the request stream.
//
// An objective judges every observed request good or bad:
//  - latency objective (latency_threshold_s > 0): good when the request
//    completed within the threshold;
//  - deadline-hit objective (latency_threshold_s == 0): good when the
//    request completed and did not miss its deadline.
//
// Accounting follows the standard error-budget formulation. With target t
// (the required good fraction), the error budget is (1 - t). Over the
// sliding window of the last `window` requests,
//
//     burn_rate = window_bad_fraction / (1 - t)
//
// — burn 1.0 means bad requests arrive exactly as fast as the budget
// allows; burn 2.0 exhausts the budget in half the window. The remaining
// budget gauge is 1 - burn_rate (negative when overspending). When the
// burn rate crosses `burn_alert` upward the monitor bumps the objective's
// alert counter and drops a kSlo trace instant ("slo-burn-alert"); the
// downward crossing drops "slo-burn-clear".
//
// The monitor is layered on MetricsRegistry via bind_metrics (the PlanCache
// idiom): when bound, every observation refreshes `slo.<name>.*` counters
// and gauges in the service's own registry. Deterministic: observations
// arrive in drain order on the simulated clock, so same-seed runs produce
// byte-identical to_json() renderings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hh {

struct SloObjective {
  std::string name;       // must satisfy valid_metric_name
  double target = 0.999;  // required good fraction, in (0, 1)
  std::size_t window = 256;        // sliding window length (requests)
  double latency_threshold_s = 0;  // 0 = deadline-hit objective
  double burn_alert = 1.0;         // alert when burn_rate crosses this
};

class SloMonitor {
 public:
  /// Validates every objective (name, target range, window, thresholds) and
  /// rejects duplicate names. Throws InvalidArgumentError.
  explicit SloMonitor(std::vector<SloObjective> objectives);

  /// Publish `slo.<name>.*` instruments into `registry` on every
  /// observation (nullptr detaches). The registry must outlive the monitor.
  void bind_metrics(MetricsRegistry* registry) { metrics_ = registry; }
  /// Drop kSlo instants into `trace` on burn-rate crossings (nullptr
  /// detaches).
  void bind_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Feed one finished request. `now_s` is the clock the crossing instants
  /// are stamped with (the request's finish time on the caller's clock).
  void observe(double latency_s, bool completed, bool deadline_missed,
               double now_s);

  std::size_t objectives() const { return objectives_.size(); }
  const SloObjective& objective(std::size_t i) const { return objectives_[i]; }

  std::int64_t observations() const { return observations_; }
  /// Lifetime good/bad counts for objective i (good + bad == observations).
  std::int64_t good(std::size_t i) const { return states_[i].good; }
  std::int64_t bad(std::size_t i) const { return states_[i].bad; }

  double window_bad_fraction(std::size_t i) const;
  double burn_rate(std::size_t i) const;
  double budget_remaining(std::size_t i) const { return 1 - burn_rate(i); }
  bool alerting(std::size_t i) const { return states_[i].alerting; }
  /// Upward burn-alert crossings over the monitor's lifetime.
  std::int64_t alerts(std::size_t i) const { return states_[i].alerts; }

  std::string to_string() const;
  std::string to_json() const;

 private:
  struct State {
    std::deque<bool> window_bad;  // judgement of the last `window` requests
    std::size_t window_bad_count = 0;
    std::int64_t good = 0;
    std::int64_t bad = 0;
    std::int64_t alerts = 0;
    bool alerting = false;
  };

  std::vector<SloObjective> objectives_;
  std::vector<State> states_;
  std::int64_t observations_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace hh
