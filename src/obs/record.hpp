// Workload flight-recorder log format: one JSONL record per served request.
//
// A record is everything needed to re-drive the request later (signature
// pair, submit time, deadline, pinned thresholds) plus everything needed to
// judge the replay against the original (outcome, chosen thresholds,
// measured stage totals, output nnz). The log is:
//
//  - versioned: the first line is a header object carrying the format
//    version, the checksum chain seed, and rotation accounting;
//  - tamper-evident: each record carries a field-chained FNV-1a checksum
//    (fault/checksum.hpp, the same mixing discipline the shard snapshots
//    use) seeded from the previous record's checksum, so editing, dropping
//    or reordering any line breaks verification of everything after it;
//  - exact: doubles render with %.17g, which round-trips bit-for-bit —
//    parse-then-reverify reproduces the writer's checksums exactly.
//
// parse_workload_log() throws ParseError on any malformed, truncated or
// tampered line; a log that parses is byte-trustworthy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/signature.hpp"

namespace hh {

inline constexpr int kWorkloadLogVersion = 1;

struct WorkloadRecord {
  std::size_t id = 0;        // service/group request id
  std::uint64_t drain = 0;   // which drain() served it (the replay wave)
  std::int64_t shard = -1;   // executing shard; -1 for an unsharded service
  std::string label;

  MatrixSignature a;
  MatrixSignature b;  // == a for self products

  double submit_s = 0;    // recorder-clock arrival (accumulated over drains)
  double deadline_s = 0;  // effective relative deadline (0 = none)
  std::int64_t pin_ta = 0;  // caller-pinned thresholds (0 = service-chosen)
  std::int64_t pin_tb = 0;
  std::int64_t ta = 0;  // thresholds the service actually used
  std::int64_t tb = 0;

  std::string status;  // StatusCode string ("ok", "deadline_exceeded", ...)
  bool cache_hit = false;
  bool degraded = false;
  bool deadline_missed = false;

  double latency_s = 0;
  double queue_wait_s = 0;
  double phase1_s = 0;
  double phase2_s = 0;
  double phase3_s = 0;
  double phase4_s = 0;
  double tx_in_s = 0;
  double tx_out_s = 0;
  std::int64_t output_nnz = 0;
  std::int64_t faults = 0;
  std::int64_t retries = 0;

  std::uint64_t checksum = 0;  // payload_checksum(previous record's checksum)

  /// Field-chained FNV-1a over every field above (except checksum itself),
  /// seeded by the previous record's checksum (or the log's chain seed for
  /// the first record).
  std::uint64_t payload_checksum(std::uint64_t seed) const;

  /// One flat JSON object, no trailing newline. Doubles are %.17g.
  std::string to_jsonl() const;
};

/// A parsed (or in-memory) flight-recorder log.
struct WorkloadLog {
  int version = kWorkloadLogVersion;
  // Checksum seed of the first retained record. Starts at kFnv1aOffset;
  // after ring rotation it is the checksum of the last record dropped, so
  // the retained suffix still verifies end-to-end.
  std::uint64_t chain_seed = 0;
  std::uint64_t total_appended = 0;  // lifetime appends, rotations included
  std::uint64_t rotations = 0;       // records dropped by the ring bound
  std::vector<WorkloadRecord> records;

  /// Header line + one line per record, trailing newline included.
  std::string to_jsonl() const;
};

/// Parse a full log (header + records), verifying the checksum chain.
/// Throws ParseError on a malformed header, a malformed or incomplete
/// record line, or any record whose checksum does not match its payload
/// chained from its predecessor.
WorkloadLog parse_workload_log(const std::string& text);

}  // namespace hh
