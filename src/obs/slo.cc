#include "obs/slo.hpp"

#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "util/status.hpp"

namespace hh {
namespace {

std::string num(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

}  // namespace

SloMonitor::SloMonitor(std::vector<SloObjective> objectives)
    : objectives_(std::move(objectives)) {
  std::unordered_set<std::string> seen;
  for (const SloObjective& o : objectives_) {
    if (!valid_metric_name(o.name)) {
      throw InvalidArgumentError("SLO objective name '" + o.name +
                                 "' is not a valid metric name");
    }
    if (!seen.insert(o.name).second) {
      throw InvalidArgumentError("duplicate SLO objective name '" + o.name +
                                 "'");
    }
    if (!(o.target > 0 && o.target < 1)) {
      throw InvalidArgumentError("SLO '" + o.name +
                                 "': target must be in (0, 1)");
    }
    if (o.window == 0) {
      throw InvalidArgumentError("SLO '" + o.name +
                                 "': window must be positive");
    }
    if (o.latency_threshold_s < 0) {
      throw InvalidArgumentError("SLO '" + o.name +
                                 "': latency threshold must be >= 0");
    }
    if (o.burn_alert <= 0) {
      throw InvalidArgumentError("SLO '" + o.name +
                                 "': burn_alert must be positive");
    }
  }
  states_.resize(objectives_.size());
}

double SloMonitor::window_bad_fraction(std::size_t i) const {
  const State& st = states_[i];
  if (st.window_bad.empty()) return 0;
  return static_cast<double>(st.window_bad_count) /
         static_cast<double>(st.window_bad.size());
}

double SloMonitor::burn_rate(std::size_t i) const {
  return window_bad_fraction(i) / (1 - objectives_[i].target);
}

void SloMonitor::observe(double latency_s, bool completed,
                         bool deadline_missed, double now_s) {
  ++observations_;
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    State& st = states_[i];
    const bool is_good =
        o.latency_threshold_s > 0
            ? completed && latency_s <= o.latency_threshold_s
            : completed && !deadline_missed;
    (is_good ? st.good : st.bad)++;
    st.window_bad.push_back(!is_good);
    if (!is_good) ++st.window_bad_count;
    while (st.window_bad.size() > o.window) {
      if (st.window_bad.front()) --st.window_bad_count;
      st.window_bad.pop_front();
    }

    const double burn = burn_rate(i);
    const bool now_alerting = burn >= o.burn_alert;
    const bool rising = now_alerting && !st.alerting;
    const bool clearing = !now_alerting && st.alerting;
    if (rising) ++st.alerts;
    if (trace_ != nullptr && trace_->enabled()) {
      if (rising) {
        trace_->instant(TraceCategory::kSlo, "slo-burn-alert", now_s);
      } else if (clearing) {
        trace_->instant(TraceCategory::kSlo, "slo-burn-clear", now_s);
      }
    }
    st.alerting = now_alerting;

    if (metrics_ != nullptr) {
      const std::string base = "slo." + o.name;
      // Touch every counter so reconciliation can always read a value (a
      // never-incremented counter still renders as 0).
      Counter& good_c = metrics_->counter(base + ".good");
      Counter& bad_c = metrics_->counter(base + ".bad");
      Counter& alerts_c = metrics_->counter(base + ".alerts");
      (is_good ? good_c : bad_c).inc();
      if (rising) alerts_c.inc();
      metrics_->gauge(base + ".burn_rate").set(burn);
      metrics_->gauge(base + ".budget_remaining").set(1 - burn);
      metrics_->gauge(base + ".window_bad_fraction")
          .set(window_bad_fraction(i));
    }
  }
}

std::string SloMonitor::to_string() const {
  std::ostringstream os;
  os << "slo: " << observations_ << " observations\n";
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    const State& st = states_[i];
    os << "  " << o.name << " (target " << num(o.target);
    if (o.latency_threshold_s > 0) {
      os << ", latency <= " << num(o.latency_threshold_s) << " s";
    } else {
      os << ", deadline-hit";
    }
    os << "): " << st.good << " good / " << st.bad << " bad, burn "
       << num(burn_rate(i)) << ", budget " << num(budget_remaining(i))
       << (st.alerting ? " [ALERTING]" : "") << ", " << st.alerts
       << " alert(s)\n";
  }
  return os.str();
}

std::string SloMonitor::to_json() const {
  std::ostringstream os;
  os << "{\"observations\":" << observations_ << ",\"objectives\":[";
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    const State& st = states_[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << o.name << "\",\"target\":" << num(o.target)
       << ",\"window\":" << o.window
       << ",\"latency_threshold_s\":" << num(o.latency_threshold_s)
       << ",\"burn_alert\":" << num(o.burn_alert) << ",\"good\":" << st.good
       << ",\"bad\":" << st.bad
       << ",\"window_bad_fraction\":" << num(window_bad_fraction(i))
       << ",\"burn_rate\":" << num(burn_rate(i))
       << ",\"budget_remaining\":" << num(budget_remaining(i))
       << ",\"alerting\":" << (st.alerting ? "true" : "false")
       << ",\"alerts\":" << st.alerts << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hh
