#include "obs/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "fault/checksum.hpp"
#include "obs/critpath.hpp"
#include "obs/timeseries.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

std::string jexact(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

bool bit_identical(const CsrMatrix& x, const CsrMatrix& y) {
  return x.rows == y.rows && x.cols == y.cols && x.indptr == y.indptr &&
         x.indices == y.indices && x.values == y.values;
}

// [begin, end) index ranges over log.records, one per recorded drain.
std::vector<std::pair<std::size_t, std::size_t>> wave_ranges(
    const WorkloadLog& log) {
  std::vector<std::pair<std::size_t, std::size_t>> waves;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= log.records.size(); ++i) {
    if (i == log.records.size() ||
        log.records[i].drain != log.records[begin].drain) {
      waves.emplace_back(begin, i);
      begin = i;
    }
  }
  return waves;
}

}  // namespace

std::string ReplayRunReport::to_json() const {
  std::ostringstream os;
  os << "{\"name\":\"" << name << "\",\"requests\":" << requests
     << ",\"completed\":" << completed << ",\"degraded\":" << degraded
     << ",\"deadline_missed\":" << deadline_missed << ",\"lost\":" << lost
     << ",\"outcome_divergence\":" << outcome_divergence
     << ",\"identity_mismatches\":" << identity_mismatches
     << ",\"promotions\":" << promotions
     << ",\"makespan_s\":" << jexact(makespan_s)
     << ",\"p50_latency_s\":" << jexact(p50_latency_s)
     << ",\"p95_latency_s\":" << jexact(p95_latency_s)
     << ",\"p99_latency_s\":" << jexact(p99_latency_s)
     << ",\"output_digest\":" << output_digest
     << ",\"slo_reconciled\":" << (slo_reconciled ? "true" : "false")
     << ",\"slo\":" << (slo_json.empty() ? "null" : slo_json)
     << ",\"timeline\":" << (timeline_json.empty() ? "null" : timeline_json)
     << ",\"slowest\":";
  if (slowest.empty()) {
    os << "null";
  } else {
    os << "\"" << slowest << "\"";
  }
  os << "}";
  return os.str();
}

std::string ReplayReport::to_string() const {
  std::ostringstream os;
  os << "replay: " << records << " records over " << waves << " wave(s), "
     << (open_loop ? "open loop" : "closed loop");
  if (open_loop) os << " (speed " << speed << "x)";
  if (shards > 0) os << ", " << shards << " shards";
  os << "\n";
  const auto row = [&](const ReplayRunReport& r) {
    os << "  " << r.name << ": makespan " << ms(r.makespan_s) << ", p50 "
       << ms(r.p50_latency_s) << ", p95 " << ms(r.p95_latency_s) << ", p99 "
       << ms(r.p99_latency_s) << "; " << r.completed << " completed, "
       << r.deadline_missed << " missed, " << r.lost << " lost, "
       << r.identity_mismatches << " identity mismatch(es), " << r.promotions
       << " promotion(s)" << (r.slo_reconciled ? "" : " [SLO MISMATCH]")
       << "\n";
    if (!r.slowest.empty()) os << "    slowest: " << r.slowest << "\n";
  };
  row(untuned);
  row(tuned);
  os << "  tuned vs untuned: makespan " << makespan_speedup << "x, p95 "
     << p95_speedup << "x\n";
  return os.str();
}

std::string ReplayReport::to_json() const {
  std::ostringstream os;
  os << "{\"records\":" << records << ",\"waves\":" << waves
     << ",\"open_loop\":" << (open_loop ? "true" : "false")
     << ",\"speed\":" << jexact(speed) << ",\"shards\":" << shards
     << ",\"untuned\":" << untuned.to_json()
     << ",\"tuned\":" << tuned.to_json()
     << ",\"makespan_speedup\":" << jexact(makespan_speedup)
     << ",\"p50_speedup\":" << jexact(p50_speedup)
     << ",\"p95_speedup\":" << jexact(p95_speedup)
     << ",\"p99_speedup\":" << jexact(p99_speedup) << "}";
  return os.str();
}

void ReplayHarness::register_operand(const CsrMatrix* m) {
  if (m == nullptr) {
    throw InvalidArgumentError("cannot register a null operand");
  }
  operands_.emplace(matrix_signature(*m), m);
}

const CsrMatrix* ReplayHarness::resolve(const MatrixSignature& sig) const {
  const auto it = operands_.find(sig);
  if (it == operands_.end()) {
    throw InvalidArgumentError(
        "replay log references an unregistered operand signature " +
        hh::to_string(sig));
  }
  return it->second;
}

const CsrMatrix& ReplayHarness::reference(const CsrMatrix* a,
                                          const CsrMatrix* b, offset_t ta,
                                          offset_t tb) {
  const auto key = std::make_tuple(static_cast<const void*>(a),
                                   static_cast<const void*>(b), ta, tb);
  auto it = references_.find(key);
  if (it == references_.end()) {
    HhCpuOptions opt;
    opt.threshold_a = ta;
    opt.threshold_b = tb;
    it = references_
             .emplace(key, run_hh_cpu(*a, b != a ? *b : *a, opt, platform_,
                                      pool_)
                               .c)
             .first;
  }
  return it->second;
}

ReplayRunReport ReplayHarness::run_pass(const WorkloadLog& log,
                                        const ReplayOptions& opts,
                                        bool tuned) {
  ReplayRunReport r;
  r.name = tuned ? "tuned" : "untuned";
  r.output_digest = kFnv1aOffset;

  SpgemmService::Config cfg = opts.service;
  cfg.admission_capacity = 0;   // the log already shaped admission
  cfg.default_deadline_s = 0;   // the record's deadline is authoritative
  cfg.recorder = nullptr;       // a replay is not re-recorded
  cfg.tune.enabled = tuned;
  if (tuned) cfg.tune.seed = opts.seed;

  SloMonitor slo(opts.slo);
  cfg.slo = &slo;

  std::optional<SpgemmService> svc;
  std::optional<ShardedSpgemmService> group;
  MetricsRegistry* registry = nullptr;
  if (opts.shards == 0) {
    svc.emplace(platform_, pool_, cfg);
    registry = &svc->metrics();
  } else {
    ShardedSpgemmService::Config gcfg;
    gcfg.shards = opts.shards;
    gcfg.seed = opts.seed;
    gcfg.shard = cfg;
    gcfg.slo = &slo;
    group.emplace(platform_, pool_, gcfg);
    registry = &group->metrics();
  }
  slo.bind_metrics(registry);
  MetricsTimeline timeline(registry, opts.metrics_interval_s);

  const auto waves = opts.open_loop
                         ? wave_ranges(log)
                         : std::vector<std::pair<std::size_t, std::size_t>>{
                               {0, log.records.size()}};
  const double base = log.records.front().submit_s;

  std::vector<double> latencies;
  latencies.reserve(log.records.size());
  double worst_latency = -1;  // replay-clock latency of r.slowest's request
  double clock = 0;
  std::size_t batch_completed = 0;
  std::size_t batch_degraded = 0;
  std::size_t batch_missed = 0;

  for (const auto& [wb, we] : waves) {
    // Scheduled arrival of this wave on the replay clock: the recorded gap
    // from the log's first wave, compressed by the speed factor. A wave
    // whose turn has not come waits for it; a late wave starts immediately.
    const double target =
        opts.open_loop ? (log.records[wb].submit_s - base) / opts.speed : 0;
    const double wave_begin = std::max(clock, target);

    for (std::size_t i = wb; i < we; ++i) {
      const WorkloadRecord& rec = log.records[i];
      const CsrMatrix* a = resolve(rec.a);
      const CsrMatrix* b = rec.b == rec.a ? nullptr : resolve(rec.b);
      SpgemmRequest req;
      req.a = a;
      req.b = b == a ? nullptr : b;
      req.label = rec.label;
      req.deadline_s = rec.deadline_s;
      req.options.threshold_a = static_cast<offset_t>(rec.pin_ta);
      req.options.threshold_b = static_cast<offset_t>(rec.pin_tb);
      if (svc) {
        svc->submit(std::move(req));
      } else {
        group->submit(std::move(req));
      }
    }

    std::vector<RunResult> results;
    std::vector<RequestReport> requests;
    double wave_makespan = 0;
    bool crit_enabled = false;  // this wave carries per-request breakdowns
    CritPathReport crit;
    if (svc) {
      BatchResult br = svc->drain();
      results = std::move(br.results);
      requests = std::move(br.requests);
      wave_makespan = br.batch.makespan_s;
      batch_completed += br.batch.completed;
      batch_degraded += br.batch.degraded;
      batch_missed += br.batch.deadline_missed;
      crit_enabled = br.batch.critpath_enabled;
      crit = std::move(br.batch.critpath);
    } else {
      GroupResult gr = group->drain();
      results = std::move(gr.results);
      requests = std::move(gr.requests);
      wave_makespan = gr.group.makespan_s;
      batch_completed += gr.group.completed;
      batch_degraded += gr.group.degraded;
      batch_missed += gr.group.deadline_missed;
    }

    const std::size_t wave_size = we - wb;
    if (requests.size() < wave_size) r.lost += wave_size - requests.size();
    for (std::size_t i = 0; i < requests.size() && i < wave_size; ++i) {
      const WorkloadRecord& rec = log.records[wb + i];
      const RequestReport& rr = requests[i];
      r.requests++;
      if (rr.status.ok()) r.completed++;
      if (rr.degraded_to_cpu) r.degraded++;
      if (rr.deadline_missed) r.deadline_missed++;
      if (rr.deadline_missed != rec.deadline_missed) r.outcome_divergence++;
      latencies.push_back((wave_begin - target) + rr.latency_s);
      if (crit_enabled && latencies.back() > worst_latency) {
        if (const RequestCostBreakdown* why =
                crit.find_request(rr.request_id)) {
          worst_latency = latencies.back();
          r.slowest = why->explain();
        }
      }

      const CsrMatrix& c = results[i].c;
      checksum_mix(r.output_digest, matrix_checksum(c));
      if (opts.verify_outputs && rr.status.ok()) {
        const CsrMatrix* a = resolve(rec.a);
        const CsrMatrix* b = rec.b == rec.a ? a : resolve(rec.b);
        const CsrMatrix& want = reference(a, b, rr.run.threshold_a,
                                          rr.run.threshold_b);
        if (!bit_identical(want, c)) r.identity_mismatches++;
      }
    }

    clock = wave_begin + wave_makespan;
    if (opts.metrics_interval_s > 0) timeline.maybe_snapshot(clock);
  }
  r.makespan_s = clock;
  r.p50_latency_s = percentile(latencies, 0.50);
  r.p95_latency_s = percentile(latencies, 0.95);
  r.p99_latency_s = percentile(latencies, 0.99);

  if (tuned) {
    if (svc) {
      r.promotions = svc->tuner().promotions();
    } else {
      for (std::size_t s = 0; s < group->shards(); ++s) {
        if (group->alive(s)) {
          r.promotions += group->shard_service(s)->tuner().promotions();
        }
      }
    }
  }

  // ---- Reconciliation: the SLO monitor saw exactly the requests the batch
  // reports account for, every objective's good/bad splits the observation
  // count, the deadline-hit objectives agree with the reports' missed
  // totals, and the registry's slo.* counters mirror the monitor.
  r.slo_reconciled = slo.observations() ==
                     static_cast<std::int64_t>(batch_completed + batch_missed);
  r.slo_reconciled =
      r.slo_reconciled &&
      slo.observations() == static_cast<std::int64_t>(r.requests);
  for (std::size_t i = 0; i < slo.objectives(); ++i) {
    if (slo.good(i) + slo.bad(i) != slo.observations()) {
      r.slo_reconciled = false;
    }
    if (slo.objective(i).latency_threshold_s == 0 &&
        slo.bad(i) != static_cast<std::int64_t>(batch_missed)) {
      r.slo_reconciled = false;
    }
    const std::string base_name = "slo." + slo.objective(i).name;
    if (slo.observations() > 0 &&
        (registry->counter(base_name + ".good").value() != slo.good(i) ||
         registry->counter(base_name + ".bad").value() != slo.bad(i))) {
      r.slo_reconciled = false;
    }
  }
  (void)batch_degraded;
  r.slo_json = slo.to_json();

  if (opts.metrics_interval_s > 0) {
    timeline.snapshot(clock);  // end-state sample
    r.timeline_json = timeline.to_json();
  }
  return r;
}

ReplayReport ReplayHarness::replay(const WorkloadLog& log,
                                   const ReplayOptions& opts) {
  if (log.records.empty()) {
    throw InvalidArgumentError("cannot replay an empty workload log");
  }
  if (opts.speed <= 0) {
    throw InvalidArgumentError("replay speed must be positive");
  }

  ReplayReport rep;
  rep.records = log.records.size();
  rep.waves = opts.open_loop ? wave_ranges(log).size() : 1;
  rep.open_loop = opts.open_loop;
  rep.speed = opts.speed;
  rep.shards = opts.shards;
  rep.untuned = run_pass(log, opts, /*tuned=*/false);
  rep.tuned = run_pass(log, opts, /*tuned=*/true);

  const auto quotient = [](double a, double b) { return b > 0 ? a / b : 0; };
  rep.makespan_speedup =
      quotient(rep.untuned.makespan_s, rep.tuned.makespan_s);
  rep.p50_speedup = quotient(rep.untuned.p50_latency_s, rep.tuned.p50_latency_s);
  rep.p95_speedup = quotient(rep.untuned.p95_latency_s, rep.tuned.p95_latency_s);
  rep.p99_speedup = quotient(rep.untuned.p99_latency_s, rep.tuned.p99_latency_s);
  return rep;
}

}  // namespace hh
