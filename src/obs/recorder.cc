#include "obs/recorder.hpp"

#include <fstream>

#include "fault/checksum.hpp"
#include "util/check.hpp"

namespace hh {

WorkloadRecorder::WorkloadRecorder(Config config)
    : config_(config),
      chain_seed_(kFnv1aOffset),
      last_checksum_(kFnv1aOffset) {
  HH_CHECK_MSG(config_.max_records > 0,
               "workload recorder ring bound must be positive");
}

void WorkloadRecorder::append(WorkloadRecord record) {
  record.drain = drain_;
  record.checksum = record.payload_checksum(last_checksum_);
  last_checksum_ = record.checksum;
  records_.push_back(std::move(record));
  ++total_appended_;
  while (records_.size() > config_.max_records) {
    // The second-oldest record was chained from the oldest one's checksum,
    // so that checksum becomes the new chain seed and the suffix still
    // verifies.
    chain_seed_ = records_.front().checksum;
    records_.pop_front();
    ++rotations_;
  }
}

void WorkloadRecorder::advance_clock(double makespan_s) {
  clock_s_ += makespan_s;
  ++drain_;
}

WorkloadLog WorkloadRecorder::log() const {
  WorkloadLog log;
  log.chain_seed = chain_seed_;
  log.total_appended = total_appended_;
  log.rotations = rotations_;
  log.records.assign(records_.begin(), records_.end());
  return log;
}

bool WorkloadRecorder::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << log().to_jsonl();
  return static_cast<bool>(out);
}

}  // namespace hh
