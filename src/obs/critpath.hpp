// Critical-path profiler: per-request latency attribution and batch-level
// bottleneck analysis for the heterogeneous SpGEMM runtime.
//
// The paper's heterogeneous split (CPU head rows + GPU tail, §III) wins only
// when neither device — nor the PCIe link — becomes the serialization point;
// Liu & Vinter (arXiv:1504.05022) and Deveci et al. (arXiv:1801.03065) both
// find that imbalance and transfer overheads, not kernel speed, dominate
// heterogeneous SpGEMM. This module answers the two questions the batch
// aggregates cannot:
//
//  1. "Why was request R slow?" — RequestCostBreakdown decomposes each
//     request's latency into admission/queue wait, per-resource service
//     time, per-resource queueing delay behind *other* requests on the same
//     resource (granted start − dependence-allowed start, summed over the
//     request's placements), fault/retry overhead and backoff wait.
//
//  2. "What bound the batch?" — compute_critical_path() walks the
//     dependency chain backward from the placement that ends at the
//     makespan. Each step either (a) covers a placement, charging its span
//     to its resource; (b) hops to the same-resource predecessor when the
//     step started later than its dependences allowed (resource
//     contention); (c) hops to the placement ending where the step became
//     runnable (a dependence edge — preferring the same request); or
//     (d) crosses an idle gap (nothing ran anywhere: admission gaps,
//     retry backoff windows). The attributed segments tile [0, makespan)
//     exactly, so per-lane seconds sum to the makespan by construction
//     (the acceptance bound is 1e-9).
//
// Inputs come from runtime/placement.hpp provenance records — no trace-span
// re-parsing — so the profiler works even when tracing is compiled out.
// Everything is deterministic: ties break on (earlier log order), and both
// renderings use fixed field order with %.9g numbers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/placement.hpp"
#include "runtime/resource.hpp"

namespace hh {

/// Attribution lanes: the four resources plus "idle" (no placement anywhere
/// covered this part of the makespan — admission gap or retry backoff).
inline constexpr int kIdleLane = kResourceCount;
inline constexpr int kCritLaneCount = kResourceCount + 1;

/// "cpu" / "gpu" / "h2d" / "d2h" / "idle".
const char* crit_lane_name(int lane);

/// One step of the batch critical chain, chronological order.
struct CritPathStep {
  const char* stage = "idle";  // placement stage name; "idle" for gaps
  int lane = kIdleLane;        // Resource index, or kIdleLane
  std::size_t request_id = kNoPlacementRequest;
  int wave = kNoWave;
  double start_s = 0;          // covered segment of the makespan
  double end_s = 0;
  double attributed_s = 0;     // end_s - start_s (charged to `lane`)
  double queue_delay_s = 0;    // granted - requested for the placement; 0 for
                               // idle gaps
};

/// Per-request latency decomposition.
struct RequestCostBreakdown {
  std::size_t request_id = kNoPlacementRequest;
  std::string label;
  double queue_wait_s = 0;   // admission: first placement start - submit
  double latency_s = 0;      // finish - submit (RequestReport)
  double backoff_s = 0;      // retry backoff the request waited through
  double fault_s = 0;        // time burnt in failed/corrupt/aborted attempts
  double crit_path_s = 0;    // seconds of the batch critical chain charged
                             // to this request's placements
  double service_s[kResourceCount] = {0, 0, 0, 0};   // occupancy per lane
  double queueing_s[kResourceCount] = {0, 0, 0, 0};  // granted - requested,
                                                     // summed per lane
  /// Lane whose service+queueing dominates this request's latency;
  /// kResourceCount means admission queue wait dominated everything.
  int bottleneck_lane() const;
  /// One deterministic human-readable sentence: "why was this request slow".
  std::string explain() const;
};

/// Per-wave rollup of critical-chain attribution (wave executor only; empty
/// when the batch ran without waves — placements then carry kNoWave).
struct CritPathWaveSlice {
  int wave_index = kNoWave;
  double attributed_s[kCritLaneCount] = {0, 0, 0, 0, 0};
};

/// Scalar rollup that survives shard/group accumulation: total makespan
/// charged per lane. Shard reports carry one of these per shard; the group
/// report sums them (shard "critical seconds", not wall time — shards drain
/// on independent clocks).
struct CritPathSummary {
  double makespan_s = 0;
  double attributed_s[kCritLaneCount] = {0, 0, 0, 0, 0};

  int bottleneck_lane() const;
  void accumulate(const CritPathSummary& other);
  std::string to_string() const;
  std::string to_json() const;
};

/// Full critical-path report for one drain.
struct CritPathReport {
  double makespan_s = 0;
  double attributed_s[kCritLaneCount] = {0, 0, 0, 0, 0};
  std::vector<CritPathStep> steps;              // chronological chain
  std::vector<RequestCostBreakdown> requests;   // ascending request_id order
                                                // (input order preserved)
  std::vector<CritPathWaveSlice> waves;         // ascending wave_index

  int bottleneck_lane() const;
  CritPathSummary summary() const;
  /// Breakdown for `id`, or nullptr when unknown.
  const RequestCostBreakdown* find_request(std::size_t id) const;

  std::string to_string() const;
  std::string to_json() const;
};

/// Per-request metadata the placement log cannot know (service accounting).
struct CritPathRequestInfo {
  std::size_t request_id = kNoPlacementRequest;
  std::string label;
  double queue_wait_s = 0;
  double latency_s = 0;
  double backoff_s = 0;
};

/// Extract the critical chain and per-request decomposition from one drain's
/// placement provenance. `makespan_s` is the drain makespan (max placement
/// end); placements may arrive in any order. Deterministic.
CritPathReport compute_critical_path(
    const std::vector<Placement>& placements, double makespan_s,
    const std::vector<CritPathRequestInfo>& request_infos);

}  // namespace hh
