// WorkloadRecorder: the flight recorder the services append to.
//
// Attach one via SpgemmService::Config::recorder (or the sharded group's
// Config::recorder) and every served request lands here as one
// WorkloadRecord (obs/record.hpp), checksum-chained to its predecessor.
// The recorder keeps:
//
//  - its own accumulated clock: each drain() runs on a batch-local clock
//    starting at 0, so the recorder adds the makespans of all previous
//    drains to produce monotone submit timestamps across the service's
//    lifetime — the inter-arrival structure the replay harness re-creates;
//  - a drain counter stamped on every record: records sharing a drain index
//    form one replay wave;
//  - a bounded ring: beyond Config::max_records the oldest record is
//    dropped and the chain seed moves up to the dropped record's checksum,
//    so the retained suffix still verifies end-to-end.
//
// The recorder is not thread-safe, matching the single-threaded drain()
// that feeds it. It must outlive any service configured with it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "obs/record.hpp"

namespace hh {

class WorkloadRecorder {
 public:
  struct Config {
    std::size_t max_records = 4096;  // ring bound; 0 is invalid
  };

  explicit WorkloadRecorder(Config config);
  WorkloadRecorder() : WorkloadRecorder(Config{}) {}

  /// Append one record. The recorder stamps the drain index and the chained
  /// checksum; every other field is the caller's. Rotates the ring when the
  /// bound is exceeded.
  void append(WorkloadRecord record);

  /// Advance the accumulated clock past a finished drain and open the next
  /// wave. Services call this once per drain() with the batch makespan.
  void advance_clock(double makespan_s);

  /// Accumulated clock: sum of all finished drains' makespans. Records
  /// appended now carry submit_s = clock() + their drain-local submit.
  double clock() const { return clock_s_; }
  /// Index of the drain currently being recorded (0-based).
  std::uint64_t drain() const { return drain_; }

  std::size_t size() const { return records_.size(); }
  std::uint64_t total_appended() const { return total_appended_; }
  std::uint64_t rotations() const { return rotations_; }
  const std::deque<WorkloadRecord>& records() const { return records_; }

  /// Assemble the current ring contents as a verifiable WorkloadLog.
  WorkloadLog log() const;

  /// log().to_jsonl() written to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  Config config_;
  std::deque<WorkloadRecord> records_;
  std::uint64_t chain_seed_;     // seed of the first retained record
  std::uint64_t last_checksum_;  // checksum of the newest record
  std::uint64_t total_appended_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t drain_ = 0;
  double clock_s_ = 0;
};

}  // namespace hh
