#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace hh {

namespace {

// %.9g matches every other deterministic report rendering in the repo.
std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string pct(double num, double den) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", den > 0 ? 100.0 * num / den : 0.0);
  return buf;
}

bool ends_with(const char* s, const char* suffix) {
  const std::size_t n = std::strlen(s);
  const std::size_t m = std::strlen(suffix);
  return n >= m && std::strcmp(s + (n - m), suffix) == 0;
}

// A placement whose span was burnt by an injected fault: failed transfer
// attempts ("h2d-input-fault", "wave-h2d-input-fault", "d2h-tuples-fault")
// and aborted kernels ("phase2-gpu-abort", "phase3-gpu-abort").
bool is_fault_stage(const char* stage) {
  return ends_with(stage, "-fault") || ends_with(stage, "-abort");
}

long long req_json_id(std::size_t id) {
  return id == kNoPlacementRequest ? -1 : static_cast<long long>(id);
}

int argmax_lane(const double (&v)[kCritLaneCount]) {
  int best = 0;
  for (int i = 1; i < kCritLaneCount; ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace

const char* crit_lane_name(int lane) {
  switch (lane) {
    case 0: return "cpu";
    case 1: return "gpu";
    case 2: return "h2d";
    case 3: return "d2h";
    case kIdleLane: return "idle";
    default: return "?";
  }
}

int RequestCostBreakdown::bottleneck_lane() const {
  // Per-lane cost as the request experienced it: occupancy plus the time its
  // stages sat runnable behind other requests on the same resource. Lane
  // kResourceCount stands for admission queue wait.
  double cost[kCritLaneCount];
  for (int i = 0; i < kResourceCount; ++i) cost[i] = service_s[i] + queueing_s[i];
  cost[kIdleLane] = queue_wait_s;
  return argmax_lane(cost);
}

std::string RequestCostBreakdown::explain() const {
  const int lane = bottleneck_lane();
  std::ostringstream os;
  os << "request " << req_json_id(request_id);
  if (!label.empty()) os << " (" << label << ")";
  os << ": latency " << jnum(latency_s) << " s; bottleneck ";
  if (lane == kIdleLane) {
    os << "admission-wait (" << jnum(queue_wait_s) << " s in queue)";
  } else {
    os << crit_lane_name(lane) << " (service " << jnum(service_s[lane])
       << " s, queueing " << jnum(queueing_s[lane]) << " s)";
  }
  os << "; queue wait " << jnum(queue_wait_s) << " s; fault overhead "
     << jnum(fault_s) << " s; backoff " << jnum(backoff_s)
     << " s; on batch critical path " << jnum(crit_path_s) << " s";
  return os.str();
}

int CritPathSummary::bottleneck_lane() const { return argmax_lane(attributed_s); }

void CritPathSummary::accumulate(const CritPathSummary& other) {
  makespan_s += other.makespan_s;
  for (int i = 0; i < kCritLaneCount; ++i) {
    attributed_s[i] += other.attributed_s[i];
  }
}

std::string CritPathSummary::to_string() const {
  std::ostringstream os;
  os << "bottleneck " << crit_lane_name(bottleneck_lane()) << ";";
  for (int i = 0; i < kCritLaneCount; ++i) {
    os << " " << crit_lane_name(i) << " " << pct(attributed_s[i], makespan_s);
  }
  os << " of " << jnum(makespan_s) << " s";
  return os.str();
}

std::string CritPathSummary::to_json() const {
  std::ostringstream os;
  os << "{\"makespan_s\":" << jnum(makespan_s);
  for (int i = 0; i < kCritLaneCount; ++i) {
    os << ",\"" << crit_lane_name(i) << "\":" << jnum(attributed_s[i]);
  }
  os << ",\"bottleneck\":\"" << crit_lane_name(bottleneck_lane()) << "\"}";
  return os.str();
}

int CritPathReport::bottleneck_lane() const { return argmax_lane(attributed_s); }

CritPathSummary CritPathReport::summary() const {
  CritPathSummary s;
  s.makespan_s = makespan_s;
  for (int i = 0; i < kCritLaneCount; ++i) s.attributed_s[i] = attributed_s[i];
  return s;
}

const RequestCostBreakdown* CritPathReport::find_request(std::size_t id) const {
  for (const RequestCostBreakdown& b : requests) {
    if (b.request_id == id) return &b;
  }
  return nullptr;
}

std::string CritPathReport::to_string() const {
  std::ostringstream os;
  os << "bottleneck " << crit_lane_name(bottleneck_lane()) << ";";
  for (int i = 0; i < kCritLaneCount; ++i) {
    os << " " << crit_lane_name(i) << " " << pct(attributed_s[i], makespan_s);
  }
  os << " of " << jnum(makespan_s) << " s makespan; chain " << steps.size()
     << " steps";
  return os.str();
}

std::string CritPathReport::to_json() const {
  std::ostringstream os;
  os << "{\"makespan_s\":" << jnum(makespan_s) << ",\"attributed_s\":{";
  for (int i = 0; i < kCritLaneCount; ++i) {
    os << (i ? "," : "") << "\"" << crit_lane_name(i)
       << "\":" << jnum(attributed_s[i]);
  }
  os << "},\"bottleneck\":\"" << crit_lane_name(bottleneck_lane())
     << "\",\"steps\":[";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const CritPathStep& s = steps[i];
    os << (i ? "," : "") << "{\"stage\":\"" << s.stage << "\",\"lane\":\""
       << crit_lane_name(s.lane) << "\",\"request\":" << req_json_id(s.request_id)
       << ",\"wave_index\":" << s.wave << ",\"start_s\":" << jnum(s.start_s)
       << ",\"end_s\":" << jnum(s.end_s)
       << ",\"attributed_s\":" << jnum(s.attributed_s)
       << ",\"queue_delay_s\":" << jnum(s.queue_delay_s) << "}";
  }
  os << "],\"requests\":[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RequestCostBreakdown& b = requests[i];
    const int lane = b.bottleneck_lane();
    os << (i ? "," : "") << "{\"request_id\":" << req_json_id(b.request_id)
       << ",\"label\":\"" << b.label << "\",\"bottleneck\":\""
       << (lane == kIdleLane ? "wait" : crit_lane_name(lane))
       << "\",\"queue_wait_s\":" << jnum(b.queue_wait_s)
       << ",\"latency_s\":" << jnum(b.latency_s)
       << ",\"backoff_s\":" << jnum(b.backoff_s)
       << ",\"fault_s\":" << jnum(b.fault_s)
       << ",\"crit_path_s\":" << jnum(b.crit_path_s);
    for (int r = 0; r < kResourceCount; ++r) {
      os << ",\"" << crit_lane_name(r) << "_service_s\":" << jnum(b.service_s[r])
         << ",\"" << crit_lane_name(r)
         << "_queueing_s\":" << jnum(b.queueing_s[r]);
    }
    os << "}";
  }
  os << "],\"waves\":[";
  for (std::size_t i = 0; i < waves.size(); ++i) {
    const CritPathWaveSlice& w = waves[i];
    os << (i ? "," : "") << "{\"wave_index\":" << w.wave_index;
    for (int r = 0; r < kCritLaneCount; ++r) {
      os << ",\"" << crit_lane_name(r) << "\":" << jnum(w.attributed_s[r]);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

CritPathReport compute_critical_path(
    const std::vector<Placement>& placements, double makespan_s,
    const std::vector<CritPathRequestInfo>& request_infos) {
  CritPathReport r;
  r.makespan_s = makespan_s;

  // ---- Per-request decomposition: placement occupancy and queueing delay
  // folded onto the service-side accounting (queue wait, latency, backoff).
  std::unordered_map<std::size_t, std::size_t> breakdown_of;
  r.requests.reserve(request_infos.size());
  for (const CritPathRequestInfo& info : request_infos) {
    RequestCostBreakdown b;
    b.request_id = info.request_id;
    b.label = info.label;
    b.queue_wait_s = info.queue_wait_s;
    b.latency_s = info.latency_s;
    b.backoff_s = info.backoff_s;
    breakdown_of.emplace(info.request_id, r.requests.size());
    r.requests.push_back(std::move(b));
  }
  for (const Placement& p : placements) {
    const auto it = breakdown_of.find(p.request_id);
    if (it == breakdown_of.end()) continue;
    RequestCostBreakdown& b = r.requests[it->second];
    const int lane = static_cast<int>(p.resource);
    b.service_s[lane] += p.duration_s();
    b.queueing_s[lane] += std::max(0.0, p.queue_delay_s());
    if (is_fault_stage(p.stage)) b.fault_s += p.duration_s();
  }

  if (makespan_s <= 0 || placements.empty()) return r;

  // ---- Backward dependency walk from the makespan. Each iteration either
  // covers the placement ending at the cursor (charging [start, cursor) to
  // its resource) or crosses an idle gap down to the latest earlier
  // placement end. The cursor strictly decreases, so the attributed
  // segments tile [0, makespan) exactly and the walk terminates.
  const double eps = std::max(1e-15, makespan_s * 1e-12);
  constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  // Preference for the next link: after a step that started later than its
  // dependences allowed, the binding edge is resource contention — prefer
  // the same-resource predecessor that held the resource. Otherwise prefer
  // the same request's placement (the dependence edge). Ties break on log
  // order (earliest wins) for determinism.
  auto find_ending_at = [&](double t, int prefer_resource,
                            std::size_t prefer_request) -> std::size_t {
    std::size_t best = kNpos;
    int best_rank = 3;
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const Placement& p = placements[i];
      if (p.end_s < t - eps || p.end_s > t + eps) continue;
      if (p.start_s >= t) continue;  // must make progress
      int rank = 2;
      if (prefer_resource >= 0 && static_cast<int>(p.resource) == prefer_resource) {
        rank = 0;
      } else if (prefer_request != kNoPlacementRequest &&
                 p.request_id == prefer_request) {
        rank = 1;
      }
      if (rank < best_rank) {
        best = i;
        best_rank = rank;
      }
    }
    return best;
  };

  double cursor = makespan_s;
  int prefer_resource = -1;
  std::size_t prefer_request = kNoPlacementRequest;
  std::vector<CritPathStep> chain;  // built backward, reversed below
  const std::size_t max_steps = 4 * placements.size() + 16;
  while (cursor > eps) {
    HH_CHECK_MSG(chain.size() < max_steps,
                 "critical-path walk failed to converge");
    const std::size_t idx = find_ending_at(cursor, prefer_resource,
                                           prefer_request);
    if (idx == kNpos) {
      // Idle gap: nothing ends at the cursor, so nothing the cursor-side
      // work waited on was running — admission gap or retry backoff. Cross
      // down to the latest earlier placement end.
      double lo = 0;
      for (const Placement& p : placements) {
        if (p.end_s < cursor - eps) lo = std::max(lo, p.end_s);
      }
      CritPathStep st;
      st.start_s = lo;
      st.end_s = cursor;
      st.attributed_s = cursor - lo;
      chain.push_back(st);
      cursor = lo;
      prefer_resource = -1;
      prefer_request = kNoPlacementRequest;
      continue;
    }
    const Placement& p = placements[idx];
    CritPathStep st;
    st.stage = p.stage;
    st.lane = static_cast<int>(p.resource);
    st.request_id = p.request_id;
    st.wave = p.wave;
    st.start_s = p.start_s;
    st.end_s = cursor;
    st.attributed_s = cursor - p.start_s;
    st.queue_delay_s = std::max(0.0, p.queue_delay_s());
    chain.push_back(st);
    cursor = p.start_s;
    if (p.start_s > p.requested_s + eps) {
      // The stage was runnable earlier but its resource was occupied: the
      // chain continues through whoever held the resource.
      prefer_resource = static_cast<int>(p.resource);
      prefer_request = kNoPlacementRequest;
    } else {
      prefer_resource = -1;
      prefer_request = p.request_id;
    }
  }

  std::reverse(chain.begin(), chain.end());
  r.steps = std::move(chain);

  // ---- Rollups from the chain.
  for (const CritPathStep& s : r.steps) {
    r.attributed_s[s.lane] += s.attributed_s;
    const auto it = breakdown_of.find(s.request_id);
    if (it != breakdown_of.end()) {
      r.requests[it->second].crit_path_s += s.attributed_s;
    }
    if (s.wave != kNoWave) {
      auto w = std::find_if(
          r.waves.begin(), r.waves.end(),
          [&](const CritPathWaveSlice& ws) { return ws.wave_index == s.wave; });
      if (w == r.waves.end()) {
        CritPathWaveSlice ws;
        ws.wave_index = s.wave;
        r.waves.push_back(ws);
        w = r.waves.end() - 1;
      }
      w->attributed_s[s.lane] += s.attributed_s;
    }
  }
  std::sort(r.waves.begin(), r.waves.end(),
            [](const CritPathWaveSlice& a, const CritPathWaveSlice& b) {
              return a.wave_index < b.wave_index;
            });
  return r;
}

}  // namespace hh
