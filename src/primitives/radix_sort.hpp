// LSD radix sort on 64-bit keys with an index payload.
//
// Phase IV packs each output tuple's (row, col) into one 64-bit key
// (row in the high 32 bits) so that sorting groups like-tuples and orders
// rows, then columns — exactly the merge order Fig. 4 of the paper shows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace hh {

/// Pack (r, c) so that key order == lexicographic (r, c) order.
inline std::uint64_t pack_rc(index_t r, index_t c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
}
inline index_t unpack_row(std::uint64_t key) {
  return static_cast<index_t>(key >> 32);
}
inline index_t unpack_col(std::uint64_t key) {
  return static_cast<index_t>(key & 0xffffffffULL);
}

/// Stable LSD radix sort of `keys`; `payload[i]` follows keys[i].
/// Byte passes are skipped when all keys share that byte (common for
/// matrices much smaller than 2^32 rows).
void radix_sort_kv(std::vector<std::uint64_t>& keys,
                   std::vector<std::uint32_t>& payload);

/// Returns the permutation that sorts `keys` (keys left untouched).
std::vector<std::uint32_t> radix_sort_permutation(
    std::span<const std::uint64_t> keys);

}  // namespace hh
