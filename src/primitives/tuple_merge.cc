#include "primitives/tuple_merge.hpp"

#include "primitives/radix_sort.hpp"
#include "primitives/segmented_reduce.hpp"
#include "util/check.hpp"

namespace hh {

CsrMatrix merged_coo_to_csr(const CooMatrix& coo, MergeStats* stats) {
  return merged_coo_to_csr(coo, ThreadPool::global(), stats);
}

CsrMatrix merged_coo_to_csr(const CooMatrix& coo, ThreadPool& pool,
                            MergeStats* stats) {
  HH_CHECK(coo.r.size() == coo.c.size() && coo.c.size() == coo.v.size());
  const std::size_t n = coo.nnz();

  // Pack (r, c) into sortable keys; payload points back at the values.
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = pack_rc(coo.r[i], coo.c[i]);
    payload[i] = static_cast<std::uint32_t>(i);
  }
  radix_sort_kv(keys, payload);

  std::vector<value_t> sorted_vals(n);
  for (std::size_t i = 0; i < n; ++i) sorted_vals[i] = coo.v[payload[i]];

  // Mark + scan + per-master-index reduction (paper Fig. 4).
  SegmentedReduceResult red = segmented_reduce(keys, sorted_vals, pool);

  if (stats != nullptr) {
    stats->tuples_in = static_cast<std::int64_t>(n);
    stats->tuples_out = static_cast<std::int64_t>(red.unique_keys.size());
  }

  CsrMatrix out(coo.rows, coo.cols);
  out.indices.resize(red.unique_keys.size());
  out.values = std::move(red.sums);
  for (std::size_t i = 0; i < red.unique_keys.size(); ++i) {
    const index_t r = unpack_row(red.unique_keys[i]);
    HH_CHECK(r >= 0 && r < coo.rows);
    out.indptr[r + 1]++;
    out.indices[i] = unpack_col(red.unique_keys[i]);
  }
  for (index_t r = 0; r < coo.rows; ++r) out.indptr[r + 1] += out.indptr[r];
  return out;
}

}  // namespace hh
