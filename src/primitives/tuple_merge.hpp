// Phase IV of Algorithm HH-CPU: combine the ⟨r, c, v⟩ tuples produced by the
// four partial products into the final CSR matrix (paper §III-D, Fig. 4).
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace hh {

/// Cost-relevant statistics of a merge, consumed by the device models.
struct MergeStats {
  std::int64_t tuples_in = 0;   // tuples before combining
  std::int64_t tuples_out = 0;  // distinct (r, c) pairs
};

/// Sort tuples by (r, c), sum like-tuples, build CSR. Deterministic.
CsrMatrix merged_coo_to_csr(const CooMatrix& coo, MergeStats* stats = nullptr);
CsrMatrix merged_coo_to_csr(const CooMatrix& coo, ThreadPool& pool,
                            MergeStats* stats = nullptr);

}  // namespace hh
