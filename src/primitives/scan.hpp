// Prefix-sum primitives. The paper's Phase IV uses a mark-and-scan technique
// to find "master indices" of like-tuples (§III-D); these scans are the
// building block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/thread_pool.hpp"

namespace hh {

/// out[i] = sum of in[0..i). Returns the total. out may alias in.
std::int64_t exclusive_scan(std::span<const std::int64_t> in,
                            std::span<std::int64_t> out);

/// out[i] = sum of in[0..i]. out may alias in.
void inclusive_scan(std::span<const std::int64_t> in,
                    std::span<std::int64_t> out);

/// Two-pass parallel exclusive scan (block sums + block offset fixup).
/// Equivalent to exclusive_scan; used when n is large.
std::int64_t parallel_exclusive_scan(std::span<const std::int64_t> in,
                                     std::span<std::int64_t> out,
                                     ThreadPool& pool);

}  // namespace hh
