#include "primitives/radix_sort.hpp"

#include <array>
#include <numeric>

#include "util/check.hpp"

namespace hh {
namespace {

// One counting pass over byte `shift/8`. Returns false (and does nothing)
// if every key has the same byte there, true after scattering otherwise.
bool radix_pass(std::vector<std::uint64_t>& keys,
                std::vector<std::uint32_t>& payload,
                std::vector<std::uint64_t>& keys_tmp,
                std::vector<std::uint32_t>& payload_tmp, int shift) {
  std::array<std::size_t, 256> count{};
  for (std::uint64_t k : keys) count[(k >> shift) & 0xff]++;
  // Skip degenerate passes: all keys in one bucket.
  for (std::size_t b = 0; b < 256; ++b) {
    if (count[b] == keys.size()) return false;
  }
  std::array<std::size_t, 256> offset{};
  std::size_t acc = 0;
  for (std::size_t b = 0; b < 256; ++b) {
    offset[b] = acc;
    acc += count[b];
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t dst = offset[(keys[i] >> shift) & 0xff]++;
    keys_tmp[dst] = keys[i];
    payload_tmp[dst] = payload[i];
  }
  keys.swap(keys_tmp);
  payload.swap(payload_tmp);
  return true;
}

}  // namespace

void radix_sort_kv(std::vector<std::uint64_t>& keys,
                   std::vector<std::uint32_t>& payload) {
  HH_CHECK(keys.size() == payload.size());
  if (keys.size() <= 1) return;
  std::vector<std::uint64_t> keys_tmp(keys.size());
  std::vector<std::uint32_t> payload_tmp(payload.size());
  for (int pass = 0; pass < 8; ++pass) {
    radix_pass(keys, payload, keys_tmp, payload_tmp, pass * 8);
  }
}

std::vector<std::uint32_t> radix_sort_permutation(
    std::span<const std::uint64_t> keys) {
  std::vector<std::uint64_t> k(keys.begin(), keys.end());
  std::vector<std::uint32_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0u);
  radix_sort_kv(k, perm);
  return perm;
}

}  // namespace hh
