#include "primitives/segmented_reduce.hpp"

#include <algorithm>

#include "primitives/scan.hpp"
#include "util/check.hpp"

namespace hh {

std::vector<std::int64_t> mark_segment_heads(
    std::span<const std::uint64_t> keys) {
  std::vector<std::int64_t> mark(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    mark[i] = (i == 0 || keys[i] != keys[i - 1]) ? 1 : 0;
  }
  return mark;
}

SegmentedReduceResult segmented_reduce(std::span<const std::uint64_t> keys,
                                       std::span<const value_t> values,
                                       ThreadPool& pool) {
  HH_CHECK(keys.size() == values.size());
  SegmentedReduceResult out;
  if (keys.empty()) return out;

  // Step 1+2: mark heads and scan to get each run's dense output slot.
  std::vector<std::int64_t> slot = mark_segment_heads(keys);
  const std::int64_t runs = parallel_exclusive_scan(slot, slot, pool);
  // After the exclusive scan, slot[i] at a run head equals the number of
  // heads before i — i.e. the run's dense output index.
  out.unique_keys.resize(static_cast<std::size_t>(runs));
  out.sums.assign(static_cast<std::size_t>(runs), value_t{0});

  // Step 3: one logical thread per master index. We parallelize over
  // elements; each run is summed by the thread-block that owns its head.
  // Runs spanning a block boundary are completed by walking forward from the
  // head, which only the head's owner does — so no atomics are needed.
  const auto n = static_cast<std::int64_t>(keys.size());
  pool.parallel_for(n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const bool is_head = (i == 0 || keys[i] != keys[i - 1]);
      if (!is_head) continue;
      const auto run = static_cast<std::size_t>(slot[i]);
      out.unique_keys[run] = keys[i];
      value_t acc = 0;
      for (std::int64_t j = i; j < n && keys[j] == keys[i]; ++j) {
        acc += values[j];
      }
      out.sums[run] = acc;
    }
  });
  return out;
}

}  // namespace hh
