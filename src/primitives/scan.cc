#include "primitives/scan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hh {

std::int64_t exclusive_scan(std::span<const std::int64_t> in,
                            std::span<std::int64_t> out) {
  HH_CHECK(in.size() == out.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::int64_t x = in[i];
    out[i] = acc;
    acc += x;
  }
  return acc;
}

void inclusive_scan(std::span<const std::int64_t> in,
                    std::span<std::int64_t> out) {
  HH_CHECK(in.size() == out.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

std::int64_t parallel_exclusive_scan(std::span<const std::int64_t> in,
                                     std::span<std::int64_t> out,
                                     ThreadPool& pool) {
  HH_CHECK(in.size() == out.size());
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;
  const std::int64_t blocks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(pool.size()) * 4);
  const std::int64_t chunk = (n + blocks - 1) / blocks;
  const std::int64_t nblocks = (n + chunk - 1) / chunk;

  // Pass 1: per-block sums.
  std::vector<std::int64_t> block_sum(static_cast<std::size_t>(nblocks), 0);
  pool.parallel_for(nblocks, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      const std::int64_t lo = b * chunk, hi = std::min(n, lo + chunk);
      std::int64_t s = 0;
      for (std::int64_t i = lo; i < hi; ++i) s += in[i];
      block_sum[b] = s;
    }
  });
  // Scan block sums sequentially (nblocks is tiny).
  std::int64_t total = exclusive_scan(block_sum, block_sum);
  // Pass 2: local scan with block offset.
  pool.parallel_for(nblocks, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      const std::int64_t lo = b * chunk, hi = std::min(n, lo + chunk);
      std::int64_t acc = block_sum[b];
      for (std::int64_t i = lo; i < hi; ++i) {
        const std::int64_t x = in[i];
        out[i] = acc;
        acc += x;
      }
    }
  });
  return total;
}

}  // namespace hh
