// Mark–scan segmented reduction over sorted keys — the paper's Phase IV
// like-tuple combining step (§III-D, Fig. 4):
//   1. mark[i] = 1 iff keys[i] != keys[i-1]      ("marking the indices")
//   2. scan(mark) assigns each run a dense id     ("scan the marked array")
//   3. one logical thread per run ("master index") sums that run's values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/types.hpp"
#include "util/thread_pool.hpp"

namespace hh {

struct SegmentedReduceResult {
  std::vector<std::uint64_t> unique_keys;  // one per run, in input order
  std::vector<value_t> sums;               // reduced value per run
};

/// keys must be sorted (equal keys adjacent). values.size() == keys.size().
SegmentedReduceResult segmented_reduce(std::span<const std::uint64_t> keys,
                                       std::span<const value_t> values,
                                       ThreadPool& pool);

/// The mark array of step 1 (exposed for tests and for the GPU-side cost
/// accounting, which charges one pass per primitive).
std::vector<std::int64_t> mark_segment_heads(
    std::span<const std::uint64_t> keys);

}  // namespace hh
