#include "powerlaw/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hh {

std::vector<HistogramBin> linear_histogram(std::span<const std::int64_t> data,
                                           int bins) {
  HH_CHECK(bins > 0);
  HH_CHECK(!data.empty());
  const auto [mn_it, mx_it] = std::minmax_element(data.begin(), data.end());
  const std::int64_t mn = *mn_it, mx = *mx_it;
  const std::int64_t span = mx - mn + 1;
  const std::int64_t width = (span + bins - 1) / bins;
  std::vector<HistogramBin> out;
  for (std::int64_t lo = mn; lo <= mx; lo += width) {
    out.push_back({lo, std::min(mx, lo + width - 1), 0});
  }
  for (const std::int64_t x : data) {
    out[static_cast<std::size_t>((x - mn) / width)].count++;
  }
  return out;
}

std::vector<HistogramBin> log2_histogram(std::span<const std::int64_t> data) {
  std::vector<HistogramBin> out;
  out.push_back({0, 0, 0});  // empty rows get their own bin
  std::int64_t lo = 1;
  std::int64_t mx = 0;
  for (const std::int64_t x : data) mx = std::max(mx, x);
  while (lo <= std::max<std::int64_t>(mx, 1)) {
    out.push_back({lo, lo * 2 - 1, 0});
    lo *= 2;
  }
  for (const std::int64_t x : data) {
    if (x <= 0) {
      out[0].count++;
      continue;
    }
    std::size_t bin = 1;
    std::int64_t hi = 1;
    while (x > hi * 2 - 1) {
      hi *= 2;
      ++bin;
    }
    out[bin].count++;
  }
  return out;
}

std::string render_histogram(const std::vector<HistogramBin>& bins,
                             std::int64_t threshold, int width) {
  std::int64_t max_count = 1;
  for (const auto& b : bins) max_count = std::max(max_count, b.count);
  const double log_max = std::log10(static_cast<double>(max_count) + 1.0);

  std::ostringstream os;
  for (const auto& b : bins) {
    if (b.count == 0) continue;
    const double frac =
        std::log10(static_cast<double>(b.count) + 1.0) / log_max;
    const int bar = std::max(1, static_cast<int>(frac * width));
    os << "  [" << b.lo;
    if (b.hi != b.lo) os << "-" << b.hi;
    os << "] ";
    for (int i = 0; i < bar; ++i) os << '#';
    os << " " << b.count << " rows";
    if (threshold >= 0 && b.lo >= threshold) os << "  (HD)";
    os << "\n";
  }
  return os.str();
}

}  // namespace hh
