// Row-density histograms in the style of the paper's Fig. 1 / Fig. 5,
// including an ASCII renderer with a log-scale count axis and the
// high-density threshold marker.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hh {

struct HistogramBin {
  std::int64_t lo = 0;  // inclusive
  std::int64_t hi = 0;  // inclusive
  std::int64_t count = 0;
};

/// Fixed-width linear bins over [min, max] of the data.
std::vector<HistogramBin> linear_histogram(std::span<const std::int64_t> data,
                                           int bins);

/// Power-of-two bins: [1,1], [2,3], [4,7], ... Natural for heavy tails.
std::vector<HistogramBin> log2_histogram(std::span<const std::int64_t> data);

/// Renders bins as rows of '#' with a logarithmic count scale; bins at or
/// above `threshold` are tagged "HD" (gray bars in the paper's figures).
/// threshold < 0 disables tagging.
std::string render_histogram(const std::vector<HistogramBin>& bins,
                             std::int64_t threshold = -1, int width = 50);

}  // namespace hh
