// Discrete power-law fitting per Clauset–Shalizi–Newman, the method behind
// the Alstott et al. `powerlaw` toolkit the paper uses for Table I's α
// column. Data are row sizes (positive integers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hh {

struct PowerLawFit {
  double alpha = 0;     // fitted exponent (P(k) ∝ k^-alpha for k >= xmin)
  std::int64_t xmin = 1;  // lower cutoff chosen by KS minimization
  double ks = 0;        // KS distance of the fit at xmin
  std::size_t n_tail = 0;  // number of samples >= xmin
};

/// Exact discrete MLE α for fixed xmin: maximizes
///   L(α) = −α·Σ ln x_i − n·ln ζ(α, xmin)
/// by golden-section search (the estimator the Alstott toolkit uses).
double fit_alpha_fixed_xmin(std::span<const std::int64_t> data,
                            std::int64_t xmin);

/// KS distance between the empirical tail CDF (x >= xmin) and the fitted
/// discrete power law.
double ks_statistic(std::span<const std::int64_t> data, std::int64_t xmin,
                    double alpha);

/// Full fit: scan candidate xmin values, pick the one minimizing KS.
/// `max_xmin_candidates` caps the scan for very heavy inputs (0 = no cap).
PowerLawFit fit_power_law(std::span<const std::int64_t> data,
                          std::size_t max_xmin_candidates = 64);

}  // namespace hh
