#include "powerlaw/fit.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.hpp"

namespace hh {
namespace {

// Hurwitz zeta ζ(α, xmin) by direct summation with a tail integral
// correction (Euler–Maclaurin first terms). Accurate enough for KS use.
double hurwitz_zeta(double alpha, double xmin) {
  HH_CHECK(alpha > 1.0 && xmin >= 0.5);
  double sum = 0;
  const int direct = 64;
  for (int k = 0; k < direct; ++k) {
    sum += std::pow(xmin + k, -alpha);
  }
  const double a = xmin + direct;
  // ∫_a^∞ t^-α dt + ½ a^-α + (α/12) a^-(α+1)
  sum += std::pow(a, 1.0 - alpha) / (alpha - 1.0) + 0.5 * std::pow(a, -alpha) +
         alpha / 12.0 * std::pow(a, -alpha - 1.0);
  return sum;
}

}  // namespace

double fit_alpha_fixed_xmin(std::span<const std::int64_t> data,
                            std::int64_t xmin) {
  HH_CHECK(xmin >= 1);
  double log_sum = 0;
  std::size_t n = 0;
  for (const std::int64_t x : data) {
    if (x < xmin) continue;
    log_sum += std::log(static_cast<double>(x));
    ++n;
  }
  if (n == 0) return 0;

  // Exact discrete MLE: maximize L(α) = −α·Σ ln xᵢ − n·ln ζ(α, xmin) by
  // golden-section search (L is concave in α). This is the estimator the
  // Alstott et al. toolkit uses; the popular ½-shift closed form is a poor
  // approximation at small xmin.
  const auto neg_log_lik = [&](double alpha) {
    return alpha * log_sum +
           static_cast<double>(n) *
               std::log(hurwitz_zeta(alpha, static_cast<double>(xmin)));
  };
  double lo = 1.0001, hi = 60.0;
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
  double f1 = neg_log_lik(x1), f2 = neg_log_lik(x2);
  for (int it = 0; it < 80 && hi - lo > 1e-6; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = neg_log_lik(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = neg_log_lik(x2);
    }
  }
  return 0.5 * (lo + hi);
}

double ks_statistic(std::span<const std::int64_t> data, std::int64_t xmin,
                    double alpha) {
  HH_CHECK(xmin >= 1);
  if (alpha <= 1.0) return 1.0;
  // Tail histogram of the data.
  std::map<std::int64_t, std::size_t> counts;
  std::size_t n = 0;
  for (const std::int64_t x : data) {
    if (x >= xmin) {
      counts[x]++;
      ++n;
    }
  }
  if (n == 0) return 1.0;

  const double z = hurwitz_zeta(alpha, static_cast<double>(xmin));
  double emp_cdf = 0, model_cdf = 0, ks = 0;
  std::int64_t prev = xmin;
  for (const auto& [x, cnt] : counts) {
    // Advance the model CDF over the gap (prev..x-1 have no data mass but
    // do have model mass).
    for (std::int64_t k = prev; k < x; ++k) {
      model_cdf += std::pow(static_cast<double>(k), -alpha) / z;
    }
    model_cdf += std::pow(static_cast<double>(x), -alpha) / z;
    emp_cdf += static_cast<double>(cnt) / static_cast<double>(n);
    ks = std::max(ks, std::abs(emp_cdf - model_cdf));
    prev = x + 1;
  }
  return ks;
}

PowerLawFit fit_power_law(std::span<const std::int64_t> data,
                          std::size_t max_xmin_candidates) {
  // Candidate xmins = distinct data values (excluding the max: a tail of one
  // point is a degenerate fit).
  std::vector<std::int64_t> values;
  values.reserve(data.size());
  for (const std::int64_t x : data) {
    if (x >= 1) values.push_back(x);
  }
  HH_CHECK_MSG(!values.empty(), "no positive samples to fit");
  std::sort(values.begin(), values.end());
  std::vector<std::int64_t> candidates;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i] != values[i - 1]) candidates.push_back(values[i]);
  }
  if (candidates.size() > 1) candidates.pop_back();
  if (max_xmin_candidates > 0 && candidates.size() > max_xmin_candidates) {
    // Keep an evenly strided subset (in value-rank order).
    std::vector<std::int64_t> kept;
    const double stride = static_cast<double>(candidates.size()) /
                          static_cast<double>(max_xmin_candidates);
    for (std::size_t i = 0; i < max_xmin_candidates; ++i) {
      kept.push_back(candidates[static_cast<std::size_t>(i * stride)]);
    }
    candidates.swap(kept);
  }

  PowerLawFit best;
  best.ks = 2.0;
  for (const std::int64_t xmin : candidates) {
    const double alpha = fit_alpha_fixed_xmin(values, xmin);
    if (alpha <= 1.0) continue;
    const double ks = ks_statistic(values, xmin, alpha);
    if (ks < best.ks) {
      best.alpha = alpha;
      best.xmin = xmin;
      best.ks = ks;
      best.n_tail = static_cast<std::size_t>(
          values.end() -
          std::lower_bound(values.begin(), values.end(), xmin));
    }
  }
  HH_CHECK_MSG(best.ks <= 1.5, "power-law fit failed on all candidates");
  return best;
}

}  // namespace hh
