#include "sched/chunk.hpp"

#include <algorithm>
#include <numeric>

namespace hh {

void append_entries(std::vector<WorkEntry>& entries,
                    std::span<const index_t> rows, std::int8_t tag) {
  entries.reserve(entries.size() + rows.size());
  for (const index_t r : rows) entries.push_back(WorkEntry{r, tag});
}

std::vector<WorkEntry> natural_order_entries(const CsrMatrix& m,
                                             std::int8_t tag) {
  std::vector<WorkEntry> entries(static_cast<std::size_t>(m.rows));
  for (index_t r = 0; r < m.rows; ++r) entries[r] = WorkEntry{r, tag};
  return entries;
}

std::vector<WorkEntry> sorted_by_density_entries(const CsrMatrix& m,
                                                 std::int8_t tag) {
  std::vector<index_t> order(static_cast<std::size_t>(m.rows));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return m.row_nnz(x) > m.row_nnz(y);
  });
  std::vector<WorkEntry> entries(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    entries[i] = WorkEntry{order[i], tag};
  }
  return entries;
}

}  // namespace hh
