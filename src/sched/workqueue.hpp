// The custom double-ended workqueue of paper §III-C / §IV-B.
//
// The CPU dequeues work-units from the front, the GPU from the back, so the
// two devices never contend on the same end and synchronization cost stays
// minimal. A work-unit is a contiguous run of A rows (cpuRows = 1000 on the
// CPU, gpuRows = 10000 on the GPU, the paper's empirically-best sizes)
// multiplied against a masked view of B. A device that drains its own side
// continues into the other side's entries (the paper's "can contribute to
// the product ... after finishing").
//
// The queue is simulated event-wise: whichever device's clock is earlier
// dequeues next; the numeric work of each unit is executed for real on the
// host and its ProductStats are charged on the owning device's model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/platform.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "spgemm/spgemm.hpp"
#include "util/thread_pool.hpp"

namespace hh {

/// Which masked view of B a queue entry multiplies against.
struct MaskSpec {
  std::span<const std::uint8_t> b_mask;  // empty = all of B
  bool b_mask_value = true;
  double cpu_ws_bytes = 0;   // working set of the masked B side in bytes
  bool cpu_blockable = false;  // ×B_H products are column-blockable on the
                               // CPU (see CpuSim::kernel_time)
};

/// One row of A awaiting multiplication, tagged with its MaskSpec index.
struct WorkEntry {
  index_t row = 0;
  std::int8_t tag = 0;
};

struct WorkQueueConfig {
  // Paper §IV-B uses cpuRows = 1000 and gpuRows = 10000 against full-size
  // matrices (0.16–3.8 M rows). 0 = auto: scale the unit with the instance
  // (≈ rows/160, clamped to [16, 1000]) so scaled-down experiments keep the
  // same queue granularity relative to the matrix; gpuRows stays 10× cpuRows.
  index_t cpu_rows = 0;
  index_t gpu_rows = 0;
  double cpu_dequeue_s = 2e-7;  // atomic fetch-add on the CPU end
  double gpu_dequeue_s = 1e-6;  // offset exchange for the GPU end
  bool cpu_rewritten = true;    // CPU uses the rewritten [13] kernel
};

struct WorkQueueResult {
  CooMatrix tuples;  // all tuples, CPU units first then GPU units (sim order)
  ProductStats cpu_stats;
  ProductStats gpu_stats;
  double cpu_busy = 0;  // time the CPU spent on queue units
  double gpu_busy = 0;
  double cpu_end = 0;  // device clock when it stopped dequeuing
  double gpu_end = 0;
  int cpu_units = 0;
  int gpu_units = 0;

  double end_time() const { return std::max(cpu_end, gpu_end); }
};

/// Resolve auto (0) unit sizes against the instance size. Guarantees
/// 1 <= cpu_rows and 1 <= gpu_rows for every a_rows >= 0, and never picks an
/// auto cpu_rows larger than the instance itself (tiny matrices get
/// single-digit units instead of the 16-row floor).
WorkQueueConfig resolve_queue_config(WorkQueueConfig cfg, index_t a_rows);

/// Run the queue to empty. `entries` is ordered CPU-end-first; masks[tag]
/// resolves each entry's B view. Device clocks start at cpu_start/gpu_start
/// (they may differ: a device joins the queue when its Phase II product is
/// done). Unit sizes of 0 are resolved via resolve_queue_config().
/// Deterministic. `workspace` optionally pools the kernels' accumulators and
/// tuple buffers (see spgemm/workspace.hpp).
WorkQueueResult run_workqueue(const CsrMatrix& a, const CsrMatrix& b,
                              std::span<const WorkEntry> entries,
                              std::span<const MaskSpec> masks,
                              const WorkQueueConfig& cfg, double cpu_start,
                              double gpu_start,
                              const HeteroPlatform& platform,
                              ThreadPool& pool,
                              WorkspacePool* workspace = nullptr);

}  // namespace hh
