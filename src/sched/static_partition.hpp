// The static CPU/GPU work split of the HiPC 2012 heterogeneous algorithm
// [13]: rows of A are divided once, up front, using a-priori estimates
// (structure-only symbolic stats — the only thing available before the
// multiply). The paper's point is precisely that such estimates cannot see
// density-driven effects; the mismatch between estimated and simulated time
// is what HH-CPU's dynamic, density-aware assignment removes.
#pragma once

#include "device/platform.hpp"
#include "sparse/csr.hpp"

namespace hh {

struct StaticSplit {
  index_t split_row = 0;  // rows [0, split_row) → CPU, rest → GPU
  double est_cpu_time = 0;
  double est_gpu_time = 0;
};

/// Choose the contiguous prefix/suffix split minimizing the larger of the
/// two devices' *estimated* times for C = A × B (full B on both sides).
StaticSplit balance_static_split(const CsrMatrix& a, const CsrMatrix& b,
                                 const HeteroPlatform& platform);

}  // namespace hh
