#include "sched/workqueue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hh {
namespace {

// Execute one dequeued unit: group its entries by tag (units are usually
// single-tag since each side is homogeneous) and run the masked kernel.
void run_unit(const CsrMatrix& a, const CsrMatrix& b,
              std::span<const WorkEntry> unit,
              std::span<const MaskSpec> masks, ThreadPool& pool,
              WorkspacePool* workspace, CooMatrix& tuples_out,
              ProductStats& unit_stats,
              std::vector<ProductStats>& per_tag_stats) {
  std::vector<index_t> rows;
  rows.reserve(unit.size());
  for (std::size_t i = 0; i < unit.size();) {
    const std::int8_t tag = unit[i].tag;
    rows.clear();
    while (i < unit.size() && unit[i].tag == tag) {
      rows.push_back(unit[i].row);
      ++i;
    }
    const MaskSpec& mask = masks[static_cast<std::size_t>(tag)];
    ProductStats stats;
    CooMatrix tuples =
        partial_product_tuples(a, b, rows, mask.b_mask, mask.b_mask_value,
                               pool, &stats, workspace);
    tuples_out.append(tuples);
    if (workspace != nullptr) workspace->release_coo(std::move(tuples));
    unit_stats.accumulate(stats);
    per_tag_stats[static_cast<std::size_t>(tag)].accumulate(stats);
  }
}

// Flops-weighted working set / blockability when a unit mixes tags (only
// happens when a device steals across the middle of the queue).
double unit_ws_bytes(std::span<const MaskSpec> masks,
                     const std::vector<ProductStats>& tag_stats_delta) {
  double ws = 0;
  double flops = 0;
  for (std::size_t t = 0; t < masks.size(); ++t) {
    const auto f = static_cast<double>(tag_stats_delta[t].flops);
    ws += f * masks[t].cpu_ws_bytes;
    flops += f;
  }
  return flops > 0 ? ws / flops : 0.0;
}

bool unit_blockable(std::span<const MaskSpec> masks,
                    const std::vector<ProductStats>& tag_stats_delta) {
  double flops = 0, blockable_flops = 0;
  for (std::size_t t = 0; t < masks.size(); ++t) {
    const auto f = static_cast<double>(tag_stats_delta[t].flops);
    flops += f;
    if (masks[t].cpu_blockable) blockable_flops += f;
  }
  return flops > 0 && blockable_flops >= 0.5 * flops;
}

}  // namespace

WorkQueueConfig resolve_queue_config(WorkQueueConfig cfg, index_t a_rows) {
  if (cfg.cpu_rows <= 0) {
    // The 16-row floor must itself bend for tiny instances: a matrix with
    // fewer than 16 rows gets a unit of its own size (min 1) so the auto
    // pick can never exceed a_rows or round a unit down to zero.
    const std::int64_t floor_rows =
        std::max<std::int64_t>(1, std::min<std::int64_t>(16, a_rows));
    cfg.cpu_rows = static_cast<index_t>(
        std::clamp<std::int64_t>(a_rows / 160, floor_rows, 1000));
  }
  if (cfg.gpu_rows <= 0) {
    cfg.gpu_rows = static_cast<index_t>(
        std::max<std::int64_t>(1, std::int64_t{10} * cfg.cpu_rows));
  }
  return cfg;
}

WorkQueueResult run_workqueue(const CsrMatrix& a, const CsrMatrix& b,
                              std::span<const WorkEntry> entries,
                              std::span<const MaskSpec> masks,
                              const WorkQueueConfig& cfg_in, double cpu_start,
                              double gpu_start,
                              const HeteroPlatform& platform,
                              ThreadPool& pool, WorkspacePool* workspace) {
  const WorkQueueConfig cfg = resolve_queue_config(cfg_in, a.rows);
  HH_CHECK(cfg.cpu_rows > 0 && cfg.gpu_rows > 0);
  for (const WorkEntry& e : entries) {
    HH_CHECK(e.tag >= 0 && static_cast<std::size_t>(e.tag) < masks.size());
  }

  WorkQueueResult res;
  res.tuples = CooMatrix(a.rows, b.cols);
  res.cpu_end = cpu_start;
  res.gpu_end = gpu_start;

  std::size_t front = 0;
  std::size_t back = entries.size();
  std::vector<ProductStats> tag_delta(masks.size());

  while (front < back) {
    const bool cpu_turn = res.cpu_end <= res.gpu_end;
    if (cpu_turn) {
      const std::size_t n =
          std::min<std::size_t>(static_cast<std::size_t>(cfg.cpu_rows),
                                back - front);
      const auto unit = entries.subspan(front, n);
      front += n;
      for (auto& d : tag_delta) d = ProductStats{};
      ProductStats stats;
      run_unit(a, b, unit, masks, pool, workspace, res.tuples, stats,
               tag_delta);
      const double ws = unit_ws_bytes(masks, tag_delta);
      const bool blockable = unit_blockable(masks, tag_delta);
      const double t =
          platform.cpu().kernel_time(stats, ws, cfg.cpu_rewritten, blockable) +
          cfg.cpu_dequeue_s;
      res.cpu_busy += t;
      res.cpu_end += t;
      res.cpu_stats.accumulate(stats);
      res.cpu_units++;
    } else {
      const std::size_t n =
          std::min<std::size_t>(static_cast<std::size_t>(cfg.gpu_rows),
                                back - front);
      const auto unit = entries.subspan(back - n, n);
      back -= n;
      for (auto& d : tag_delta) d = ProductStats{};
      ProductStats stats;
      run_unit(a, b, unit, masks, pool, workspace, res.tuples, stats,
               tag_delta);
      const double t = platform.gpu().kernel_time(stats) + cfg.gpu_dequeue_s;
      res.gpu_busy += t;
      res.gpu_end += t;
      res.gpu_stats.accumulate(stats);
      res.gpu_units++;
    }
  }
  return res;
}

}  // namespace hh
