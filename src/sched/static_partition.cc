#include "sched/static_partition.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "spgemm/spgemm.hpp"
#include "util/check.hpp"

namespace hh {

StaticSplit balance_static_split(const CsrMatrix& a, const CsrMatrix& b,
                                 const HeteroPlatform& platform) {
  HH_CHECK_MSG(a.cols == b.rows, "incompatible shapes for product");
  const index_t rows = a.rows;

  // Structure-only per-row stats, accumulated incrementally while the split
  // point sweeps 0 → rows. Suffix max_row_flops comes from a suffix scan.
  std::vector<index_t> all_rows(static_cast<std::size_t>(rows));
  std::iota(all_rows.begin(), all_rows.end(), index_t{0});
  const ProductStats total = estimate_partial_product(a, b, all_rows, {}, true);

  std::vector<std::int64_t> suffix_max_flops(
      static_cast<std::size_t>(rows) + 1, 0);
  std::vector<std::int64_t> row_flops_v(static_cast<std::size_t>(rows), 0);
  {
    for (index_t i = 0; i < rows; ++i) {
      std::int64_t f = 0;
      for (offset_t k = a.indptr[i]; k < a.indptr[i + 1]; ++k) {
        f += b.row_nnz(a.indices[k]);
      }
      row_flops_v[i] = f;
    }
    for (index_t i = rows; i-- > 0;) {
      suffix_max_flops[i] = std::max(suffix_max_flops[i + 1], row_flops_v[i]);
    }
  }

  ProductStats prefix;  // rows [0, k)
  StaticSplit best;
  double best_cost = -1;
  std::int64_t prefix_max_flops = 0;

  const double ws_full = 12.0 * static_cast<double>(b.nnz());
  for (index_t k = 0; k <= rows; ++k) {
    ProductStats suffix = total;
    suffix.rows -= prefix.rows;
    suffix.a_nnz -= prefix.a_nnz;
    suffix.flops -= prefix.flops;
    suffix.tuples -= prefix.tuples;
    suffix.warp_alu -= prefix.warp_alu;
    suffix.flops_shared -= prefix.flops_shared;
    suffix.flops_global -= prefix.flops_global;
    suffix.b_read_bytes -= prefix.b_read_bytes;
    suffix.max_row_flops = suffix_max_flops[k];

    const double cpu_t = platform.cpu().kernel_time(prefix, ws_full, true);
    const double gpu_t = platform.gpu().kernel_time(suffix);
    const double cost = std::max(cpu_t, gpu_t);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best.split_row = k;
      best.est_cpu_time = cpu_t;
      best.est_gpu_time = gpu_t;
    }
    if (k < rows) {
      // Advance prefix by row k.
      std::vector<index_t> one{k};
      const ProductStats s = estimate_partial_product(a, b, one, {}, true);
      prefix.accumulate(s);
      prefix_max_flops = std::max(prefix_max_flops, row_flops_v[k]);
      prefix.max_row_flops = prefix_max_flops;
    }
  }
  return best;
}

}  // namespace hh
