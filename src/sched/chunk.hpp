// Helpers for building workqueue entry lists.
#pragma once

#include <span>
#include <vector>

#include "sched/workqueue.hpp"
#include "sparse/csr.hpp"

namespace hh {

/// Tag every row in `rows` and append to `entries`.
void append_entries(std::vector<WorkEntry>& entries,
                    std::span<const index_t> rows, std::int8_t tag);

/// Entries for all rows of `m` in natural order (Unsorted-Workqueue).
std::vector<WorkEntry> natural_order_entries(const CsrMatrix& m,
                                             std::int8_t tag = 0);

/// Entries for all rows sorted by row nnz, densest first (Sorted-Workqueue;
/// the CPU end gets the dense rows, the GPU end the sparse ones — the
/// empirically best orientation, matching the paper's use of best-possible
/// configurations for the comparison algorithms).
std::vector<WorkEntry> sorted_by_density_entries(const CsrMatrix& m,
                                                 std::int8_t tag = 0);

}  // namespace hh
