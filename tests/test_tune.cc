#include "tune/tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/powerlaw_gen.hpp"
#include "runtime/service.hpp"
#include "runtime/signature.hpp"
#include "tune/calibration.hpp"
#include "tune/report.hpp"

namespace hh {
namespace {

// ---------------------------------------------------------------- calibration

TEST(CalibrationStore, IdentityUntilMinSamples) {
  CalibrationConfig cfg;
  cfg.min_samples = 4;
  CalibrationStore store(cfg);
  for (int i = 0; i < 3; ++i) {
    store.record(CalibrationStore::Device::kCpu, 1.0, 2.0);
    EXPECT_EQ(store.correction(CalibrationStore::Device::kCpu), 1.0);
    EXPECT_TRUE(store.corrections().is_identity());
  }
  store.record(CalibrationStore::Device::kCpu, 1.0, 2.0);
  EXPECT_GT(store.correction(CalibrationStore::Device::kCpu), 1.0);
  EXPECT_FALSE(store.corrections().is_identity());
}

TEST(CalibrationStore, EwmaWarmStartAndConvergence) {
  CalibrationConfig cfg;
  cfg.decay = 0.9;
  cfg.min_samples = 1;
  CalibrationStore store(cfg);
  // First sample warm-starts the mean at its own log-ratio.
  store.record(CalibrationStore::Device::kGpu, 1.0, 2.0);
  EXPECT_NEAR(store.state(CalibrationStore::Device::kGpu).mean_log_ratio,
              std::log(2.0), 1e-12);
  // A long run of constant ratio converges the EWMA to that ratio.
  for (int i = 0; i < 200; ++i) {
    store.record(CalibrationStore::Device::kGpu, 1.0, 3.0);
  }
  EXPECT_NEAR(store.correction(CalibrationStore::Device::kGpu), 3.0, 0.05);
}

TEST(CalibrationStore, CorrectionClampedToConfiguredBand) {
  CalibrationConfig cfg;
  cfg.min_samples = 1;
  cfg.max_correction = 4.0;
  CalibrationStore store(cfg);
  for (int i = 0; i < 50; ++i) {
    store.record(CalibrationStore::Device::kH2D, 1.0, 100.0);  // ratio 100
    store.record(CalibrationStore::Device::kD2H, 100.0, 1.0);  // ratio 0.01
  }
  EXPECT_EQ(store.correction(CalibrationStore::Device::kH2D), 4.0);
  EXPECT_EQ(store.correction(CalibrationStore::Device::kD2H), 0.25);
}

TEST(CalibrationStore, NonPositivePairsIgnored) {
  CalibrationStore store;
  EXPECT_FALSE(store.record(CalibrationStore::Device::kCpu, 0.0, 1.0));
  EXPECT_FALSE(store.record(CalibrationStore::Device::kCpu, 1.0, 0.0));
  EXPECT_FALSE(store.record(CalibrationStore::Device::kCpu, -1.0, 2.0));
  EXPECT_EQ(store.total_samples(), 0);
  EXPECT_EQ(store.state(CalibrationStore::Device::kCpu).samples, 0);
}

TEST(CalibrationStore, DriftFlagsOnlyOnTransition) {
  CalibrationConfig cfg;
  cfg.min_samples = 2;
  cfg.drift_threshold = 0.25;
  cfg.decay = 0.5;  // fast EWMA so the test converges quickly
  CalibrationStore store(cfg);
  // Ratio 2.0: |log 2| = 0.69 > 0.25, so drift flags once min_samples hit.
  EXPECT_FALSE(store.record(CalibrationStore::Device::kCpu, 1.0, 2.0));
  const bool second = store.record(CalibrationStore::Device::kCpu, 1.0, 2.0);
  EXPECT_TRUE(second);  // the false -> true transition
  EXPECT_TRUE(store.state(CalibrationStore::Device::kCpu).drift);
  EXPECT_EQ(store.drift_events(), 1);
  EXPECT_EQ(store.drift_count(), 1);
  // Staying drifted is not a new event.
  EXPECT_FALSE(store.record(CalibrationStore::Device::kCpu, 1.0, 2.0));
  EXPECT_EQ(store.drift_events(), 1);
  // Accurate samples walk the mean back inside the band: flag clears, and a
  // later excursion is a fresh event.
  for (int i = 0; i < 20; ++i) {
    store.record(CalibrationStore::Device::kCpu, 1.0, 1.0);
  }
  EXPECT_FALSE(store.state(CalibrationStore::Device::kCpu).drift);
  for (int i = 0; i < 20; ++i) {
    store.record(CalibrationStore::Device::kCpu, 1.0, 2.0);
  }
  EXPECT_EQ(store.drift_events(), 2);
}

TEST(CalibrationStore, JsonDeterministicAndNamed) {
  CalibrationConfig cfg;
  cfg.min_samples = 1;
  CalibrationStore a(cfg), b(cfg);
  for (CalibrationStore* s : {&a, &b}) {
    s->record(CalibrationStore::Device::kCpu, 1.0, 1.25);
    s->record(CalibrationStore::Device::kGpu, 2.0, 1.0);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"cpu\""), std::string::npos);
  EXPECT_NE(a.to_json().find("\"d2h\""), std::string::npos);
}

// --------------------------------------------------------------------- tuner

MatrixSignature fake_sig(index_t rows, std::uint64_t salt) {
  MatrixSignature s;
  s.rows = rows;
  s.cols = rows;
  s.nnz = rows * 4;
  s.degree_digest = salt * 0x9e3779b97f4a7c15ull;
  return s;
}

ThresholdSweep fake_sweep(std::vector<offset_t> grid,
                          std::vector<double> predicted) {
  ThresholdSweep s;
  s.grid = std::move(grid);
  s.predicted_s = std::move(predicted);
  s.best = static_cast<std::size_t>(
      std::min_element(s.predicted_s.begin(), s.predicted_s.end()) -
      s.predicted_s.begin());
  return s;
}

TEST(ThresholdTuner, AdmitServesAnalyticPickAndIsIdempotent) {
  ThresholdTuner tuner;
  const PlanKey key{fake_sig(100, 1), fake_sig(100, 1)};
  tuner.admit(key, fake_sweep({2, 4, 8}, {3.0, 1.0, 2.0}));
  EXPECT_TRUE(tuner.has_entry(key));
  EXPECT_EQ(tuner.incumbent(key), 4);
  // Re-admitting is a no-op: the measured history is never thrown away.
  tuner.admit(key, fake_sweep({2, 4, 8}, {1.0, 3.0, 2.0}));
  EXPECT_EQ(tuner.incumbent(key), 4);
  EXPECT_EQ(tuner.entries(), 1u);
}

TEST(ThresholdTuner, ExplorePlanOnlyNearTies) {
  TuneConfig cfg;
  cfg.enabled = true;
  cfg.explore_slack = 0.25;
  cfg.epsilon = 1.0;  // always explore when a target exists
  cfg.warmup_hits = 0;
  cfg.min_trials = 1;
  ThresholdTuner tuner(cfg);
  const PlanKey key{fake_sig(100, 2), fake_sig(100, 2)};
  // best = 1.0 at t=4; near-ties within 1.25x: t=6 (1.2). t=2 (2.0) and
  // t=8 (1.3) are out (1.3 > 1.25).
  tuner.admit(key, fake_sweep({2, 4, 6, 8}, {2.0, 1.0, 1.2, 1.3}));
  std::vector<offset_t> explored;
  for (int i = 0; i < 8; ++i) {
    const ThresholdTuner::Decision d = tuner.decide(key);
    if (d.explore) explored.push_back(d.t);
    tuner.observe(key, d.t, 1.0);
  }
  ASSERT_FALSE(explored.empty());
  for (const offset_t t : explored) EXPECT_EQ(t, 6);
}

TEST(ThresholdTuner, PromotionRequiresMarginAndMinTrials) {
  TuneConfig cfg;
  cfg.enabled = true;
  cfg.epsilon = 1.0;
  cfg.warmup_hits = 0;
  cfg.min_trials = 2;
  cfg.promote_margin = 0.05;
  ThresholdTuner tuner(cfg);
  const PlanKey key{fake_sig(100, 3), fake_sig(100, 3)};
  tuner.admit(key, fake_sweep({4, 6}, {1.0, 1.1}));
  EXPECT_EQ(tuner.incumbent(key), 4);

  // Incumbent measured once at 1.0.
  EXPECT_FALSE(tuner.observe(key, 4, 1.0).has_value());
  // First trial of t=6 is much better, but min_trials = 2: no promotion yet.
  EXPECT_FALSE(tuner.observe(key, 6, 0.80).has_value());
  // Second trial is only marginally better than the incumbent: the variant's
  // best (0.80) now clears margin with full trials -> promotion fires.
  const auto promo = tuner.observe(key, 6, 0.97);
  ASSERT_TRUE(promo.has_value());
  EXPECT_EQ(promo->from_t, 4);
  EXPECT_EQ(promo->to_t, 6);
  EXPECT_EQ(promo->version, 1u);
  EXPECT_DOUBLE_EQ(promo->to_best_s, 0.80);
  EXPECT_EQ(tuner.incumbent(key), 6);

  // No ping-pong: the old incumbent cannot win back without beating the new
  // best by the margin; an equal measurement does nothing.
  EXPECT_FALSE(tuner.observe(key, 4, 0.80).has_value());
  EXPECT_EQ(tuner.incumbent(key), 6);
}

TEST(ThresholdTuner, NoPromotionInsideMargin) {
  TuneConfig cfg;
  cfg.enabled = true;
  cfg.min_trials = 1;
  cfg.promote_margin = 0.05;
  ThresholdTuner tuner(cfg);
  const PlanKey key{fake_sig(100, 4), fake_sig(100, 4)};
  tuner.admit(key, fake_sweep({4, 6}, {1.0, 1.1}));
  tuner.observe(key, 4, 1.00);
  // 2% better: inside the 5% margin, stays put (measurement noise guard).
  EXPECT_FALSE(tuner.observe(key, 6, 0.98).has_value());
  EXPECT_EQ(tuner.incumbent(key), 4);
  EXPECT_EQ(tuner.promotions(), 0);
}

TEST(ThresholdTuner, ConvergesWhenAllVariantsMeasured) {
  TuneConfig cfg;
  cfg.enabled = true;
  cfg.epsilon = 1.0;
  cfg.warmup_hits = 0;
  cfg.min_trials = 1;
  ThresholdTuner tuner(cfg);
  const PlanKey key{fake_sig(100, 5), fake_sig(100, 5)};
  tuner.admit(key, fake_sweep({4, 6, 8}, {1.0, 1.05, 1.1}));
  for (int i = 0; i < 10; ++i) {
    const ThresholdTuner::Decision d = tuner.decide(key);
    tuner.observe(key, d.t, 1.0 + 0.01 * d.t);
  }
  const TuneReport rep = tuner.report();
  ASSERT_EQ(rep.entries.size(), 1u);
  EXPECT_TRUE(rep.entries[0].converged);
  EXPECT_EQ(rep.entries_converged, 1u);
  // A converged entry always exploits.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(tuner.decide(key).explore);
  }
}

TEST(ThresholdTuner, DeterministicAcrossInstances) {
  TuneConfig cfg;
  cfg.enabled = true;
  cfg.epsilon = 0.5;
  cfg.warmup_hits = 0;
  ThresholdTuner t1(cfg), t2(cfg);
  const PlanKey key{fake_sig(100, 6), fake_sig(100, 6)};
  for (ThresholdTuner* t : {&t1, &t2}) {
    t->admit(key, fake_sweep({2, 4, 6, 8}, {1.2, 1.0, 1.05, 1.1}));
  }
  for (int i = 0; i < 32; ++i) {
    const ThresholdTuner::Decision d1 = t1.decide(key);
    const ThresholdTuner::Decision d2 = t2.decide(key);
    EXPECT_EQ(d1.t, d2.t);
    EXPECT_EQ(d1.explore, d2.explore);
    t1.observe(key, d1.t, 1.0 + 0.001 * i);
    t2.observe(key, d2.t, 1.0 + 0.001 * i);
  }
  EXPECT_EQ(t1.report().to_json(), t2.report().to_json());
}

TEST(TuneReport, DisabledRendersAsDisabled) {
  TuneReport rep;
  rep.enabled = false;
  EXPECT_NE(rep.to_string().find("disabled"), std::string::npos);
  EXPECT_NE(rep.to_json().find("\"enabled\":false"), std::string::npos);
}

// ------------------------------------------------------------ service level

CsrMatrix tune_matrix() {
  // A steep-tail, low-density instance where the analytic pick is measurably
  // non-optimal (the harmonic Phase III model overrates the GPU share on
  // short rows) — the case the tuner exists to correct.
  PowerLawGenConfig cfg;
  cfg.rows = 2000;
  cfg.target_nnz = 16000;
  cfg.alpha = 3.0;
  cfg.seed = 24;
  return generate_power_law_matrix(cfg);
}

TEST(ServiceTuning, DisabledTunerChangesNothing) {
  const HeteroPlatform platform = make_scaled_platform(0.1);
  ThreadPool pool(0);
  const CsrMatrix m = tune_matrix();

  SpgemmService plain(platform, pool);
  SpgemmService::Config cfg;  // tune.enabled defaults to false
  SpgemmService configured(platform, pool, cfg);
  for (SpgemmService* s : {&plain, &configured}) {
    for (int i = 0; i < 12; ++i) {
      SpgemmRequest req;
      req.a = &m;
      s->submit(std::move(req));
    }
  }
  const BatchResult r1 = plain.drain();
  const BatchResult r2 = configured.drain();
  EXPECT_EQ(r1.batch.to_json(), r2.batch.to_json());
  const TuneReport rep = plain.tune_report();
  EXPECT_FALSE(rep.enabled);
  EXPECT_TRUE(rep.entries.empty());
  EXPECT_EQ(rep.decisions, 0);
}

TEST(ServiceTuning, ConvergesToMeasuredBestWithinOneBatch) {
  const HeteroPlatform platform = make_scaled_platform(0.1);
  ThreadPool pool(0);
  const CsrMatrix m = tune_matrix();

  SpgemmService::Config cfg;
  cfg.tune.enabled = true;
  SpgemmService service(platform, pool, cfg);
  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    SpgemmRequest req;
    req.a = &m;
    service.submit(std::move(req));
  }
  const BatchResult batch = service.drain();
  ASSERT_EQ(batch.results.size(), static_cast<std::size_t>(kRequests));

  const TuneReport rep = service.tune_report();
  ASSERT_EQ(rep.entries.size(), 1u);
  const TuneEntryReport& e = rep.entries[0];
  EXPECT_TRUE(e.converged);
  ASSERT_FALSE(e.variants.empty());

  // The incumbent is the argmin over every measured variant, and it is at
  // least as good as the analytic starting point's measured total.
  double best = std::numeric_limits<double>::infinity();
  offset_t best_t = 0;
  double analytic_best = std::numeric_limits<double>::infinity();
  double incumbent_best = std::numeric_limits<double>::infinity();
  for (const TuneVariantReport& v : e.variants) {
    if (v.best_s < best) {
      best = v.best_s;
      best_t = v.t;
    }
    if (v.t == e.analytic_t) analytic_best = v.best_s;
    if (v.t == e.incumbent_t) incumbent_best = v.best_s;
  }
  EXPECT_LE(incumbent_best, analytic_best);
  // Within the promotion margin, the incumbent IS the measured best (exact
  // argmin may sit inside the margin band of the incumbent).
  EXPECT_LE(incumbent_best, best * (1 + cfg.tune.promote_margin));
  (void)best_t;

  // On this instance the analytic pick is wrong and the tuner must have
  // found a measurably better threshold and promoted it.
  EXPECT_GE(rep.promotions, 1);
  EXPECT_NE(e.incumbent_t, e.analytic_t);
  EXPECT_GE(e.version, 1u);
  EXPECT_EQ(service.metrics().counter("tune.promotions").value(),
            rep.promotions);
}

TEST(ServiceTuning, SameSeedReplayIsByteIdentical) {
  const HeteroPlatform platform = make_scaled_platform(0.1);
  ThreadPool pool(0);
  const CsrMatrix m = tune_matrix();

  const auto run = [&]() {
    SpgemmService::Config cfg;
    cfg.tune.enabled = true;
    SpgemmService service(platform, pool, cfg);
    for (int i = 0; i < 24; ++i) {
      SpgemmRequest req;
      req.a = &m;
      service.submit(std::move(req));
    }
    const BatchResult batch = service.drain();
    return std::pair{batch.batch.to_json(),
                     service.tune_report().to_json()};
  };
  const auto [batch1, tune1] = run();
  const auto [batch2, tune2] = run();
  EXPECT_EQ(batch1, batch2);
  EXPECT_EQ(tune1, tune2);
}

TEST(ServiceTuning, TunedOutputsBitIdenticalToSerialAtChosenThresholds) {
  const HeteroPlatform platform = make_scaled_platform(0.1);
  ThreadPool pool(0);
  const CsrMatrix m = tune_matrix();

  SpgemmService::Config cfg;
  cfg.tune.enabled = true;
  SpgemmService service(platform, pool, cfg);
  for (int i = 0; i < 16; ++i) {
    SpgemmRequest req;
    req.a = &m;
    service.submit(std::move(req));
  }
  const BatchResult batch = service.drain();
  for (const RunResult& res : batch.results) {
    HhCpuOptions opt;
    opt.threshold_a = res.report.threshold_a;
    opt.threshold_b = res.report.threshold_b;
    const RunResult serial = run_hh_cpu(m, m, opt, platform, pool);
    EXPECT_EQ(serial.c.indptr, res.c.indptr);
    EXPECT_EQ(serial.c.indices, res.c.indices);
    EXPECT_EQ(serial.c.values, res.c.values);
  }
}

TEST(ServiceTuning, PinnedThresholdsBypassTheTuner) {
  const HeteroPlatform platform = make_scaled_platform(0.1);
  ThreadPool pool(0);
  const CsrMatrix m = tune_matrix();

  SpgemmService::Config cfg;
  cfg.tune.enabled = true;
  SpgemmService service(platform, pool, cfg);
  for (int i = 0; i < 8; ++i) {
    SpgemmRequest req;
    req.a = &m;
    req.options.threshold_a = 5;  // caller's explicit choice
    req.options.threshold_b = 5;
    service.submit(std::move(req));
  }
  service.drain();
  const TuneReport rep = service.tune_report();
  EXPECT_TRUE(rep.entries.empty());
  EXPECT_EQ(rep.decisions, 0);
  EXPECT_EQ(rep.measurements, 0);
}

}  // namespace
}  // namespace hh
