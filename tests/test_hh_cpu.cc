#include "core/hh_cpu.hpp"

#include <gtest/gtest.h>

#include "gen/datasets.hpp"
#include "gen/powerlaw_gen.hpp"
#include "sparse/convert.hpp"
#include "spgemm/gustavson.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

class HhCpuTest : public testing::Test {
 protected:
  HhCpuTest() : pool_(2) {}
  HeteroPlatform plat_;
  ThreadPool pool_;

  void expect_correct(const CsrMatrix& a, const CsrMatrix& b,
                      const HhCpuOptions& opt = {}) {
    const RunResult res = run_hh_cpu(a, b, opt, plat_, pool_);
    const CsrMatrix want = gustavson_spgemm(a, b);
    std::string why;
    EXPECT_TRUE(approx_equal(want, res.c, 1e-9, &why)) << why;
    EXPECT_EQ(res.report.output_nnz, res.c.nnz());
  }
};

TEST_F(HhCpuTest, CorrectOnRandomSquare) {
  const CsrMatrix a = test::random_csr(80, 80, 0.08, 201);
  expect_correct(a, a);
}

TEST_F(HhCpuTest, CorrectOnRectangularChain) {
  const CsrMatrix a = test::random_csr(60, 40, 0.1, 202);
  const CsrMatrix b = test::random_csr(40, 70, 0.1, 203);
  expect_correct(a, b);
}

TEST_F(HhCpuTest, CorrectOnScaleFreeSelfProduct) {
  PowerLawGenConfig cfg;
  cfg.rows = 1500;
  cfg.alpha = 2.3;
  cfg.target_nnz = 7000;
  cfg.seed = 204;
  const CsrMatrix a = generate_power_law_matrix(cfg);
  expect_correct(a, a);
}

TEST_F(HhCpuTest, CorrectOnTwoDifferentScaleFreeMatrices) {
  PowerLawGenConfig cfg;
  cfg.rows = 800;
  cfg.alpha = 3.0;
  cfg.target_nnz = 4000;
  cfg.seed = 205;
  const CsrMatrix a = generate_power_law_matrix(cfg);
  cfg.seed = 206;
  const CsrMatrix b = generate_power_law_matrix(cfg);
  expect_correct(a, b);
}

TEST_F(HhCpuTest, CorrectWithExplicitThresholds) {
  const CsrMatrix a = test::random_csr(100, 100, 0.1, 207);
  for (const offset_t t : {offset_t{1}, offset_t{5}, offset_t{10000}}) {
    HhCpuOptions opt;
    opt.threshold_a = t;
    opt.threshold_b = t;
    expect_correct(a, a, opt);
  }
}

TEST_F(HhCpuTest, IdentityAndEmpty) {
  expect_correct(csr_identity(30), csr_identity(30));
  const CsrMatrix empty(20, 20);
  const RunResult res = run_hh_cpu(empty, empty, {}, plat_, pool_);
  EXPECT_EQ(res.c.nnz(), 0);
}

TEST_F(HhCpuTest, MatrixWithEmptyRows) {
  CsrMatrix a = test::random_csr(50, 50, 0.1, 208);
  // Blank out a band of rows.
  std::vector<std::uint8_t> keep(50, 1);
  for (index_t r = 10; r < 20; ++r) keep[r] = 0;
  const CsrMatrix b = mask_rows(a, keep);
  expect_correct(b, b);
}

TEST_F(HhCpuTest, ReportPhasesAreConsistent) {
  const CsrMatrix a = make_dataset(dataset_spec("wiki-Vote"), 0.08);
  const RunResult res = run_hh_cpu(a, a, {}, plat_, pool_);
  const RunReport& r = res.report;
  EXPECT_EQ(r.algorithm, "HH-CPU");
  EXPECT_GT(r.total_s, 0);
  EXPECT_GE(r.phase1_s, 0);
  EXPECT_GE(r.phase2_s, std::max(r.phase2_cpu_s, r.phase2_gpu_s) - 1e-15);
  EXPECT_GE(r.phase3_s, std::max(r.phase3_cpu_s, r.phase3_gpu_s) - 1e-15);
  EXPECT_GT(r.threshold_a, 0);
  EXPECT_GT(r.flops, 0);
  // Totals cover at least the critical path pieces.
  EXPECT_GE(r.total_s, r.phase1_s + r.phase4_s);
  EXPECT_EQ(r.merge.tuples_out, r.output_nnz);
}

TEST_F(HhCpuTest, ThresholdZeroMeansAutoPick) {
  const CsrMatrix a = make_dataset(dataset_spec("wiki-Vote"), 0.08);
  HhCpuOptions opt;  // thresholds 0
  const RunResult res = run_hh_cpu(a, a, opt, plat_, pool_);
  EXPECT_GT(res.report.threshold_a, 0);
  EXPECT_GT(res.report.threshold_b, 0);
}

TEST_F(HhCpuTest, DegeneratePartitionSkipsPhase3) {
  const CsrMatrix a = test::random_csr(60, 60, 0.1, 209);
  HhCpuOptions opt;
  opt.threshold_a = 100000;  // everything low
  opt.threshold_b = 100000;
  const RunResult res = run_hh_cpu(a, a, opt, plat_, pool_);
  EXPECT_EQ(res.report.queue_cpu_units + res.report.queue_gpu_units, 0);
  EXPECT_DOUBLE_EQ(res.report.phase2_cpu_s, 0.0);
  const CsrMatrix want = gustavson_spgemm(a, a);
  std::string why;
  EXPECT_TRUE(approx_equal(want, res.c, 1e-9, &why)) << why;
}

TEST_F(HhCpuTest, SelfProductTransfersInputOnce) {
  const CsrMatrix a = test::random_csr(80, 80, 0.1, 210);
  const CsrMatrix b = a;  // distinct object, same content
  const RunResult self = run_hh_cpu(a, a, {}, plat_, pool_);
  const RunResult pair = run_hh_cpu(a, b, {}, plat_, pool_);
  EXPECT_LT(self.report.transfer_in_s, pair.report.transfer_in_s);
}

TEST_F(HhCpuTest, AlreadyOnGpuSkipsTransfer) {
  const CsrMatrix a = test::random_csr(80, 80, 0.1, 211);
  HhCpuOptions opt;
  opt.matrices_already_on_gpu = true;
  const RunResult res = run_hh_cpu(a, a, opt, plat_, pool_);
  EXPECT_DOUBLE_EQ(res.report.transfer_in_s, 0.0);
}

TEST_F(HhCpuTest, DeterministicOutput) {
  const CsrMatrix a = make_dataset(dataset_spec("ca-CondMat"), 0.05);
  const RunResult x = run_hh_cpu(a, a, {}, plat_, pool_);
  const RunResult y = run_hh_cpu(a, a, {}, plat_, pool_);
  EXPECT_EQ(x.c.indices, y.c.indices);
  EXPECT_EQ(x.c.values, y.c.values);
  EXPECT_DOUBLE_EQ(x.report.total_s, y.report.total_s);
}

TEST_F(HhCpuTest, IncompatibleShapesThrow) {
  const CsrMatrix a(3, 4), b(5, 3);
  EXPECT_THROW(run_hh_cpu(a, b, {}, plat_, pool_), CheckError);
}

}  // namespace
}  // namespace hh
