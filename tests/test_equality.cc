#include "sparse/equality.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hh {
namespace {

TEST(Equality, EqualMatricesCompareEqual) {
  const CsrMatrix m = test::random_csr(10, 10, 0.3, 4);
  EXPECT_TRUE(approx_equal(m, m));
}

TEST(Equality, DetectsShapeMismatch) {
  const CsrMatrix a(2, 3), b(3, 2);
  std::string why;
  EXPECT_FALSE(approx_equal(a, b, 1e-9, &why));
  EXPECT_NE(why.find("shape"), std::string::npos);
}

TEST(Equality, DetectsPatternMismatch) {
  const std::vector<index_t> r{0};
  const std::vector<value_t> v{1.0};
  const std::vector<index_t> c1{0}, c2{1};
  const CsrMatrix a = csr_from_triplets(1, 2, r, c1, v);
  const CsrMatrix b = csr_from_triplets(1, 2, r, c2, v);
  std::string why;
  EXPECT_FALSE(approx_equal(a, b, 1e-9, &why));
  EXPECT_NE(why.find("col"), std::string::npos);
}

TEST(Equality, DetectsValueMismatch) {
  const std::vector<index_t> r{0}, c{0};
  const CsrMatrix a = csr_from_triplets(1, 1, r, c, std::vector<value_t>{1.0});
  const CsrMatrix b = csr_from_triplets(1, 1, r, c, std::vector<value_t>{1.1});
  std::string why;
  EXPECT_FALSE(approx_equal(a, b, 1e-9, &why));
  EXPECT_NE(why.find("value"), std::string::npos);
}

TEST(Equality, ToleratesSmallRelativeError) {
  const std::vector<index_t> r{0}, c{0};
  const CsrMatrix a =
      csr_from_triplets(1, 1, r, c, std::vector<value_t>{1.0});
  const CsrMatrix b =
      csr_from_triplets(1, 1, r, c, std::vector<value_t>{1.0 + 1e-12});
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
}

TEST(Equality, DropSmallRemovesTinyEntries) {
  const std::vector<index_t> r{0, 0}, c{0, 1};
  const std::vector<value_t> v{1e-15, 2.0};
  const CsrMatrix m = csr_from_triplets(1, 2, r, c, v);
  const CsrMatrix d = drop_small(m, 1e-12);
  EXPECT_EQ(d.nnz(), 1);
  EXPECT_DOUBLE_EQ(d.values[0], 2.0);
}

TEST(Equality, DropSmallKeepsShape) {
  const CsrMatrix m = test::random_csr(7, 9, 0.2, 5);
  const CsrMatrix d = drop_small(m, 0.0);
  EXPECT_EQ(d.rows, m.rows);
  EXPECT_EQ(d.cols, m.cols);
  EXPECT_EQ(d.nnz(), m.nnz());
}

}  // namespace
}  // namespace hh
