#include "sparse/row_stats.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hh {
namespace {

CsrMatrix ladder_matrix() {
  // Row r has r nonzeros (r = 0..4).
  std::vector<index_t> tr, tc;
  std::vector<value_t> tv;
  for (index_t r = 0; r < 5; ++r) {
    for (index_t k = 0; k < r; ++k) {
      tr.push_back(r);
      tc.push_back(k);
      tv.push_back(1.0);
    }
  }
  return csr_from_triplets(5, 5, tr, tc, tv);
}

TEST(RowStats, VectorMatchesRowNnz) {
  const CsrMatrix m = ladder_matrix();
  const auto v = row_nnz_vector(m);
  ASSERT_EQ(v.size(), 5u);
  for (index_t r = 0; r < 5; ++r) EXPECT_EQ(v[r], r);
}

TEST(RowStats, StatsFields) {
  const CsrMatrix m = ladder_matrix();
  const RowStats s = row_stats(m);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 4);
  EXPECT_EQ(s.empty_rows, 1);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(RowStats, HistogramCountsEveryRow) {
  const CsrMatrix m = ladder_matrix();
  const auto h = row_nnz_histogram(m);
  ASSERT_EQ(h.size(), 5u);
  for (std::size_t k = 0; k < h.size(); ++k) EXPECT_EQ(h[k], 1);
}

TEST(RowStats, CountRowsAtLeast) {
  const CsrMatrix m = ladder_matrix();
  EXPECT_EQ(count_rows_at_least(m, 0), 5);
  EXPECT_EQ(count_rows_at_least(m, 3), 2);
  EXPECT_EQ(count_rows_at_least(m, 5), 0);
}

TEST(RowStats, EmptyMatrix) {
  const CsrMatrix m(3, 3);
  const RowStats s = row_stats(m);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.empty_rows, 3);
}

}  // namespace
}  // namespace hh
