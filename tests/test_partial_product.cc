// The masked partial-product kernel is the numeric heart of HH-CPU: these
// tests pin down the decomposition identity (the four partial products merge
// to the full product) and the statistics the device models consume.
#include <gtest/gtest.h>

#include <numeric>

#include "primitives/tuple_merge.hpp"
#include "sparse/partition.hpp"
#include "spgemm/gustavson.hpp"
#include "spgemm/spgemm.hpp"
#include "spgemm/symbolic.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

std::vector<index_t> all_rows(index_t n) {
  std::vector<index_t> rows(static_cast<std::size_t>(n));
  std::iota(rows.begin(), rows.end(), index_t{0});
  return rows;
}

TEST(PartialProduct, UnmaskedEqualsFullProduct) {
  const CsrMatrix a = test::random_csr(25, 20, 0.25, 301);
  const CsrMatrix b = test::random_csr(20, 22, 0.3, 302);
  ThreadPool pool(2);
  ProductStats stats;
  const CooMatrix coo =
      partial_product_tuples(a, b, all_rows(a.rows), {}, true, pool, &stats);
  const CsrMatrix got = merged_coo_to_csr(coo);
  const CsrMatrix want = gustavson_spgemm(a, b);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-9, &why)) << why;
  EXPECT_EQ(stats.flops, total_flops(a, b));
  EXPECT_EQ(stats.rows, a.rows);
  EXPECT_EQ(stats.a_nnz, a.nnz());
  EXPECT_EQ(stats.tuples, static_cast<std::int64_t>(coo.nnz()));
}

class DecompositionTest : public testing::TestWithParam<offset_t> {};

TEST_P(DecompositionTest, FourPartialProductsMergeToFullProduct) {
  // The algebraic core of Algorithm HH-CPU (paper Fig. 3): C is the sum of
  // A_H×B_H + A_L×B_L + A_H×B_L + A_L×B_H, for any threshold.
  const offset_t t = GetParam();
  const CsrMatrix a = test::random_csr(30, 30, 0.2, 401);
  ThreadPool pool(2);
  const RowPartition p = classify_rows(a, t);

  CooMatrix all(a.rows, a.cols);
  for (const bool a_high : {true, false}) {
    for (const bool b_high : {true, false}) {
      const auto& rows = a_high ? p.high_rows : p.low_rows;
      all.append(
          partial_product_tuples(a, a, rows, p.is_high, b_high, pool, nullptr));
    }
  }
  const CsrMatrix got = merged_coo_to_csr(all);
  const CsrMatrix want = gustavson_spgemm(a, a);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-9, &why))
      << "t=" << t << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DecompositionTest,
                         testing::Values(0, 1, 3, 5, 8, 1000));

TEST(PartialProduct, StatsSplitConsistent) {
  const CsrMatrix a = test::random_csr(40, 40, 0.15, 402);
  ThreadPool pool(2);
  ProductStats stats;
  partial_product_tuples(a, a, all_rows(a.rows), {}, true, pool, &stats);
  EXPECT_EQ(stats.flops_shared + stats.flops_global, stats.flops);
  EXPECT_LE(stats.max_row_flops, stats.flops);
  EXPECT_GE(stats.warp_alu, stats.flops / 32);
  EXPECT_GE(stats.b_read_bytes, 12 * stats.flops);
}

TEST(PartialProduct, MaskedStatsAddUpToUnmasked) {
  const CsrMatrix a = test::random_csr(30, 30, 0.2, 403);
  ThreadPool pool(2);
  const RowPartition p = classify_rows(a, 5);
  ProductStats hi, lo, full;
  partial_product_tuples(a, a, all_rows(a.rows), p.is_high, true, pool, &hi);
  partial_product_tuples(a, a, all_rows(a.rows), p.is_high, false, pool, &lo);
  partial_product_tuples(a, a, all_rows(a.rows), {}, true, pool, &full);
  EXPECT_EQ(hi.flops + lo.flops, full.flops);
  EXPECT_EQ(hi.a_nnz + lo.a_nnz, full.a_nnz);
}

TEST(PartialProduct, DeterministicAcrossPoolSizes) {
  const CsrMatrix a = test::random_csr(35, 35, 0.2, 404);
  ThreadPool pool1(1), pool4(4);
  const CooMatrix x =
      partial_product_tuples(a, a, all_rows(a.rows), {}, true, pool1, nullptr);
  const CooMatrix y =
      partial_product_tuples(a, a, all_rows(a.rows), {}, true, pool4, nullptr);
  EXPECT_EQ(x.r, y.r);
  EXPECT_EQ(x.c, y.c);
  EXPECT_EQ(x.v, y.v);
}

TEST(PartialProduct, EstimateIsExactOnFlopsAndUpperBoundOnTuples) {
  const CsrMatrix a = test::random_csr(30, 30, 0.25, 405);
  ThreadPool pool(2);
  ProductStats actual;
  partial_product_tuples(a, a, all_rows(a.rows), {}, true, pool, &actual);
  const ProductStats est =
      estimate_partial_product(a, a, all_rows(a.rows), {}, true);
  EXPECT_EQ(est.flops, actual.flops);
  EXPECT_EQ(est.a_nnz, actual.a_nnz);
  EXPECT_EQ(est.warp_alu, actual.warp_alu);
  EXPECT_EQ(est.b_read_bytes, actual.b_read_bytes);
  EXPECT_EQ(est.max_row_flops, actual.max_row_flops);
  EXPECT_GE(est.tuples, actual.tuples);
}

TEST(PartialProduct, EmptyRowList) {
  const CsrMatrix a = test::random_csr(10, 10, 0.3, 406);
  ThreadPool pool(2);
  ProductStats stats;
  const CooMatrix coo =
      partial_product_tuples(a, a, {}, {}, true, pool, &stats);
  EXPECT_EQ(coo.nnz(), 0u);
  EXPECT_EQ(stats.rows, 0);
  EXPECT_EQ(stats.flops, 0);
}

TEST(PartialProduct, SharedAccumCapKnob) {
  const std::int64_t original = shared_accum_cap();
  set_shared_accum_cap(1);
  EXPECT_EQ(shared_accum_cap(), 1);
  const CsrMatrix a = test::random_csr(20, 20, 0.4, 407);
  ThreadPool pool(2);
  ProductStats stats;
  partial_product_tuples(a, a, all_rows(a.rows), {}, true, pool, &stats);
  // With cap 1 nearly everything lands on the global path.
  EXPECT_GT(stats.flops_global, stats.flops_shared);
  set_shared_accum_cap(original);
  EXPECT_THROW(set_shared_accum_cap(0), CheckError);
}

}  // namespace
}  // namespace hh
