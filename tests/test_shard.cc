#include "shard/sharded_service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hh_cpu.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/signature.hpp"
#include "shard/ring.hpp"
#include "shard/snapshot.hpp"
#include "test_util.hpp"
#include "util/prng.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

// ------------------------------------------------------------------- ring

TEST(HashRing, SameSeedBuildsTheSameRing) {
  const HashRing r1(4, 16, 0xabcULL);
  const HashRing r2(4, 16, 0xabcULL);
  const HashRing other(4, 16, 0xdefULL);
  bool any_differs = false;
  for (std::uint64_t k = 0; k < 256; ++k) {
    std::uint64_t st = k;
    const std::uint64_t h = splitmix64(st);
    EXPECT_EQ(r1.owner(h), r2.owner(h));
    any_differs = any_differs || r1.owner(h) != other.owner(h);
  }
  EXPECT_TRUE(any_differs);  // the seed actually places the ring
}

TEST(HashRing, EveryShardOwnsASliceOfTheKeySpace) {
  const HashRing ring(4, 16, 0x5a4dULL);
  std::vector<int> owned(4, 0);
  for (std::uint64_t k = 0; k < 4096; ++k) {
    std::uint64_t st = k;
    owned[ring.owner(splitmix64(st))]++;
  }
  for (int s = 0; s < 4; ++s) {
    // Loose balance bound: 16 virtual nodes keep every shard well above a
    // starvation share (perfect balance would be 1024 each).
    EXPECT_GT(owned[s], 200) << "shard " << s;
  }
}

TEST(HashRing, RouteSkipsIneligibleShardsAndReportsNoShard) {
  const HashRing ring(4, 16, 0x5a4dULL);
  std::uint64_t st = 42;
  const std::uint64_t h = splitmix64(st);
  const std::size_t owner = ring.owner(h);

  std::vector<bool> all(4, true);
  EXPECT_EQ(ring.route(h, all), owner);

  std::vector<bool> without_owner(4, true);
  without_owner[owner] = false;
  const std::size_t successor = ring.route(h, without_owner);
  ASSERT_NE(successor, kNoShard);
  EXPECT_NE(successor, owner);
  EXPECT_TRUE(without_owner[successor]);

  const std::vector<bool> none(4, false);
  EXPECT_EQ(ring.route(h, none), kNoShard);
}

// ------------------------------------------------------------ shard group

void expect_bit_identical(const CsrMatrix& want, const CsrMatrix& got,
                          const std::string& label) {
  EXPECT_EQ(want.rows, got.rows) << label;
  EXPECT_EQ(want.cols, got.cols) << label;
  EXPECT_EQ(want.indptr, got.indptr) << label;
  EXPECT_EQ(want.indices, got.indices) << label;
  EXPECT_EQ(want.values, got.values) << label;  // exact, not approximate
}

/// The group's routing key for a self-product request: the same
/// (PlanKeyHash → splitmix64) chain ShardedSpgemmService::request_hash uses,
/// so tests can predict which shard owns a matrix and aim trigger_ops kills.
std::uint64_t ring_hash(const CsrMatrix& m) {
  const MatrixSignature sig = matrix_signature(m);
  std::uint64_t st =
      static_cast<std::uint64_t>(PlanKeyHash{}(PlanKey{sig, sig}));
  return splitmix64(st);
}

class ShardGroupTest : public testing::Test {
 protected:
  ShardGroupTest()
      : a_(test::random_csr(60, 60, 0.08, 11)),
        b_(test::random_csr(62, 62, 0.08, 22)),
        c_(test::random_csr(64, 64, 0.08, 33)),
        pool_(2) {}

  CsrMatrix reference(const CsrMatrix& m) {
    return run_hh_cpu(m, m, HhCpuOptions{}, plat_, pool_).c;
  }

  SpgemmRequest req(const CsrMatrix& m, double deadline_s = 0) {
    SpgemmRequest r;
    r.a = &m;
    r.deadline_s = deadline_s;
    return r;
  }

  CsrMatrix a_;
  CsrMatrix b_;
  CsrMatrix c_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(ShardGroupTest, RoutesBySignatureAndMatchesSerialReference) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 4;
  cfg.round_quantum = 8;
  ShardedSpgemmService group(plat_, pool_, cfg);

  const CsrMatrix* mats[] = {&a_, &b_, &c_, &a_, &b_, &c_, &a_, &a_};
  for (const CsrMatrix* m : mats) group.submit(req(*m));
  ASSERT_EQ(group.pending(), 8u);
  const GroupResult out = group.drain();
  EXPECT_EQ(group.pending(), 0u);
  ASSERT_EQ(out.results.size(), 8u);

  for (std::size_t i = 0; i < std::size(mats); ++i) {
    expect_bit_identical(reference(*mats[i]), out.results[i].c,
                         "request " + std::to_string(i));
  }

  const GroupBatchReport& g = out.group;
  EXPECT_EQ(g.requests, 8u);
  EXPECT_EQ(g.completed, 8u);
  EXPECT_EQ(g.deadline_missed, 0u);
  EXPECT_EQ(g.kills, 0u);
  EXPECT_EQ(g.failovers, 0u);
  EXPECT_EQ(g.rounds, 1u);  // 8 requests, quantum 8, no kills: one round
  EXPECT_GT(g.makespan_s, 0);
  EXPECT_LE(g.p50_latency_s, g.p95_latency_s);
  EXPECT_LE(g.p95_latency_s, g.p99_latency_s);
  EXPECT_LE(g.p99_latency_s, g.makespan_s + 1e-15);

  // Same-signature requests stick to the ring owner: each matrix's full
  // request count lands on its owner shard, and repeats hit its plan cache.
  std::size_t assigned_total = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  for (const ShardReport& sr : g.shard_reports) {
    assigned_total += sr.assigned;
    hits += sr.plan_cache.hits;
    misses += sr.plan_cache.misses;
    EXPECT_EQ(sr.breaker, "closed");
  }
  EXPECT_EQ(assigned_total, 8u);
  EXPECT_EQ(g.shard_reports[group.ring().owner(ring_hash(a_))].assigned >= 4u,
            true);
  EXPECT_EQ(misses, 3);  // one cold identification per distinct signature
  EXPECT_EQ(hits, 5);
}

TEST_F(ShardGroupTest, GroupCapacityShedsWithTypedError) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 2;
  cfg.group_capacity = 2;
  ShardedSpgemmService group(plat_, pool_, cfg);

  SpgemmRequest bad;  // malformed: validated before routing
  EXPECT_THROW(group.submit(bad), InvalidArgumentError);

  group.submit(req(a_));
  group.submit(req(b_));
  EXPECT_THROW(group.submit(req(c_)), AdmissionError);
  EXPECT_EQ(group.pending(), 2u);

  const GroupResult out = group.drain();
  EXPECT_EQ(out.group.requests, 2u);
  EXPECT_EQ(out.group.completed, 2u);
  EXPECT_EQ(out.group.shed, 1u);
}

TEST_F(ShardGroupTest, KillMidBatchFailsOverWithZeroLossThenRehydrates) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 4;
  cfg.round_quantum = 8;
  cfg.seed = 0xfeedULL;
  cfg.restart_after_rounds = 2;
  // Kill A's owner shard in round 2 — after that round's submissions, so
  // its in-flight requests genuinely fail over.
  const HashRing ring(cfg.shards, cfg.virtual_nodes, cfg.seed);
  const std::size_t victim = ring.owner(ring_hash(a_));
  cfg.shard_faults.trigger_ops = {1 * cfg.shards + victim};
  ShardedSpgemmService group(plat_, pool_, cfg);

  // Drain 1 (round 1): warm every owner's plan cache; snapshots captured.
  for (const CsrMatrix* m : {&a_, &b_, &c_, &a_}) group.submit(req(*m));
  const GroupResult warm = group.drain();
  EXPECT_EQ(warm.group.completed, 4u);
  EXPECT_EQ(warm.group.kills, 0u);
  ASSERT_NE(group.stored_snapshot(victim), nullptr);
  EXPECT_TRUE(group.stored_snapshot(victim)->valid());

  // Drain 2 (rounds 2-3): the victim dies with requests in flight.
  const CsrMatrix* mats[] = {&a_, &a_, &b_, &a_, &c_};
  std::size_t expected_failovers = 0;
  for (const CsrMatrix* m : mats) {
    group.submit(req(*m));
    if (ring.owner(ring_hash(*m)) == victim) ++expected_failovers;
  }
  ASSERT_GE(expected_failovers, 3u);  // the three A requests at minimum
  const GroupResult out = group.drain();
  ASSERT_EQ(out.results.size(), 5u);
  for (std::size_t i = 0; i < std::size(mats); ++i) {
    EXPECT_TRUE(out.requests[i].status.ok()) << i;
    expect_bit_identical(reference(*mats[i]), out.results[i].c,
                         "failover request " + std::to_string(i));
  }
  const GroupBatchReport& g = out.group;
  EXPECT_EQ(g.completed, 5u);  // zero loss
  EXPECT_EQ(g.deadline_missed, 0u);
  EXPECT_EQ(g.kills, 1u);
  EXPECT_EQ(g.failovers, expected_failovers);
  EXPECT_EQ(g.rounds, 2u);  // kill round + the re-routed round
  EXPECT_EQ(g.shard_reports[victim].kills, 1u);
  EXPECT_EQ(g.shard_reports[victim].failovers_out, expected_failovers);
  EXPECT_EQ(g.shard_reports[victim].breaker, "dead");
  EXPECT_FALSE(group.alive(victim));
  EXPECT_EQ(group.shard_service(victim), nullptr);
  EXPECT_EQ(group.metrics().counter("shard.kills").value(), 1);
  EXPECT_EQ(group.metrics().counter("shard.failovers").value(),
            static_cast<std::int64_t>(expected_failovers));

  // Drain 3 (rounds 4-5): restart_after_rounds elapse, the victim restarts
  // half-open, rehydrates from its snapshot, and the probe request is a
  // plan-cache hit — no re-identification after the restart.
  group.submit(req(a_));
  group.submit(req(a_));
  const GroupResult back = group.drain();
  ASSERT_EQ(back.results.size(), 2u);
  expect_bit_identical(reference(a_), back.results[0].c, "probe");
  expect_bit_identical(reference(a_), back.results[1].c, "post-probe");
  EXPECT_EQ(back.group.completed, 2u);
  EXPECT_EQ(back.group.restarts, 1u);
  EXPECT_EQ(back.group.rounds, 2u);      // probe round + full-quantum round
  EXPECT_EQ(back.group.deferrals, 1u);   // the non-probe request waited
  EXPECT_TRUE(back.group.shard_reports[victim].rehydrated);
  EXPECT_FALSE(back.group.shard_reports[victim].snapshot_rejected);
  EXPECT_TRUE(group.alive(victim));
  EXPECT_EQ(group.breaker_state(victim), BreakerState::kClosed);
  ASSERT_NE(group.shard_service(victim), nullptr);
  const PlanCache::Stats& stats =
      group.shard_service(victim)->plan_cache().stats();
  EXPECT_EQ(stats.hits, 2);    // both served from the rehydrated snapshot
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(group.metrics().counter("shard.restarts").value(), 1);
  EXPECT_EQ(group.metrics().counter("shard.rehydrations").value(), 1);
}

TEST_F(ShardGroupTest, TamperedSnapshotIsRejectedAndTheShardColdStarts) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 4;
  cfg.round_quantum = 8;
  cfg.seed = 0xfeedULL;
  cfg.restart_after_rounds = 2;
  const HashRing ring(cfg.shards, cfg.virtual_nodes, cfg.seed);
  const std::size_t victim = ring.owner(ring_hash(a_));
  cfg.shard_faults.trigger_ops = {1 * cfg.shards + victim};
  ShardedSpgemmService group(plat_, pool_, cfg);

  group.submit(req(a_));
  group.drain();  // round 1: warm + snapshot

  ShardSnapshot* snap = group.stored_snapshot(victim);
  ASSERT_NE(snap, nullptr);
  ASSERT_FALSE(snap->plans.empty());
  snap->plans[0].second.threshold_a += 1;  // bit-rot without checksum update
  EXPECT_FALSE(snap->valid());

  group.submit(req(a_));
  const GroupResult killed = group.drain();  // rounds 2-3: kill + failover
  EXPECT_EQ(killed.group.kills, 1u);
  EXPECT_EQ(killed.group.completed, 1u);

  group.submit(req(a_));
  const GroupResult back = group.drain();  // rounds 4-5: restart
  EXPECT_EQ(back.group.restarts, 1u);
  EXPECT_TRUE(back.group.shard_reports[victim].snapshot_rejected);
  EXPECT_FALSE(back.group.shard_reports[victim].rehydrated);
  EXPECT_EQ(group.metrics().counter("shard.snapshots_rejected").value(), 1);
  EXPECT_EQ(group.metrics().counter("shard.rehydrations").value(), 0);
  // Cold start: the probe re-identifies instead of trusting corrupt state —
  // and the output is still bit-identical to the serial reference.
  ASSERT_NE(group.shard_service(victim), nullptr);
  EXPECT_EQ(group.shard_service(victim)->plan_cache().stats().misses, 1);
  EXPECT_EQ(group.shard_service(victim)->plan_cache().stats().hits, 0);
  expect_bit_identical(reference(a_), back.results[0].c, "cold restart");
}

TEST_F(ShardGroupTest, BreakerOpensProbesHalfOpenAndSpillsWhileOpen) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 2;
  cfg.round_quantum = 4;
  cfg.health.consecutive_failures = 3;
  cfg.health.deadline_misses = 8;
  cfg.health.open_rounds = 1;
  cfg.health.half_open_probes = 1;
  ShardedSpgemmService group(plat_, pool_, cfg);
  const std::size_t owner = group.ring().owner(ring_hash(a_));
  const std::size_t other = 1 - owner;

  // Round 1: three straight deadline misses trip the owner's breaker.
  for (int i = 0; i < 3; ++i) group.submit(req(a_, 1e-12));
  const GroupResult tripped = group.drain();
  EXPECT_EQ(tripped.group.deadline_missed, 3u);
  EXPECT_EQ(tripped.group.completed, 0u);
  EXPECT_EQ(group.breaker_state(owner), BreakerState::kOpen);
  EXPECT_EQ(tripped.group.shard_reports[owner].breaker_opens, 1u);
  EXPECT_EQ(tripped.group.shard_reports[owner].breaker, "open");

  // Rounds 2-3: after open_rounds the breaker half-opens; one probe goes
  // through (the rest of the quantum defers — no spill while probing), the
  // clean probe closes the breaker and the backlog drains at full quantum.
  for (int i = 0; i < 5; ++i) group.submit(req(a_));
  const GroupResult recovered = group.drain();
  EXPECT_EQ(recovered.group.completed, 5u);
  EXPECT_EQ(recovered.group.rounds, 2u);
  EXPECT_EQ(recovered.group.deferrals, 4u);
  EXPECT_EQ(recovered.group.shard_reports[other].assigned, 0u);
  EXPECT_EQ(group.breaker_state(owner), BreakerState::kClosed);
  EXPECT_EQ(group.metrics().counter("shard.breaker_half_opens").value(), 1);
  EXPECT_EQ(group.metrics().counter("shard.breaker_closes").value(), 1);
  for (std::size_t i = 0; i < 5; ++i) {
    expect_bit_identical(reference(a_), recovered.results[i].c,
                         "recovered " + std::to_string(i));
  }

  // Round 4: trip it again...
  for (int i = 0; i < 3; ++i) group.submit(req(a_, 1e-12));
  group.drain();
  ASSERT_EQ(group.breaker_state(owner), BreakerState::kOpen);

  // Rounds 5-7: ...and fail the first probe. The breaker re-opens (one more
  // health-driven open on the owner), with open_rounds=1 the next round
  // probes again, the clean probe closes it, and the backlog follows.
  group.submit(req(a_, 1e-12));  // the probe: misses its deadline
  group.submit(req(a_));
  group.submit(req(a_));
  const GroupResult reprobed = group.drain();
  EXPECT_EQ(reprobed.group.rounds, 3u);
  EXPECT_EQ(group.breaker_state(owner), BreakerState::kClosed);
  EXPECT_EQ(reprobed.group.shard_reports[owner].breaker_opens, 1u);
  EXPECT_EQ(reprobed.group.deferrals, 3u);  // 2 behind probe 1, 1 behind 2
  EXPECT_EQ(reprobed.group.completed, 2u);
  expect_bit_identical(reference(a_), reprobed.results[1].c, "reprobe 1");
  expect_bit_identical(reference(a_), reprobed.results[2].c, "reprobe 2");
}

TEST_F(ShardGroupTest, OpenBreakerSpillsTrafficToTheRingSuccessor) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 2;
  cfg.round_quantum = 8;
  cfg.health.consecutive_failures = 3;
  cfg.health.open_rounds = 3;  // long cool-down: the spill round sees "open"
  ShardedSpgemmService group(plat_, pool_, cfg);
  const std::size_t owner = group.ring().owner(ring_hash(a_));
  const std::size_t other = 1 - owner;

  for (int i = 0; i < 3; ++i) group.submit(req(a_, 1e-12));
  group.drain();
  ASSERT_EQ(group.breaker_state(owner), BreakerState::kOpen);

  // Round 2: the owner is still cooling down, so its keys re-route to the
  // ring successor rather than waiting out the breaker.
  for (int i = 0; i < 5; ++i) group.submit(req(a_));
  const GroupResult spilled = group.drain();
  EXPECT_EQ(spilled.group.rounds, 1u);
  EXPECT_EQ(spilled.group.completed, 5u);
  EXPECT_EQ(spilled.group.shard_reports[owner].assigned, 0u);
  EXPECT_EQ(spilled.group.shard_reports[other].assigned, 5u);
  EXPECT_EQ(group.breaker_state(owner), BreakerState::kOpen);
  for (std::size_t i = 0; i < 5; ++i) {
    expect_bit_identical(reference(a_), spilled.results[i].c,
                         "spill " + std::to_string(i));
  }
}

// The quarantine ledger across a restart: a plan quarantined after the
// snapshot was taken must not be resurrected by rehydration while its TTL
// holds — even though the snapshot legitimately contains the re-learned
// plan. Once the TTL expires, rehydration may serve it again.
struct QuarantineProbe {
  bool rehydrated = false;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
};

class ShardQuarantineTest : public ShardGroupTest {
 protected:
  QuarantineProbe run_scenario(std::uint64_t ttl_rounds) {
    ShardedSpgemmService::Config cfg;
    cfg.shards = 3;
    cfg.round_quantum = 8;
    cfg.seed = 0xbeefULL;
    cfg.restart_after_rounds = 2;
    cfg.quarantine_ttl_rounds = ttl_rounds;
    const HashRing ring(cfg.shards, cfg.virtual_nodes, cfg.seed);
    const std::size_t victim = ring.owner(ring_hash(a_));
    cfg.shard_faults.trigger_ops = {2 * cfg.shards + victim};  // round 3
    ShardedSpgemmService group(plat_, pool_, cfg);

    // Round 1: learn A's plan. Round 2: a deadline miss on a cache hit
    // quarantines it (ledger entry expires at round 2 + ttl), then a clean
    // request re-identifies and re-caches it — so the round-2 snapshot
    // contains the plan again.
    group.submit(req(a_));
    group.drain();
    group.submit(req(a_, 1e-12));
    group.submit(req(a_));
    const GroupResult q = group.drain();
    EXPECT_EQ(q.group.deadline_missed, 1u);
    EXPECT_EQ(q.group.completed, 1u);

    // Rounds 3-4: kill the owner mid-batch; its requests fail over.
    group.submit(req(a_));
    group.submit(req(a_));
    const GroupResult killed = group.drain();
    EXPECT_EQ(killed.group.kills, 1u);
    EXPECT_EQ(killed.group.completed, 2u);

    // Round 5: restart + rehydration, then one probe request of A.
    group.submit(req(a_));
    const GroupResult back = group.drain();
    EXPECT_EQ(back.group.restarts, 1u);
    EXPECT_EQ(back.group.completed, 1u);
    expect_bit_identical(reference(a_), back.results[0].c, "probe");

    QuarantineProbe probe;
    probe.rehydrated = back.group.shard_reports[victim].rehydrated;
    const PlanCache::Stats& stats =
        group.shard_service(victim)->plan_cache().stats();
    probe.hits = stats.hits;
    probe.misses = stats.misses;
    return probe;
  }
};

TEST_F(ShardQuarantineTest, LiveQuarantineBlocksRehydratedPlan) {
  // TTL 10: the ledger entry (expires round 12) outlives the round-5
  // restart, so the plan is filtered out of rehydration and the probe must
  // re-identify.
  const QuarantineProbe probe = run_scenario(10);
  EXPECT_TRUE(probe.rehydrated);  // everything else IS restored
  EXPECT_EQ(probe.hits, 0);
  EXPECT_EQ(probe.misses, 1);
}

TEST_F(ShardQuarantineTest, ExpiredQuarantineAllowsRehydratedPlan) {
  // TTL 1: the entry expired at round 3, well before the round-5 restart —
  // the re-learned plan is restored and the probe hits.
  const QuarantineProbe probe = run_scenario(1);
  EXPECT_TRUE(probe.rehydrated);
  EXPECT_EQ(probe.hits, 1);
  EXPECT_EQ(probe.misses, 0);
}

TEST_F(ShardGroupTest, SameSeedReplayIsByteIdenticalThroughKillsAndTuning) {
  auto build = [&] {
    ShardedSpgemmService::Config cfg;
    cfg.shards = 3;
    cfg.virtual_nodes = 8;
    cfg.round_quantum = 2;  // small quantum: A's backlog spans into round 2
    cfg.seed = 0x1234ULL;
    cfg.restart_after_rounds = 2;
    // Kill A's owner at round 2, while it still holds deferred A requests.
    const HashRing ring(cfg.shards, cfg.virtual_nodes, cfg.seed);
    cfg.shard_faults.trigger_ops = {1 * cfg.shards +
                                    ring.owner(ring_hash(a_))};
    cfg.shard.tune.enabled = true;
    cfg.shard.fault_plan.gpu_kernel.rate = 0.15;
    cfg.shard.recovery.decorrelated_jitter = true;
    return ShardedSpgemmService(plat_, pool_, cfg);
  };
  const CsrMatrix* first[] = {&a_, &b_, &c_, &a_, &b_, &a_, &c_, &a_};
  const CsrMatrix* second[] = {&a_, &a_, &b_, &c_, &a_, &b_};

  auto run = [&](ShardedSpgemmService& group, std::string& reports_json,
                 std::vector<CsrMatrix>& outputs,
                 std::vector<RunReport>& reports) {
    for (const CsrMatrix* m : first) group.submit(req(*m));
    const GroupResult r1 = group.drain();
    for (const CsrMatrix* m : second) group.submit(req(*m));
    const GroupResult r2 = group.drain();
    reports_json = r1.group.to_json() + "\n" + r2.group.to_json() + "\n" +
                   group.tune_report().to_json();
    for (const GroupResult* r : {&r1, &r2}) {
      for (const RequestReport& rr : r->requests) {
        reports_json += "\n" + rr.to_json();
      }
      for (const RunResult& res : r->results) {
        outputs.push_back(res.c);
        reports.push_back(res.report);
      }
    }
    EXPECT_EQ(r1.group.kills + r2.group.kills, 1u);
    EXPECT_GE(r1.group.failovers, 1u);
    EXPECT_TRUE(r1.group.backoff_jitter);
  };

  ShardedSpgemmService g1 = build();
  ShardedSpgemmService g2 = build();
  std::string json1;
  std::string json2;
  std::vector<CsrMatrix> out1;
  std::vector<CsrMatrix> out2;
  std::vector<RunReport> rep1;
  std::vector<RunReport> rep2;
  run(g1, json1, out1, rep1);
  run(g2, json2, out2, rep2);

  EXPECT_EQ(json1, json2);  // byte-identical reports, kills included
  ASSERT_EQ(out1.size(), out2.size());
  for (std::size_t i = 0; i < out1.size(); ++i) {
    expect_bit_identical(out1[i], out2[i], "replay " + std::to_string(i));
  }
  // Tuned, faulted, failed-over — and still bit-identical to the serial
  // fault-free driver at the thresholds the service chose (tuning re-picks
  // thresholds; the H/L partition determines the summation order).
  const CsrMatrix* all[] = {&a_, &b_, &c_, &a_, &b_, &a_, &c_, &a_,
                            &a_, &a_, &b_, &c_, &a_, &b_};
  for (std::size_t i = 0; i < out1.size(); ++i) {
    HhCpuOptions opt;
    opt.threshold_a = rep1[i].threshold_a;
    opt.threshold_b = rep1[i].threshold_b;
    expect_bit_identical(run_hh_cpu(*all[i], *all[i], opt, plat_, pool_).c,
                         out1[i], "vs serial " + std::to_string(i));
  }
}

// --------------------------------------------------------------- snapshot

TEST_F(ShardGroupTest, SnapshotRoundTripsTunerAndPlanCacheState) {
  SpgemmService::Config cfg;
  cfg.tune.enabled = true;
  SpgemmService service(plat_, pool_, cfg);
  for (int round = 0; round < 3; ++round) {
    for (const CsrMatrix* m : {&a_, &b_, &a_}) {
      service.submit({m, nullptr, {}, ""});
    }
    service.drain();
  }
  const ShardSnapshot snap = take_shard_snapshot(7, 42, service);
  EXPECT_EQ(snap.shard, 7u);
  EXPECT_EQ(snap.round, 42u);
  EXPECT_TRUE(snap.valid());
  ASSERT_GE(snap.plans.size(), 2u);

  SpgemmService fresh(plat_, pool_, cfg);
  restore_shard_snapshot(snap, {}, fresh);
  EXPECT_EQ(fresh.tune_report().to_json(), service.tune_report().to_json());
  EXPECT_EQ(fresh.plan_cache().size(), service.plan_cache().size());

  // Restoring with a quarantined key drops exactly that plan (and its tuner
  // entry — tested indirectly: the tune report can no longer match).
  SpgemmService filtered(plat_, pool_, cfg);
  restore_shard_snapshot(snap, {snap.plans[0].first}, filtered);
  EXPECT_EQ(filtered.plan_cache().size(), service.plan_cache().size() - 1);
  EXPECT_FALSE(filtered.plan_cache().lookup(snap.plans[0].first).has_value());

  // Any field flip breaks the chained checksum.
  ShardSnapshot tampered = snap;
  tampered.plans[0].second.version ^= 1;
  EXPECT_FALSE(tampered.valid());
  tampered = snap;
  tampered.tuner.rng_state[0] ^= 1;
  EXPECT_FALSE(tampered.valid());
  tampered = snap;
  tampered.round ^= 1;
  EXPECT_FALSE(tampered.valid());
}

}  // namespace
}  // namespace hh
