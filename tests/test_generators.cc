#include <gtest/gtest.h>

#include "gen/powerlaw_gen.hpp"
#include "gen/rmat.hpp"
#include "powerlaw/fit.hpp"
#include "sparse/row_stats.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(PowerLawGen, ShapeAndValidity) {
  PowerLawGenConfig cfg;
  cfg.rows = 500;
  cfg.alpha = 2.5;
  cfg.target_nnz = 2500;
  cfg.seed = 3;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  m.validate(true);
  EXPECT_EQ(m.rows, 500);
  EXPECT_EQ(m.cols, 500);
}

TEST(PowerLawGen, HitsTargetNnzApproximately) {
  PowerLawGenConfig cfg;
  cfg.rows = 2000;
  cfg.alpha = 2.8;
  cfg.target_nnz = 10000;
  cfg.seed = 4;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  // Within-row dedup removes a few entries; 25% slack.
  EXPECT_GT(m.nnz(), cfg.target_nnz * 3 / 4);
  EXPECT_LT(m.nnz(), cfg.target_nnz * 5 / 4);
}

TEST(PowerLawGen, DeterministicInSeed) {
  PowerLawGenConfig cfg;
  cfg.rows = 300;
  cfg.alpha = 2.5;
  cfg.target_nnz = 1500;
  cfg.seed = 42;
  const CsrMatrix a = generate_power_law_matrix(cfg);
  const CsrMatrix b = generate_power_law_matrix(cfg);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
  cfg.seed = 43;
  const CsrMatrix c = generate_power_law_matrix(cfg);
  EXPECT_NE(a.indices, c.indices);
}

TEST(PowerLawGen, RowSizesAreHeavyTailed) {
  PowerLawGenConfig cfg;
  cfg.rows = 20000;
  cfg.alpha = 2.2;
  cfg.target_nnz = 80000;
  cfg.seed = 5;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  const RowStats s = row_stats(m);
  // A heavy tail: the max row is far above the mean.
  EXPECT_GT(static_cast<double>(s.max), 20.0 * s.mean);
  const PowerLawFit fit = fit_power_law(row_nnz_vector(m));
  EXPECT_GT(fit.alpha, 1.5);
  EXPECT_LT(fit.alpha, 4.0);
}

TEST(PowerLawGen, PoissonModeIsNarrow) {
  PowerLawGenConfig cfg;
  cfg.rows = 20000;
  cfg.alpha = 100.0;
  cfg.dist = DegreeDist::kPoisson;
  cfg.poisson_mean = 4.0;
  cfg.target_nnz = 80000;
  cfg.seed = 6;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  const RowStats s = row_stats(m);
  EXPECT_LT(s.max, 30);  // narrow unimodal profile, no hubs
  EXPECT_NEAR(s.mean, 4.0, 0.5);
}

TEST(PowerLawGen, KmaxCapsHubs) {
  PowerLawGenConfig cfg;
  cfg.rows = 5000;
  cfg.alpha = 2.1;
  cfg.target_nnz = 20000;
  cfg.kmax = 50;
  cfg.seed = 7;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  EXPECT_LE(row_stats(m).max, 50);
}

TEST(PowerLawGen, SamplerRespectsBounds) {
  for (double u : {0.0, 0.25, 0.5, 0.9999}) {
    const std::int64_t k = sample_power_law_degree(2.5, 3, 100, u);
    EXPECT_GE(k, 3);
    EXPECT_LE(k, 100);
  }
  EXPECT_EQ(sample_power_law_degree(2.5, 5, 5, 0.7), 5);
}

TEST(PowerLawGen, InvalidConfigThrows) {
  PowerLawGenConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(generate_power_law_matrix(cfg), CheckError);
  cfg.rows = 10;
  cfg.alpha = 0.5;
  EXPECT_THROW(generate_power_law_matrix(cfg), CheckError);
}

TEST(Rmat, ShapeAndDeterminism) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.edges = 2000;
  cfg.seed = 11;
  const CsrMatrix a = generate_rmat_matrix(cfg);
  a.validate(true);
  EXPECT_EQ(a.rows, 256);
  const CsrMatrix b = generate_rmat_matrix(cfg);
  EXPECT_EQ(a.indices, b.indices);
}

TEST(Rmat, SkewedQuadrantsProduceSkewedRows) {
  RmatConfig cfg;
  cfg.scale = 10;
  cfg.edges = 20000;
  cfg.seed = 12;
  const CsrMatrix m = generate_rmat_matrix(cfg);
  const RowStats s = row_stats(m);
  EXPECT_GT(static_cast<double>(s.max), 5.0 * s.mean);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatConfig cfg;
  cfg.scale = 4;
  cfg.edges = 10;
  cfg.a = 0.9;  // sums to 1.33
  EXPECT_THROW(generate_rmat_matrix(cfg), CheckError);
}

}  // namespace
}  // namespace hh
