// Critical-path profiler (obs/critpath.hpp) and perf-baseline gate
// (obs/perf_baseline.hpp): hand-built placement chains with known answers,
// the sum-to-makespan property on real drains, bottleneck flips driven by
// the PCIe cost model, sharded rollup reconciliation, and the tolerance-band
// comparator bench_compare wraps.
#include "obs/critpath.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/perf_baseline.hpp"
#include "runtime/service.hpp"
#include "shard/sharded_service.hpp"
#include "test_util.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

double lane_sum(const double (&attributed)[kCritLaneCount]) {
  double total = 0;
  for (int i = 0; i < kCritLaneCount; ++i) total += attributed[i];
  return total;
}

// ------------------------------------------------- hand-built chains

TEST(CritPath, CpuBoundChainChargesEveryLaneItCovers) {
  PlacementLog log;
  log.begin_request(0);
  log.append("phase1-cpu", Resource::kCpu, 0, 0, 5);
  log.append("phase2-gpu", Resource::kGpu, 5, 5, 7);
  log.append("phase4-cpu", Resource::kCpu, 7, 7, 9);
  log.end_request();

  CritPathRequestInfo info;
  info.request_id = 0;
  info.label = "r0";
  info.latency_s = 9;
  const CritPathReport rep =
      compute_critical_path(log.placements(), 9.0, {info});

  EXPECT_DOUBLE_EQ(rep.makespan_s, 9.0);
  EXPECT_DOUBLE_EQ(rep.attributed_s[0], 7.0);  // cpu
  EXPECT_DOUBLE_EQ(rep.attributed_s[1], 2.0);  // gpu
  EXPECT_DOUBLE_EQ(rep.attributed_s[kIdleLane], 0.0);
  EXPECT_DOUBLE_EQ(lane_sum(rep.attributed_s), rep.makespan_s);
  EXPECT_EQ(rep.bottleneck_lane(), 0);

  ASSERT_EQ(rep.steps.size(), 3u);  // chronological after the backward walk
  EXPECT_STREQ(rep.steps[0].stage, "phase1-cpu");
  EXPECT_STREQ(rep.steps[1].stage, "phase2-gpu");
  EXPECT_STREQ(rep.steps[2].stage, "phase4-cpu");

  const RequestCostBreakdown* b = rep.find_request(0);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->service_s[0], 7.0);
  EXPECT_DOUBLE_EQ(b->service_s[1], 2.0);
  EXPECT_DOUBLE_EQ(b->crit_path_s, 9.0);  // the whole chain is this request
  EXPECT_EQ(b->bottleneck_lane(), 0);
  EXPECT_NE(b->explain().find("bottleneck cpu"), std::string::npos);
}

TEST(CritPath, LateArrivalCrossesAnIdleGap) {
  PlacementLog log;
  log.begin_request(0);
  log.append("a", Resource::kCpu, 0, 0, 2);
  log.end_request();
  log.begin_request(1);
  log.append("b", Resource::kCpu, 5, 5, 8);  // submitted late: wanted 5, got 5
  log.end_request();

  const CritPathReport rep = compute_critical_path(log.placements(), 8.0, {});

  EXPECT_DOUBLE_EQ(rep.attributed_s[0], 5.0);
  EXPECT_DOUBLE_EQ(rep.attributed_s[kIdleLane], 3.0);
  EXPECT_DOUBLE_EQ(lane_sum(rep.attributed_s), 8.0);
  ASSERT_EQ(rep.steps.size(), 3u);
  EXPECT_EQ(rep.steps[1].lane, kIdleLane);  // [2, 5): nothing ran anywhere
  EXPECT_STREQ(rep.steps[1].stage, "idle");
  EXPECT_DOUBLE_EQ(rep.steps[1].start_s, 2.0);
  EXPECT_DOUBLE_EQ(rep.steps[1].end_s, 5.0);
}

TEST(CritPath, ContentionHopsToTheResourceHolder) {
  PlacementLog log;
  log.begin_request(0);
  log.append("a", Resource::kCpu, 0, 0, 4);
  log.end_request();
  log.begin_request(1);
  // Runnable at 1, granted at 4: three seconds queued behind request 0.
  log.append("b", Resource::kCpu, 1, 4, 6);
  log.end_request();

  CritPathRequestInfo i1;
  i1.request_id = 1;
  i1.latency_s = 6;
  const CritPathReport rep = compute_critical_path(log.placements(), 6.0, {i1});

  // No idle: the chain runs b -> (contention) -> a, all on the CPU.
  EXPECT_DOUBLE_EQ(rep.attributed_s[0], 6.0);
  EXPECT_DOUBLE_EQ(rep.attributed_s[kIdleLane], 0.0);
  ASSERT_EQ(rep.steps.size(), 2u);
  EXPECT_EQ(rep.steps[0].request_id, 0u);
  EXPECT_EQ(rep.steps[1].request_id, 1u);
  EXPECT_DOUBLE_EQ(rep.steps[1].queue_delay_s, 3.0);

  const RequestCostBreakdown* b = rep.find_request(1);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->queueing_s[0], 3.0);  // blocked behind request 0
  EXPECT_DOUBLE_EQ(b->service_s[0], 2.0);
}

TEST(CritPath, RetryInflationChargesFaultsAndBackoffGaps) {
  PlacementLog log;
  log.begin_request(0);
  log.append("phase2-gpu-abort", Resource::kGpu, 0, 0, 1);  // burnt attempt
  log.append("phase2-gpu", Resource::kGpu, 2, 2, 4);        // retry after
                                                            // backoff [1, 2)
  log.end_request();

  CritPathRequestInfo info;
  info.request_id = 0;
  info.latency_s = 4;
  info.backoff_s = 1;
  const CritPathReport rep =
      compute_critical_path(log.placements(), 4.0, {info});

  EXPECT_DOUBLE_EQ(rep.attributed_s[1], 3.0);          // both attempts
  EXPECT_DOUBLE_EQ(rep.attributed_s[kIdleLane], 1.0);  // the backoff window
  EXPECT_DOUBLE_EQ(lane_sum(rep.attributed_s), 4.0);

  const RequestCostBreakdown* b = rep.find_request(0);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->fault_s, 1.0);  // the aborted attempt's span
  EXPECT_DOUBLE_EQ(b->backoff_s, 1.0);
  EXPECT_NE(b->explain().find("fault overhead 1 s"), std::string::npos);
}

// ------------------------------------------------- real drains

class CritPathServiceTest : public testing::Test {
 protected:
  CritPathServiceTest()
      : a_(test::random_csr(140, 140, 0.05, 101)),
        b_(test::random_csr(140, 140, 0.06, 102)),
        c_(test::random_csr(140, 140, 0.04, 103)),
        pool_(2) {}

  void submit_batch(SpgemmService& svc, std::size_t n) {
    const CsrMatrix* mats[] = {&a_, &b_, &c_};
    for (std::size_t i = 0; i < n; ++i) {
      SpgemmRequest req;
      req.a = mats[i % 3];
      req.label = "req" + std::to_string(i);
      svc.submit(std::move(req));
    }
  }

  CsrMatrix a_;
  CsrMatrix b_;
  CsrMatrix c_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(CritPathServiceTest, AttributionSumsToMakespanOnRealDrains) {
  SpgemmService svc(plat_, pool_);
  submit_batch(svc, 9);
  const BatchResult out = svc.drain();

  ASSERT_TRUE(out.batch.critpath_enabled);
  const CritPathReport& cp = out.batch.critpath;
  EXPECT_DOUBLE_EQ(cp.makespan_s, out.batch.makespan_s);
  EXPECT_NEAR(lane_sum(cp.attributed_s), cp.makespan_s,
              1e-9 * std::max(1.0, cp.makespan_s));

  // The chain tiles [0, makespan) without gaps or overlaps.
  ASSERT_FALSE(cp.steps.empty());
  EXPECT_DOUBLE_EQ(cp.steps.front().start_s, 0.0);
  EXPECT_NEAR(cp.steps.back().end_s, cp.makespan_s, 1e-12);
  for (std::size_t i = 1; i < cp.steps.size(); ++i) {
    EXPECT_NEAR(cp.steps[i].start_s, cp.steps[i - 1].end_s, 1e-12);
  }

  // Every request has a breakdown and a non-empty explainer, and the
  // chain's per-request charge totals the whole makespan minus idle.
  double charged = 0;
  for (const RequestReport& rr : out.requests) {
    const RequestCostBreakdown* b = cp.find_request(rr.request_id);
    ASSERT_NE(b, nullptr) << rr.label;
    EXPECT_EQ(b->label, rr.label);
    EXPECT_DOUBLE_EQ(b->latency_s, rr.latency_s);
    EXPECT_FALSE(b->explain().empty());
    charged += b->crit_path_s;
  }
  EXPECT_NEAR(charged + cp.attributed_s[kIdleLane], cp.makespan_s,
              1e-9 * std::max(1.0, cp.makespan_s));

  EXPECT_NE(out.batch.to_json().find("\"critpath\""), std::string::npos);
}

TEST_F(CritPathServiceTest, DisabledProfilerOmitsReportAndMetrics) {
  SpgemmService::Config cfg;
  cfg.critpath = false;
  SpgemmService svc(plat_, pool_, cfg);
  submit_batch(svc, 3);
  const BatchResult out = svc.drain();

  EXPECT_FALSE(out.batch.critpath_enabled);
  EXPECT_EQ(out.batch.to_json().find("\"critpath\""), std::string::npos);
  EXPECT_EQ(svc.metrics().to_json().find("critpath."), std::string::npos);
}

TEST_F(CritPathServiceTest, WaveDrainRollsUpPerWaveSlices) {
  SpgemmService::Config cfg;
  cfg.wave.enabled = true;
  cfg.keep_inputs_resident = false;
  SpgemmService svc(plat_, pool_, cfg);
  submit_batch(svc, 9);
  const BatchResult out = svc.drain();

  ASSERT_TRUE(out.batch.critpath_enabled);
  const CritPathReport& cp = out.batch.critpath;
  EXPECT_NEAR(lane_sum(cp.attributed_s), cp.makespan_s,
              1e-9 * std::max(1.0, cp.makespan_s));
  ASSERT_FALSE(cp.waves.empty());
  // Wave slices partition the chain's wave-stamped seconds; everything a
  // wave slice holds is also in the global per-lane totals.
  double wave_total = 0;
  for (const CritPathWaveSlice& w : cp.waves) {
    EXPECT_GE(w.wave_index, 0);
    wave_total += lane_sum(w.attributed_s);
  }
  EXPECT_LE(wave_total, lane_sum(cp.attributed_s) + 1e-9);
}

TEST_F(CritPathServiceTest, MetricsFlattenedRoundTripsCritpathSeries) {
  SpgemmService svc(plat_, pool_);
  submit_batch(svc, 6);
  const BatchResult out = svc.drain();
  ASSERT_TRUE(out.batch.critpath_enabled);

  const MetricsRegistry& m = svc.metrics();
  const std::vector<FlatMetric> flat = m.flattened();
  const auto value_of = [&](const std::string& name) -> const FlatMetric* {
    for (const FlatMetric& f : flat) {
      if (f.name == name) return &f;
    }
    return nullptr;
  };

  const std::string json = m.to_json();
  for (const char* lane : {"cpu", "gpu", "h2d", "d2h"}) {
    for (const char* leaf : {".busy_frac", ".blocked_frac", ".idle_frac",
                             ".crit_s"}) {
      const std::string name = std::string("critpath.") + lane + leaf;
      const FlatMetric* f = value_of(name);
      ASSERT_NE(f, nullptr) << name;
      EXPECT_EQ(f->kind, 'g') << name;
      EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
    }
    // busy and idle are complementary fractions of the same makespan.
    EXPECT_NEAR(value_of(std::string("critpath.") + lane + ".busy_frac")->value +
                    value_of(std::string("critpath.") + lane + ".idle_frac")
                        ->value,
                1.0, 1e-9);
    // Queueing-delay histograms flatten to .count/.sum rows.
    const std::string hist = std::string("critpath.queue_delay_s.") + lane;
    const FlatMetric* count = value_of(hist + ".count");
    ASSERT_NE(count, nullptr) << hist;
    EXPECT_EQ(count->kind, 'h');
    ASSERT_NE(value_of(hist + ".sum"), nullptr) << hist;
  }
  const FlatMetric* bottleneck = value_of("critpath.bottleneck");
  ASSERT_NE(bottleneck, nullptr);
  EXPECT_DOUBLE_EQ(bottleneck->value,
                   static_cast<double>(out.batch.critpath.bottleneck_lane()));
}

// On a PCIe-starved platform the upload link is the critical resource; the
// identical workload (thresholds pinned so the planner cannot rebalance)
// flips its bottleneck to the GPU once the link is widened. The operand is
// hypersparse (under one nonzero per row), so its CSR bytes — dominated by
// the row-pointer array — outweigh the result tuples and the upload, not
// the download, holds the starved link's plurality.
TEST_F(CritPathServiceTest, BottleneckFlipsFromH2dToGpuWithLinkBandwidth) {
  const CsrMatrix sparse = test::random_csr(1500, 1500, 0.0005, 101);
  const auto drain_with = [&](double bw_gbps) {
    CostModel cm;
    cm.pcie.bw_gbps = bw_gbps;
    cm.gpu.derate = 8.0;  // slow GPU: visible once transfers stop dominating
    const HeteroPlatform plat = make_scaled_platform(1.0, cm);
    SpgemmService::Config cfg;
    cfg.keep_inputs_resident = false;  // every request pays its upload
    SpgemmService svc(plat, pool_, cfg);
    for (std::size_t i = 0; i < 6; ++i) {
      SpgemmRequest req;
      req.a = &sparse;
      // Pin the split: every row below the threshold runs on the GPU, so
      // both platforms execute the same placements modulo their costs.
      req.options.threshold_a = 1 << 20;
      req.options.threshold_b = 1 << 20;
      req.label = "flip" + std::to_string(i);
      svc.submit(std::move(req));
    }
    const BatchResult out = svc.drain();
    EXPECT_TRUE(out.batch.critpath_enabled);
    return out.batch.critpath.summary();
  };

  const CritPathSummary starved = drain_with(0.05);  // contended narrow link
  const CritPathSummary fast = drain_with(64.0);
  EXPECT_EQ(starved.bottleneck_lane(), 2)
      << "starved link should be H2D-bound: " << starved.to_string();
  EXPECT_EQ(fast.bottleneck_lane(), 1)
      << "fast link should expose the GPU: " << fast.to_string();
  // The flip is structural, not a tie wobble: H2D holds the plurality only
  // while the link is narrow.
  EXPECT_GT(starved.attributed_s[2], starved.attributed_s[1]);
  EXPECT_GT(fast.attributed_s[1], fast.attributed_s[2]);
}

TEST_F(CritPathServiceTest, ShardedRollupReconcilesWithGroupReport) {
  ShardedSpgemmService::Config cfg;
  cfg.shards = 2;
  cfg.round_quantum = 4;
  ShardedSpgemmService group(plat_, pool_, cfg);
  const CsrMatrix* mats[] = {&a_, &b_, &c_};
  for (std::size_t i = 0; i < 10; ++i) {
    SpgemmRequest req;
    req.a = mats[i % 3];
    req.label = "shard" + std::to_string(i);
    group.submit(std::move(req));
  }
  const GroupResult out = group.drain();
  const GroupBatchReport& g = out.group;

  ASSERT_TRUE(g.critpath_enabled);
  // Per shard: accumulated lane seconds sum to the shard's accumulated
  // round makespans (each round's chain tiles its own makespan).
  double shard_makespans = 0;
  double shard_lanes[kCritLaneCount] = {0, 0, 0, 0, 0};
  for (const ShardReport& s : g.shard_reports) {
    EXPECT_NEAR(lane_sum(s.critpath.attributed_s), s.critpath.makespan_s,
                1e-9 * std::max(1.0, s.critpath.makespan_s));
    shard_makespans += s.critpath.makespan_s;
    for (int l = 0; l < kCritLaneCount; ++l) {
      shard_lanes[l] += s.critpath.attributed_s[l];
    }
  }
  // Group rollup == sum of the shard rollups, lane by lane.
  EXPECT_NEAR(g.critpath.makespan_s, shard_makespans, 1e-12);
  for (int l = 0; l < kCritLaneCount; ++l) {
    EXPECT_NEAR(g.critpath.attributed_s[l], shard_lanes[l], 1e-12);
  }
  EXPECT_NE(g.to_json().find("\"critpath\""), std::string::npos);
}

// ------------------------------------------------- perf baselines

PerfBaseline sample_baseline() {
  PerfBaseline b;
  b.bench = "unit.sample";
  b.scale = 0.1;
  b.requests = 64;
  b.makespan_s = 1.0;
  b.p50_latency_s = 0.4;
  b.p95_latency_s = 0.8;
  b.p99_latency_s = 0.9;
  b.attributed_s[0] = 0.7;   // cpu
  b.attributed_s[2] = 0.25;  // h2d
  b.attributed_s[4] = 0.05;  // idle
  return b;
}

TEST(PerfBaseline, RenderParseRoundTripsExactly) {
  const std::vector<PerfBaseline> set = {sample_baseline()};
  const std::string text = render_perf_baselines(set);
  const std::vector<PerfBaseline> back = parse_perf_baselines(text);
  ASSERT_EQ(back.size(), 1u);
  // %.17g round-trips doubles exactly: re-rendering is byte-identical.
  EXPECT_EQ(render_perf_baselines(back), text);
  EXPECT_EQ(back[0].bench, "unit.sample");
  EXPECT_DOUBLE_EQ(back[0].makespan_s, 1.0);
  EXPECT_DOUBLE_EQ(back[0].attributed_s[2], 0.25);
}

TEST(PerfBaseline, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_perf_baselines("{\"scale\":0.1}"), ParseError);
  EXPECT_THROW(parse_perf_baselines("[{\"bench\":\"x\"}"), ParseError);
  EXPECT_THROW(parse_perf_baselines("not json"), ParseError);
  EXPECT_THROW(
      parse_perf_baselines(
          "{\"bench\":\"x\",\"attributed_s\":{\"warp\":1}}"),
      ParseError);
}

TEST(PerfBaseline, IdenticalRunsCompareClean) {
  const std::vector<PerfBaseline> set = {sample_baseline()};
  const PerfDiff d = compare_perf_baselines(set, set);
  EXPECT_FALSE(d.regressed);
  EXPECT_TRUE(d.findings.empty());
  EXPECT_TRUE(d.improvements.empty());
}

TEST(PerfBaseline, TenPercentMakespanRegressionIsCaught) {
  const std::vector<PerfBaseline> old_set = {sample_baseline()};
  std::vector<PerfBaseline> new_set = old_set;
  new_set[0].makespan_s *= 1.10;  // outside the 5% band
  const PerfDiff d = compare_perf_baselines(old_set, new_set);
  EXPECT_TRUE(d.regressed);
  ASSERT_FALSE(d.findings.empty());
  EXPECT_NE(d.findings[0].find("makespan_s"), std::string::npos);
}

TEST(PerfBaseline, AttributionShareDriftIsARegressionEvenAtEqualMakespan) {
  const std::vector<PerfBaseline> old_set = {sample_baseline()};
  std::vector<PerfBaseline> new_set = old_set;
  // Same makespan, but 0.3 s migrated from the CPU to the PCIe link.
  new_set[0].attributed_s[0] -= 0.3;
  new_set[0].attributed_s[2] += 0.3;
  const PerfDiff d = compare_perf_baselines(old_set, new_set);
  EXPECT_TRUE(d.regressed);
  bool mentions_h2d = false;
  for (const std::string& f : d.findings) {
    mentions_h2d |= f.find("h2d") != std::string::npos;
  }
  EXPECT_TRUE(mentions_h2d);
}

TEST(PerfBaseline, MissingAndIncomparableBenchesRegress) {
  const std::vector<PerfBaseline> old_set = {sample_baseline()};
  EXPECT_TRUE(compare_perf_baselines(old_set, {}).regressed);

  std::vector<PerfBaseline> rescaled = old_set;
  rescaled[0].scale = 0.2;
  const PerfDiff d = compare_perf_baselines(old_set, rescaled);
  EXPECT_TRUE(d.regressed);
  ASSERT_FALSE(d.findings.empty());
  EXPECT_NE(d.findings[0].find("not comparable"), std::string::npos);
}

TEST(PerfBaseline, ImprovementsAndNewBenchesAreInformational) {
  const std::vector<PerfBaseline> old_set = {sample_baseline()};
  std::vector<PerfBaseline> new_set = old_set;
  new_set[0].makespan_s *= 0.8;  // faster than the band: not a regression
  new_set[0].attributed_s[0] *= 0.8;
  new_set[0].attributed_s[2] *= 0.8;
  new_set[0].attributed_s[4] *= 0.8;
  PerfBaseline extra = sample_baseline();
  extra.bench = "unit.extra";
  new_set.push_back(extra);
  const PerfDiff d = compare_perf_baselines(old_set, new_set);
  EXPECT_FALSE(d.regressed);
  EXPECT_FALSE(d.improvements.empty());
  ASSERT_FALSE(d.notes.empty());
  EXPECT_NE(d.notes[0].find("unit.extra"), std::string::npos);
}

TEST_F(CritPathServiceTest, BaselineFromBatchMatchesTheReport) {
  SpgemmService svc(plat_, pool_);
  submit_batch(svc, 6);
  const BatchResult out = svc.drain();
  ASSERT_TRUE(out.batch.critpath_enabled);

  const PerfBaseline b = baseline_from_batch("unit.drain", 1.0, out.batch);
  EXPECT_EQ(b.requests, static_cast<std::int64_t>(out.batch.requests));
  EXPECT_DOUBLE_EQ(b.makespan_s, out.batch.makespan_s);
  for (int i = 0; i < kCritLaneCount; ++i) {
    EXPECT_DOUBLE_EQ(b.attributed_s[i], out.batch.critpath.attributed_s[i]);
  }
  // A drain compared against itself is clean at any tolerance.
  const PerfDiff d = compare_perf_baselines({b}, {b});
  EXPECT_FALSE(d.regressed);
}

}  // namespace
}  // namespace hh
