#include "primitives/segmented_reduce.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/prng.hpp"

namespace hh {
namespace {

TEST(MarkHeads, BasicRuns) {
  const std::vector<std::uint64_t> keys{1, 1, 2, 3, 3, 3};
  const auto mark = mark_segment_heads(keys);
  EXPECT_EQ(mark, (std::vector<std::int64_t>{1, 0, 1, 1, 0, 0}));
}

TEST(MarkHeads, Empty) {
  EXPECT_TRUE(mark_segment_heads({}).empty());
}

TEST(SegmentedReduce, SumsRuns) {
  const std::vector<std::uint64_t> keys{1, 1, 2, 3, 3, 3};
  const std::vector<value_t> vals{1, 2, 10, 100, 200, 300};
  ThreadPool pool(2);
  const auto r = segmented_reduce(keys, vals, pool);
  ASSERT_EQ(r.unique_keys.size(), 3u);
  EXPECT_EQ(r.unique_keys, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(r.sums[0], 3.0);
  EXPECT_DOUBLE_EQ(r.sums[1], 10.0);
  EXPECT_DOUBLE_EQ(r.sums[2], 600.0);
}

TEST(SegmentedReduce, SingleRun) {
  const std::vector<std::uint64_t> keys(17, 9);
  const std::vector<value_t> vals(17, 1.5);
  ThreadPool pool(3);
  const auto r = segmented_reduce(keys, vals, pool);
  ASSERT_EQ(r.unique_keys.size(), 1u);
  EXPECT_DOUBLE_EQ(r.sums[0], 17 * 1.5);
}

TEST(SegmentedReduce, AllDistinct) {
  std::vector<std::uint64_t> keys(100);
  std::vector<value_t> vals(100);
  for (std::size_t i = 0; i < 100; ++i) {
    keys[i] = i;
    vals[i] = static_cast<value_t>(i);
  }
  ThreadPool pool(2);
  const auto r = segmented_reduce(keys, vals, pool);
  ASSERT_EQ(r.unique_keys.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(r.sums[i], static_cast<value_t>(i));
  }
}

TEST(SegmentedReduce, Empty) {
  ThreadPool pool(2);
  const auto r = segmented_reduce({}, {}, pool);
  EXPECT_TRUE(r.unique_keys.empty());
}

class SegmentedReduceRandom : public testing::TestWithParam<std::size_t> {};

TEST_P(SegmentedReduceRandom, MatchesMapReference) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<value_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.below(n / 4 + 1);
    vals[i] = rng.uniform();
  }
  std::sort(keys.begin(), keys.end());
  std::map<std::uint64_t, value_t> want;
  for (std::size_t i = 0; i < n; ++i) want[keys[i]] += vals[i];

  ThreadPool pool(4);  // multiple blocks: runs crossing block boundaries
  const auto r = segmented_reduce(keys, vals, pool);
  ASSERT_EQ(r.unique_keys.size(), want.size());
  std::size_t i = 0;
  for (const auto& [k, v] : want) {
    EXPECT_EQ(r.unique_keys[i], k);
    EXPECT_NEAR(r.sums[i], v, 1e-9);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SegmentedReduceRandom,
                         testing::Values(1, 2, 16, 1000, 20000));

}  // namespace
}  // namespace hh
