#include "sparse/partition.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hh {
namespace {

TEST(Partition, FlagsMatchThreshold) {
  const CsrMatrix m = test::random_csr(50, 50, 0.2, 31);
  const RowPartition p = classify_rows(m, 10);
  ASSERT_EQ(p.is_high.size(), 50u);
  for (index_t r = 0; r < m.rows; ++r) {
    EXPECT_EQ(p.is_high[r] != 0, m.row_nnz(r) >= 10);
  }
}

TEST(Partition, ListsArePartition) {
  const CsrMatrix m = test::random_csr(40, 40, 0.3, 8);
  const RowPartition p = classify_rows(m, 12);
  EXPECT_EQ(p.high_count() + p.low_count(), m.rows);
  for (const index_t r : p.high_rows) EXPECT_TRUE(p.is_high[r]);
  for (const index_t r : p.low_rows) EXPECT_FALSE(p.is_high[r]);
  // Ascending order.
  for (std::size_t i = 1; i < p.high_rows.size(); ++i) {
    EXPECT_LT(p.high_rows[i - 1], p.high_rows[i]);
  }
}

TEST(Partition, NnzSplitsAddUp) {
  const CsrMatrix m = test::random_csr(40, 40, 0.3, 9);
  const RowPartition p = classify_rows(m, 12);
  EXPECT_EQ(p.high_nnz + p.low_nnz, m.nnz());
}

TEST(Partition, ThresholdZeroMakesAllHigh) {
  const CsrMatrix m = test::random_csr(10, 10, 0.3, 1);
  const RowPartition p = classify_rows(m, 0);
  EXPECT_EQ(p.high_count(), m.rows);
  EXPECT_EQ(p.low_count(), 0);
}

TEST(Partition, HugeThresholdMakesAllLow) {
  const CsrMatrix m = test::random_csr(10, 10, 0.3, 2);
  const RowPartition p = classify_rows(m, 1000);
  EXPECT_EQ(p.high_count(), 0);
  EXPECT_EQ(p.low_count(), m.rows);
}

}  // namespace
}  // namespace hh
