#include "primitives/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/prng.hpp"

namespace hh {
namespace {

TEST(PackRc, OrderMatchesLexicographic) {
  EXPECT_LT(pack_rc(0, 5), pack_rc(1, 0));
  EXPECT_LT(pack_rc(3, 2), pack_rc(3, 4));
  EXPECT_EQ(pack_rc(3, 2), pack_rc(3, 2));
}

TEST(PackRc, RoundTrips) {
  const std::uint64_t k = pack_rc(123456, 654321);
  EXPECT_EQ(unpack_row(k), 123456);
  EXPECT_EQ(unpack_col(k), 654321);
}

class RadixSortTest : public testing::TestWithParam<std::size_t> {};

TEST_P(RadixSortTest, SortsLikeStdSort) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n + 7);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  std::vector<std::uint32_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<std::uint32_t>(i);

  std::vector<std::uint64_t> want = keys;
  std::sort(want.begin(), want.end());

  std::vector<std::uint64_t> got = keys;
  radix_sort_kv(got, payload);
  EXPECT_EQ(got, want);
  // Payload consistency: payload[i] points at the original slot of got[i].
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(keys[payload[i]], got[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortTest,
                         testing::Values(0, 1, 2, 3, 255, 256, 1000, 65536));

TEST(RadixSort, StableForEqualKeys) {
  std::vector<std::uint64_t> keys{7, 7, 7, 3, 3};
  std::vector<std::uint32_t> payload{0, 1, 2, 3, 4};
  radix_sort_kv(keys, payload);
  EXPECT_EQ(payload, (std::vector<std::uint32_t>{3, 4, 0, 1, 2}));
}

TEST(RadixSort, SkipsDegeneratePassesCorrectly) {
  // All keys share high bytes; only the low byte differs.
  std::vector<std::uint64_t> keys{0xAA00000000000003ULL, 0xAA00000000000001ULL,
                                  0xAA00000000000002ULL};
  std::vector<std::uint32_t> payload{0, 1, 2};
  radix_sort_kv(keys, payload);
  EXPECT_EQ(payload, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(RadixSort, PermutationLeavesInputUntouched) {
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> keys(100);
  for (auto& k : keys) k = rng.below(50);
  const std::vector<std::uint64_t> copy = keys;
  const std::vector<std::uint32_t> perm = radix_sort_permutation(keys);
  EXPECT_EQ(keys, copy);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

TEST(RadixSort, PackedRcKeysSortRowMajor) {
  std::vector<std::uint64_t> keys{pack_rc(2, 1), pack_rc(0, 9), pack_rc(2, 0),
                                  pack_rc(1, 5)};
  std::vector<std::uint32_t> payload{0, 1, 2, 3};
  radix_sort_kv(keys, payload);
  EXPECT_EQ(unpack_row(keys[0]), 0);
  EXPECT_EQ(unpack_row(keys[3]), 2);
  EXPECT_EQ(unpack_col(keys[2]), 0);
  EXPECT_EQ(unpack_col(keys[3]), 1);
}

}  // namespace
}  // namespace hh
