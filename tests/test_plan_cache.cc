#include "runtime/plan_cache.hpp"

#include <gtest/gtest.h>

#include "runtime/signature.hpp"
#include "test_util.hpp"
#include "trace/metrics.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

MatrixSignature sig(index_t rows, std::int64_t salt) {
  MatrixSignature s;
  s.rows = rows;
  s.cols = rows;
  s.nnz = rows * 4;
  s.degree_digest = static_cast<std::uint64_t>(salt) * 0x9e3779b97f4a7c15ull;
  return s;
}

TEST(MatrixSignature, DeterministicAcrossCalls) {
  const CsrMatrix m = test::random_csr(300, 300, 0.03, 7);
  const MatrixSignature a = matrix_signature(m);
  const MatrixSignature b = matrix_signature(m);
  EXPECT_EQ(a, b);
  EXPECT_EQ(MatrixSignatureHash{}(a), MatrixSignatureHash{}(b));
  EXPECT_EQ(a.rows, 300);
  EXPECT_EQ(a.nnz, m.nnz());
}

TEST(MatrixSignature, StableUnderCopy) {
  const CsrMatrix m = test::random_csr(120, 80, 0.05, 11);
  CsrMatrix copy = m;
  EXPECT_EQ(matrix_signature(m), matrix_signature(copy));
}

TEST(MatrixSignature, SensitiveToDegreeDistribution) {
  // Same rows/cols/nnz, different degree distribution: move one nonzero
  // from a dense row to a sparse one — the histogram digest must change.
  const std::vector<index_t> r1{0, 0, 0, 0, 1, 2, 3};
  const std::vector<index_t> r2{0, 0, 0, 1, 1, 2, 3};
  std::vector<index_t> c{0, 1, 2, 3, 0, 0, 0};
  std::vector<value_t> v(7, 1.0);
  const CsrMatrix a = csr_from_triplets(4, 4, r1, c, v);
  const CsrMatrix b = csr_from_triplets(4, 4, r2, c, v);
  const MatrixSignature sa = matrix_signature(a);
  const MatrixSignature sb = matrix_signature(b);
  EXPECT_EQ(sa.nnz, sb.nnz);
  EXPECT_NE(sa, sb);
}

TEST(MatrixSignature, EmptyAndTinyMatricesWork) {
  const CsrMatrix empty = csr_from_triplets(3, 3, std::vector<index_t>{},
                                            std::vector<index_t>{},
                                            std::vector<value_t>{});
  const MatrixSignature s = matrix_signature(empty);
  EXPECT_EQ(s.nnz, 0);
  const CsrMatrix one =
      csr_from_triplets(1, 1, std::vector<index_t>{0}, std::vector<index_t>{0},
                        std::vector<value_t>{2.0});
  EXPECT_NE(matrix_signature(one), s);
}

TEST(PlanCache, MissThenHit) {
  PlanCache cache(4);
  const PlanKey key{sig(100, 1), sig(100, 1)};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, {8, 16});
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->threshold_a, 8);
  EXPECT_EQ(hit->threshold_b, 16);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PlanCache, DistinguishesOperandOrder) {
  PlanCache cache(4);
  cache.insert({sig(100, 1), sig(200, 2)}, {8, 16});
  EXPECT_FALSE(cache.lookup({sig(200, 2), sig(100, 1)}).has_value());
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const PlanKey k1{sig(1, 1), sig(1, 1)};
  const PlanKey k2{sig(2, 2), sig(2, 2)};
  const PlanKey k3{sig(3, 3), sig(3, 3)};
  cache.insert(k1, {1, 1});
  cache.insert(k2, {2, 2});
  ASSERT_TRUE(cache.lookup(k1).has_value());  // k1 now most recent
  cache.insert(k3, {3, 3});                   // evicts k2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
}

TEST(PlanCache, InsertOverwritesAndRefreshes) {
  PlanCache cache(2);
  const PlanKey k1{sig(1, 1), sig(1, 1)};
  const PlanKey k2{sig(2, 2), sig(2, 2)};
  cache.insert(k1, {1, 1});
  cache.insert(k2, {2, 2});
  cache.insert(k1, {9, 9});  // overwrite refreshes k1's recency
  cache.insert({sig(3, 3), sig(3, 3)}, {3, 3});
  ASSERT_TRUE(cache.lookup(k1).has_value());
  EXPECT_EQ(cache.lookup(k1)->threshold_a, 9);
  EXPECT_FALSE(cache.lookup(k2).has_value());  // k2 was the LRU victim
}

TEST(PlanCache, RejectsZeroCapacity) {
  EXPECT_THROW(PlanCache(0), CheckError);
}

TEST(PlanCache, OverwriteCountsAsOverwriteNotEviction) {
  MetricsRegistry metrics;
  PlanCache cache(2);
  cache.bind_metrics(&metrics);
  const PlanKey k1{sig(1, 1), sig(1, 1)};
  const PlanKey k2{sig(2, 2), sig(2, 2)};
  cache.insert(k1, {1, 1});
  cache.insert(k2, {2, 2});
  // The cache is full; overwriting an existing key must not evict anything
  // (no entry is lost) and must count as an overwrite.
  cache.insert(k1, {7, 7});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().overwrites, 1);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(metrics.counter("plan_cache.overwrites").value(), 1);
  ASSERT_TRUE(cache.lookup(k1).has_value());
  EXPECT_EQ(cache.lookup(k1)->threshold_a, 7);
  EXPECT_TRUE(cache.lookup(k2).has_value());

  // The overwrite refreshed k1's recency: k2 is now the LRU victim when a
  // third key arrives, and that insert is an eviction, not an overwrite.
  cache.insert(k1, {8, 8});  // k1 most recent again
  cache.insert({sig(3, 3), sig(3, 3)}, {3, 3});
  EXPECT_EQ(cache.stats().overwrites, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());

  // A versioned, measured plan round-trips through the cache unchanged.
  CachedPlan promoted;
  promoted.threshold_a = 9;
  promoted.threshold_b = 9;
  promoted.version = 3;
  promoted.measured_s = 1.5e-3;
  cache.insert(k1, promoted);
  const auto got = cache.lookup(k1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 3u);
  EXPECT_DOUBLE_EQ(got->measured_s, 1.5e-3);
}

TEST(PlanCache, QuarantineDropsEntryAndCounts) {
  PlanCache cache(4);
  const PlanKey k1{sig(1, 1), sig(1, 1)};
  const PlanKey k2{sig(2, 2), sig(2, 2)};
  cache.insert(k1, {1, 1});
  cache.insert(k2, {2, 2});
  EXPECT_TRUE(cache.quarantine(k1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().quarantines, 1);
  EXPECT_FALSE(cache.lookup(k1).has_value());  // gone: forces re-identify
  EXPECT_TRUE(cache.lookup(k2).has_value());   // unrelated entry untouched
  // Quarantining an absent key is a no-op.
  EXPECT_FALSE(cache.quarantine(k1));
  EXPECT_EQ(cache.stats().quarantines, 1);
  // A re-insert after quarantine behaves like a fresh entry.
  cache.insert(k1, {5, 5});
  EXPECT_EQ(cache.lookup(k1)->threshold_a, 5);
}

TEST(PlanCache, QuarantineKeepsLruListConsistent) {
  PlanCache cache(2);
  const PlanKey k1{sig(1, 1), sig(1, 1)};
  const PlanKey k2{sig(2, 2), sig(2, 2)};
  const PlanKey k3{sig(3, 3), sig(3, 3)};
  cache.insert(k1, {1, 1});
  cache.insert(k2, {2, 2});
  cache.quarantine(k2);  // frees a slot
  cache.insert(k3, {3, 3});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0);  // no eviction was needed
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
}

}  // namespace
}  // namespace hh
