#include "spgemm/symbolic.hpp"

#include <gtest/gtest.h>

#include "spgemm/reference.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(Symbolic, RowFlopsMatchesBruteForce) {
  const CsrMatrix a = test::random_csr(15, 12, 0.3, 2);
  const CsrMatrix b = test::random_csr(12, 18, 0.25, 3);
  const auto flops = row_flops(a, b);
  ASSERT_EQ(flops.size(), 15u);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t want = 0;
    for (const index_t j : a.row_indices(i)) want += b.row_nnz(j);
    EXPECT_EQ(flops[i], want);
  }
}

TEST(Symbolic, TotalFlopsIsSum) {
  const CsrMatrix a = test::random_csr(10, 10, 0.4, 4);
  const auto flops = row_flops(a, a);
  offset_t sum = 0;
  for (const offset_t f : flops) sum += f;
  EXPECT_EQ(total_flops(a, a), sum);
}

TEST(Symbolic, MaskedFlopsSplitAddsUp) {
  const CsrMatrix a = test::random_csr(20, 20, 0.3, 5);
  std::vector<std::uint8_t> mask(20);
  for (index_t j = 0; j < 20; ++j) mask[j] = (j % 3 == 0) ? 1 : 0;
  const auto all = row_flops(a, a);
  const auto hi = row_flops_masked(a, a, mask, true);
  const auto lo = row_flops_masked(a, a, mask, false);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_EQ(hi[i] + lo[i], all[i]);
  }
}

TEST(Symbolic, ExactRowNnzMatchesReference) {
  const CsrMatrix a = test::random_csr(15, 12, 0.3, 6);
  const CsrMatrix b = test::random_csr(12, 14, 0.3, 7);
  const auto nnz = exact_row_nnz(a, b);
  const CsrMatrix c = reference_multiply_dense(a, b);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_EQ(nnz[i], c.row_nnz(i)) << "row " << i;
  }
}

TEST(Symbolic, ExactRowNnzBoundedByFlops) {
  const CsrMatrix a = test::random_csr(25, 25, 0.2, 8);
  const auto nnz = exact_row_nnz(a, a);
  const auto flops = row_flops(a, a);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_LE(nnz[i], flops[i]);
  }
}

TEST(Symbolic, IncompatibleShapesThrow) {
  const CsrMatrix a(3, 4), b(5, 3);
  EXPECT_THROW(row_flops(a, b), CheckError);
  EXPECT_THROW(exact_row_nnz(a, b), CheckError);
}

}  // namespace
}  // namespace hh
