#include "spgemm/symbolic.hpp"

#include <gtest/gtest.h>

#include "spgemm/reference.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(Symbolic, RowFlopsMatchesBruteForce) {
  const CsrMatrix a = test::random_csr(15, 12, 0.3, 2);
  const CsrMatrix b = test::random_csr(12, 18, 0.25, 3);
  const auto flops = row_flops(a, b);
  ASSERT_EQ(flops.size(), 15u);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t want = 0;
    for (const index_t j : a.row_indices(i)) want += b.row_nnz(j);
    EXPECT_EQ(flops[i], want);
  }
}

TEST(Symbolic, TotalFlopsIsSum) {
  const CsrMatrix a = test::random_csr(10, 10, 0.4, 4);
  const auto flops = row_flops(a, a);
  offset_t sum = 0;
  for (const offset_t f : flops) sum += f;
  EXPECT_EQ(total_flops(a, a), sum);
}

TEST(Symbolic, TotalFlopsSurvivesPastTwoToTheThirtyFirst) {
  // A tall-thin × short-fat product whose intermediate-product count blows
  // past 2^31 while the operands stay tiny: 70000 rows of A each hit the
  // single row of B (31000 nnz) → 2.17e9 products. A 32-bit accumulator
  // wraps negative here; the 64-bit contract must report the exact total.
  constexpr index_t kRowsA = 70000;
  constexpr index_t kNnzB = 31000;
  CsrMatrix a(kRowsA, 1);
  a.indices.assign(static_cast<std::size_t>(kRowsA), 0);
  a.values.assign(static_cast<std::size_t>(kRowsA), 1.0);
  for (index_t i = 0; i < kRowsA; ++i) a.indptr[i + 1] = i + 1;
  CsrMatrix b(1, kNnzB);
  b.indptr = {0, kNnzB};
  b.indices.resize(static_cast<std::size_t>(kNnzB));
  for (index_t j = 0; j < kNnzB; ++j) b.indices[j] = j;
  b.values.assign(static_cast<std::size_t>(kNnzB), 1.0);

  const std::int64_t total = total_flops(a, b);
  EXPECT_EQ(total, std::int64_t{kRowsA} * kNnzB);  // 2,170,000,000 > 2^31
  EXPECT_GT(total, std::int64_t{1} << 31);
}

TEST(Symbolic, MaskedFlopsSplitAddsUp) {
  const CsrMatrix a = test::random_csr(20, 20, 0.3, 5);
  std::vector<std::uint8_t> mask(20);
  for (index_t j = 0; j < 20; ++j) mask[j] = (j % 3 == 0) ? 1 : 0;
  const auto all = row_flops(a, a);
  const auto hi = row_flops_masked(a, a, mask, true);
  const auto lo = row_flops_masked(a, a, mask, false);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_EQ(hi[i] + lo[i], all[i]);
  }
}

TEST(Symbolic, ExactRowNnzMatchesReference) {
  const CsrMatrix a = test::random_csr(15, 12, 0.3, 6);
  const CsrMatrix b = test::random_csr(12, 14, 0.3, 7);
  const auto nnz = exact_row_nnz(a, b);
  const CsrMatrix c = reference_multiply_dense(a, b);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_EQ(nnz[i], c.row_nnz(i)) << "row " << i;
  }
}

TEST(Symbolic, ExactRowNnzBoundedByFlops) {
  const CsrMatrix a = test::random_csr(25, 25, 0.2, 8);
  const auto nnz = exact_row_nnz(a, a);
  const auto flops = row_flops(a, a);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_LE(nnz[i], flops[i]);
  }
}

TEST(Symbolic, IncompatibleShapesThrow) {
  const CsrMatrix a(3, 4), b(5, 3);
  EXPECT_THROW(row_flops(a, b), CheckError);
  EXPECT_THROW(exact_row_nnz(a, b), CheckError);
}

}  // namespace
}  // namespace hh
