// Trace subsystem tests: recorder toggling, the metrics registry, the text
// flame views, and a golden check on the Chrome trace-event / Perfetto JSON
// export of a faulted service drain — the JSON must parse, per-resource
// spans must not overlap, and the recorded fault/retry/degrade/cancel
// instants must reconcile exactly with the BatchReport counters.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "gen/datasets.hpp"
#include "runtime/service.hpp"
#include "shard/sharded_service.hpp"
#include "trace/flame.hpp"
#include "trace/metrics.hpp"
#include "trace/perfetto_export.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

// ------------------------------------------------- minimal JSON validator
// Recursive-descent syntax check (no DOM): enough to guarantee a Perfetto /
// chrome://tracing load will not reject the file as malformed JSON.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto digit_run = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digit_run();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      bool exp_digits = false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return false;
    }
    return digits && pos_ > start;
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

int count_events(const TraceRecorder& rec, TraceCategory cat,
                 const char* name = nullptr) {
  int n = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.category != cat) continue;
    if (name != nullptr && std::string_view(e.name) != name) continue;
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------- recorder

TEST(TraceRecorder, DisabledByDefaultRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.span(TraceCategory::kCompute, "x", Resource::kCpu, 0, 1, 0);
  rec.instant(TraceCategory::kFault, "y", 0.5);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, EnableRecordsWithRequestIdentity) {
  TraceRecorder rec;
  rec.enable();
  if (!TraceRecorder::compiled_in()) {
    EXPECT_FALSE(rec.enabled());  // HH_TRACE=OFF pins it
    GTEST_SKIP() << "tracing compiled out";
  }
  rec.begin_request(12);
  rec.span(TraceCategory::kTransfer, "up", Resource::kH2D, 0.0, 0.5, 0.0, 3);
  rec.instant_on(TraceCategory::kFault, "h2d-fault", Resource::kH2D, 0.5, 3);
  rec.end_request();
  rec.instant(TraceCategory::kScheduler, "tick", 1.0);
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].request_id, 12u);
  EXPECT_EQ(rec.events()[0].device_op, 3u);
  EXPECT_EQ(rec.events()[1].kind, TraceEventKind::kInstant);
  EXPECT_EQ(rec.events()[2].request_id, kNoRequest);
  EXPECT_FALSE(rec.events()[2].has_resource);

  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.current_request(), kNoRequest);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  reg.counter("requests").inc();
  reg.counter("requests").inc(4);
  reg.gauge("depth").set(7.5);
  EXPECT_EQ(reg.counter("requests").value(), 5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 7.5);
  EXPECT_EQ(reg.size(), 2u);
  // find-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("requests"), &reg.counter("requests"));
}

TEST(Metrics, KindMismatchThrowsTypedError) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), InvalidArgumentError);
  EXPECT_THROW(reg.histogram("x", {1.0}), InvalidArgumentError);
  try {
    reg.gauge("x");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("already registered as a counter"),
              std::string::npos);
  }
}

TEST(Metrics, NameValidation) {
  EXPECT_TRUE(valid_metric_name("service.completed"));
  EXPECT_TRUE(valid_metric_name("slo.p95:burn-rate"));
  EXPECT_TRUE(valid_metric_name("_private"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("has space"));
  EXPECT_FALSE(valid_metric_name("9starts.with.digit"));
  EXPECT_FALSE(valid_metric_name(".leading.dot"));
  EXPECT_FALSE(valid_metric_name("new\nline"));

  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("has space"), InvalidArgumentError);
  EXPECT_THROW(reg.gauge(""), InvalidArgumentError);
  EXPECT_THROW(reg.histogram("a b", {1.0}), InvalidArgumentError);
  reg.counter("ok.name");  // still accepted after the rejects
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, Flattened) {
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(2.5);
  Histogram& h = reg.histogram("h", {1.0});
  h.observe(0.5);
  h.observe(4.0);
  const std::vector<FlatMetric> flat = reg.flattened();
  ASSERT_EQ(flat.size(), 4u);  // c, g, h.count, h.sum
  EXPECT_EQ(flat[0].name, "c");
  EXPECT_EQ(flat[0].kind, 'c');
  EXPECT_EQ(flat[0].value, 3.0);
  EXPECT_EQ(flat[1].name, "g");
  EXPECT_EQ(flat[1].kind, 'g');
  EXPECT_EQ(flat[2].name, "h.count");
  EXPECT_EQ(flat[2].kind, 'h');
  EXPECT_EQ(flat[2].value, 2.0);
  EXPECT_EQ(flat[3].name, "h.sum");
  EXPECT_EQ(flat[3].value, 4.5);
}

TEST(Metrics, HistogramBucketsAndPercentile) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  for (const double x : {0.5, 0.9, 5.0, 50.0, 500.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5);
  EXPECT_NEAR(h.sum(), 556.4, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 2);       // <= 1
  EXPECT_EQ(h.bucket_counts()[1], 1);       // (1, 10]
  EXPECT_EQ(h.bucket_counts()[2], 1);       // (10, 100]
  EXPECT_EQ(h.bucket_counts()[3], 1);       // overflow
  // Interpolated rank within the containing bucket (Prometheus
  // histogram_quantile style): a rank landing on a bucket's upper edge
  // answers with the bound itself.
  EXPECT_DOUBLE_EQ(h.percentile(0.40), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.60), 10.0);
  // Rank 2.5 sits halfway through the (1, 10] bucket: 1 + 0.5 * 9 = 5.5.
  // The answer can be off by at most the containing bucket's width.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.5);
  // Overflow bucket interpolates toward (and is clamped to) the observed
  // maximum.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 500.0);
}

TEST(Metrics, EmptyHistogramIsZero) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("empty", latency_buckets_s());
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Metrics, LatencyBucketsAscending) {
  const std::vector<double> b = latency_buckets_s();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Metrics, ExportsAreWellFormed) {
  MetricsRegistry reg;
  reg.counter("service.requests").inc(3);
  reg.gauge("plan_cache.size").set(2);
  reg.histogram("service.latency_s", {0.001, 0.1}).observe(0.05);
  const std::string text = reg.to_string();
  EXPECT_NE(text.find("service.requests 3"), std::string::npos);
  EXPECT_NE(text.find("plan_cache.size"), std::string::npos);
  EXPECT_NE(text.find("service.latency_s_count 1"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

// ------------------------------------------------------------- flame views

TEST(Flame, ViewPaintsSpansPerResource) {
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kSpan, TraceCategory::kCompute, "a",
                    true, Resource::kCpu, 0, 0.0, 0.5, 0.0, kNoDeviceOp});
  events.push_back({TraceEventKind::kSpan, TraceCategory::kCompute, "b",
                    true, Resource::kGpu, 1, 0.5, 1.0, 0.5, kNoDeviceOp});
  const std::string view = flame_view(events, 16);
  ASSERT_FALSE(view.empty());
  EXPECT_NE(view.find("cpu"), std::string::npos);
  EXPECT_NE(view.find('0'), std::string::npos);  // request 0's glyph
  EXPECT_NE(view.find('1'), std::string::npos);  // request 1's glyph
  // Four rows, one per resource.
  EXPECT_EQ(std::count(view.begin(), view.end(), '\n'), kResourceCount);
}

TEST(Flame, ViewEmptyWhenNothingRecorded) {
  EXPECT_TRUE(flame_view(std::vector<TraceEvent>{}, 32).empty());
}

TEST(Flame, RowMarksFaultAttempts) {
  std::vector<StageSpan> spans;
  spans.push_back({"phase2-gpu-abort", Resource::kGpu, 0.0, 0.4});
  spans.push_back({"phase2-gpu", Resource::kGpu, 0.5, 1.0});
  const std::string row = flame_row(spans, 0.0, 1.0, 20);
  EXPECT_EQ(row.size(), 20u);
  EXPECT_NE(row.find('!'), std::string::npos);
  EXPECT_NE(row.find('G'), std::string::npos);
}

// -------------------------------------------- golden faulted-drain export

class TracedServiceTest : public testing::Test {
 protected:
  TracedServiceTest()
      : wiki_(make_dataset(dataset_spec("wiki-Vote"), 0.05)),
        enron_(make_dataset(dataset_spec("email-Enron"), 0.03)),
        pool_(2) {}

  const CsrMatrix& mat(std::size_t i) const {
    return i % 2 == 0 ? wiki_ : enron_;
  }

  CsrMatrix wiki_;
  CsrMatrix enron_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(TracedServiceTest, FaultedDrainExportsConsistentPerfettoTrace) {
  if (!TraceRecorder::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder rec;
  rec.enable();

  SpgemmService::Config cfg;
  cfg.trace = &rec;
  cfg.fault_plan.gpu_kernel.rate = 0.25;
  cfg.fault_plan.h2d.rate = 0.15;
  cfg.fault_plan.d2h.rate = 0.15;
  cfg.fault_plan.cpu_worker.rate = 0.10;
  cfg.keep_inputs_resident = false;  // every request pays (faultable) H2D
  SpgemmService service(plat_, pool_, cfg);

  constexpr std::size_t kRequests = 32;
  for (std::size_t i = 0; i < kRequests; ++i) {
    service.submit({&mat(i), nullptr, {}, "q" + std::to_string(i)});
  }
  const BatchResult batch = service.drain();
  const BatchReport& b = batch.batch;
  ASSERT_EQ(b.requests, kRequests);
  ASSERT_GT(b.faults.total_faults(), 0) << "fault plan injected nothing";

  // 1. The export is syntactically valid JSON with the expected skeleton.
  const std::string json = chrome_trace_json(rec);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow arrows
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);

  // 2. Per-resource span events never overlap: the insertion scheduler's
  //    core invariant, now checked on the exported record itself.
  for (int r = 0; r < kResourceCount; ++r) {
    std::vector<const TraceEvent*> spans;
    for (const TraceEvent& e : rec.events()) {
      if (e.kind == TraceEventKind::kSpan && e.has_resource &&
          static_cast<int>(e.resource) == r) {
        spans.push_back(&e);
      }
    }
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent* a, const TraceEvent* b2) {
                return a->start_s < b2->start_s;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i]->start_s, spans[i - 1]->end_s - 1e-12)
          << to_string(static_cast<Resource>(r)) << " spans overlap: "
          << spans[i - 1]->name << " and " << spans[i]->name;
    }
    // A span never starts before the dependence-allowed earliest.
    for (const TraceEvent* e : spans) {
      EXPECT_GE(e->start_s, e->requested_s - 1e-12);
    }
  }

  // 3. Recorded events reconcile exactly with the BatchReport counters.
  EXPECT_EQ(count_events(rec, TraceCategory::kFault, "gpu-abort"),
            b.faults.gpu_aborts);
  EXPECT_EQ(count_events(rec, TraceCategory::kFault, "h2d-fault") +
                count_events(rec, TraceCategory::kFault, "h2d-corrupt"),
            b.faults.h2d_faults);
  EXPECT_EQ(count_events(rec, TraceCategory::kFault, "d2h-fault") +
                count_events(rec, TraceCategory::kFault, "d2h-corrupt"),
            b.faults.d2h_faults);
  EXPECT_EQ(count_events(rec, TraceCategory::kFault, "h2d-corrupt") +
                count_events(rec, TraceCategory::kFault, "d2h-corrupt"),
            b.faults.corruptions);
  EXPECT_EQ(count_events(rec, TraceCategory::kFault, "cpu-stall"),
            b.faults.cpu_stalls);
  EXPECT_EQ(count_events(rec, TraceCategory::kRetry),
            b.faults.retries);
  EXPECT_EQ(count_events(rec, TraceCategory::kDegrade),
            static_cast<int>(b.degraded));
  EXPECT_EQ(count_events(rec, TraceCategory::kCancel),
            static_cast<int>(b.deadline_missed));
  // Every request was cacheable, so plan-cache decisions cover the batch.
  EXPECT_EQ(count_events(rec, TraceCategory::kScheduler, "plan-cache-hit") +
                count_events(rec, TraceCategory::kScheduler,
                             "plan-cache-miss"),
            static_cast<int>(kRequests));

  // 4. The trace's spans are exactly the spans the reports carry.
  std::size_t report_spans = 0;
  for (const RequestReport& r : batch.requests) report_spans += r.spans.size();
  std::size_t traced_spans = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == TraceEventKind::kSpan) ++traced_spans;
  }
  EXPECT_EQ(traced_spans, report_spans);

  // 5. The lifetime metrics agree with the drain's snapshot.
  MetricsRegistry& m = service.metrics();
  EXPECT_EQ(m.counter("service.requests").value(),
            static_cast<std::int64_t>(kRequests));
  EXPECT_EQ(m.counter("service.retries").value(), b.faults.retries);
  EXPECT_EQ(m.counter("service.degraded").value(),
            static_cast<std::int64_t>(b.degraded));
  EXPECT_EQ(m.counter("plan_cache.hits").value(), b.plan_cache.hits);
  EXPECT_EQ(m.counter("plan_cache.misses").value(), b.plan_cache.misses);
  EXPECT_TRUE(JsonValidator(m.to_json()).valid());

  // 6. The report JSON stays valid with the new fields present.
  EXPECT_TRUE(JsonValidator(b.to_json()).valid());
  EXPECT_TRUE(JsonValidator(batch.requests.front().to_json()).valid());
  EXPECT_FALSE(b.flame.empty());
  EXPECT_FALSE(batch.requests.front().flame.empty());
}

TEST_F(TracedServiceTest, DeadlineCancellationsAreTraced) {
  if (!TraceRecorder::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder rec;
  rec.enable();
  SpgemmService::Config cfg;
  cfg.trace = &rec;
  cfg.default_deadline_s = 1e-12;  // nothing can finish in a picosecond
  SpgemmService service(plat_, pool_, cfg);
  service.submit({&wiki_, nullptr, {}, "doomed"});
  const BatchResult batch = service.drain();
  ASSERT_EQ(batch.batch.deadline_missed, 1u);
  EXPECT_EQ(count_events(rec, TraceCategory::kCancel), 1);
  EXPECT_TRUE(JsonValidator(chrome_trace_json(rec)).valid());
}

TEST_F(TracedServiceTest, DisabledRecorderStaysEmptyAndOutputMatches) {
  TraceRecorder rec;  // attached but never enabled
  SpgemmService::Config cfg;
  cfg.trace = &rec;
  SpgemmService traced(plat_, pool_, cfg);
  SpgemmService plain(plat_, pool_);
  traced.submit({&wiki_, nullptr, {}, ""});
  plain.submit({&wiki_, nullptr, {}, ""});
  const BatchResult bt = traced.drain();
  const BatchResult bp = plain.drain();
  EXPECT_TRUE(rec.events().empty());
  ASSERT_EQ(bt.results.size(), 1u);
  EXPECT_EQ(bt.results[0].c.indptr, bp.results[0].c.indptr);
  EXPECT_EQ(bt.results[0].c.indices, bp.results[0].c.indices);
  EXPECT_EQ(bt.results[0].c.values, bp.results[0].c.values);
  EXPECT_DOUBLE_EQ(bt.batch.makespan_s, bp.batch.makespan_s);
}

// ------------------------------------------ sharded-group trace export

TEST_F(TracedServiceTest, ShardedGroupExportsPerShardTracks) {
  if (!TraceRecorder::compiled_in()) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder rec;
  rec.enable();

  ShardedSpgemmService::Config gcfg;
  gcfg.shards = 2;
  gcfg.trace = &rec;
  // Kill shard 0 in round 1 so the group-level kShard instants (kill,
  // failover, restart) land in the trace alongside the per-shard spans.
  gcfg.shard_faults.trigger_ops = {0};
  ShardedSpgemmService group(plat_, pool_, gcfg);

  constexpr std::size_t kRequests = 12;
  for (std::size_t i = 0; i < kRequests; ++i) {
    group.submit({&mat(i), nullptr, {}, "g" + std::to_string(i)});
  }
  const GroupResult gr = group.drain();
  ASSERT_EQ(gr.group.requests, kRequests);
  ASSERT_EQ(gr.group.completed, kRequests);
  ASSERT_EQ(gr.group.kills, 1u);

  // The export is valid JSON and renders each shard as its own process.
  const std::string json = chrome_trace_json(rec);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"hh-runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"hh-shard-0\""), std::string::npos);
  EXPECT_NE(json.find("\"hh-shard-1\""), std::string::npos);

  // Group-level kShard instants live on track 0; every span was re-recorded
  // on its shard's track (never the group track).
  for (const TraceEvent& e : rec.events()) {
    if (e.category == TraceCategory::kShard) EXPECT_EQ(e.track, 0u);
    if (e.kind == TraceEventKind::kSpan) {
      EXPECT_GE(e.track, 1u);
      EXPECT_LE(e.track, gcfg.shards);
    }
  }
  EXPECT_GT(count_events(rec, TraceCategory::kShard), 0);

  // Per-(track, resource) spans never overlap: each shard has its own four
  // timelines, and separating tracks is what keeps two shards' concurrent
  // GPU work from rendering as a single impossible row.
  bool saw_span = false;
  for (std::uint32_t t = 1; t <= gcfg.shards; ++t) {
    for (int r = 0; r < kResourceCount; ++r) {
      std::vector<const TraceEvent*> spans;
      for (const TraceEvent& e : rec.events()) {
        if (e.kind == TraceEventKind::kSpan && e.track == t &&
            e.has_resource && static_cast<int>(e.resource) == r) {
          spans.push_back(&e);
        }
      }
      std::sort(spans.begin(), spans.end(),
                [](const TraceEvent* a, const TraceEvent* b2) {
                  return a->start_s < b2->start_s;
                });
      for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i]->start_s, spans[i - 1]->end_s - 1e-12)
            << "shard " << t - 1 << " "
            << to_string(static_cast<Resource>(r)) << " spans overlap";
      }
      saw_span = saw_span || !spans.empty();
    }
  }
  EXPECT_TRUE(saw_span);

  // Span counts reconcile with the group result: one traced span per stage
  // span every request report carries.
  std::size_t report_spans = 0;
  for (const RequestReport& r : gr.requests) report_spans += r.spans.size();
  std::size_t traced_spans = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == TraceEventKind::kSpan) ++traced_spans;
  }
  EXPECT_EQ(traced_spans, report_spans);
}

}  // namespace
}  // namespace hh
