#include "spgemm/esc_spgemm.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw_gen.hpp"
#include "spgemm/gustavson.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(EscSpgemm, MatchesReferenceOnRandom) {
  const CsrMatrix a = test::random_csr(25, 20, 0.25, 501);
  const CsrMatrix b = test::random_csr(20, 22, 0.3, 502);
  ThreadPool pool(2);
  test::expect_matches_reference(a, b, esc_spgemm(a, b, pool));
}

TEST(EscSpgemm, MatchesGustavsonOnScaleFree) {
  PowerLawGenConfig cfg;
  cfg.rows = 800;
  cfg.alpha = 2.4;
  cfg.target_nnz = 4000;
  cfg.seed = 503;
  const CsrMatrix a = generate_power_law_matrix(cfg);
  ThreadPool pool(2);
  const CsrMatrix want = gustavson_spgemm(a, a);
  const CsrMatrix got = esc_spgemm(a, a, pool);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-9, &why)) << why;
}

TEST(EscSpgemm, EmptyInputs) {
  const CsrMatrix a(4, 4);
  ThreadPool pool(2);
  const CsrMatrix c = esc_spgemm(a, a, pool);
  c.validate();
  EXPECT_EQ(c.nnz(), 0);
}

TEST(EscSpgemm, DeterministicAcrossPools) {
  const CsrMatrix a = test::random_csr(40, 40, 0.15, 504);
  ThreadPool pool1(1), pool4(4);
  const CsrMatrix x = esc_spgemm(a, a, pool1);
  const CsrMatrix y = esc_spgemm(a, a, pool4);
  EXPECT_EQ(x.indices, y.indices);
  EXPECT_EQ(x.values, y.values);
}

TEST(EscSpgemm, IncompatibleShapesThrow) {
  const CsrMatrix a(3, 4), b(5, 3);
  ThreadPool pool(1);
  EXPECT_THROW(esc_spgemm(a, b, pool), CheckError);
}

}  // namespace
}  // namespace hh
