#include "sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/equality.hpp"
#include "test_util.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

TEST(MmIo, WriteReadRoundTrip) {
  const CsrMatrix m = test::random_csr(10, 8, 0.3, 21);
  std::stringstream ss;
  write_matrix_market(ss, m);
  const CsrMatrix back = read_matrix_market(ss);
  std::string why;
  EXPECT_TRUE(approx_equal(m, back, 1e-9, &why)) << why;
}

TEST(MmIo, ReadsPatternAsOnes) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.values[0], 1.0);
}

TEST(MmIo, MirrorsSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 3);  // (1,0), (0,1), (2,2)
  EXPECT_EQ(m.row_nnz(0), 1);
  EXPECT_EQ(m.row_indices(0)[0], 1);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 5.0);
}

TEST(MmIo, SkipsComments) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "% another\n"
      "1 1 1\n"
      "1 1 4.5\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.values[0], 4.5);
}

// ---- Malformed-input corpus: every rejection is a typed ParseError (a
// HhError with StatusCode::kParseError), never a silent mis-parse.

void expect_parse_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    read_matrix_market(ss);
    FAIL() << "accepted malformed input:\n" << text;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), StatusCode::kParseError) << e.what();
  }
}

TEST(MmIo, RejectsEmptyStream) { expect_parse_error(""); }

TEST(MmIo, RejectsMissingBanner) { expect_parse_error("1 1 1\n1 1 4.5\n"); }

TEST(MmIo, RejectsUnsupportedObject) {
  expect_parse_error("%%MatrixMarket vector coordinate real general\n1 1 0\n");
}

TEST(MmIo, RejectsArrayFormat) {
  expect_parse_error("%%MatrixMarket matrix array real general\n2 2\n");
}

TEST(MmIo, RejectsComplexField) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
}

TEST(MmIo, RejectsUnknownSymmetry) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n");
}

TEST(MmIo, RejectsMissingSizeLine) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n% only comments\n");
}

TEST(MmIo, RejectsNonNumericSizeLine) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\nthree by three\n");
}

TEST(MmIo, RejectsPartialSizeLine) {
  expect_parse_error("%%MatrixMarket matrix coordinate real general\n3 3\n");
}

TEST(MmIo, RejectsNegativeDimensions) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n-2 2 0\n");
}

TEST(MmIo, RejectsDimensionOverflow) {
  // 3e9 rows does not fit the 32-bit index type; must not wrap silently.
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n3000000000 5 1\n"
      "1 1 1.0\n");
}

TEST(MmIo, RejectsEntryCountExceedingCells) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 5\n"
      "1 1 1\n1 2 1\n2 1 1\n2 2 1\n1 1 2\n");
}

TEST(MmIo, RejectsNonNumericEntryTokens) {
  // operator>> would otherwise leave r=c=0 and "accept" an out-of-range 0 0.
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n");
}

TEST(MmIo, RejectsNonNumericValue) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaNopeN\n");
}

TEST(MmIo, RejectsMissingValueToken) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n");
}

TEST(MmIo, RejectsTrailingJunkOnEntry) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 4.5 oops\n");
}

TEST(MmIo, RejectsTrailingJunkOnSizeLine) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1 junk\n1 1 4.5\n");
}

TEST(MmIo, RejectsOutOfRangeEntry) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
}

TEST(MmIo, RejectsZeroBasedEntry) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n");
}

TEST(MmIo, RejectsTruncatedEntries) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
}

TEST(MmIo, ParseErrorIsAlsoCatchableAsHhError) {
  std::stringstream ss("not a matrix\n");
  try {
    read_matrix_market(ss);
    FAIL() << "accepted malformed input";
  } catch (const HhError& e) {
    EXPECT_EQ(e.code(), StatusCode::kParseError);
    EXPECT_FALSE(e.status().ok());
  }
}

TEST(MmIo, FileRoundTrip) {
  const CsrMatrix m = test::random_csr(6, 6, 0.4, 9);
  const std::string path = testing::TempDir() + "/hh_mmio_test.mtx";
  write_matrix_market_file(path, m);
  const CsrMatrix back = read_matrix_market_file(path);
  std::string why;
  EXPECT_TRUE(approx_equal(m, back, 1e-9, &why)) << why;
}

TEST(MmIo, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), ParseError);
}

}  // namespace
}  // namespace hh
