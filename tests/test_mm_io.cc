#include "sparse/mm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/equality.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(MmIo, WriteReadRoundTrip) {
  const CsrMatrix m = test::random_csr(10, 8, 0.3, 21);
  std::stringstream ss;
  write_matrix_market(ss, m);
  const CsrMatrix back = read_matrix_market(ss);
  std::string why;
  EXPECT_TRUE(approx_equal(m, back, 1e-9, &why)) << why;
}

TEST(MmIo, ReadsPatternAsOnes) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.values[0], 1.0);
}

TEST(MmIo, MirrorsSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 3);  // (1,0), (0,1), (2,2)
  EXPECT_EQ(m.row_nnz(0), 1);
  EXPECT_EQ(m.row_indices(0)[0], 1);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 5.0);
}

TEST(MmIo, SkipsComments) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "% another\n"
      "1 1 1\n"
      "1 1 4.5\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.values[0], 4.5);
}

TEST(MmIo, RejectsMissingBanner) {
  std::stringstream ss("1 1 1\n1 1 4.5\n");
  EXPECT_THROW(read_matrix_market(ss), CheckError);
}

TEST(MmIo, RejectsArrayFormat) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(ss), CheckError);
}

TEST(MmIo, RejectsOutOfRangeEntry) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), CheckError);
}

TEST(MmIo, RejectsTruncatedEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), CheckError);
}

TEST(MmIo, FileRoundTrip) {
  const CsrMatrix m = test::random_csr(6, 6, 0.4, 9);
  const std::string path = testing::TempDir() + "/hh_mmio_test.mtx";
  write_matrix_market_file(path, m);
  const CsrMatrix back = read_matrix_market_file(path);
  std::string why;
  EXPECT_TRUE(approx_equal(m, back, 1e-9, &why)) << why;
}

TEST(MmIo, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), CheckError);
}

}  // namespace
}  // namespace hh
