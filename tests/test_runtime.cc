#include "runtime/service.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "core/hh_cpu.hpp"
#include "gen/datasets.hpp"
#include "runtime/timeline.hpp"
#include "runtime/wave.hpp"
#include "test_util.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

// ---------------------------------------------------------------- timeline

TEST(ResourceTimeline, AppendsWhenNoGapFits) {
  ResourceTimeline t(Resource::kCpu);
  const StageSpan a = t.reserve("a", 0, 1.0);
  EXPECT_DOUBLE_EQ(a.start_s, 0);
  EXPECT_DOUBLE_EQ(a.end_s, 1.0);
  const StageSpan b = t.reserve("b", 0, 2.0);
  EXPECT_DOUBLE_EQ(b.start_s, 1.0);  // no idle window: appended
  EXPECT_DOUBLE_EQ(b.end_s, 3.0);
  EXPECT_DOUBLE_EQ(t.now(), 3.0);
  EXPECT_DOUBLE_EQ(t.busy(), 3.0);
}

TEST(ResourceTimeline, RespectsEarliestAndRecordsGap) {
  ResourceTimeline t(Resource::kGpu);
  const StageSpan a = t.reserve("a", 5.0, 1.0);  // dependence-delayed
  EXPECT_DOUBLE_EQ(a.start_s, 5.0);
  EXPECT_DOUBLE_EQ(t.now(), 6.0);
  EXPECT_DOUBLE_EQ(t.busy(), 1.0);
  // The [0, 5) idle window is backfillable by an independent stage.
  const StageSpan b = t.reserve("b", 0, 2.0);
  EXPECT_DOUBLE_EQ(b.start_s, 0);
  EXPECT_DOUBLE_EQ(b.end_s, 2.0);
  EXPECT_DOUBLE_EQ(t.now(), 6.0);  // frontier unchanged by backfill
  // The remaining [2, 5) slice is still available...
  const StageSpan c = t.reserve("c", 0, 3.0);
  EXPECT_DOUBLE_EQ(c.start_s, 2.0);
  EXPECT_DOUBLE_EQ(c.end_s, 5.0);
  // ...and once full, new work appends at the frontier.
  const StageSpan d = t.reserve("d", 0, 0.5);
  EXPECT_DOUBLE_EQ(d.start_s, 6.0);
  EXPECT_DOUBLE_EQ(t.busy(), 6.5);
}

TEST(ResourceTimeline, BackfillHonorsEarliestInsideGap) {
  ResourceTimeline t;
  t.reserve("late", 10.0, 1.0);            // gap [0, 10)
  const StageSpan s = t.reserve("mid", 4.0, 2.0);
  EXPECT_DOUBLE_EQ(s.start_s, 4.0);        // not earlier than its dependence
  EXPECT_DOUBLE_EQ(s.end_s, 6.0);
  const StageSpan head = t.reserve("head", 0, 4.0);  // [0, 4) slice survives
  EXPECT_DOUBLE_EQ(head.start_s, 0);
  const StageSpan tail = t.reserve("tail", 0, 4.0);  // [6, 10) slice survives
  EXPECT_DOUBLE_EQ(tail.start_s, 6.0);
  EXPECT_DOUBLE_EQ(t.busy(), 11.0);
  EXPECT_DOUBLE_EQ(t.now(), 11.0);
}

TEST(ResourceTimeline, ZeroDurationOccupiesNothing) {
  ResourceTimeline t;
  t.reserve("a", 0, 1.0);
  // The resource is occupied until 1.0, so an instantaneous stage asked for
  // at 0.25 is stamped when the resource actually frees up — not inside the
  // busy interval (that timestamp would order it before work it follows).
  const StageSpan z = t.reserve("z", 0.25, 0.0);
  EXPECT_DOUBLE_EQ(z.start_s, 1.0);
  EXPECT_DOUBLE_EQ(z.duration_s(), 0);
  EXPECT_DOUBLE_EQ(t.now(), 1.0);   // clock untouched
  EXPECT_DOUBLE_EQ(t.busy(), 1.0);  // occupancy untouched

  // In an idle gap the requested time is granted as-is.
  t.reserve("b", 3.0, 1.0);
  const StageSpan g = t.reserve("g", 2.0, 0.0);
  EXPECT_DOUBLE_EQ(g.start_s, 2.0);
  EXPECT_DOUBLE_EQ(t.now(), 4.0);
}

TEST(ResourceTimeline, BlockStartFindsFirstWindowThatFitsWholeBlock) {
  ResourceTimeline t;
  t.reserve("late", 10.0, 1.0);  // idle window [0, 10)
  EXPECT_DOUBLE_EQ(t.block_start(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(t.block_start(3.0, 4.0), 3.0);   // fits later in the gap
  EXPECT_DOUBLE_EQ(t.block_start(0.0, 12.0), 11.0); // too big: frontier
  EXPECT_DOUBLE_EQ(t.block_start(0.0, 0.0), 0.0);   // degenerate block
}

TEST(ResourceTimeline, ReserveBlockIsContiguousAndSkipsShortGaps) {
  ResourceTimeline t;
  t.reserve("early", 1.0, 1.0);  // idle window [0, 1) — too short for the
  t.reserve("late", 5.0, 1.0);   // block; window [2, 5) fits it whole
  const std::vector<StageSpan> spans = t.reserve_block(
      {{"seg0", 1.0}, {"seg1", 0.0}, {"seg2", 1.5}}, 0.0);
  ASSERT_EQ(spans.size(), 3u);
  // The whole block lands in [2, 5): no segment leaks into the [0, 1) gap.
  EXPECT_DOUBLE_EQ(spans[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(spans[0].end_s, 3.0);
  // Zero-duration segments pin at the running cursor, occupying nothing.
  EXPECT_DOUBLE_EQ(spans[1].start_s, 3.0);
  EXPECT_DOUBLE_EQ(spans[1].end_s, 3.0);
  // Segments are back-to-back: no idle time inside the block.
  EXPECT_DOUBLE_EQ(spans[2].start_s, 3.0);
  EXPECT_DOUBLE_EQ(spans[2].end_s, 4.5);
  // The short head gap survives for later independent work.
  EXPECT_DOUBLE_EQ(t.reserve("backfill", 0.0, 0.5).start_s, 0.0);
}

// ------------------------------------------------------------------- waves

using OperandIds = std::vector<std::array<std::uint32_t, 2>>;

TEST(FormWaves, PartitionsContiguouslyAndGroupsSharedOperands) {
  // Requests 0-2 share operand 0 and fit the 3-operand cap together;
  // request 3's two fresh operands would blow the cap, starting wave 2.
  const OperandIds ids = {{0, 0}, {0, 1}, {1, 0}, {2, 3}};
  const std::vector<WaveBounds> waves = form_waves(ids, 16, 3);
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0].begin, 0u);
  EXPECT_EQ(waves[0].end, 3u);
  EXPECT_EQ(waves[1].begin, 3u);
  EXPECT_EQ(waves[1].end, 4u);
  // With room for every operand the whole queue is one wave.
  const std::vector<WaveBounds> wide = form_waves(ids, 16, 8);
  ASSERT_EQ(wide.size(), 1u);
  EXPECT_EQ(wide[0].end, 4u);
}

TEST(FormWaves, MaxRequestsOneDegeneratesToSingleRequestWaves) {
  const OperandIds ids = {{0, 0}, {0, 0}, {0, 0}};
  const std::vector<WaveBounds> waves = form_waves(ids, 1, 8);
  ASSERT_EQ(waves.size(), 3u);
  for (std::size_t i = 0; i < waves.size(); ++i) {
    EXPECT_EQ(waves[i].begin, i);
    EXPECT_EQ(waves[i].end, i + 1);
  }
}

TEST(FormWaves, OperandCapSplitsAllDistinctTraffic) {
  // All-distinct operands: dedup is a no-op and the operand cap is the
  // only thing bounding wave width (2 distinct operands per request).
  const OperandIds ids = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  const std::vector<WaveBounds> waves = form_waves(ids, 16, 4);
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0].end, 2u);
  EXPECT_EQ(waves[1].begin, 2u);
}

TEST(FormWaves, FreshOperandFreeRequestsRideAlongPastOperandCap) {
  // Request 2 re-uses operands already in the wave: it joins even though
  // the wave is at its operand cap.
  const OperandIds ids = {{0, 1}, {2, 3}, {1, 2}, {4, 4}};
  const std::vector<WaveBounds> waves = form_waves(ids, 16, 4);
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0].end, 3u);
  EXPECT_EQ(waves[1].begin, 3u);
}

TEST(FormWaves, UnboundedCapsYieldOneWave) {
  const OperandIds ids = {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}};
  const std::vector<WaveBounds> waves = form_waves(ids, 0, 0);
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].begin, 0u);
  EXPECT_EQ(waves[0].end, 5u);
}

TEST(FormWaves, EmptyQueueFormsNoWaves) {
  EXPECT_TRUE(form_waves({}, 16, 8).empty());
}

// ----------------------------------------------------------------- service

void expect_bit_identical(const CsrMatrix& want, const CsrMatrix& got,
                          const std::string& label) {
  EXPECT_EQ(want.rows, got.rows) << label;
  EXPECT_EQ(want.cols, got.cols) << label;
  EXPECT_EQ(want.indptr, got.indptr) << label;
  EXPECT_EQ(want.indices, got.indices) << label;
  EXPECT_EQ(want.values, got.values) << label;  // exact, not approximate
}

class ServiceTest : public testing::Test {
 protected:
  ServiceTest()
      : wiki_(make_dataset(dataset_spec("wiki-Vote"), 0.05)),
        enron_(make_dataset(dataset_spec("email-Enron"), 0.03)),
        pool_(2) {}

  CsrMatrix wiki_;
  CsrMatrix enron_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(ServiceTest, BatchOutputsBitIdenticalToSerialDriver) {
  SpgemmService service(plat_, pool_);
  const CsrMatrix* mats[] = {&wiki_, &enron_, &wiki_, &enron_, &wiki_,
                             &enron_, &wiki_, &enron_};
  for (const CsrMatrix* m : mats) {
    service.submit({m, nullptr, {}, ""});
  }
  ASSERT_EQ(service.pending(), 8u);
  const BatchResult batch = service.drain();
  EXPECT_EQ(service.pending(), 0u);
  ASSERT_EQ(batch.results.size(), 8u);

  double serial_total = 0;
  for (std::size_t i = 0; i < std::size(mats); ++i) {
    const RunResult serial =
        run_hh_cpu(*mats[i], *mats[i], HhCpuOptions{}, plat_, pool_);
    serial_total += serial.report.total_s;
    expect_bit_identical(serial.c, batch.results[i].c,
                         "request " + std::to_string(i));
  }
  // Pipelining + plan cache + residency: strictly faster than back-to-back.
  EXPECT_LT(batch.batch.makespan_s, serial_total);
  EXPECT_GT(batch.batch.makespan_s, 0);
}

TEST_F(ServiceTest, PlanCacheHitsAreBitExactAndSkipIdentification) {
  SpgemmService service(plat_, pool_);
  service.submit({&wiki_, nullptr, {}, "cold"});
  service.submit({&wiki_, nullptr, {}, "warm"});
  const BatchResult batch = service.drain();
  ASSERT_EQ(batch.results.size(), 2u);

  EXPECT_FALSE(batch.requests[0].plan_cache_hit);
  EXPECT_TRUE(batch.requests[1].plan_cache_hit);
  // Same thresholds, same matrix → identical output.
  EXPECT_EQ(batch.results[0].report.threshold_a,
            batch.results[1].report.threshold_a);
  expect_bit_identical(batch.results[0].c, batch.results[1].c, "warm");
  // The hit skips identification but still pays classification.
  EXPECT_LT(batch.results[1].report.phase1_s,
            batch.results[0].report.phase1_s);
  EXPECT_GT(batch.results[1].report.phase1_s, 0);
  // The warm request found its operand resident: no H2D bytes.
  EXPECT_TRUE(batch.requests[1].inputs_resident);
  EXPECT_DOUBLE_EQ(batch.results[1].report.transfer_in_s, 0);
  EXPECT_EQ(service.plan_cache().stats().hits, 1);
}

TEST_F(ServiceTest, CacheSurvivesAcrossDrains) {
  SpgemmService service(plat_, pool_);
  service.submit({&wiki_, nullptr, {}, ""});
  const BatchResult first = service.drain();
  service.submit({&wiki_, nullptr, {}, ""});
  const BatchResult second = service.drain();
  EXPECT_TRUE(second.requests[0].plan_cache_hit);
  expect_bit_identical(first.results[0].c, second.results[0].c, "redrain");
  // invalidate_inputs drops residency (plans stay: keyed by signature).
  service.invalidate_inputs();
  service.submit({&wiki_, nullptr, {}, ""});
  const BatchResult third = service.drain();
  EXPECT_TRUE(third.requests[0].plan_cache_hit);
  EXPECT_FALSE(third.requests[0].inputs_resident);
  expect_bit_identical(first.results[0].c, third.results[0].c, "invalidate");
}

TEST_F(ServiceTest, ExplicitThresholdsBypassTheCache) {
  SpgemmService service(plat_, pool_);
  SpgemmRequest req{&wiki_, nullptr, {}, ""};
  req.options.threshold_a = 4;
  req.options.threshold_b = 4;
  service.submit(std::move(req));
  service.drain();
  EXPECT_EQ(service.plan_cache().size(), 0u);
  EXPECT_EQ(service.plan_cache().stats().misses, 0);
}

TEST_F(ServiceTest, RectangularProductMatchesSerial) {
  const CsrMatrix a = test::random_csr(150, 90, 0.04, 3);
  const CsrMatrix b = test::random_csr(90, 120, 0.06, 5);
  SpgemmService service(plat_, pool_);
  service.submit({&a, &b, {}, "rect"});
  const BatchResult batch = service.drain();
  const RunResult serial = run_hh_cpu(a, b, HhCpuOptions{}, plat_, pool_);
  expect_bit_identical(serial.c, batch.results[0].c, "rect");
}

TEST_F(ServiceTest, ReportsAreInternallyConsistent) {
  SpgemmService service(plat_, pool_);
  for (int i = 0; i < 5; ++i) {
    service.submit({&wiki_, nullptr, {}, "r" + std::to_string(i)});
  }
  const BatchResult batch = service.drain();
  const BatchReport& br = batch.batch;
  EXPECT_EQ(br.requests, 5u);
  EXPECT_LE(br.p50_latency_s, br.p95_latency_s);
  EXPECT_LE(br.p95_latency_s, br.p99_latency_s);
  EXPECT_LE(br.p99_latency_s, br.makespan_s + 1e-12);
  EXPECT_GT(br.cpu_busy_s, 0);
  double max_finish = 0;
  for (const RequestReport& r : batch.requests) {
    EXPECT_GE(r.queue_wait_s, 0) << r.label;
    EXPECT_DOUBLE_EQ(r.latency_s, r.finish_s - r.submit_s) << r.label;
    EXPECT_DOUBLE_EQ(r.run.total_s, r.latency_s) << r.label;
    max_finish = std::max(max_finish, r.finish_s);
    for (const StageSpan& s : r.spans) {
      EXPECT_GE(s.start_s, r.start_s - 1e-12) << r.label << " " << s.stage;
      EXPECT_LE(s.end_s, r.finish_s + 1e-12) << r.label << " " << s.stage;
      EXPECT_GT(s.duration_s(), 0) << r.label << " " << s.stage;
    }
  }
  EXPECT_DOUBLE_EQ(br.makespan_s, max_finish);
  // JSON renderings are single-line objects with the headline keys.
  const std::string j = br.to_json();
  EXPECT_NE(j.find("\"makespan_s\":"), std::string::npos);
  EXPECT_NE(j.find("\"p99_latency_s\":"), std::string::npos);
  const std::string rj = batch.requests[0].to_json();
  EXPECT_NE(rj.find("\"stages\":["), std::string::npos);
  EXPECT_NE(rj.find("\"run\":{"), std::string::npos);
  EXPECT_EQ(rj.find('\n'), std::string::npos);
}

TEST_F(ServiceTest, SubmitRejectsMalformedRequestsWithTypedErrors) {
  SpgemmService service(plat_, pool_);

  // Null A operand.
  EXPECT_THROW(service.submit({nullptr, nullptr, {}, ""}),
               InvalidArgumentError);

  // Degenerate (empty) operand.
  CsrMatrix empty;
  EXPECT_THROW(service.submit({&empty, nullptr, {}, ""}),
               InvalidArgumentError);

  // Incompatible shapes: A.cols != B.rows.
  const CsrMatrix a = test::random_csr(10, 7, 0.3, 1);
  const CsrMatrix b = test::random_csr(9, 5, 0.3, 2);
  try {
    service.submit({&a, &b, {}, "shapes"});
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("incompatible"), std::string::npos);
  }

  // Inconsistent CSR arrays (indptr not matching indices).
  CsrMatrix broken = a;
  broken.indptr.back() += 1;
  EXPECT_THROW(service.submit({&broken, nullptr, {}, ""}),
               InvalidArgumentError);

  // Inverted/negative thresholds and negative queue knobs.
  SpgemmRequest neg_t{&wiki_, nullptr, {}, ""};
  neg_t.options.threshold_a = -3;
  EXPECT_THROW(service.submit(std::move(neg_t)), InvalidArgumentError);
  SpgemmRequest neg_q{&wiki_, nullptr, {}, ""};
  neg_q.options.queue.cpu_rows = -1;
  EXPECT_THROW(service.submit(std::move(neg_q)), InvalidArgumentError);

  // Negative deadline.
  SpgemmRequest neg_d{&wiki_, nullptr, {}, ""};
  neg_d.deadline_s = -1.0;
  EXPECT_THROW(service.submit(std::move(neg_d)), InvalidArgumentError);

  // Nothing malformed was admitted; a healthy request still goes through.
  EXPECT_EQ(service.pending(), 0u);
  service.submit({&wiki_, nullptr, {}, "ok"});
  EXPECT_EQ(service.pending(), 1u);
  EXPECT_TRUE(service.drain().requests[0].status.ok());
}

TEST_F(ServiceTest, WorkspacePoolingPreservesResults) {
  SpgemmService::Config no_pool;
  no_pool.use_workspace_pool = false;
  no_pool.keep_inputs_resident = false;
  SpgemmService plain(plat_, pool_, no_pool);
  SpgemmService pooled(plat_, pool_);
  for (SpgemmService* s : {&plain, &pooled}) {
    s->submit({&enron_, nullptr, {}, ""});
    s->submit({&wiki_, nullptr, {}, ""});
    s->submit({&enron_, nullptr, {}, ""});
  }
  const BatchResult a = plain.drain();
  const BatchResult b = pooled.drain();
  for (std::size_t i = 0; i < 3; ++i) {
    expect_bit_identical(a.results[i].c, b.results[i].c,
                         "pooled vs plain " + std::to_string(i));
  }
  EXPECT_GT(pooled.workspace_pool().stats().spa_reuses, 0);
  EXPECT_EQ(plain.workspace_pool().stats().spa_acquires, 0);
}

// ------------------------------------------------------------ wave executor

TEST_F(ServiceTest, WaveOutputsBitIdenticalAndUploadsDeduped) {
  SpgemmService::Config cfg;
  cfg.wave.enabled = true;
  SpgemmService waved(plat_, pool_, cfg);
  SpgemmService plain(plat_, pool_);
  const CsrMatrix* mats[] = {&wiki_, &enron_, &wiki_, &enron_, &wiki_,
                             &wiki_, &enron_, &enron_};
  for (SpgemmService* s : {&waved, &plain}) {
    for (const CsrMatrix* m : mats) s->submit({m, nullptr, {}, ""});
  }
  const BatchResult w = waved.drain();
  const BatchResult p = plain.drain();
  ASSERT_EQ(w.results.size(), std::size(mats));
  for (std::size_t i = 0; i < std::size(mats); ++i) {
    const RunResult serial =
        run_hh_cpu(*mats[i], *mats[i], HhCpuOptions{}, plat_, pool_);
    expect_bit_identical(serial.c, w.results[i].c,
                         "wave request " + std::to_string(i));
    expect_bit_identical(p.results[i].c, w.results[i].c,
                         "wave vs plain " + std::to_string(i));
  }
  EXPECT_TRUE(w.batch.wave_enabled);
  EXPECT_GT(w.batch.wave.waves, 0);
  EXPECT_EQ(w.batch.wave.wave_requests,
            static_cast<std::int64_t>(std::size(mats)));
  // 8 requests over 2 distinct operands: dedup must have fired.
  EXPECT_GE(w.batch.wave.deduped_uploads, 1);
  EXPECT_GT(w.batch.wave.uploads, 0);
  // Every deduped use is PCIe traffic the plain schedule paid for.
  EXPECT_LT(w.batch.h2d_busy_s, p.batch.h2d_busy_s);
  EXPECT_NE(w.batch.to_json().find("\"wave\":{"), std::string::npos);
}

TEST_F(ServiceTest, WaveDisabledReportsByteIdenticalToLegacy) {
  // The wave knob present-but-disabled must not perturb a single byte of
  // the reports — including caps differing from the defaults. Workspace
  // pooling is off in both: its reuse counts depend on worker-thread
  // timing, not on anything the wave knob controls.
  SpgemmService::Config base;
  base.use_workspace_pool = false;
  SpgemmService::Config off = base;
  off.wave.enabled = false;
  off.wave.max_requests = 3;
  SpgemmService legacy(plat_, pool_, base);
  SpgemmService gated(plat_, pool_, off);
  for (SpgemmService* s : {&legacy, &gated}) {
    s->submit({&wiki_, nullptr, {}, "a"});
    s->submit({&enron_, nullptr, {}, "b"});
    s->submit({&wiki_, nullptr, {}, "c"});
  }
  const BatchResult l = legacy.drain();
  const BatchResult g = gated.drain();
  EXPECT_FALSE(g.batch.wave_enabled);
  EXPECT_EQ(l.batch.to_json(), g.batch.to_json());
  EXPECT_EQ(l.batch.to_string(), g.batch.to_string());
  EXPECT_EQ(g.batch.to_json().find("\"wave\""), std::string::npos);
  ASSERT_EQ(l.requests.size(), g.requests.size());
  for (std::size_t i = 0; i < l.requests.size(); ++i) {
    EXPECT_EQ(l.requests[i].to_json(), g.requests[i].to_json());
  }
}

TEST_F(ServiceTest, WaveAllDistinctOperandsDedupIsNoOp) {
  const CsrMatrix a = test::random_csr(120, 120, 0.05, 11);
  const CsrMatrix b = test::random_csr(120, 120, 0.05, 12);
  const CsrMatrix c = test::random_csr(120, 120, 0.05, 13);
  SpgemmService::Config cfg;
  cfg.wave.enabled = true;
  SpgemmService service(plat_, pool_, cfg);
  for (const CsrMatrix* m : {&a, &b, &c}) {
    service.submit({m, nullptr, {}, ""});
  }
  const BatchResult r = service.drain();
  EXPECT_EQ(r.batch.wave.deduped_uploads, 0);
  EXPECT_EQ(r.batch.wave.uploads, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    const CsrMatrix* m = (i == 0) ? &a : (i == 1) ? &b : &c;
    const RunResult serial = run_hh_cpu(*m, *m, HhCpuOptions{}, plat_, pool_);
    expect_bit_identical(serial.c, r.results[i].c,
                         "distinct " + std::to_string(i));
  }
}

TEST_F(ServiceTest, WaveRefcountEvictionFiresWithoutStickyResidency) {
  SpgemmService::Config cfg;
  cfg.wave.enabled = true;
  cfg.keep_inputs_resident = false;
  SpgemmService service(plat_, pool_, cfg);
  for (int i = 0; i < 4; ++i) service.submit({&wiki_, nullptr, {}, ""});
  const BatchResult r = service.drain();
  // One distinct operand, uploaded once, deduped three times, evicted when
  // its last user finished.
  EXPECT_EQ(r.batch.wave.uploads, 1);
  EXPECT_EQ(r.batch.wave.deduped_uploads, 3);
  EXPECT_GE(r.batch.wave.evictions, 1);
  // Sticky residency keeps the operand instead.
  SpgemmService::Config sticky;
  sticky.wave.enabled = true;
  SpgemmService keeper(plat_, pool_, sticky);
  for (int i = 0; i < 4; ++i) keeper.submit({&wiki_, nullptr, {}, ""});
  EXPECT_EQ(keeper.drain().batch.wave.evictions, 0);
}

TEST_F(ServiceTest, WaveSingleRequestWavesMatchPlainSchedule) {
  // max_requests == 1 exercises the smallest wave shape: every wave holds
  // one request, so batching never fires but accounting must still balance.
  SpgemmService::Config cfg;
  cfg.wave.enabled = true;
  cfg.wave.max_requests = 1;
  SpgemmService service(plat_, pool_, cfg);
  SpgemmService plain(plat_, pool_);
  for (SpgemmService* s : {&service, &plain}) {
    s->submit({&wiki_, nullptr, {}, ""});
    s->submit({&enron_, nullptr, {}, ""});
    s->submit({&wiki_, nullptr, {}, ""});
  }
  const BatchResult w = service.drain();
  const BatchResult p = plain.drain();
  EXPECT_EQ(w.batch.wave.waves, 3);
  EXPECT_EQ(w.batch.wave.coalesced_uploads, 0);
  EXPECT_EQ(w.batch.wave.deduped_uploads, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_bit_identical(p.results[i].c, w.results[i].c,
                         "single-wave " + std::to_string(i));
  }
}

TEST_F(ServiceTest, WaveReportsAreReplayDeterministic) {
  // Same submissions through two fresh services: every report byte —
  // wave counters included — must match (same-seed replay determinism).
  const auto run = [&] {
    SpgemmService::Config cfg;
    cfg.wave.enabled = true;
    // Workspace-pool reuse counts depend on worker-thread timing (they
    // pre-date waves and are not part of the replay contract): pool off.
    cfg.use_workspace_pool = false;
    SpgemmService service(plat_, pool_, cfg);
    service.submit({&wiki_, nullptr, {}, "a"});
    service.submit({&wiki_, nullptr, {}, "b"});
    service.submit({&enron_, nullptr, {}, "c"});
    return service.drain();
  };
  const BatchResult first = run();
  const BatchResult second = run();
  EXPECT_EQ(first.batch.to_json(), second.batch.to_json());
  EXPECT_EQ(first.batch.to_string(), second.batch.to_string());
  ASSERT_EQ(first.requests.size(), second.requests.size());
  for (std::size_t i = 0; i < first.requests.size(); ++i) {
    EXPECT_EQ(first.requests[i].to_json(), second.requests[i].to_json());
  }
}

}  // namespace
}  // namespace hh
