#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hh {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int sum = 0;
  pool.parallel_for(1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += 1;
  });
  EXPECT_EQ(sum, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::int64_t lo, std::int64_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolStillUsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [&](std::int64_t, std::int64_t) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, LargeRangeSum) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100000, [&](std::int64_t lo, std::int64_t hi) {
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 99999LL * 100000 / 2);
}

}  // namespace
}  // namespace hh
