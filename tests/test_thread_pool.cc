#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace hh {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int sum = 0;
  pool.parallel_for(1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += 1;
  });
  EXPECT_EQ(sum, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::int64_t lo, std::int64_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolStillUsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [&](std::int64_t, std::int64_t) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, LargeRangeSum) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100000, [&](std::int64_t lo, std::int64_t hi) {
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 99999LL * 100000 / 2);
}

// parallel_for waits on its own call's completion group, not wait_idle():
// several threads sharing one pool must all complete even when their calls
// interleave arbitrarily.
TEST(ThreadPool, ConcurrentParallelForCallers) {
  ThreadPool pool(2);
  constexpr int kCallers = 4;
  constexpr std::int64_t kN = 2000;
  std::atomic<std::int64_t> sums[kCallers];
  for (auto& s : sums) s.store(0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      for (int round = 0; round < 5; ++round) {
        pool.parallel_for(kN, [&sums, c](std::int64_t lo, std::int64_t hi) {
          sums[c].fetch_add(hi - lo);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& s : sums) EXPECT_EQ(s.load(), 5 * kN);
}

// A concurrent caller must not wait for *other* callers' unrelated pending
// work — regression test for parallel_for blocking on whole-pool idleness.
TEST(ThreadPool, ParallelForDoesNotWaitForUnrelatedTasks) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  // Occupy one worker with a long task the parallel_for does not depend on.
  // Wait until a worker holds it: the helping caller must not pick it up.
  pool.submit([&release, &started] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(100, [&covered](std::int64_t lo, std::int64_t hi) {
    covered.fetch_add(hi - lo);
  });
  // parallel_for returned while the blocker still runs.
  EXPECT_EQ(covered.load(), 100);
  EXPECT_FALSE(release.load());
  release.store(true);
  pool.wait_idle();
}

// The calling thread helps drain the queue, so a task that itself calls
// parallel_for cannot deadlock — even when every worker is occupied by the
// outer call (the classic single-worker nesting deadlock).
TEST(ThreadPool, NestedParallelFor) {
  ThreadPool pool(1);
  std::atomic<std::int64_t> inner_total{0};
  pool.parallel_for(8, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      pool.parallel_for(50, [&inner_total](std::int64_t a, std::int64_t b) {
        inner_total.fetch_add(b - a);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 50);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::int64_t lo, std::int64_t) {
                          pool.parallel_for(4, [&](std::int64_t a,
                                                   std::int64_t) {
                            if (lo == 0 && a == 0) {
                              throw std::runtime_error("inner boom");
                            }
                          });
                        }),
      std::runtime_error);
  pool.wait_idle();  // pool healthy, no stray stashed error
}

// A throwing submit() task used to std::terminate the worker thread. Now the
// first exception is stashed and rethrown from wait_idle(), wrapped into the
// typed taxonomy when it is not already an HhError.
TEST(ThreadPool, ThrowingSubmitTaskSurfacesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() should rethrow the stashed task exception";
  } catch (const HhError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("task boom"), std::string::npos);
  }
  // The stash is consumed: the pool stays usable and idle-waits cleanly.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ThrowingSubmitTaskKeepsHhErrorType) {
  ThreadPool pool(2);
  pool.submit([] { throw DeviceError("kernel abort 7"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() should rethrow the stashed DeviceError";
  } catch (const DeviceError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeviceFault);
    EXPECT_NE(std::string(e.what()).find("kernel abort 7"),
              std::string::npos);
  }
}

TEST(ThreadPool, FirstStashedErrorWins) {
  ThreadPool pool(1);
  pool.submit([] { throw TransferError("first"); });
  pool.submit([] { throw DeviceError("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() should rethrow";
  } catch (const HhError& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
}

// Destroying a pool with an unreported stashed exception must not throw from
// the destructor (it logs instead).
TEST(ThreadPool, DestructionWithStashedErrorIsSafe) {
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never observed"); });
    // Give the worker a chance to run the task; destruction joins anyway.
  }
  SUCCEED();
}

}  // namespace
}  // namespace hh
