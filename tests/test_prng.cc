#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hh {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Prng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(9);
  int counts[5] = {0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.below(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Prng, BelowOneAlwaysZero) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, SplitMixAdvancesState) {
  std::uint64_t s = 5;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Prng, DistinctValuesProduced) {
  Xoshiro256 rng(123);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace hh
