#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hh {
namespace {

TEST(Csr, EmptyMatrixIsValid) {
  CsrMatrix m(4, 5);
  m.validate();
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.rows, 4);
  EXPECT_EQ(m.cols, 5);
}

TEST(Csr, DefaultConstructedIsValid) {
  CsrMatrix m;
  m.validate();
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Csr, IdentityShape) {
  const CsrMatrix i = csr_identity(5);
  i.validate();
  EXPECT_EQ(i.nnz(), 5);
  for (index_t r = 0; r < 5; ++r) {
    EXPECT_EQ(i.row_nnz(r), 1);
    EXPECT_EQ(i.row_indices(r)[0], r);
    EXPECT_DOUBLE_EQ(i.row_values(r)[0], 1.0);
  }
}

TEST(Csr, FromTripletsSortsWithinRows) {
  const std::vector<index_t> r{0, 0, 1, 1};
  const std::vector<index_t> c{2, 0, 1, 0};
  const std::vector<value_t> v{1, 2, 3, 4};
  const CsrMatrix m = csr_from_triplets(2, 3, r, c, v);
  m.validate();
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.row_indices(0)[0], 0);
  EXPECT_EQ(m.row_indices(0)[1], 2);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(m.row_values(0)[1], 1.0);
}

TEST(Csr, FromTripletsSumsDuplicates) {
  const std::vector<index_t> r{0, 0, 0};
  const std::vector<index_t> c{1, 1, 1};
  const std::vector<value_t> v{1, 2, 3};
  const CsrMatrix m = csr_from_triplets(1, 2, r, c, v);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.values[0], 6.0);
}

TEST(Csr, FromTripletsRejectsOutOfRange) {
  const std::vector<index_t> r{0};
  const std::vector<index_t> c{5};
  const std::vector<value_t> v{1};
  EXPECT_THROW(csr_from_triplets(1, 3, r, c, v), CheckError);
}

TEST(Csr, ValidateCatchesBadIndptr) {
  CsrMatrix m(2, 2);
  m.indptr = {0, 2, 1};
  m.indices = {0, 1};
  m.values = {1, 2};
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(Csr, ValidateCatchesColumnOutOfRange) {
  CsrMatrix m(1, 2);
  m.indptr = {0, 1};
  m.indices = {5};
  m.values = {1};
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(Csr, ValidateCatchesUnsortedRow) {
  CsrMatrix m(1, 3);
  m.indptr = {0, 2};
  m.indices = {2, 0};
  m.values = {1, 2};
  EXPECT_THROW(m.validate(true), CheckError);
  m.validate(false);  // unsorted allowed when not required
}

TEST(Csr, SortRowsFixesOrder) {
  CsrMatrix m(1, 3);
  m.indptr = {0, 3};
  m.indices = {2, 0, 1};
  m.values = {30, 10, 20};
  m.sort_rows();
  m.validate(true);
  EXPECT_EQ(m.indices[0], 0);
  EXPECT_DOUBLE_EQ(m.values[0], 10.0);
  EXPECT_EQ(m.indices[2], 2);
  EXPECT_DOUBLE_EQ(m.values[2], 30.0);
}

TEST(Csr, RowSpansMatchNnz) {
  const std::vector<index_t> r{0, 2, 2};
  const std::vector<index_t> c{1, 0, 2};
  const std::vector<value_t> v{1, 2, 3};
  const CsrMatrix m = csr_from_triplets(3, 3, r, c, v);
  EXPECT_EQ(m.row_nnz(0), 1);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_nnz(2), 2);
  EXPECT_EQ(m.row_indices(1).size(), 0u);
}

TEST(Csr, ByteSizeAccountsAllArrays) {
  const CsrMatrix i = csr_identity(10);
  EXPECT_EQ(i.byte_size(),
            11 * sizeof(offset_t) + 10 * sizeof(index_t) + 10 * sizeof(value_t));
}

TEST(Csr, SummaryMentionsShapeAndNnz) {
  const CsrMatrix i = csr_identity(3);
  EXPECT_EQ(i.summary(), "3x3, nnz=3");
}

}  // namespace
}  // namespace hh
