#include "sparse/dense.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hh {
namespace {

TEST(Dense, ConstructionZeroFilled) {
  DenseMatrix m(3, 4);
  m.validate();
  EXPECT_EQ(m.data.size(), 12u);
  for (const value_t x : m.data) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Dense, AtIsRowMajor) {
  DenseMatrix m(2, 3);
  m.at(1, 2) = 7.5;
  EXPECT_DOUBLE_EQ(m.data[5], 7.5);
  const DenseMatrix& cm = m;
  EXPECT_DOUBLE_EQ(cm.at(1, 2), 7.5);
}

TEST(Dense, ValidateCatchesCorruption) {
  DenseMatrix m(2, 2);
  m.data.pop_back();
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(Dense, RandomDeterministic) {
  const DenseMatrix a = random_dense(5, 5, 9);
  const DenseMatrix b = random_dense(5, 5, 9);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
  const DenseMatrix c = random_dense(5, 5, 10);
  EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(Dense, RandomInRange) {
  const DenseMatrix a = random_dense(10, 10, 3);
  for (const value_t x : a.data) {
    EXPECT_GE(x, 0.5);
    EXPECT_LT(x, 1.5);
  }
}

TEST(Dense, MaxAbsDiffRequiresSameShape) {
  const DenseMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(max_abs_diff(a, b), CheckError);
}

}  // namespace
}  // namespace hh
