#include "core/threshold.hpp"

#include <gtest/gtest.h>

#include "gen/datasets.hpp"
#include "gen/powerlaw_gen.hpp"
#include "sparse/row_stats.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(ThresholdCandidates, AscendingAndDeduplicated) {
  const CsrMatrix m = test::random_csr(100, 100, 0.1, 61);
  const auto cand = threshold_candidates(m);
  ASSERT_FALSE(cand.empty());
  for (std::size_t i = 1; i < cand.size(); ++i) {
    EXPECT_LT(cand[i - 1], cand[i]);
  }
  EXPECT_GE(cand.front(), 2);
}

TEST(ThresholdCandidates, CoversRowSizeRange) {
  PowerLawGenConfig cfg;
  cfg.rows = 3000;
  cfg.alpha = 2.3;
  cfg.target_nnz = 15000;
  cfg.seed = 62;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  const auto cand = threshold_candidates(m);
  const RowStats s = row_stats(m);
  EXPECT_LE(cand.front(), s.min + 2);
  EXPECT_GE(cand.back(), s.max);  // largest candidate empties A_H
}

TEST(ThresholdCandidates, RespectsMaxCount) {
  const CsrMatrix m = test::random_csr(200, 200, 0.2, 63);
  EXPECT_LE(threshold_candidates(m, 5).size(), 5u);
  EXPECT_THROW(threshold_candidates(m, 1), CheckError);
}

TEST(Threshold, PredictionsPositive) {
  const CsrMatrix m = make_dataset(dataset_spec("wiki-Vote"), 0.1);
  const HeteroPlatform plat;
  for (const offset_t t : threshold_candidates(m)) {
    EXPECT_GT(predict_total_time(m, m, t, plat), 0.0);
  }
}

TEST(Threshold, AnalyticPickIsArgminOfPrediction) {
  const CsrMatrix m = make_dataset(dataset_spec("ca-CondMat"), 0.1);
  const HeteroPlatform plat;
  const ThresholdChoice choice = pick_threshold_analytic(m, m, plat);
  for (const offset_t t : threshold_candidates(m)) {
    EXPECT_LE(choice.predicted_s, predict_total_time(m, m, t, plat) + 1e-12);
  }
}

TEST(Threshold, EmpiricalPickBeatsOrMatchesEveryCandidate) {
  const CsrMatrix m = make_dataset(dataset_spec("wiki-Vote"), 0.06);
  const HeteroPlatform plat;
  ThreadPool pool(1);
  const ThresholdChoice choice = pick_threshold_empirical(m, m, plat, pool);
  EXPECT_GT(choice.t, 0);
  EXPECT_GT(choice.predicted_s, 0.0);
}

}  // namespace
}  // namespace hh
