#include "core/threshold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/hh_cpu.hpp"
#include "gen/datasets.hpp"
#include "gen/powerlaw_gen.hpp"
#include "sparse/row_stats.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(ThresholdCandidates, AscendingAndDeduplicated) {
  const CsrMatrix m = test::random_csr(100, 100, 0.1, 61);
  const auto cand = threshold_candidates(m);
  ASSERT_FALSE(cand.empty());
  for (std::size_t i = 1; i < cand.size(); ++i) {
    EXPECT_LT(cand[i - 1], cand[i]);
  }
  EXPECT_GE(cand.front(), 2);
}

TEST(ThresholdCandidates, CoversRowSizeRange) {
  PowerLawGenConfig cfg;
  cfg.rows = 3000;
  cfg.alpha = 2.3;
  cfg.target_nnz = 15000;
  cfg.seed = 62;
  const CsrMatrix m = generate_power_law_matrix(cfg);
  const auto cand = threshold_candidates(m);
  const RowStats s = row_stats(m);
  EXPECT_LE(cand.front(), s.min + 2);
  EXPECT_GE(cand.back(), s.max);  // largest candidate empties A_H
}

TEST(ThresholdCandidates, RespectsMaxCount) {
  const CsrMatrix m = test::random_csr(200, 200, 0.2, 63);
  EXPECT_LE(threshold_candidates(m, 5).size(), 5u);
  EXPECT_THROW(threshold_candidates(m, 1), CheckError);
}

TEST(ThresholdCandidates, EmptyMatrixGetsMinimalGrid) {
  // No rows / no nonzeros: the grid must still be non-empty, ascending and
  // free of degenerate t <= 1 entries (t = 0 means "pick analytically" to
  // every caller, so a 0 candidate would be self-referential).
  const CsrMatrix none = csr_from_triplets(5, 5, std::vector<index_t>{},
                                           std::vector<index_t>{},
                                           std::vector<value_t>{});
  const auto cand = threshold_candidates(none);
  ASSERT_FALSE(cand.empty());
  EXPECT_GE(cand.front(), 2);
  for (std::size_t i = 1; i < cand.size(); ++i) {
    EXPECT_LT(cand[i - 1], cand[i]);
  }

  CsrMatrix zero_rows;
  zero_rows.rows = 0;
  zero_rows.cols = 4;
  zero_rows.indptr = {0};
  const auto cand0 = threshold_candidates(zero_rows);
  ASSERT_FALSE(cand0.empty());
  EXPECT_GE(cand0.front(), 2);
}

TEST(ThresholdCandidates, AllEqualRowLengthsGetValidGrid) {
  // Every row has exactly 3 nonzeros: min == max, so the log-spaced span
  // collapses. The grid must still be non-empty, strictly ascending, and
  // hold at least one candidate on each side of the (degenerate) row size
  // so both "all H" and "all L" splits stay reachable.
  std::vector<index_t> r, c;
  std::vector<value_t> v;
  for (index_t i = 0; i < 40; ++i) {
    for (index_t k = 0; k < 3; ++k) {
      r.push_back(i);
      c.push_back((i + k * 7) % 40);
      v.push_back(1.0);
    }
  }
  const CsrMatrix m = csr_from_triplets(40, 40, r, c, v);
  const auto cand = threshold_candidates(m);
  ASSERT_GE(cand.size(), 2u);
  EXPECT_GE(cand.front(), 2);
  for (std::size_t i = 1; i < cand.size(); ++i) {
    EXPECT_LT(cand[i - 1], cand[i]);
  }
  EXPECT_GT(cand.back(), 3);  // one candidate classifies every row as L
}

TEST(ThresholdGrid, UnionOfBothOperandsGrids) {
  const CsrMatrix a = test::random_csr(150, 150, 0.05, 64);
  const CsrMatrix b = test::random_csr(150, 150, 0.2, 65);
  const auto grid = threshold_grid(a, b);
  ASSERT_FALSE(grid.empty());
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
  // Every single-operand candidate appears in the union.
  for (const offset_t t : threshold_candidates(a)) {
    EXPECT_NE(std::find(grid.begin(), grid.end(), t), grid.end());
  }
  for (const offset_t t : threshold_candidates(b)) {
    EXPECT_NE(std::find(grid.begin(), grid.end(), t), grid.end());
  }
}

TEST(Threshold, PredictionsPositive) {
  const CsrMatrix m = make_dataset(dataset_spec("wiki-Vote"), 0.1);
  const HeteroPlatform plat;
  for (const offset_t t : threshold_candidates(m)) {
    EXPECT_GT(predict_total_time(m, m, t, plat), 0.0);
  }
}

TEST(Threshold, AnalyticPickIsArgminOfPrediction) {
  const CsrMatrix m = make_dataset(dataset_spec("ca-CondMat"), 0.1);
  const HeteroPlatform plat;
  const ThresholdChoice choice = pick_threshold_analytic(m, m, plat);
  for (const offset_t t : threshold_candidates(m)) {
    EXPECT_LE(choice.predicted_s, predict_total_time(m, m, t, plat) + 1e-12);
  }
}

TEST(Threshold, EmpiricalPickBeatsOrMatchesEveryCandidate) {
  const CsrMatrix m = make_dataset(dataset_spec("wiki-Vote"), 0.06);
  const HeteroPlatform plat;
  ThreadPool pool(1);
  const ThresholdChoice choice = pick_threshold_empirical(m, m, plat, pool);
  EXPECT_GT(choice.t, 0);
  EXPECT_GT(choice.predicted_s, 0.0);
}

TEST(Threshold, SweepMatchesPredictionsAndAnalyticPick) {
  const CsrMatrix m = make_dataset(dataset_spec("wiki-Vote"), 0.08);
  const HeteroPlatform plat;
  const ThresholdSweep sweep = sweep_thresholds(m, m, plat);
  ASSERT_EQ(sweep.grid.size(), sweep.predicted_s.size());
  ASSERT_LT(sweep.best, sweep.grid.size());
  for (std::size_t i = 0; i < sweep.grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(sweep.predicted_s[i],
                     predict_total_time(m, m, sweep.grid[i], plat));
    EXPECT_LE(sweep.predicted_s[sweep.best], sweep.predicted_s[i]);
  }
  const ThresholdChoice analytic = pick_threshold_analytic(m, m, plat);
  EXPECT_EQ(analytic.t, sweep.choice().t);
  EXPECT_DOUBLE_EQ(analytic.predicted_s, sweep.choice().predicted_s);
}

TEST(Threshold, IdentityCorrectionIsBitExact) {
  // A default CostCorrection must reproduce the uncorrected prediction to
  // the last bit — the tuner relies on this to leave untouched services
  // byte-identical.
  const CsrMatrix m = make_dataset(dataset_spec("ca-CondMat"), 0.08);
  const HeteroPlatform plat;
  const CostCorrection identity;
  ASSERT_TRUE(identity.is_identity());
  for (const offset_t t : threshold_grid(m, m)) {
    EXPECT_EQ(predict_total_time(m, m, t, plat),
              predict_total_time(m, m, t, plat, identity));
  }
  // A non-identity correction moves the prediction for the device it scales.
  CostCorrection slow_gpu;
  slow_gpu.gpu = 2.0;
  bool any_changed = false;
  for (const offset_t t : threshold_grid(m, m)) {
    any_changed |= predict_total_time(m, m, t, plat, slow_gpu) !=
                   predict_total_time(m, m, t, plat);
  }
  EXPECT_TRUE(any_changed);
}

// Property (paper §III-A vs §VI): on generated scale-free matrices the
// analytic pick's *measured* total must land within a modest envelope of the
// best measured total over the whole candidate grid — the empirical pick of
// the paper's offline sweep. The analytic model can miss the argmin (that is
// why the online tuner exists) but must never pick catastrophically.
TEST(Threshold, AnalyticPickWithinMeasuredEnvelopeOfEmpirical) {
  const HeteroPlatform plat;
  ThreadPool pool(0);
  const struct {
    index_t rows;
    std::int64_t nnz;
    double alpha;
    std::uint64_t seed;
  } cases[] = {
      {900, 7200, 2.1, 71}, {1200, 9600, 2.7, 72}, {1000, 8000, 3.3, 73},
  };
  for (const auto& c : cases) {
    PowerLawGenConfig cfg;
    cfg.rows = c.rows;
    cfg.target_nnz = c.nnz;
    cfg.alpha = c.alpha;
    cfg.seed = c.seed;
    const CsrMatrix m = generate_power_law_matrix(cfg);
    const ThresholdSweep sweep = sweep_thresholds(m, m, plat);

    const auto measured_total = [&](offset_t t) {
      HhCpuOptions opt;
      opt.threshold_a = t;
      opt.threshold_b = t;
      const RunReport r = run_hh_cpu(m, m, opt, plat, pool).report;
      return r.phase2_s + r.phase3_s + r.phase4_s + r.transfer_out_s;
    };
    double best_measured = std::numeric_limits<double>::infinity();
    for (const offset_t t : sweep.grid) {
      best_measured = std::min(best_measured, measured_total(t));
    }
    const double analytic_measured = measured_total(sweep.choice().t);
    EXPECT_LE(analytic_measured, best_measured * 1.25)
        << "alpha=" << c.alpha << " seed=" << c.seed
        << ": analytic t=" << sweep.choice().t << " measures "
        << analytic_measured << " vs best " << best_measured;
  }
}

}  // namespace
}  // namespace hh
