// Shared helpers for the test suite: small deterministic random matrices and
// a dense-reference comparison that tolerates explicit zeros.
#pragma once

#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "sparse/equality.hpp"
#include "spgemm/reference.hpp"
#include "util/prng.hpp"

namespace hh::test {

/// Random CSR with each entry present independently with probability
/// `density` and value in [0.5, 1.5]. Deterministic in seed.
inline CsrMatrix random_csr(index_t rows, index_t cols, double density,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  CsrMatrix m(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.uniform() < density) {
        m.indices.push_back(c);
        m.values.push_back(0.5 + rng.uniform());
      }
    }
    m.indptr[r + 1] = static_cast<offset_t>(m.indices.size());
  }
  return m;
}

/// EXPECT that `got` equals the dense-reference product of a and b.
inline void expect_matches_reference(const CsrMatrix& a, const CsrMatrix& b,
                                     const CsrMatrix& got,
                                     const char* label = "product") {
  const CsrMatrix want = reference_multiply_dense(a, b);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-9, &why)) << label << ": " << why;
}

}  // namespace hh::test
