#include "gen/datasets.hpp"

#include <gtest/gtest.h>

#include "powerlaw/fit.hpp"
#include "sparse/row_stats.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(Datasets, TableHasTwelveEntries) {
  EXPECT_EQ(table1_datasets().size(), 12u);
}

TEST(Datasets, SpecLookup) {
  const DatasetSpec& s = dataset_spec("webbase-1M");
  EXPECT_EQ(s.rows, 1000005);
  EXPECT_EQ(s.nnz, 3105536);
  EXPECT_DOUBLE_EQ(s.alpha, 2.1);
  EXPECT_THROW(dataset_spec("no-such-matrix"), CheckError);
}

TEST(Datasets, AnalogueMatchesRowAndNnzBudget) {
  const DatasetSpec& spec = dataset_spec("ca-CondMat");
  const CsrMatrix m = make_dataset(spec, 0.5);
  m.validate(true);
  EXPECT_NEAR(static_cast<double>(m.rows), spec.rows * 0.5, spec.rows * 0.02);
  EXPECT_NEAR(static_cast<double>(m.nnz()), static_cast<double>(spec.nnz) * 0.5,
              static_cast<double>(spec.nnz) * 0.5 * 0.3);
}

TEST(Datasets, ScaleFreeAnalogueHasHeavyTail) {
  const CsrMatrix m = make_dataset(dataset_spec("webbase-1M"), 0.02);
  const RowStats s = row_stats(m);
  EXPECT_GT(static_cast<double>(s.max), 15.0 * s.mean);
}

TEST(Datasets, NonScaleFreeAnalogueIsNarrow) {
  const CsrMatrix m = make_dataset(dataset_spec("roadNet-CA"), 0.02);
  const RowStats s = row_stats(m);
  EXPECT_LT(static_cast<double>(s.max), 10.0 * s.mean);
}

TEST(Datasets, FittedAlphaOrdersWithSpecAlpha) {
  // The webbase analogue (α = 2.1) must fit a visibly smaller exponent than
  // the dblp2010 analogue (α = 5.79).
  const CsrMatrix low = make_dataset(dataset_spec("webbase-1M"), 0.02);
  const CsrMatrix high = make_dataset(dataset_spec("dblp2010"), 0.06);
  const double alpha_low = fit_power_law(row_nnz_vector(low)).alpha;
  const double alpha_high = fit_power_law(row_nnz_vector(high)).alpha;
  EXPECT_LT(alpha_low, alpha_high);
}

TEST(Datasets, DeterministicPerName) {
  const CsrMatrix a = make_dataset(dataset_spec("wiki-Vote"), 0.5);
  const CsrMatrix b = make_dataset(dataset_spec("wiki-Vote"), 0.5);
  EXPECT_EQ(a.indices, b.indices);
  const CsrMatrix c = make_dataset(dataset_spec("wiki-Vote"), 0.5, /*salt=*/1);
  EXPECT_NE(a.indices, c.indices);
}

TEST(Datasets, RejectsBadScale) {
  EXPECT_THROW(make_dataset(dataset_spec("wiki-Vote"), 0.0), CheckError);
  EXPECT_THROW(make_dataset(dataset_spec("wiki-Vote"), 1.5), CheckError);
}

TEST(Datasets, DefaultBenchScaleInRange) {
  const double s = default_bench_scale();
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace hh
