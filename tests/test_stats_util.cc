#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hh {
namespace {

TEST(Stats, Mean) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfSingle) {
  const std::vector<double> xs{7};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
}

TEST(Stats, MeanEmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), CheckError);
}

// The Summary ingredients are total over empty samples (a merged group
// report can legitimately aggregate a shard that contributed zero samples);
// mean/geomean above keep their throwing contract.
TEST(Stats, SummaryIngredientsAreTotalOverEmptySamples) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(median(none), 0.0);
  EXPECT_DOUBLE_EQ(stddev(none), 0.0);
  EXPECT_DOUBLE_EQ(min_of(none), 0.0);
  EXPECT_DOUBLE_EQ(max_of(none), 0.0);
  EXPECT_DOUBLE_EQ(percentile(none, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(none, 0.99), 0.0);
  const Summary s = summarize(none);
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Stats, StddevOfSingleSampleIsZero) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1, 4};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanRequiresPositive) {
  const std::vector<double> xs{1, -4};
  EXPECT_THROW(geomean(xs), CheckError);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, Stddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 9, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Stats, SummaryEmptyIsZero) {
  const std::vector<double> xs;
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

// ------------------------------------------------- nearest-rank percentile

TEST(Stats, PercentileSingleElementAnswersEveryQ) {
  const std::vector<double> xs{42};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.01), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.50), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.00), 42.0);
}

TEST(Stats, PercentileTwoElements) {
  // rank = ceil(q * 2): q <= 0.5 picks the smaller, q > 0.5 the larger.
  const std::vector<double> xs{7, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.51), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.95), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.00), 7.0);
}

TEST(Stats, PercentileFullQuantileIsMax) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Stats, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, PercentileRejectsOutOfRangeQ) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(percentile(xs, 0.0), CheckError);
  EXPECT_THROW(percentile(xs, 1.5), CheckError);
}

TEST(Stats, PercentileSortsUnsortedInput) {
  const std::vector<double> xs{9, 1, 8, 2, 7, 3, 6, 4, 5, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.90), 9.0);  // rank ceil(9) = 9th of 10
  EXPECT_DOUBLE_EQ(percentile(xs, 0.95), 10.0);
}

TEST(Stats, PercentileSortedAgreesWithPercentile) {
  const std::vector<double> sorted{1, 2, 3, 4, 5, 6, 7, 8};
  for (const double q : {0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(sorted, q));
  }
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_LE(s.median, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

}  // namespace
}  // namespace hh
