#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace hh {
namespace {

TEST(Stats, Mean) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfSingle) {
  const std::vector<double> xs{7};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0);
}

TEST(Stats, MeanEmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), CheckError);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1, 4};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanRequiresPositive) {
  const std::vector<double> xs{1, -4};
  EXPECT_THROW(geomean(xs), CheckError);
}

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, MedianEven) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, Stddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 9, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Stats, SummaryEmptyIsZero) {
  const std::vector<double> xs;
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace hh
