#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/equality.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

TEST(Coo, PushAndValidate) {
  CooMatrix c(3, 3);
  c.push(0, 1, 2.0);
  c.push(2, 2, 3.0);
  c.validate();
  EXPECT_EQ(c.nnz(), 2u);
}

TEST(Coo, ValidateCatchesOutOfRange) {
  CooMatrix c(2, 2);
  c.push(0, 5, 1.0);
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(Coo, AppendConcatenates) {
  CooMatrix a(2, 2), b(2, 2);
  a.push(0, 0, 1.0);
  b.push(1, 1, 2.0);
  a.append(b);
  EXPECT_EQ(a.nnz(), 2u);
}

TEST(Coo, AppendRejectsShapeMismatch) {
  CooMatrix a(2, 2), b(3, 2);
  EXPECT_THROW(a.append(b), CheckError);
}

TEST(Convert, CsrCooRoundTrip) {
  const CsrMatrix m = test::random_csr(20, 15, 0.2, 77);
  const CsrMatrix back = coo_to_csr(csr_to_coo(m));
  std::string why;
  EXPECT_TRUE(approx_equal(m, back, 1e-12, &why)) << why;
}

TEST(Convert, CooToCsrSumsDuplicates) {
  CooMatrix c(2, 2);
  c.push(0, 1, 1.0);
  c.push(0, 1, 2.5);
  const CsrMatrix m = coo_to_csr(c);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.values[0], 3.5);
}

TEST(Convert, TransposeTwiceIsIdentity) {
  const CsrMatrix m = test::random_csr(12, 18, 0.3, 5);
  const CsrMatrix tt = transpose(transpose(m));
  std::string why;
  EXPECT_TRUE(approx_equal(m, tt, 1e-12, &why)) << why;
}

TEST(Convert, TransposeMovesEntries) {
  const std::vector<index_t> r{0, 1};
  const std::vector<index_t> c{2, 0};
  const std::vector<value_t> v{5.0, 7.0};
  const CsrMatrix m = csr_from_triplets(2, 3, r, c, v);
  const CsrMatrix t = transpose(m);
  t.validate();
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  EXPECT_EQ(t.row_nnz(2), 1);
  EXPECT_EQ(t.row_indices(2)[0], 0);
  EXPECT_DOUBLE_EQ(t.row_values(2)[0], 5.0);
}

TEST(Convert, TransposeRowsSorted) {
  const CsrMatrix m = test::random_csr(30, 30, 0.25, 11);
  transpose(m).validate(true);
}

TEST(Convert, MaskRowsKeepsSelected) {
  const CsrMatrix m = test::random_csr(5, 5, 0.5, 3);
  const std::vector<std::uint8_t> keep{1, 0, 1, 0, 0};
  const CsrMatrix masked = mask_rows(m, keep);
  masked.validate();
  EXPECT_EQ(masked.row_nnz(0), m.row_nnz(0));
  EXPECT_EQ(masked.row_nnz(1), 0);
  EXPECT_EQ(masked.row_nnz(2), m.row_nnz(2));
  EXPECT_EQ(masked.row_nnz(3), 0);
}

TEST(Convert, MaskRowsRequiresMatchingSize) {
  const CsrMatrix m = test::random_csr(5, 5, 0.5, 3);
  const std::vector<std::uint8_t> keep{1, 0};
  EXPECT_THROW(mask_rows(m, keep), CheckError);
}

}  // namespace
}  // namespace hh
