#include "core/report.hpp"

#include <gtest/gtest.h>

namespace hh {
namespace {

TEST(Report, ToStringContainsKeyFields) {
  RunReport r;
  r.algorithm = "HH-CPU";
  r.total_s = 0.123;
  r.phase1_s = 0.001;
  r.phase2_s = 0.05;
  r.phase3_s = 0.06;
  r.phase4_s = 0.002;
  r.threshold_a = 42;
  r.threshold_b = 43;
  r.high_rows_a = 7;
  r.flops = 1000;
  r.output_nnz = 900;
  r.merge.tuples_in = 1100;
  r.merge.tuples_out = 900;
  const std::string s = r.to_string();
  EXPECT_NE(s.find("HH-CPU"), std::string::npos);
  EXPECT_NE(s.find("123.000 ms"), std::string::npos);
  EXPECT_NE(s.find("t_A=42"), std::string::npos);
  EXPECT_NE(s.find("phase III"), std::string::npos);
  EXPECT_NE(s.find("1100 tuples -> 900"), std::string::npos);
  EXPECT_NE(s.find("output nnz 900"), std::string::npos);
}

TEST(Report, ToJsonRoundTripsKeyFields) {
  RunReport r;
  r.algorithm = "HH-CPU";
  r.total_s = 0.125;  // exactly representable
  r.threshold_a = 42;
  r.flops = 1000;
  r.output_nnz = 900;
  r.merge.tuples_in = 1100;
  r.merge.tuples_out = 900;
  r.queue_cpu_units = 3;
  const std::string j = r.to_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"algorithm\":\"HH-CPU\""), std::string::npos);
  EXPECT_NE(j.find("\"total_s\":0.125"), std::string::npos);
  EXPECT_NE(j.find("\"threshold_a\":42"), std::string::npos);
  EXPECT_NE(j.find("\"flops\":1000"), std::string::npos);
  EXPECT_NE(j.find("\"merge_tuples_in\":1100"), std::string::npos);
  EXPECT_NE(j.find("\"queue_cpu_units\":3"), std::string::npos);
  EXPECT_EQ(j.find('\n'), std::string::npos);  // single line
}

TEST(Report, ToJsonEscapesAlgorithmName) {
  RunReport r;
  r.algorithm = "a\"b\\c";
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"algorithm\":\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(Report, DefaultsAreZero) {
  const RunReport r;
  EXPECT_DOUBLE_EQ(r.total_s, 0);
  EXPECT_EQ(r.output_nnz, 0);
  EXPECT_EQ(r.queue_cpu_units, 0);
}

}  // namespace
}  // namespace hh
