// Property tests for the ResourceTimeline insertion scheduler: whatever the
// reserve() sequence, spans on one resource never overlap, gaps stay
// consistent with occupancy, and zero-duration stages are stamped at the
// resource's true availability (never inside an occupied window).
#include "runtime/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/prng.hpp"

namespace hh {
namespace {

constexpr double kEps = 1e-12;

struct Placed {
  StageSpan span;
  double earliest;
};

// Drive one timeline with a random reserve() sequence and return the spans.
std::vector<Placed> random_schedule(ResourceTimeline& t, std::uint64_t seed,
                                    int n) {
  Xoshiro256 rng(seed);
  std::vector<Placed> placed;
  placed.reserve(static_cast<std::size_t>(n));
  double horizon = 0;
  for (int i = 0; i < n; ++i) {
    const double earliest = rng.uniform() * std::max(horizon, 1.0);
    // ~1 in 5 stages is instantaneous, the rest up to 0.3 "seconds".
    const double duration = rng.below(5) == 0 ? 0.0 : rng.uniform() * 0.3;
    const StageSpan s = t.reserve("stage", earliest, duration);
    placed.push_back({s, earliest});
    horizon = std::max(horizon, s.end_s);
  }
  return placed;
}

TEST(TimelineProperty, PositiveSpansNeverOverlap) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    ResourceTimeline t;
    const auto placed = random_schedule(t, seed, 200);
    std::vector<StageSpan> spans;
    for (const Placed& p : placed) {
      if (p.span.duration_s() > 0) spans.push_back(p.span);
    }
    std::sort(spans.begin(), spans.end(),
              [](const StageSpan& a, const StageSpan& b) {
                return a.start_s < b.start_s;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].start_s, spans[i - 1].end_s - kEps)
          << "seed " << seed << ": spans " << i - 1 << " and " << i
          << " overlap";
    }
  }
}

TEST(TimelineProperty, SpansRespectEarliestAndBusyAddsUp) {
  for (const std::uint64_t seed : {3ull, 99ull, 2026ull}) {
    ResourceTimeline t;
    const auto placed = random_schedule(t, seed, 150);
    double total = 0;
    double last_end = 0;
    for (const Placed& p : placed) {
      EXPECT_GE(p.span.start_s, p.earliest - kEps);
      total += p.span.duration_s();
      last_end = std::max(last_end, p.span.end_s);
    }
    EXPECT_NEAR(t.busy(), total, 1e-9);
    EXPECT_NEAR(t.now(), last_end, 1e-9);
    EXPECT_LE(t.busy(), t.now() + kEps);  // can't be busier than the clock
  }
}

TEST(TimelineProperty, ZeroDurationNeverInsideOccupiedWindow) {
  // An instantaneous stage must not be stamped strictly inside any window
  // that was already occupied when it was placed (an instant reserves
  // nothing, so later stages may legitimately backfill over its timestamp).
  for (const std::uint64_t seed : {5ull, 17ull, 4321ull}) {
    ResourceTimeline t;
    const auto placed = random_schedule(t, seed, 200);
    for (std::size_t zi = 0; zi < placed.size(); ++zi) {
      const Placed& z = placed[zi];
      if (z.span.duration_s() > 0) continue;
      for (std::size_t si = 0; si < zi; ++si) {
        const Placed& s = placed[si];
        if (s.span.duration_s() <= 0) continue;
        const bool strictly_inside = z.span.start_s > s.span.start_s + kEps &&
                                     z.span.start_s < s.span.end_s - kEps;
        EXPECT_FALSE(strictly_inside)
            << "seed " << seed << ": instantaneous stage at "
            << z.span.start_s << " inside [" << s.span.start_s << ", "
            << s.span.end_s << "]";
      }
    }
  }
}

TEST(TimelineProperty, DeterministicAcrossRuns) {
  ResourceTimeline t1, t2;
  const auto a = random_schedule(t1, 77, 120);
  const auto b = random_schedule(t2, 77, 120);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].span.start_s, b[i].span.start_s);
    EXPECT_DOUBLE_EQ(a[i].span.end_s, b[i].span.end_s);
  }
}

TEST(TimelineProperty, BackfillSplitsGapsConsistently) {
  ResourceTimeline t;
  t.reserve("a", 0.0, 1.0);    // [0, 1]
  t.reserve("b", 5.0, 1.0);    // [5, 6], gap [1, 5]
  const StageSpan mid = t.reserve("mid", 2.0, 1.0);  // splits the gap
  EXPECT_DOUBLE_EQ(mid.start_s, 2.0);
  // The two half-gaps [1, 2] and [3, 5] must both still be usable.
  const StageSpan left = t.reserve("left", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(left.start_s, 1.0);
  const StageSpan right = t.reserve("right", 0.0, 2.0);
  EXPECT_DOUBLE_EQ(right.start_s, 3.0);
  EXPECT_DOUBLE_EQ(t.busy(), 6.0);
  EXPECT_DOUBLE_EQ(t.now(), 6.0);
}

TEST(TimelineProperty, AvailableAtMatchesZeroDurationPlacement) {
  for (const std::uint64_t seed : {11ull, 311ull}) {
    ResourceTimeline t;
    random_schedule(t, seed, 100);
    Xoshiro256 rng(seed ^ 0xabcdef);
    for (int i = 0; i < 50; ++i) {
      const double ask = rng.uniform() * (t.now() * 1.2);
      const double avail = t.available_at(ask);
      EXPECT_GE(avail, ask - kEps);
      const StageSpan z = t.reserve("probe", ask, 0.0);
      EXPECT_DOUBLE_EQ(z.start_s, avail);
      EXPECT_DOUBLE_EQ(z.end_s, avail);
    }
  }
}

TEST(Timeline, RecordsPlacementsIntoAttachedTrace) {
  if (!TraceRecorder::compiled_in()) {
    GTEST_SKIP() << "built with HH_TRACE=OFF";
  }
  TraceRecorder rec;
  rec.enable();
  ASSERT_TRUE(rec.enabled());
  ResourceTimeline gpu(Resource::kGpu, &rec);
  ResourceTimeline h2d(Resource::kH2D, &rec);
  rec.begin_request(3);
  const StageSpan up = h2d.reserve("upload", 0.0, 0.5);
  const StageSpan k = gpu.reserve("kernel", up.end_s, 1.0);
  rec.end_request();
  gpu.reserve("untagged", 0.0, 0.25);  // no request in scope

  ASSERT_EQ(rec.events().size(), 3u);
  const TraceEvent& e0 = rec.events()[0];
  EXPECT_EQ(e0.kind, TraceEventKind::kSpan);
  EXPECT_EQ(e0.category, TraceCategory::kTransfer);
  EXPECT_EQ(e0.resource, Resource::kH2D);
  EXPECT_EQ(e0.request_id, 3u);
  EXPECT_DOUBLE_EQ(e0.start_s, up.start_s);
  EXPECT_DOUBLE_EQ(e0.end_s, up.end_s);
  const TraceEvent& e1 = rec.events()[1];
  EXPECT_EQ(e1.category, TraceCategory::kCompute);
  EXPECT_DOUBLE_EQ(e1.requested_s, up.end_s);  // dependence-allowed start
  EXPECT_DOUBLE_EQ(e1.start_s, k.start_s);
  EXPECT_EQ(rec.events()[2].request_id, kNoRequest);
}

TEST(Timeline, NullTraceRecordsNothing) {
  TraceRecorder rec;  // never enabled
  ResourceTimeline t(Resource::kCpu, &rec);
  t.reserve("a", 0.0, 1.0);
  EXPECT_TRUE(rec.events().empty());
}

}  // namespace
}  // namespace hh
