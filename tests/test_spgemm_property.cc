// Property-based sweep: every kernel must agree with the dense reference on
// a grid of shapes × densities, plus algebraic identities that any correct
// SpGEMM satisfies.
#include <gtest/gtest.h>

#include <tuple>

#include "gen/powerlaw_gen.hpp"
#include "sparse/convert.hpp"
#include "spgemm/gustavson.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace hh {
namespace {

using Shape = std::tuple<int, int, int, double>;  // m, p, n, density

class SpgemmGrid
    : public testing::TestWithParam<std::tuple<Shape, SpgemmKind>> {};

TEST_P(SpgemmGrid, MatchesReference) {
  const auto& [shape, kind] = GetParam();
  const auto& [m, p, n, density] = shape;
  const CsrMatrix a = test::random_csr(m, p, density, 1000 + m * 7 + p);
  const CsrMatrix b = test::random_csr(p, n, density, 2000 + n * 13 + p);
  ThreadPool pool(2);
  test::expect_matches_reference(a, b, multiply(a, b, kind, pool));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndKinds, SpgemmGrid,
    testing::Combine(testing::Values(Shape{1, 1, 1, 1.0}, Shape{1, 8, 1, 0.5},
                                     Shape{8, 1, 8, 0.5}, Shape{16, 16, 16, 0.05},
                                     Shape{16, 16, 16, 0.3},
                                     Shape{33, 17, 9, 0.2},
                                     Shape{9, 17, 33, 0.2},
                                     Shape{40, 40, 40, 0.1}),
                     testing::Values(SpgemmKind::kGustavson, SpgemmKind::kHash,
                                     SpgemmKind::kHeap,
                                     SpgemmKind::kRowColumn)));

class AlgebraTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgebraTest, Associativity) {
  const std::uint64_t seed = GetParam();
  ThreadPool pool(2);
  const CsrMatrix a = test::random_csr(10, 12, 0.3, seed);
  const CsrMatrix b = test::random_csr(12, 9, 0.3, seed + 1);
  const CsrMatrix c = test::random_csr(9, 11, 0.3, seed + 2);
  const CsrMatrix left = gustavson_spgemm(gustavson_spgemm(a, b), c);
  const CsrMatrix right = gustavson_spgemm(a, gustavson_spgemm(b, c));
  // (AB)C and A(BC) agree where nonzero; both may carry explicit zeros from
  // cancellation, so compare after dropping tiny values.
  std::string why;
  EXPECT_TRUE(approx_equal(drop_small(left, 1e-12), drop_small(right, 1e-12),
                           1e-6, &why))
      << why;
}

TEST_P(AlgebraTest, TransposeAntiHomomorphism) {
  const std::uint64_t seed = GetParam();
  const CsrMatrix a = test::random_csr(10, 12, 0.3, seed + 5);
  const CsrMatrix b = test::random_csr(12, 9, 0.3, seed + 6);
  const CsrMatrix lhs = transpose(gustavson_spgemm(a, b));
  const CsrMatrix rhs = gustavson_spgemm(transpose(b), transpose(a));
  std::string why;
  EXPECT_TRUE(approx_equal(lhs, rhs, 1e-9, &why)) << why;
}

TEST_P(AlgebraTest, PowerLawSquareMatchesReference) {
  PowerLawGenConfig cfg;
  cfg.rows = 120;
  cfg.alpha = 2.5;
  cfg.target_nnz = 600;
  cfg.seed = GetParam();
  const CsrMatrix a = generate_power_law_matrix(cfg);
  test::expect_matches_reference(a, a, gustavson_spgemm(a, a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace hh
