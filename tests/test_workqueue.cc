#include "sched/workqueue.hpp"

#include <gtest/gtest.h>

#include "primitives/tuple_merge.hpp"
#include "sched/chunk.hpp"
#include "sparse/partition.hpp"
#include "spgemm/gustavson.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hh {
namespace {

class WorkQueueTest : public testing::Test {
 protected:
  WorkQueueTest() : a_(test::random_csr(200, 200, 0.05, 71)), pool_(2) {}
  CsrMatrix a_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(WorkQueueTest, ProcessesEveryRowExactlyOnce) {
  const auto entries = natural_order_entries(a_);
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  cfg.cpu_rows = 16;
  cfg.gpu_rows = 64;
  const WorkQueueResult r =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool_);
  EXPECT_EQ(r.cpu_stats.rows + r.gpu_stats.rows, a_.rows);
  const CsrMatrix got = merged_coo_to_csr(r.tuples);
  const CsrMatrix want = gustavson_spgemm(a_, a_);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-9, &why)) << why;
}

TEST_F(WorkQueueTest, BothDevicesParticipate) {
  const auto entries = natural_order_entries(a_);
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  cfg.cpu_rows = 16;
  cfg.gpu_rows = 16;
  const WorkQueueResult r =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool_);
  EXPECT_GT(r.cpu_units, 0);
  EXPECT_GT(r.gpu_units, 0);
  EXPECT_GT(r.cpu_busy, 0);
  EXPECT_GT(r.gpu_busy, 0);
}

TEST_F(WorkQueueTest, LateDeviceGetsLessWork) {
  const auto entries = natural_order_entries(a_);
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  cfg.cpu_rows = 16;
  cfg.gpu_rows = 16;
  const WorkQueueResult balanced =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool_);
  const WorkQueueResult gpu_late =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 1.0, plat_, pool_);
  EXPECT_LT(gpu_late.gpu_units, balanced.gpu_units);
  EXPECT_GT(gpu_late.cpu_units, balanced.cpu_units);
}

TEST_F(WorkQueueTest, VeryLateGpuMeansCpuDoesEverything) {
  const auto entries = natural_order_entries(a_);
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  cfg.cpu_rows = 50;
  cfg.gpu_rows = 50;
  const WorkQueueResult r =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 1e9, plat_, pool_);
  EXPECT_EQ(r.gpu_units, 0);
  EXPECT_EQ(r.cpu_stats.rows, a_.rows);
}

TEST_F(WorkQueueTest, DeterministicAcrossPoolSizes) {
  const auto entries = natural_order_entries(a_);
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  cfg.cpu_rows = 10;
  cfg.gpu_rows = 30;
  ThreadPool pool1(1), pool4(4);
  const WorkQueueResult x =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool1);
  const WorkQueueResult y =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool4);
  EXPECT_EQ(x.cpu_units, y.cpu_units);
  EXPECT_DOUBLE_EQ(x.cpu_busy, y.cpu_busy);
  EXPECT_EQ(x.tuples.r, y.tuples.r);
  EXPECT_EQ(x.tuples.v, y.tuples.v);
}

TEST_F(WorkQueueTest, TwoTagQueueUsesMasks) {
  // Front half ×B_H, back half ×B_L: together they cover the full product
  // restricted to the chosen rows.
  const RowPartition p = classify_rows(a_, 12);
  std::vector<WorkEntry> entries;
  append_entries(entries, p.low_rows, 0);
  append_entries(entries, p.high_rows, 1);
  const MaskSpec masks[2] = {{p.is_high, true, 100.0, true},
                             {p.is_high, false, 1e9, false}};
  WorkQueueConfig cfg;
  cfg.cpu_rows = 20;
  cfg.gpu_rows = 40;
  const WorkQueueResult r =
      run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool_);
  EXPECT_EQ(r.cpu_stats.rows + r.gpu_stats.rows,
            static_cast<std::int64_t>(entries.size()));
}

TEST_F(WorkQueueTest, EmptyQueueReturnsImmediately) {
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  const WorkQueueResult r =
      run_workqueue(a_, a_, {}, masks, cfg, 3.0, 5.0, plat_, pool_);
  EXPECT_EQ(r.cpu_units + r.gpu_units, 0);
  EXPECT_DOUBLE_EQ(r.end_time(), 5.0);
}

TEST_F(WorkQueueTest, RejectsBadTag) {
  const std::vector<WorkEntry> entries{{0, 3}};
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  WorkQueueConfig cfg;
  EXPECT_THROW(run_workqueue(a_, a_, entries, masks, cfg, 0, 0, plat_, pool_),
               CheckError);
}

TEST(WorkQueueConfigTest, AutoScalesWithInstance) {
  WorkQueueConfig cfg;  // cpu_rows = 0 → auto
  const WorkQueueConfig small = resolve_queue_config(cfg, 1000);
  EXPECT_EQ(small.cpu_rows, 16);  // clamped at the floor
  EXPECT_EQ(small.gpu_rows, 160);
  const WorkQueueConfig paper = resolve_queue_config(cfg, 160000);
  EXPECT_EQ(paper.cpu_rows, 1000);  // the paper's cpuRows at full size
  EXPECT_EQ(paper.gpu_rows, 10000);  // and gpuRows (§IV-B)
  WorkQueueConfig manual;
  manual.cpu_rows = 123;
  manual.gpu_rows = 456;
  const WorkQueueConfig kept = resolve_queue_config(manual, 1000000);
  EXPECT_EQ(kept.cpu_rows, 123);
  EXPECT_EQ(kept.gpu_rows, 456);
}

TEST(WorkQueueConfigTest, TinyInstancesStayWithinBounds) {
  // Regression: the auto clamp's 16-row floor used to exceed the instance
  // itself for a_rows < 16. Auto units must satisfy 1 <= cpu_rows <= a_rows
  // (when a_rows >= 1) and gpu_rows >= 1 for every size.
  WorkQueueConfig cfg;  // auto
  for (index_t rows : {0, 1, 2, 3, 7, 15, 16, 17}) {
    const WorkQueueConfig r = resolve_queue_config(cfg, rows);
    EXPECT_GE(r.cpu_rows, 1) << "a_rows=" << rows;
    EXPECT_GE(r.gpu_rows, 1) << "a_rows=" << rows;
    if (rows >= 1) {
      EXPECT_LE(r.cpu_rows, std::max<index_t>(rows, 1)) << "a_rows=" << rows;
    }
  }
  EXPECT_EQ(resolve_queue_config(cfg, 5).cpu_rows, 5);
  EXPECT_EQ(resolve_queue_config(cfg, 1).cpu_rows, 1);
}

TEST(WorkQueueConfigTest, TinyMatrixQueueRunsToCompletion) {
  // End-to-end on a 7-row instance: auto unit sizes must not starve either
  // end or drop rows.
  const CsrMatrix m = test::random_csr(7, 7, 0.4, 33);
  const auto entries = natural_order_entries(m);
  const MaskSpec masks[1] = {{{}, true, 0.0, false}};
  HeteroPlatform plat;
  ThreadPool pool(2);
  const WorkQueueResult r = run_workqueue(m, m, entries, masks,
                                          WorkQueueConfig{}, 0, 0, plat, pool);
  EXPECT_EQ(r.cpu_stats.rows + r.gpu_stats.rows, m.rows);
  const CsrMatrix got = merged_coo_to_csr(r.tuples);
  const CsrMatrix want = gustavson_spgemm(m, m);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-12, &why)) << why;
}

TEST(SortedEntries, DensestFirst) {
  const CsrMatrix m = test::random_csr(50, 50, 0.2, 81);
  const auto entries = sorted_by_density_entries(m);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(m.row_nnz(entries[i - 1].row), m.row_nnz(entries[i].row));
  }
}

}  // namespace
}  // namespace hh
