#include "primitives/tuple_merge.hpp"

#include <gtest/gtest.h>

#include "sparse/equality.hpp"
#include "test_util.hpp"
#include "util/prng.hpp"

namespace hh {
namespace {

TEST(TupleMerge, CombinesDuplicates) {
  CooMatrix coo(3, 3);
  coo.push(1, 2, 1.0);
  coo.push(0, 0, 5.0);
  coo.push(1, 2, 2.0);
  coo.push(1, 2, 4.0);
  MergeStats stats;
  const CsrMatrix m = merged_coo_to_csr(coo, &stats);
  m.validate(true);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(stats.tuples_in, 4);
  EXPECT_EQ(stats.tuples_out, 2);
  EXPECT_DOUBLE_EQ(m.row_values(1)[0], 7.0);
}

TEST(TupleMerge, EmptyInput) {
  CooMatrix coo(5, 5);
  MergeStats stats;
  const CsrMatrix m = merged_coo_to_csr(coo, &stats);
  m.validate();
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(stats.tuples_in, 0);
}

TEST(TupleMerge, MatchesTripletBuilder) {
  Xoshiro256 rng(55);
  CooMatrix coo(30, 30);
  std::vector<index_t> tr, tc;
  std::vector<value_t> tv;
  for (int i = 0; i < 500; ++i) {
    const auto r = static_cast<index_t>(rng.below(30));
    const auto c = static_cast<index_t>(rng.below(30));
    const value_t v = rng.uniform();
    coo.push(r, c, v);
    tr.push_back(r);
    tc.push_back(c);
    tv.push_back(v);
  }
  const CsrMatrix got = merged_coo_to_csr(coo);
  const CsrMatrix want = csr_from_triplets(30, 30, tr, tc, tv);
  std::string why;
  EXPECT_TRUE(approx_equal(want, got, 1e-9, &why)) << why;
}

TEST(TupleMerge, DeterministicAcrossPoolSizes) {
  Xoshiro256 rng(66);
  CooMatrix coo(40, 40);
  for (int i = 0; i < 2000; ++i) {
    coo.push(static_cast<index_t>(rng.below(40)),
             static_cast<index_t>(rng.below(40)), rng.uniform());
  }
  ThreadPool pool1(1), pool4(4);
  const CsrMatrix a = merged_coo_to_csr(coo, pool1);
  const CsrMatrix b = merged_coo_to_csr(coo, pool4);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.indptr, b.indptr);
}

TEST(TupleMerge, OutputSortedWithinRows) {
  CooMatrix coo(2, 10);
  coo.push(0, 9, 1.0);
  coo.push(0, 3, 1.0);
  coo.push(0, 7, 1.0);
  const CsrMatrix m = merged_coo_to_csr(coo);
  m.validate(true);
}

TEST(TupleMerge, PreservesEmptyTrailingRows) {
  CooMatrix coo(10, 10);
  coo.push(0, 0, 1.0);
  const CsrMatrix m = merged_coo_to_csr(coo);
  EXPECT_EQ(m.rows, 10);
  EXPECT_EQ(m.row_nnz(9), 0);
}

}  // namespace
}  // namespace hh
