#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "gen/datasets.hpp"
#include "spgemm/gustavson.hpp"
#include "test_util.hpp"

namespace hh {
namespace {

class BaselinesTest : public testing::Test {
 protected:
  BaselinesTest()
      : a_(make_dataset(dataset_spec("wiki-Vote"), 0.06)),
        want_(gustavson_spgemm(a_, a_)),
        pool_(2) {}

  void expect_correct(const RunResult& res, const char* label) {
    std::string why;
    EXPECT_TRUE(approx_equal(want_, res.c, 1e-9, &why)) << label << ": " << why;
    EXPECT_GT(res.report.total_s, 0) << label;
    EXPECT_EQ(res.report.output_nnz, want_.nnz()) << label;
  }

  CsrMatrix a_;
  CsrMatrix want_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(BaselinesTest, Hipc2012Correct) {
  expect_correct(run_hipc2012(a_, a_, plat_, pool_), "hipc2012");
}

TEST_F(BaselinesTest, Hipc2012UsesBothDevices) {
  const RunResult res = run_hipc2012(a_, a_, plat_, pool_);
  EXPECT_GT(res.report.phase2_cpu_s, 0);
  EXPECT_GT(res.report.phase2_gpu_s, 0);
}

TEST_F(BaselinesTest, UnsortedWorkqueueCorrect) {
  expect_correct(run_unsorted_workqueue(a_, a_, {}, plat_, pool_),
                 "unsorted-workqueue");
}

TEST_F(BaselinesTest, SortedWorkqueueCorrect) {
  expect_correct(run_sorted_workqueue(a_, a_, {}, plat_, pool_),
                 "sorted-workqueue");
}

TEST_F(BaselinesTest, CpuOnlyCorrectAndTransferFree) {
  const RunResult res = run_cpu_only_mkl(a_, a_, plat_, pool_);
  expect_correct(res, "mkl");
  EXPECT_DOUBLE_EQ(res.report.transfer_in_s, 0.0);
  EXPECT_DOUBLE_EQ(res.report.transfer_out_s, 0.0);
}

TEST_F(BaselinesTest, GpuOnlyCusparseCorrectAndPaysTransfers) {
  const RunResult res = run_gpu_only_cusparse(a_, a_, plat_, pool_);
  expect_correct(res, "cusparse");
  EXPECT_GT(res.report.transfer_in_s, 0.0);
  EXPECT_GT(res.report.transfer_out_s, 0.0);
}

TEST_F(BaselinesTest, GpuOnlyHipcKernelCorrect) {
  expect_correct(run_gpu_only_hipc_kernel(a_, a_, plat_, pool_), "gpu-hipc");
}

TEST_F(BaselinesTest, TunedGpuKernelBeatsGenericLibrary) {
  const RunResult tuned = run_gpu_only_hipc_kernel(a_, a_, plat_, pool_);
  const RunResult generic = run_gpu_only_cusparse(a_, a_, plat_, pool_);
  EXPECT_LT(tuned.report.phase2_gpu_s, generic.report.phase2_gpu_s);
}

TEST_F(BaselinesTest, AllBaselinesAgreeOnEveryDatasetFamily) {
  for (const char* name : {"email-Enron", "p2p-Gnutella31"}) {
    const CsrMatrix m = make_dataset(dataset_spec(name), 0.04);
    const CsrMatrix want = gustavson_spgemm(m, m);
    std::string why;
    for (const RunResult& res :
         {run_hipc2012(m, m, plat_, pool_),
          run_unsorted_workqueue(m, m, {}, plat_, pool_),
          run_sorted_workqueue(m, m, {}, plat_, pool_),
          run_cpu_only_mkl(m, m, plat_, pool_),
          run_gpu_only_cusparse(m, m, plat_, pool_)}) {
      EXPECT_TRUE(approx_equal(want, res.c, 1e-9, &why))
          << name << "/" << res.report.algorithm << ": " << why;
    }
  }
}

TEST_F(BaselinesTest, ReportsCarryAlgorithmNames) {
  EXPECT_EQ(run_hipc2012(a_, a_, plat_, pool_).report.algorithm, "HiPC2012");
  EXPECT_EQ(run_cpu_only_mkl(a_, a_, plat_, pool_).report.algorithm,
            "MKL (CPU only)");
  EXPECT_EQ(run_gpu_only_cusparse(a_, a_, plat_, pool_).report.algorithm,
            "cuSPARSE (GPU only)");
}

}  // namespace
}  // namespace hh
