// Reproduction-shape guardrails: the headline relationships of the paper's
// evaluation must hold on representative analogues. These run at a small
// scale so the whole suite stays fast; the bench harness reproduces the full
// figures. Bands are deliberately wide — they pin the *shape* (who wins, by
// roughly what factor), not exact numbers.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/hh_cpu.hpp"
#include "core/threshold.hpp"
#include "gen/datasets.hpp"
#include "test_util.hpp"

namespace hh {
namespace {

constexpr double kScale = 0.04;

class CalibrationTest : public testing::Test {
 protected:
  CalibrationTest() : plat_(make_scaled_platform(kScale)), pool_(2) {}

  RunResult best_hh(const CsrMatrix& a) {
    const ThresholdChoice c = pick_threshold_empirical(a, a, plat_, pool_);
    HhCpuOptions opt;
    opt.threshold_a = c.t;
    opt.threshold_b = c.t;
    return run_hh_cpu(a, a, opt, plat_, pool_);
  }

  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(CalibrationTest, HhBeatsHipc2012OnStronglyScaleFreeMatrices) {
  // The α ≈ 2.1 matrices show the largest gains in the paper (~37%).
  for (const char* name : {"webbase-1M", "email-Enron"}) {
    const CsrMatrix a = make_dataset(dataset_spec(name), kScale);
    const RunResult hh = best_hh(a);
    const RunResult hipc = run_hipc2012(a, a, plat_, pool_);
    const double speedup = hipc.report.total_s / hh.report.total_s;
    EXPECT_GT(speedup, 1.10) << name;
    EXPECT_LT(speedup, 2.20) << name;
  }
}

TEST_F(CalibrationTest, GainSmallOnNonScaleFreeMatrices) {
  // roadNet-CA / p2p-Gnutella31: the paper reports only ~5%; the shape
  // criterion is "no big win, no big loss".
  for (const char* name : {"roadNet-CA", "p2p-Gnutella31"}) {
    const CsrMatrix a = make_dataset(dataset_spec(name), kScale);
    const RunResult hh = best_hh(a);
    const RunResult hipc = run_hipc2012(a, a, plat_, pool_);
    const double speedup = hipc.report.total_s / hh.report.total_s;
    EXPECT_GT(speedup, 0.70) << name;
    EXPECT_LT(speedup, 1.35) << name;
  }
}

TEST_F(CalibrationTest, HhFarAheadOfLibraryBaselines) {
  // Fig. 6: ~3.6x vs MKL and ~4x vs cuSPARSE on the scale-free suite.
  const CsrMatrix a = make_dataset(dataset_spec("webbase-1M"), kScale);
  const RunResult hh = best_hh(a);
  const double vs_mkl = run_cpu_only_mkl(a, a, plat_, pool_).report.total_s /
                        hh.report.total_s;
  const double vs_cusp =
      run_gpu_only_cusparse(a, a, plat_, pool_).report.total_s /
      hh.report.total_s;
  EXPECT_GT(vs_mkl, 2.0);
  EXPECT_LT(vs_mkl, 7.0);
  EXPECT_GT(vs_cusp, 2.0);
  EXPECT_LT(vs_cusp, 7.0);
}

TEST_F(CalibrationTest, HhBeatsBothWorkqueueVariants) {
  // Fig. 9: ~15% over Unsorted-/Sorted-Workqueue on scale-free inputs.
  const CsrMatrix a = make_dataset(dataset_spec("web-Google"), kScale);
  const RunResult hh = best_hh(a);
  const double vs_uns =
      run_unsorted_workqueue(a, a, {}, plat_, pool_).report.total_s /
      hh.report.total_s;
  const double vs_srt =
      run_sorted_workqueue(a, a, {}, plat_, pool_).report.total_s /
      hh.report.total_s;
  EXPECT_GT(vs_uns, 1.02);
  EXPECT_GT(vs_srt, 1.02);
}

TEST_F(CalibrationTest, PhasesTwoAndThreeDominate) {
  // Fig. 7: Phases II + III are the bulk of the time; I + IV are overhead.
  const CsrMatrix a = make_dataset(dataset_spec("web-Google"), kScale);
  const RunResult hh = best_hh(a);
  const RunReport& r = hh.report;
  const double work = r.phase2_s + r.phase3_s;
  const double overhead = r.phase1_s + r.phase4_s;
  EXPECT_GT(work, 10.0 * overhead);
}

TEST_F(CalibrationTest, ThresholdSweepIsConvexish) {
  // Fig. 8: time at the extremes exceeds the best interior time.
  const CsrMatrix a = make_dataset(dataset_spec("webbase-1M"), kScale);
  double best = -1, t0_time = -1, tmax_time = -1;
  const auto cand = threshold_candidates(a);
  for (const offset_t t : cand) {
    HhCpuOptions opt;
    opt.threshold_a = t;
    opt.threshold_b = t;
    const double total = run_hh_cpu(a, a, opt, plat_, pool_).report.total_s;
    if (best < 0 || total < best) best = total;
    if (t == cand.front()) t0_time = total;
    if (t == cand.back()) tmax_time = total;
  }
  EXPECT_GT(t0_time, best);
  EXPECT_GT(tmax_time, best);
}

}  // namespace
}  // namespace hh
