#include "powerlaw/fit.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw_gen.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace hh {
namespace {

std::vector<std::int64_t> power_law_sample(double alpha, std::size_t n,
                                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> xs(n);
  for (auto& x : xs) {
    x = sample_power_law_degree(alpha, 1, 1000000, rng.uniform());
  }
  return xs;
}

class AlphaRecovery : public testing::TestWithParam<double> {};

TEST_P(AlphaRecovery, MleRecoversExponent) {
  // The generator uses the continuous (shifted-Pareto) approximation of the
  // discrete power law, which deviates from the zeta pmf in the first few
  // integers; fitting from xmin = 4 is in the regime where the two agree
  // (Clauset et al., Appendix D).
  const double alpha = GetParam();
  const auto xs = power_law_sample(alpha, 60000, 99);
  const double est = fit_alpha_fixed_xmin(xs, 4);
  EXPECT_NEAR(est, alpha, 0.15 * alpha) << "alpha=" << alpha;
}

TEST_P(AlphaRecovery, FullFitRecoversExponent) {
  const double alpha = GetParam();
  const auto xs = power_law_sample(alpha, 20000, 7);
  const PowerLawFit fit = fit_power_law(xs);
  EXPECT_NEAR(fit.alpha, alpha, 0.25 * alpha) << "alpha=" << alpha;
  EXPECT_GE(fit.xmin, 1);
  EXPECT_LT(fit.ks, 0.2);
  EXPECT_GT(fit.n_tail, 100u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaRecovery,
                         testing::Values(2.1, 2.5, 3.0, 3.5, 4.5));

TEST(PowerLawFit, KsSmallForTrueAlpha) {
  const auto xs = power_law_sample(2.5, 20000, 5);
  const double good = ks_statistic(xs, 4, 2.5);
  const double bad = ks_statistic(xs, 4, 4.5);
  EXPECT_LT(good, bad);
  EXPECT_LT(good, 0.06);
}

TEST(PowerLawFit, RejectsEmptyInput) {
  const std::vector<std::int64_t> xs;
  EXPECT_THROW(fit_power_law(xs), CheckError);
}

TEST(PowerLawFit, IgnoresNonPositiveSamples) {
  auto xs = power_law_sample(3.0, 5000, 11);
  xs.push_back(0);
  xs.push_back(-3);
  const PowerLawFit fit = fit_power_law(xs);
  EXPECT_GT(fit.alpha, 2.0);
}

TEST(PowerLawFit, FixedXminNeedsTail) {
  const std::vector<std::int64_t> xs{1, 1, 1};
  // All samples below xmin: no tail, returns 0 sentinel.
  EXPECT_DOUBLE_EQ(fit_alpha_fixed_xmin(xs, 10), 0.0);
}

TEST(PowerLawFit, NarrowDistributionGetsLargeAlpha) {
  // Near-constant row sizes (the paper's roadNet-CA / cop20kA regime) fit
  // only with a very steep exponent.
  Xoshiro256 rng(13);
  std::vector<std::int64_t> xs(20000);
  for (auto& x : xs) x = 20 + static_cast<std::int64_t>(rng.below(3));
  const PowerLawFit fit = fit_power_law(xs);
  EXPECT_GT(fit.alpha, 6.5);
}

}  // namespace
}  // namespace hh
