// End-to-end flows across modules: dataset generation → all algorithms →
// identical products; MatrixMarket round trip through the full pipeline.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/hh_cpu.hpp"
#include "gen/datasets.hpp"
#include "powerlaw/fit.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/row_stats.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace hh {
namespace {

TEST(Integration, AllAlgorithmsProduceIdenticalResults) {
  ThreadPool pool(2);
  const HeteroPlatform plat;
  const CsrMatrix a = make_dataset(dataset_spec("ca-CondMat"), 0.05);

  const RunResult hh = run_hh_cpu(a, a, {}, plat, pool);
  std::string why;
  for (const RunResult& res :
       {run_hipc2012(a, a, plat, pool),
        run_unsorted_workqueue(a, a, {}, plat, pool),
        run_sorted_workqueue(a, a, {}, plat, pool),
        run_cpu_only_mkl(a, a, plat, pool),
        run_gpu_only_cusparse(a, a, plat, pool),
        run_gpu_only_hipc_kernel(a, a, plat, pool)}) {
    EXPECT_TRUE(approx_equal(hh.c, res.c, 1e-9, &why))
        << res.report.algorithm << ": " << why;
  }
}

TEST(Integration, MatrixMarketPipelineRoundTrip) {
  ThreadPool pool(2);
  const HeteroPlatform plat;
  const CsrMatrix a = make_dataset(dataset_spec("wiki-Vote"), 0.05);
  const std::string path = testing::TempDir() + "/hh_integration.mtx";
  write_matrix_market_file(path, a);
  const CsrMatrix loaded = read_matrix_market_file(path);

  const RunResult from_mem = run_hh_cpu(a, a, {}, plat, pool);
  const RunResult from_file = run_hh_cpu(loaded, loaded, {}, plat, pool);
  std::string why;
  EXPECT_TRUE(approx_equal(from_mem.c, from_file.c, 1e-9, &why)) << why;
}

TEST(Integration, Table1PipelineProducesFittableAnalogues) {
  // Small-scale version of the Table I workflow: generate, fit α, check the
  // scale-free matrices read back as heavier-tailed than the uniform ones.
  const CsrMatrix sf = make_dataset(dataset_spec("webbase-1M"), 0.01);
  const CsrMatrix uni = make_dataset(dataset_spec("roadNet-CA"), 0.01);
  const double alpha_sf = fit_power_law(row_nnz_vector(sf)).alpha;
  const double alpha_uni = fit_power_law(row_nnz_vector(uni)).alpha;
  EXPECT_LT(alpha_sf, alpha_uni);
}

TEST(Integration, ScaledPlatformRunsFullAlgorithm) {
  ThreadPool pool(2);
  const HeteroPlatform plat = make_scaled_platform(0.05);
  const CsrMatrix a = make_dataset(dataset_spec("dblp2010"), 0.03);
  const RunResult res = run_hh_cpu(a, a, {}, plat, pool);
  EXPECT_GT(res.report.total_s, 0);
  EXPECT_GT(res.c.nnz(), 0);
  set_shared_accum_cap(kSharedAccumCap);  // restore for other tests
}

}  // namespace
}  // namespace hh
