// Observability tests: flight-recorder log round-trips and tamper evidence,
// ring rotation, recorder clock/drain accounting, service and shard-group
// integration (records and SLO accounting reconcile with the batch
// reports, attaching the recorder changes nothing behaviourally), the SLO
// monitor's burn-rate/alert math, metrics time series, and the replay
// harness (deterministic reports, bit-identical outputs, open vs closed
// loop, sharded replay).
#include "obs/record.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gen/datasets.hpp"
#include "obs/recorder.hpp"
#include "obs/replay.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "runtime/service.hpp"
#include "shard/sharded_service.hpp"
#include "util/status.hpp"

namespace hh {
namespace {

WorkloadRecord sample_record(std::size_t id) {
  WorkloadRecord r;
  r.id = id;
  r.label = "req-" + std::to_string(id);
  r.a = {100 + static_cast<index_t>(id), 100, 500, 2100, 0x1234 + id};
  r.b = r.a;
  r.submit_s = 0.125 * static_cast<double>(id);
  r.deadline_s = 0.5;
  r.ta = 32;
  r.tb = 16;
  r.status = "ok";
  r.latency_s = 0.0625 + 1e-9 * static_cast<double>(id);
  r.phase2_s = 0.011;
  r.tx_in_s = 0.003;
  r.output_nnz = 4321;
  return r;
}

// ------------------------------------------------------------ log format

TEST(WorkloadLog, RoundTripsThroughJsonl) {
  WorkloadRecorder rec;
  rec.append(sample_record(0));
  WorkloadRecord odd = sample_record(1);
  odd.label = "quote\" slash\\ tab\t end";  // escaping must round-trip
  odd.shard = 2;
  odd.status = "deadline_exceeded";
  odd.deadline_missed = true;
  odd.cache_hit = true;
  odd.faults = 3;
  rec.append(odd);

  const WorkloadLog log = rec.log();
  const std::string text = log.to_jsonl();
  const WorkloadLog back = parse_workload_log(text);

  EXPECT_EQ(back.version, kWorkloadLogVersion);
  EXPECT_EQ(back.total_appended, 2u);
  EXPECT_EQ(back.rotations, 0u);
  ASSERT_EQ(back.records.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const WorkloadRecord& w = log.records[i];
    const WorkloadRecord& p = back.records[i];
    EXPECT_EQ(p.id, w.id);
    EXPECT_EQ(p.drain, w.drain);
    EXPECT_EQ(p.shard, w.shard);
    EXPECT_EQ(p.label, w.label);
    EXPECT_EQ(p.a, w.a);
    EXPECT_EQ(p.b, w.b);
    EXPECT_EQ(p.submit_s, w.submit_s);  // %.17g: bit-exact round-trip
    EXPECT_EQ(p.latency_s, w.latency_s);
    EXPECT_EQ(p.status, w.status);
    EXPECT_EQ(p.cache_hit, w.cache_hit);
    EXPECT_EQ(p.deadline_missed, w.deadline_missed);
    EXPECT_EQ(p.output_nnz, w.output_nnz);
    EXPECT_EQ(p.faults, w.faults);
    EXPECT_EQ(p.checksum, w.checksum);
  }
  // Re-serialising the parsed log reproduces the original bytes.
  EXPECT_EQ(back.to_jsonl(), text);
}

TEST(WorkloadLog, TamperingIsDetected) {
  WorkloadRecorder rec;
  for (std::size_t i = 0; i < 3; ++i) rec.append(sample_record(i));
  const std::string text = rec.log().to_jsonl();
  EXPECT_NO_THROW(parse_workload_log(text));

  // Editing a payload field breaks that record's checksum.
  std::string edited = text;
  const std::size_t pos = edited.find("\"output_nnz\":4321");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 17, "\"output_nnz\":4322");
  EXPECT_THROW(parse_workload_log(edited), ParseError);

  // Dropping a middle line breaks the chain of everything after it.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = text.find('\n'); nl != std::string::npos;
       nl = text.find('\n', start)) {
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 3 records
  std::string dropped = lines[0] + "\n" + lines[1] + "\n" + lines[3] + "\n";
  EXPECT_THROW(parse_workload_log(dropped), ParseError);

  // Reordering two records breaks the chain even though each line is
  // individually well-formed.
  std::string swapped =
      lines[0] + "\n" + lines[2] + "\n" + lines[1] + "\n" + lines[3] + "\n";
  EXPECT_THROW(parse_workload_log(swapped), ParseError);

  // Truncation and garbage are parse errors, not crashes.
  EXPECT_THROW(parse_workload_log(""), ParseError);
  EXPECT_THROW(parse_workload_log("not json\n"), ParseError);
  EXPECT_THROW(parse_workload_log(lines[1] + "\n"), ParseError);  // no header
}

TEST(WorkloadRecorder, RingRotationKeepsChainVerifiable) {
  WorkloadRecorder::Config cfg;
  cfg.max_records = 4;
  WorkloadRecorder rec(cfg);
  for (std::size_t i = 0; i < 10; ++i) rec.append(sample_record(i));

  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_appended(), 10u);
  EXPECT_EQ(rec.rotations(), 6u);
  EXPECT_EQ(rec.records().front().id, 6u);  // oldest retained

  // The retained suffix still verifies: the chain seed moved up to the
  // checksum of the last dropped record.
  const WorkloadLog log = rec.log();
  EXPECT_EQ(log.rotations, 6u);
  const WorkloadLog back = parse_workload_log(log.to_jsonl());
  ASSERT_EQ(back.records.size(), 4u);
  EXPECT_EQ(back.records.front().id, 6u);
  EXPECT_EQ(back.records.back().id, 9u);
}

TEST(WorkloadRecorder, FirstRotationLandsExactlyOnTheHeaderSeed) {
  // Regression guard for the rotation re-seed boundary: the very first
  // rotation drops the record chained directly from the header's seed, so
  // the new seed must be that record's *checksum* (not the old seed, and
  // not the second record's checksum — either off-by-one would break the
  // retained suffix).
  WorkloadRecorder::Config cfg;
  cfg.max_records = 3;
  WorkloadRecorder rec(cfg);
  for (std::size_t i = 0; i < 4; ++i) rec.append(sample_record(i));
  EXPECT_EQ(rec.rotations(), 1u);
  EXPECT_EQ(rec.records().front().id, 1u);
  const WorkloadLog back = parse_workload_log(rec.log().to_jsonl());
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_EQ(back.records.front().id, 1u);
}

TEST(WorkloadRecorder, SingleSlotRingRotatesOnEveryAppend) {
  // max_records == 1 is the extreme boundary: every append past the first
  // is a rotation, and the retained single record must always verify
  // against the freshly re-seeded chain.
  WorkloadRecorder::Config cfg;
  cfg.max_records = 1;
  WorkloadRecorder rec(cfg);
  for (std::size_t i = 0; i < 7; ++i) {
    rec.append(sample_record(i));
    ASSERT_EQ(rec.size(), 1u);
    const WorkloadLog back = parse_workload_log(rec.log().to_jsonl());
    ASSERT_EQ(back.records.size(), 1u);
    EXPECT_EQ(back.records.front().id, i);
  }
  EXPECT_EQ(rec.total_appended(), 7u);
  EXPECT_EQ(rec.rotations(), 6u);  // total appended minus the one retained
}

TEST(WorkloadRecorder, ClockAccumulatesAcrossDrains) {
  WorkloadRecorder rec;
  EXPECT_EQ(rec.drain(), 0u);
  EXPECT_EQ(rec.clock(), 0.0);
  rec.append(sample_record(0));
  rec.advance_clock(1.5);
  rec.append(sample_record(1));
  rec.advance_clock(0.25);
  EXPECT_EQ(rec.drain(), 2u);
  EXPECT_DOUBLE_EQ(rec.clock(), 1.75);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.records()[0].drain, 0u);
  EXPECT_EQ(rec.records()[1].drain, 1u);
}

// ------------------------------------------------------------ SLO monitor

TEST(SloMonitor, RejectsBadObjectives) {
  EXPECT_THROW(SloMonitor({{"bad name", 0.9, 8, 0, 1.0}}),
               InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"", 0.9, 8, 0, 1.0}}), InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"t0", 0.0, 8, 0, 1.0}}), InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"t1", 1.0, 8, 0, 1.0}}), InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"w0", 0.9, 0, 0, 1.0}}), InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"neg", 0.9, 8, -1.0, 1.0}}),
               InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"b0", 0.9, 8, 0, 0.0}}), InvalidArgumentError);
  EXPECT_THROW(SloMonitor({{"dup", 0.9, 8, 0, 1.0}, {"dup", 0.9, 8, 0, 1.0}}),
               InvalidArgumentError);
  EXPECT_NO_THROW(SloMonitor({{"ok", 0.9, 8, 0, 1.0}}));
}

TEST(SloMonitor, BurnRateAndAlerts) {
  // Deadline-hit objective: target 0.5 over a window of 4 → the error
  // budget is 0.5, so burn = 2 × window_bad_fraction.
  SloMonitor slo({{"avail", 0.5, 4, 0, 1.0}});
  MetricsRegistry reg;
  slo.bind_metrics(&reg);

  slo.observe(0.1, true, false, 0.0);  // good
  EXPECT_DOUBLE_EQ(slo.window_bad_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(slo.burn_rate(0), 0.0);
  EXPECT_FALSE(slo.alerting(0));

  slo.observe(0.1, true, true, 1.0);  // deadline miss = bad
  EXPECT_DOUBLE_EQ(slo.window_bad_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(slo.burn_rate(0), 1.0);  // exactly at budget pace

  slo.observe(0.1, false, false, 2.0);  // failed = bad → burn 1.33… > 1
  EXPECT_TRUE(slo.alerting(0));
  EXPECT_EQ(slo.alerts(0), 1);

  // Four straight goods slide the bads out of the window and clear.
  for (int i = 0; i < 4; ++i) slo.observe(0.1, true, false, 3.0 + i);
  EXPECT_FALSE(slo.alerting(0));
  EXPECT_EQ(slo.alerts(0), 1);  // lifetime count survives clearing
  EXPECT_DOUBLE_EQ(slo.budget_remaining(0), 1.0);

  EXPECT_EQ(slo.observations(), 7);
  EXPECT_EQ(slo.good(0) + slo.bad(0), slo.observations());
  EXPECT_EQ(reg.counter("slo.avail.good").value(), slo.good(0));
  EXPECT_EQ(reg.counter("slo.avail.bad").value(), slo.bad(0));
  EXPECT_EQ(reg.counter("slo.avail.alerts").value(), slo.alerts(0));
  EXPECT_DOUBLE_EQ(reg.gauge("slo.avail.burn_rate").value(),
                   slo.burn_rate(0));
  EXPECT_FALSE(slo.to_json().empty());
  EXPECT_FALSE(slo.to_string().empty());
}

TEST(SloMonitor, LatencyObjectiveJudgesThreshold) {
  SloMonitor slo({{"lat", 0.9, 8, 0.05, 1.0}});
  slo.observe(0.01, true, false, 0.0);  // under threshold → good
  slo.observe(0.10, true, false, 1.0);  // over threshold → bad
  slo.observe(0.01, true, true, 2.0);   // fast but missed: latency objective
                                        // only cares about the threshold
  EXPECT_EQ(slo.good(0), 2);
  EXPECT_EQ(slo.bad(0), 1);
}

// --------------------------------------------------------- metrics series

TEST(MetricsTimeline, DeltasRatesAndBackfill) {
  MetricsRegistry reg;
  Counter& c = reg.counter("reqs");
  c.inc();
  MetricsTimeline tl(&reg, 1.0);
  tl.snapshot(0.0);  // reqs = 1
  c.inc(2);
  EXPECT_FALSE(tl.maybe_snapshot(0.5));  // interval not elapsed
  EXPECT_TRUE(tl.maybe_snapshot(2.0));   // reqs = 3
  reg.gauge("late").set(7.0);            // discovered after sample 1
  c.inc();
  tl.snapshot(4.0);  // reqs = 4, late = 7
  EXPECT_EQ(tl.samples(), 3u);

  const std::string json = tl.to_json();
  EXPECT_NE(json.find("\"samples\":3"), std::string::npos);
  EXPECT_NE(json.find("\"t_s\":[0,2,4]"), std::string::npos);
  // reqs: values 1,3,4 → deltas 1,2,1 → rates 0,1,0.5.
  EXPECT_NE(json.find("\"values\":[1,3,4]"), std::string::npos);
  EXPECT_NE(json.find("\"deltas\":[1,2,1]"), std::string::npos);
  EXPECT_NE(json.find("\"rates\":[0,1,0.5]"), std::string::npos);
  // The late gauge is zero-backfilled to stay aligned with t_s.
  EXPECT_NE(json.find("\"values\":[0,0,7]"), std::string::npos);
}

// ------------------------------------------------------ service integration

class ObsServiceTest : public testing::Test {
 protected:
  ObsServiceTest()
      : wiki_(make_dataset(dataset_spec("wiki-Vote"), 0.05)),
        enron_(make_dataset(dataset_spec("email-Enron"), 0.03)),
        pool_(2) {}

  const CsrMatrix& mat(std::size_t i) const {
    return i % 2 == 0 ? wiki_ : enron_;
  }

  CsrMatrix wiki_;
  CsrMatrix enron_;
  HeteroPlatform plat_;
  ThreadPool pool_;
};

TEST_F(ObsServiceTest, ServiceFeedsRecorderAndSlo) {
  WorkloadRecorder rec;
  SloMonitor slo({{"deadline-hit", 0.99, 64, 0, 1.0}});
  SpgemmService::Config cfg;
  cfg.recorder = &rec;
  cfg.slo = &slo;
  SpgemmService service(plat_, pool_, cfg);
  slo.bind_metrics(&service.metrics());

  constexpr std::size_t kWave = 4;
  for (std::size_t i = 0; i < kWave; ++i) {
    service.submit({&mat(i), nullptr, {}, "w0-" + std::to_string(i)});
  }
  const BatchResult b0 = service.drain();
  for (std::size_t i = 0; i < kWave; ++i) {
    service.submit({&mat(i), nullptr, {}, "w1-" + std::to_string(i)});
  }
  const BatchResult b1 = service.drain();

  // One record per request, stamped with the drain index and a submit time
  // on the recorder's accumulated clock.
  ASSERT_EQ(rec.size(), 2 * kWave);
  EXPECT_EQ(rec.drain(), 2u);
  EXPECT_DOUBLE_EQ(rec.clock(), b0.batch.makespan_s + b1.batch.makespan_s);
  for (std::size_t i = 0; i < kWave; ++i) {
    const WorkloadRecord& w0 = rec.records()[i];
    const WorkloadRecord& w1 = rec.records()[kWave + i];
    EXPECT_EQ(w0.drain, 0u);
    EXPECT_EQ(w1.drain, 1u);
    EXPECT_EQ(w0.shard, -1);
    EXPECT_DOUBLE_EQ(w0.submit_s, 0.0);
    EXPECT_DOUBLE_EQ(w1.submit_s, b0.batch.makespan_s);
    EXPECT_EQ(w0.label, "w0-" + std::to_string(i));
    EXPECT_EQ(w0.status, "ok");
    EXPECT_EQ(w0.a, matrix_signature(mat(i)));
    EXPECT_EQ(w0.b, w0.a);  // self product records b == a
    EXPECT_DOUBLE_EQ(w0.latency_s, b0.requests[i].latency_s);
    EXPECT_EQ(w0.ta, static_cast<std::int64_t>(b0.requests[i].run.threshold_a));
    EXPECT_EQ(w0.output_nnz,
              static_cast<std::int64_t>(b0.requests[i].run.output_nnz));
    // Wave 1 repeats wave 0's shapes, so the plan cache serves it.
    EXPECT_TRUE(w1.cache_hit);
  }
  // The log round-trips.
  EXPECT_NO_THROW(parse_workload_log(rec.log().to_jsonl()));

  // SLO accounting reconciles with the batch reports.
  EXPECT_EQ(slo.observations(), static_cast<std::int64_t>(2 * kWave));
  EXPECT_EQ(slo.bad(0), static_cast<std::int64_t>(b0.batch.deadline_missed +
                                                  b1.batch.deadline_missed));
  EXPECT_EQ(service.metrics().counter("slo.deadline-hit.good").value(),
            slo.good(0));
}

TEST_F(ObsServiceTest, RecorderAttachmentChangesNothing) {
  WorkloadRecorder rec;
  SloMonitor slo({{"hit", 0.9, 16, 0, 1.0}});
  SpgemmService::Config cfg;
  cfg.recorder = &rec;
  cfg.slo = &slo;
  SpgemmService observed(plat_, pool_, cfg);
  SpgemmService plain(plat_, pool_);
  for (std::size_t i = 0; i < 4; ++i) {
    observed.submit({&mat(i), nullptr, {}, ""});
    plain.submit({&mat(i), nullptr, {}, ""});
  }
  const BatchResult bo = observed.drain();
  const BatchResult bp = plain.drain();
  ASSERT_EQ(bo.results.size(), bp.results.size());
  for (std::size_t i = 0; i < bo.results.size(); ++i) {
    EXPECT_EQ(bo.results[i].c.indptr, bp.results[i].c.indptr);
    EXPECT_EQ(bo.results[i].c.indices, bp.results[i].c.indices);
    EXPECT_EQ(bo.results[i].c.values, bp.results[i].c.values);
  }
  // Everything behavioural matches. (Workspace-pool reuse counts are
  // thread-timing artifacts and excluded: they differ run to run even
  // between two identically-configured services.)
  EXPECT_EQ(bo.batch.completed, bp.batch.completed);
  EXPECT_EQ(bo.batch.deadline_missed, bp.batch.deadline_missed);
  EXPECT_DOUBLE_EQ(bo.batch.makespan_s, bp.batch.makespan_s);
  EXPECT_DOUBLE_EQ(bo.batch.p95_latency_s, bp.batch.p95_latency_s);
  EXPECT_EQ(bo.batch.plan_cache.hits, bp.batch.plan_cache.hits);
  for (std::size_t i = 0; i < bo.requests.size(); ++i) {
    EXPECT_EQ(bo.requests[i].to_json(), bp.requests[i].to_json());
  }
}

TEST_F(ObsServiceTest, ShardedGroupStampsExecutingShard) {
  WorkloadRecorder rec;
  SloMonitor slo({{"hit", 0.99, 64, 0, 1.0}});
  ShardedSpgemmService::Config gcfg;
  gcfg.shards = 2;
  gcfg.recorder = &rec;
  gcfg.slo = &slo;
  ShardedSpgemmService group(plat_, pool_, gcfg);
  slo.bind_metrics(&group.metrics());

  constexpr std::size_t kRequests = 8;
  for (std::size_t i = 0; i < kRequests; ++i) {
    group.submit({&mat(i), nullptr, {}, "g" + std::to_string(i)});
  }
  const GroupResult gr = group.drain();
  ASSERT_EQ(gr.group.completed, kRequests);
  ASSERT_EQ(rec.size(), kRequests);
  bool shard_seen[2] = {false, false};
  for (const WorkloadRecord& w : rec.records()) {
    ASSERT_GE(w.shard, 0);
    ASSERT_LT(w.shard, 2);
    shard_seen[w.shard] = true;
  }
  // Consistent hashing spreads two distinct signatures over the ring; both
  // shards served traffic in this configuration.
  EXPECT_TRUE(shard_seen[0] || shard_seen[1]);
  EXPECT_EQ(slo.observations(), static_cast<std::int64_t>(kRequests));
  EXPECT_NO_THROW(parse_workload_log(rec.log().to_jsonl()));
}

// ------------------------------------------------------------------ replay

class ReplayTest : public ObsServiceTest {
 protected:
  // Record a two-wave production run and return the log.
  WorkloadLog record_workload() {
    WorkloadRecorder rec;
    SpgemmService::Config cfg;
    cfg.recorder = &rec;
    SpgemmService service(plat_, pool_, cfg);
    for (std::size_t wave = 0; wave < 2; ++wave) {
      for (std::size_t i = 0; i < 4; ++i) {
        service.submit({&mat(i), nullptr, {}, "r" + std::to_string(i)});
      }
      service.drain();
    }
    return rec.log();
  }

  ReplayOptions base_options() {
    ReplayOptions opts;
    opts.slo = {{"deadline-hit", 0.99, 64, 0, 1.0}};
    opts.metrics_interval_s = 1e-6;
    return opts;
  }
};

TEST_F(ReplayTest, ReplayIsDeterministicAndBitIdentical) {
  const WorkloadLog log = record_workload();
  ASSERT_EQ(log.records.size(), 8u);

  ReplayHarness harness(plat_, pool_);
  harness.register_operand(&wiki_);
  harness.register_operand(&enron_);
  const ReplayOptions opts = base_options();
  const ReplayReport r1 = harness.replay(log, opts);
  const ReplayReport r2 = harness.replay(log, opts);

  // Same log + same options ⇒ byte-identical reports, bit-identical outputs.
  EXPECT_EQ(r1.to_json(), r2.to_json());
  EXPECT_EQ(r1.untuned.output_digest, r2.untuned.output_digest);
  EXPECT_EQ(r1.tuned.output_digest, r2.tuned.output_digest);

  EXPECT_EQ(r1.records, 8u);
  EXPECT_EQ(r1.waves, 2u);
  for (const ReplayRunReport* p : {&r1.untuned, &r1.tuned}) {
    EXPECT_EQ(p->requests, 8u);
    EXPECT_EQ(p->lost, 0u);
    EXPECT_EQ(p->identity_mismatches, 0u);
    EXPECT_EQ(p->outcome_divergence, 0u);
    EXPECT_TRUE(p->slo_reconciled);
    EXPECT_FALSE(p->slo_json.empty());
    EXPECT_FALSE(p->timeline_json.empty());
    EXPECT_GT(p->makespan_s, 0.0);
  }
  // Tuning only re-picks thresholds; both passes multiply the same
  // matrices, so the digests cover the same products either way.
  EXPECT_FALSE(r1.to_string().empty());
  EXPECT_FALSE(r1.to_json().empty());
}

TEST_F(ReplayTest, ClosedLoopIsAtLeastAsFastAsOpenLoop) {
  const WorkloadLog log = record_workload();
  ReplayHarness harness(plat_, pool_);
  harness.register_operand(&wiki_);
  harness.register_operand(&enron_);

  ReplayOptions open = base_options();
  ReplayOptions closed = base_options();
  closed.open_loop = false;
  const ReplayReport ro = harness.replay(log, open);
  const ReplayReport rc = harness.replay(log, closed);
  EXPECT_EQ(rc.waves, 1u);
  // The closed loop drops the recorded inter-wave gaps, so it can only
  // finish the same work sooner (or equal, when the gaps were zero).
  EXPECT_LE(rc.untuned.makespan_s, ro.untuned.makespan_s + 1e-12);
  // Both loops produce the same outputs — arrival shaping never changes
  // bits.
  EXPECT_EQ(rc.untuned.output_digest, ro.untuned.output_digest);

  // Speeding the open loop up compresses gaps toward the closed-loop floor.
  ReplayOptions fast = base_options();
  fast.speed = 1e9;
  const ReplayReport rf = harness.replay(log, fast);
  EXPECT_LE(rf.untuned.makespan_s, ro.untuned.makespan_s + 1e-12);
}

TEST_F(ReplayTest, ShardedReplayLosesNothing) {
  const WorkloadLog log = record_workload();
  ReplayHarness harness(plat_, pool_);
  harness.register_operand(&wiki_);
  harness.register_operand(&enron_);
  ReplayOptions opts = base_options();
  opts.shards = 2;
  const ReplayReport r = harness.replay(log, opts);
  EXPECT_EQ(r.untuned.requests, 8u);
  EXPECT_EQ(r.untuned.lost, 0u);
  EXPECT_EQ(r.untuned.identity_mismatches, 0u);
  EXPECT_TRUE(r.untuned.slo_reconciled);
  // Deterministic across runs in the sharded configuration too.
  EXPECT_EQ(r.to_json(), harness.replay(log, opts).to_json());
}

TEST_F(ReplayTest, ReplayRejectsBadInputs) {
  const WorkloadLog log = record_workload();
  ReplayHarness harness(plat_, pool_);
  // No operands registered: the log's signatures cannot be resolved.
  EXPECT_THROW(harness.replay(log, base_options()), InvalidArgumentError);

  harness.register_operand(&wiki_);
  harness.register_operand(&enron_);
  EXPECT_THROW(harness.register_operand(nullptr), InvalidArgumentError);
  WorkloadLog empty;
  EXPECT_THROW(harness.replay(empty, base_options()), InvalidArgumentError);
  ReplayOptions bad = base_options();
  bad.speed = 0;
  EXPECT_THROW(harness.replay(log, bad), InvalidArgumentError);
}

}  // namespace
}  // namespace hh
