// Invariants of the simulated devices: the qualitative effects the paper
// argues from must be monotone consequences of the cost models.
#include <gtest/gtest.h>

#include "device/platform.hpp"
#include "spgemm/spgemm.hpp"

namespace hh {
namespace {

ProductStats narrow_rows_stats(std::int64_t rows, std::int64_t flops_per_row) {
  // Short B rows, outputs within the shared accumulator.
  ProductStats s;
  s.rows = rows;
  s.flops = rows * flops_per_row;
  s.a_nnz = rows * flops_per_row / 3;
  s.tuples = s.flops;
  s.max_row_flops = flops_per_row;
  s.warp_alu = s.a_nnz;  // one warp instruction per short B row
  s.flops_shared = s.flops;
  s.b_read_bytes = s.a_nnz * 64;
  return s;
}

ProductStats wide_rows_stats(std::int64_t rows, std::int64_t flops_per_row) {
  // Long B rows, outputs larger than the shared accumulator.
  ProductStats s;
  s.rows = rows;
  s.flops = rows * flops_per_row;
  s.a_nnz = rows * 4;
  s.tuples = s.flops / 4;
  s.max_row_flops = flops_per_row;
  s.warp_alu = s.flops / 32 + s.a_nnz;
  s.flops_global = s.flops;
  s.b_read_bytes = s.flops * 12 + s.a_nnz * 32;
  return s;
}

class DeviceTest : public testing::Test {
 protected:
  HeteroPlatform plat_;
};

TEST_F(DeviceTest, GpuTimeMonotoneInWork) {
  const double t1 = plat_.gpu().kernel_time(narrow_rows_stats(1000, 30));
  const double t2 = plat_.gpu().kernel_time(narrow_rows_stats(2000, 30));
  EXPECT_GT(t2, t1);
}

TEST_F(DeviceTest, GpuEmptyWorkIsFree) {
  EXPECT_DOUBLE_EQ(plat_.gpu().kernel_time(ProductStats{}), 0.0);
  EXPECT_DOUBLE_EQ(plat_.cpu().kernel_time(ProductStats{}, 0, false), 0.0);
}

TEST_F(DeviceTest, GpuGlobalPathCostsMoreThanSharedPath) {
  // Same flops; wide-output (global PartialOutput) vs narrow (shared).
  ProductStats wide = wide_rows_stats(100, 3000);
  ProductStats narrow = narrow_rows_stats(10000, 30);
  narrow.b_read_bytes = wide.b_read_bytes;  // isolate the write-path effect
  EXPECT_GT(plat_.gpu().kernel_time(wide), plat_.gpu().kernel_time(narrow));
}

TEST_F(DeviceTest, GpuSerializationOnOneHugeRow) {
  // Concentrating the same flops in one row must not be cheaper: the row is
  // bound to a single warp.
  ProductStats spread = narrow_rows_stats(100000, 32);
  ProductStats lump = spread;
  lump.max_row_flops = lump.flops;  // all in one row
  EXPECT_GE(plat_.gpu().kernel_time(lump), plat_.gpu().kernel_time(spread));
}

TEST_F(DeviceTest, GpuGenericKernelSlowerThanTunedKernel) {
  const ProductStats s = narrow_rows_stats(10000, 30);
  EXPECT_GT(plat_.gpu().generic_time(s), plat_.gpu().kernel_time(s));
}

TEST_F(DeviceTest, CpuCachedWorkingSetFasterThanStreamed) {
  const ProductStats s = wide_rows_stats(1000, 300);
  const double small_ws = plat_.cpu().kernel_time(s, 1024, false, true);
  const double big_ws =
      plat_.cpu().kernel_time(s, 1e9, false, true);
  EXPECT_GT(big_ws, small_ws);
}

TEST_F(DeviceTest, CpuBlockableAvoidsScatterPenalty) {
  const ProductStats s = wide_rows_stats(1000, 300);
  const double blocked = plat_.cpu().kernel_time(s, 1024, false, true);
  const double generic = plat_.cpu().kernel_time(s, 1024, false, false);
  EXPECT_GT(generic, blocked);
}

TEST_F(DeviceTest, RewrittenKernelPays15To20Percent) {
  const ProductStats s = narrow_rows_stats(1000, 30);
  const double mkl_like = plat_.cpu().kernel_time(s, 1e9, false);
  const double rewritten = plat_.cpu().kernel_time(s, 1e9, true);
  const double ratio = rewritten / mkl_like;
  EXPECT_GT(ratio, 1.14);  // §III-B: 15–20 % slower than MKL
  EXPECT_LT(ratio, 1.21);
}

TEST_F(DeviceTest, LibraryTwoPassFactorApplied) {
  const ProductStats s = narrow_rows_stats(1000, 30);
  const double kernel = plat_.cpu().kernel_time(s, 1e9, false, false);
  const double library = plat_.cpu().library_time(s, 1e9);
  EXPECT_NEAR(library / kernel, plat_.cost_model().cpu.library_two_phase_factor,
              1e-9);
}

TEST_F(DeviceTest, PcieCalibrationMatchesPaper) {
  // §IV-A: a matrix with ~5 M nonzeros takes ~25–30 ms to ship.
  CsrMatrix m(1000000, 1000000);
  m.indices.resize(5000000);
  m.values.resize(5000000);
  m.indptr.back() = 5000000;
  const double t = plat_.link().matrix_transfer_time(m);
  EXPECT_GT(t, 0.020);
  EXPECT_LT(t, 0.035);
}

TEST_F(DeviceTest, PcieLatencyFloor) {
  EXPECT_GE(plat_.link().transfer_time(1.0),
            plat_.cost_model().pcie.latency_s);
  EXPECT_DOUBLE_EQ(plat_.link().transfer_time(0.0), 0.0);
}

TEST_F(DeviceTest, TupleTransferLinearInCount) {
  const double t1 = plat_.link().tuple_transfer_time(1000000);
  const double t2 = plat_.link().tuple_transfer_time(2000000);
  EXPECT_NEAR(t2 - plat_.cost_model().pcie.latency_s,
              2 * (t1 - plat_.cost_model().pcie.latency_s), 1e-9);
}

TEST_F(DeviceTest, ClassificationIsCheap) {
  // Phase I must be negligible (paper: I + IV under 4 %).
  EXPECT_LT(plat_.gpu().classify_time(4000000), 1e-3);
  EXPECT_LT(plat_.cpu().classify_time(4000000), 1e-3);
}

TEST_F(DeviceTest, OverlapIsMax) {
  EXPECT_DOUBLE_EQ(HeteroPlatform::overlap(1.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(HeteroPlatform::overlap(3.0, 2.0), 3.0);
}

TEST(ScaledPlatform, ShrinksCapacitiesNotRates) {
  const std::int64_t cap_before = shared_accum_cap();
  const HeteroPlatform full = make_scaled_platform(1.0);
  const std::int64_t cap_full = shared_accum_cap();
  const HeteroPlatform half = make_scaled_platform(0.5);
  const std::int64_t cap_half = shared_accum_cap();
  EXPECT_NEAR(half.cost_model().cpu.l3_bytes,
              0.5 * full.cost_model().cpu.l3_bytes, 1.0);
  EXPECT_EQ(half.cost_model().cpu.clock_ghz, full.cost_model().cpu.clock_ghz);
  EXPECT_LT(cap_half, cap_full);
  set_shared_accum_cap(cap_before);
}

}  // namespace
}  // namespace hh
